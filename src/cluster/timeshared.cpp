#include "cluster/timeshared.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/telemetry.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace librisk::cluster {

namespace {
/// Work comparison slack, reference-seconds. Load-bearing, not just slop:
/// demand_of floors a running job's remaining estimate at this value. An
/// interleaved event can settle a task arbitrarily close to its expiry
/// boundary; without the floor its demand then collapses toward zero, the
/// recomputed rate strands the last ulp-sized sliver of estimate hundreds
/// of seconds away, and once there every work_at() read rounds to the
/// estimate exactly (zero demand, no escape). The floor keeps such a task
/// moving so its exact-target boundary fires promptly. 1e-6 sits comfortably
/// between ulp(est) for trace-scale estimates (~1e-9) and the smallest
/// meaningful work quantum.
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

double TaskView::remaining_estimate_raw() const noexcept {
  return std::max(job->scheduler_estimate - work_done, 0.0);
}

double TaskView::remaining_estimate_current() const noexcept {
  return std::max(est_current - work_done, 0.0);
}

double TaskView::remaining_deadline(sim::SimTime now) const noexcept {
  return job->absolute_deadline() - now;
}

TimeSharedExecutor::TimeSharedExecutor(sim::Simulator& simulator,
                                       const Cluster& cluster,
                                       ShareModelConfig config)
    : sim_(simulator), cluster_(cluster), config_(config) {
  config_.validate();
  const auto n = static_cast<std::size_t>(cluster_.size());
  node_jobs_.resize(n);
  node_tasks_.resize(n);
  node_cache_.resize(n);
  multi_pos_.assign(n, -1);
  node_demand_.assign(n, 0.0);
  node_touched_serial_.assign(n, 0);
  node_demand_serial_.assign(n, 0);
  last_settle_ = sim_.now();
}

void TimeSharedExecutor::set_completion_handler(CompletionHandler handler) {
  on_completion_ = std::move(handler);
}

void TimeSharedExecutor::set_overrun_handler(OverrunHandler handler) {
  on_overrun_ = std::move(handler);
}

void TimeSharedExecutor::set_kill_handler(KillHandler handler) {
  on_kill_ = std::move(handler);
}

void TimeSharedExecutor::start(const Job& job, std::vector<NodeId> nodes) {
  job.validate();
  LIBRISK_CHECK(static_cast<int>(nodes.size()) == job.num_procs,
                "job " << job.id << " needs " << job.num_procs << " nodes, got "
                       << nodes.size());
  LIBRISK_CHECK(!is_running(job.id), "job " << job.id << " already running");
  std::unordered_set<NodeId> distinct(nodes.begin(), nodes.end());
  LIBRISK_CHECK(distinct.size() == nodes.size(),
                "job " << job.id << " assigned duplicate nodes");
  for (const NodeId n : nodes)
    LIBRISK_CHECK(n >= 0 && n < cluster_.size(), "node " << n << " out of range");

  Task task;
  task.job = &job;
  task.nodes = std::move(nodes);
  task.start_time = sim_.now();
  task.est_current = job.scheduler_estimate;
  task.actual_total = job.actual_runtime;
  task.anchor_time = sim_.now();
  const auto [it, inserted] = tasks_.emplace(job.id, std::move(task));
  LIBRISK_CHECK(inserted, "job " << job.id << " already running");
  for (const NodeId n : it->second.nodes) {
    node_jobs_[n].push_back(job.id);
    node_tasks_[n].push_back(&it->second);
    if (node_tasks_[n].size() == 2) multi_add(n);
    start_touched_.push_back(n);
  }
  if (trace_ != nullptr)
    trace_->job_started(sim_.now(), job.id, it->second.nodes.front(),
                        job.num_procs, job.scheduler_estimate);
  ++epoch_;
  pending_start_realloc_ = true;
  settle_and_reschedule();
}

void TimeSharedExecutor::sync() { settle_and_reschedule(); }

bool TimeSharedExecutor::is_running(JobId id) const noexcept {
  return tasks_.contains(id);
}

const std::vector<JobId>& TimeSharedExecutor::node_jobs(NodeId node) const {
  LIBRISK_CHECK(node >= 0 && node < cluster_.size(), "node " << node << " out of range");
  return node_jobs_[node];
}

TaskView TimeSharedExecutor::view(JobId id) const {
  const auto it = tasks_.find(id);
  LIBRISK_CHECK(it != tasks_.end(), "job " << id << " not running");
  const Task& t = it->second;
  TaskView v;
  v.job = t.job;
  v.nodes = t.nodes;
  v.start_time = t.start_time;
  v.work_done = work_at(t, sim_.now());
  v.est_original = t.job->scheduler_estimate;
  v.est_current = t.est_current;
  v.overrun_bumps = t.bumps;
  v.rate = t.rate;
  return v;
}

double TimeSharedExecutor::node_total_share(NodeId node, EstimateKind kind) const {
  if (kind == EstimateKind::Raw)
    return node_state(node, kStateSharesRaw).total_share_raw;
  return node_state(node, kStateSharesCurrent).total_share_current;
}

double TimeSharedExecutor::node_available_capacity(NodeId node) const {
  return node_state(node, kStateCapacity).available_capacity;
}

const NodeStateView& TimeSharedExecutor::node_state(NodeId node,
                                                    NodeStateParts parts) const {
  LIBRISK_CHECK(node >= 0 && node < cluster_.size(), "node " << node << " out of range");
  NodeCache& cache = node_cache_[node];
  // An empty node's view is time-independent, so epoch agreement alone
  // keeps it fresh across submissions; a populated view also pins the
  // instant it was computed at (remaining deadlines shrink with time) and
  // must already hold every requested gated part.
  const bool fresh = cache.epoch == epoch_ &&
                     (cache.view.empty() || cache.at == sim_.now()) &&
                     (parts & ~cache.view.parts) == 0;
  if (!fresh) rebuild_node_cache(node, cache, parts);
  return cache.view;
}

void TimeSharedExecutor::rebuild_node_cache(NodeId node, NodeCache& cache,
                                            NodeStateParts parts) const {
  const sim::SimTime now = sim_.now();
  const double speed = cluster_.speed_factor(node);
  const std::vector<Task*>& residents = node_tasks_[node];
  const std::size_t n = residents.size();

  // Parts already built at this same (epoch, instant) stay valid, so fold
  // them into the rebuild rather than dropping them; an empty node's view
  // is so cheap that it always carries every part.
  const bool base_fresh = cache.epoch == epoch_ && (n == 0 || cache.at == now);
  NodeStateParts want = parts | (base_fresh ? cache.view.parts : 0);
  if ((want & kStateRiskAggregates) != 0) want |= kStateSharesCurrent;
  if (n == 0) want = kStateAll;
  const bool want_raw = (want & kStateSharesRaw) != 0;
  const bool want_cur = (want & kStateSharesCurrent) != 0;
  const bool want_cap = (want & kStateCapacity) != 0;
  const bool want_agg = (want & kStateRiskAggregates) != 0;
  const bool equal_share = config_.mode == ExecutionMode::EqualShare;

  cache.jobs.resize(n);
  cache.remaining_raw.resize(n);
  cache.remaining_current.resize(n);
  cache.remaining_deadline.resize(n);
  cache.rate.resize(n);
  cache.share_raw.resize(n);
  cache.share_current.resize(n);
  double total_raw = 0.0;
  double total_current = 0.0;
  double demand = 0.0;
  double min_deadline = sim::kTimeInfinity;
  core::ResidentRiskAggregates agg;
  for (std::size_t i = 0; i < n; ++i) {
    const Task* t = residents[i];
    const double work = work_at(*t, now);
    const double rem_raw = std::max(t->job->scheduler_estimate - work, 0.0);
    const double rem_current = std::max(t->est_current - work, 0.0);
    const double rem_deadline = t->job->absolute_deadline() - now;
    cache.jobs[i] = t->job;
    cache.remaining_raw[i] = rem_raw;
    cache.remaining_current[i] = rem_current;
    cache.remaining_deadline[i] = rem_deadline;
    cache.rate[i] = t->rate;
    min_deadline = std::min(min_deadline, rem_deadline);
    if (want_raw) {
      const double share = required_share(rem_raw, rem_deadline,
                                          config_.deadline_clamp, speed);
      cache.share_raw[i] = share;
      total_raw += share;
    }
    if (want_cur) {
      const double share = required_share(rem_current, rem_deadline,
                                          config_.deadline_clamp, speed);
      cache.share_current[i] = share;
      total_current += share;
      if (want_agg)
        agg.fold(share, rem_current, rem_deadline, t->rate,
                 config_.deadline_clamp);
    }
    if (want_cap && !equal_share)
      demand += std::min(1.0, demand_of(*t, now) / speed);
  }
  agg.computed = want_agg;

  cache.epoch = epoch_;
  cache.at = now;
  cache.view.jobs = cache.jobs;
  cache.view.remaining_raw = cache.remaining_raw;
  cache.view.remaining_current = cache.remaining_current;
  cache.view.remaining_deadline = cache.remaining_deadline;
  cache.view.rate = cache.rate;
  cache.view.share_raw = cache.share_raw;
  cache.view.share_current = cache.share_current;
  cache.view.total_share_raw = total_raw;
  cache.view.total_share_current = total_current;
  // EqualShare has no notion of reserved shares: a non-empty node is fully
  // used. Pacing modes report the *guaranteed* leftover (1 - total demand)
  // even when work-conserving, because spare redistribution is a bonus a
  // new job cannot rely on.
  cache.view.available_capacity = equal_share
                                      ? (n == 0 ? 1.0 : 0.0)
                                      : std::max(0.0, 1.0 - demand);
  cache.view.min_remaining_deadline = min_deadline;
  cache.view.risk_current = agg;
  cache.view.parts = want;
}

double TimeSharedExecutor::demand_of(const Task& task, sim::SimTime now) const {
  // EqualShare (GridSim time sharing): every resident job weighs the same,
  // so allocation collapses to capacity / n.
  if (config_.mode == ExecutionMode::EqualShare) return 1.0;
  // ProportionalPacing: demand at reference speed (per-node speed applied
  // by the caller), capped at 1 — a job cannot consume more than a whole
  // node, however far behind its deadline it is. The floor at kWorkEpsilon
  // (see above) is bitwise inert except within the final epsilon of the
  // estimate, where it prevents the demand from collapsing.
  const double rem_work =
      std::max(task.est_current - work_at(task, now), kWorkEpsilon);
  return std::min(1.0, required_share(rem_work,
                                      task.job->absolute_deadline() - now,
                                      config_.deadline_clamp));
}

void TimeSharedExecutor::reanchor(Task& task, sim::SimTime now) {
  if (now == task.anchor_time) return;
  const double progress = task.rate * (now - task.anchor_time);
  delivered_ += progress * static_cast<double>(task.job->num_procs);
  if (timeline_ != nullptr) {
    for (const NodeId n : task.nodes)
      timeline_->record(TimelineSegment{task.job->id, n, task.anchor_time, now,
                                        task.rate});
  }
  task.anchor_work += progress;
  task.anchor_time = now;
  ++stats_.reanchors;
}

void TimeSharedExecutor::refresh_boundary(Task& task) {
  // Boundaries target the exact work limits. Ties resolve to completion, so
  // a job whose estimate exactly equals its runtime completes rather than
  // bumping. The max with 0 guards against the instant-of-boundary rounding
  // case producing an event in the past.
  const double to_completion =
      (task.actual_total - task.anchor_work) / task.rate;
  const double to_expiry = (task.est_current - task.anchor_work) / task.rate;
  if (to_expiry < to_completion) {
    task.boundary = task.anchor_time + std::max(to_expiry, 0.0);
    task.boundary_is_expiry = true;
  } else {
    task.boundary = task.anchor_time + std::max(to_completion, 0.0);
    task.boundary_is_expiry = false;
  }
}

void TimeSharedExecutor::remove_task_from_nodes(Task& task) {
  for (const NodeId n : task.nodes) {
    auto& jobs = node_jobs_[n];
    jobs.erase(std::remove(jobs.begin(), jobs.end(), task.job->id), jobs.end());
    auto& tasks = node_tasks_[n];
    tasks.erase(std::remove(tasks.begin(), tasks.end(), &task), tasks.end());
    if (multi_pos_[n] >= 0 && tasks.size() < 2) multi_remove(n);
  }
  if (task.heap_pos >= 0) bheap_remove(&task);
}

void TimeSharedExecutor::touch_node(NodeId node) {
  if (node_touched_serial_[static_cast<std::size_t>(node)] == settle_serial_)
    return;
  node_touched_serial_[static_cast<std::size_t>(node)] = settle_serial_;
  touched_nodes_.push_back(node);
}

void TimeSharedExecutor::mark_dirty(Task* task) {
  if (task->dirty_serial == settle_serial_) return;
  task->dirty_serial = settle_serial_;
  dirty_.push_back(task);
}

void TimeSharedExecutor::multi_add(NodeId node) {
  multi_pos_[static_cast<std::size_t>(node)] =
      static_cast<std::int32_t>(multi_nodes_.size());
  multi_nodes_.push_back(node);
}

void TimeSharedExecutor::multi_remove(NodeId node) {
  const std::int32_t pos = multi_pos_[static_cast<std::size_t>(node)];
  const NodeId last = multi_nodes_.back();
  multi_nodes_[static_cast<std::size_t>(pos)] = last;
  multi_pos_[static_cast<std::size_t>(last)] = pos;
  multi_nodes_.pop_back();
  multi_pos_[static_cast<std::size_t>(node)] = -1;
}

bool TimeSharedExecutor::boundary_before(const Task* a, const Task* b) noexcept {
  if (a->boundary != b->boundary) return a->boundary < b->boundary;
  return a->job->id < b->job->id;  // deterministic tie order
}

void TimeSharedExecutor::bheap_sift_up(std::size_t pos) {
  Task* const t = bheap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!boundary_before(t, bheap_[parent])) break;
    bheap_[pos] = bheap_[parent];
    bheap_[pos]->heap_pos = static_cast<std::int32_t>(pos);
    pos = parent;
  }
  bheap_[pos] = t;
  t->heap_pos = static_cast<std::int32_t>(pos);
}

void TimeSharedExecutor::bheap_sift_down(std::size_t pos) {
  Task* const t = bheap_[pos];
  const std::size_t n = bheap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && boundary_before(bheap_[child + 1], bheap_[child]))
      ++child;
    if (!boundary_before(bheap_[child], t)) break;
    bheap_[pos] = bheap_[child];
    bheap_[pos]->heap_pos = static_cast<std::int32_t>(pos);
    pos = child;
  }
  bheap_[pos] = t;
  t->heap_pos = static_cast<std::int32_t>(pos);
}

void TimeSharedExecutor::bheap_update(Task* task) {
  ++stats_.boundary_updates;
  if (task->heap_pos < 0) {
    task->heap_pos = static_cast<std::int32_t>(bheap_.size());
    bheap_.push_back(task);
    bheap_sift_up(static_cast<std::size_t>(task->heap_pos));
    return;
  }
  // The boundary may have moved either way (a bump pushes it later, a rate
  // increase pulls it earlier): sift both directions.
  const auto pos = static_cast<std::size_t>(task->heap_pos);
  bheap_sift_up(pos);
  bheap_sift_down(static_cast<std::size_t>(task->heap_pos));
}

void TimeSharedExecutor::bheap_remove(Task* task) {
  const auto pos = static_cast<std::size_t>(task->heap_pos);
  const std::size_t last = bheap_.size() - 1;
  if (pos != last) {
    bheap_[pos] = bheap_[last];
    bheap_[pos]->heap_pos = static_cast<std::int32_t>(pos);
    bheap_.pop_back();
    // The moved-in entry may belong either above or below its new spot; at
    // most one of the two sifts moves it.
    bheap_sift_down(pos);
    bheap_sift_up(pos);
  } else {
    bheap_.pop_back();
  }
  task->heap_pos = -1;
}

void TimeSharedExecutor::attach(const Hooks& hooks) {
  trace_ = hooks.trace;
  obs::Telemetry* telemetry = hooks.telemetry;
  profiler_ = telemetry != nullptr ? &telemetry->profiler() : nullptr;
  if (telemetry == nullptr) return;

  obs::Registry& reg = telemetry->registry();
  reg.counter_fn("kernel_settles", "settle passes (events + syncs)",
                 [this] { return stats_.settles; });
  reg.counter_fn("kernel_global_recomputes",
                 "settles that recomputed every task",
                 [this] { return stats_.global_recomputes; });
  reg.counter_fn("kernel_tasks_recomputed", "demand/rate recomputations",
                 [this] { return stats_.tasks_recomputed; });
  reg.counter_fn("kernel_tasks_skipped",
                 "resident-settle pairs left untouched",
                 [this] { return stats_.tasks_skipped; });
  reg.counter_fn("kernel_reanchors", "work anchors advanced (rate changes)",
                 [this] { return stats_.reanchors; });
  reg.counter_fn("kernel_boundary_updates",
                 "boundary-heap insert/move operations",
                 [this] { return stats_.boundary_updates; });
  reg.gauge_fn("running_jobs", "jobs currently executing",
               [this] { return static_cast<double>(tasks_.size()); });
  reg.gauge_fn("delivered_node_seconds",
               "reference-work delivered so far",
               [this] { return delivered_; });

  // Per-tick kernel effort deltas (work done per sampling interval).
  obs::Series& series = telemetry->add_series(
      "kernel", {"time", "settles", "recomputed", "skipped", "reanchors",
                 "boundary_updates", "running"});
  telemetry->add_sampler([this, &series, prev = KernelStats{}](
                             sim::SimTime now) mutable {
    series.append({now, static_cast<double>(stats_.settles - prev.settles),
                   static_cast<double>(stats_.tasks_recomputed -
                                       prev.tasks_recomputed),
                   static_cast<double>(stats_.tasks_skipped -
                                       prev.tasks_skipped),
                   static_cast<double>(stats_.reanchors - prev.reanchors),
                   static_cast<double>(stats_.boundary_updates -
                                       prev.boundary_updates),
                   static_cast<double>(tasks_.size())});
    prev = stats_;
  });
}

void TimeSharedExecutor::settle_and_reschedule() {
  obs::ScopedPhase phase(profiler_, obs::Phase::Settle);
  if (config_.legacy_kernel) {
    settle_and_reschedule_legacy();
  } else {
    settle_and_reschedule_incremental();
  }
}

void TimeSharedExecutor::settle_and_reschedule_incremental() {
  const sim::SimTime now = sim_.now();
  LIBRISK_CHECK(now - last_settle_ >= -sim::kTimeEpsilon,
                "executor clock ran backwards");
  const bool time_advanced = now > last_settle_ && !tasks_.empty();
  last_settle_ = now;
  ++stats_.settles;
  const std::uint64_t serial = ++settle_serial_;
  touched_nodes_.clear();
  dirty_.clear();
  due_.clear();

  // Nodes that gained a resident since the last settle (start() records
  // them; usually the settle directly after the start consumes them).
  for (const NodeId n : start_touched_) touch_node(n);
  start_touched_.clear();

  // Phase 1: pop due boundaries off the heap and classify them. Processing
  // order is ascending job id, matching the legacy full scan.
  while (!bheap_.empty() && bheap_.front()->boundary <= now) {
    Task* const t = bheap_.front();
    bheap_remove(t);
    due_.push_back(t);
  }
  std::sort(due_.begin(), due_.end(),
            [](const Task* a, const Task* b) { return a->job->id < b->job->id; });

  auto completed = std::move(completed_buf_);
  auto killed = std::move(killed_buf_);
  auto overruns = std::move(overrun_buf_);
  completed.clear();
  killed.clear();
  overruns.clear();

  const bool pacing = config_.mode == ExecutionMode::ProportionalPacing;
  for (Task* const t : due_) {
    reanchor(*t, now);
    if (!t->boundary_is_expiry) {
      completed.push_back(t->job);
      for (const NodeId n : t->nodes) touch_node(n);
      remove_task_from_nodes(*t);
      tasks_.erase(t->job->id);
      continue;
    }
    if (config_.kill_at_estimate) {
      LIBRISK_CHECK(on_kill_ != nullptr,
                    "kill_at_estimate requires a kill handler");
      killed.push_back(Killed{t->job, t->anchor_work});
      for (const NodeId n : t->nodes) touch_node(n);
      remove_task_from_nodes(*t);
      tasks_.erase(t->job->id);
      continue;
    }
    // User under-estimate: the scheduler observes the job still running
    // and extends its estimate (DESIGN.md §3.2). One bump always clears
    // the boundary because the increment is a fraction of the original
    // estimate, which is >= 1 s by Job::validate.
    t->est_current += config_.overrun_bump_fraction * t->job->scheduler_estimate;
    ++t->bumps;
    t->bump_pending = true;
    overruns.push_back(Overrun{t->job, t->bumps, t->est_current});
    LIBRISK_LOG(Debug) << "job " << t->job->id << " overran estimate (bump "
                       << t->bumps << ") at t=" << now;
    // The bumped job's demand changed; under pacing that shifts the
    // allocation of every co-resident. Under EqualShare only its own
    // boundary moves.
    mark_dirty(t);
    if (pacing)
      for (const NodeId n : t->nodes) touch_node(n);
  }

  // Invalidate the node caches whenever the observable state changed: work
  // advanced, membership shrank, or an overrun bump re-estimated a job (any
  // of which also moves rates, recomputed below).
  const bool changed = time_advanced || !completed.empty() || !killed.empty() ||
                       !overruns.empty();
  if (changed) ++epoch_;

  // Phase 2: build the dirty set — the tasks whose demand or allocation can
  // have changed since their last recompute (docs/MODEL.md gives the
  // argument for why this set is exhaustive).
  const bool work_conserving =
      config_.work_conserving || config_.mode == ExecutionMode::EqualShare;
  const bool demand_drift = pacing && time_advanced;
  if (demand_drift && !work_conserving) {
    // Strict pacing: every allocation tracks its own drifting demand, so
    // time advance dirties everything. Fall back to a global recompute.
    ++stats_.global_recomputes;
    for (auto& [id, t] : tasks_) mark_dirty(&t);
  } else {
    if (demand_drift) {
      // Work-conserving pacing: an isolated task's allocation is exactly
      // 1.0 whatever its demand (d / (d + 0) == 1), so drift only matters
      // where residents contend — the multi-tenant nodes.
      for (const NodeId n : multi_nodes_)
        for (Task* const t : node_tasks_[n]) mark_dirty(t);
    }
    for (const NodeId n : touched_nodes_)
      for (Task* const t : node_tasks_[n]) mark_dirty(t);
  }
  std::sort(dirty_.begin(), dirty_.end(),
            [](const Task* a, const Task* b) { return a->job->id < b->job->id; });
  stats_.tasks_recomputed += dirty_.size();
  stats_.tasks_skipped += tasks_.size() - dirty_.size();

  // Fresh demand sums for every node a dirty task touches (other entries of
  // node_demand_ are stale, but only these are read below). Per-node
  // accumulation order is resident start order, same as the legacy kernel.
  demand_nodes_.clear();
  for (const Task* const t : dirty_)
    for (const NodeId n : t->nodes) {
      if (node_demand_serial_[static_cast<std::size_t>(n)] == serial) continue;
      node_demand_serial_[static_cast<std::size_t>(n)] = serial;
      demand_nodes_.push_back(n);
    }
  for (const NodeId n : demand_nodes_) {
    const double speed = cluster_.speed_factor(n);
    double sum = 0.0;
    for (const Task* const t : node_tasks_[n])
      sum += std::min(1.0, demand_of(*t, now) / speed);
    node_demand_[static_cast<std::size_t>(n)] = sum;
  }

  for (Task* const t : dirty_) {
    const double d = demand_of(*t, now);
    double rate = sim::kTimeInfinity;
    for (const NodeId n : t->nodes) {
      const double speed = cluster_.speed_factor(n);
      const double demand_here = std::min(1.0, d / speed);
      const double alloc =
          allocate_one(demand_here,
                       node_demand_[static_cast<std::size_t>(n)] - demand_here,
                       work_conserving);
      rate = std::min(rate, alloc * speed);
    }
    LIBRISK_CHECK(rate > 0.0 && rate < sim::kTimeInfinity,
                  "job " << t->job->id << " has no execution rate (demand=" << d
                         << ", boundary=" << t->boundary << ", now=" << now
                         << ")");
    if (rate != t->rate) {
      reanchor(*t, now);
      t->rate = rate;
      refresh_boundary(*t);
      bheap_update(t);
    } else if (t->bump_pending) {
      refresh_boundary(*t);
      bheap_update(t);
    }
    t->bump_pending = false;
  }

  // Phase 3: keep exactly one pending boundary event, rescheduled only when
  // the heap minimum actually moved (the common case — a settle that
  // touched nothing near the minimum — keeps the event in place).
  const sim::SimTime next_boundary =
      bheap_.empty() ? sim::kTimeInfinity : bheap_.front()->boundary;
  if (next_boundary == sim::kTimeInfinity) {
    if (pending_boundary_.valid()) {
      sim_.cancel(pending_boundary_);
      pending_boundary_ = sim::EventId{};
    }
  } else if (!pending_boundary_.valid() ||
             pending_boundary_time_ != next_boundary) {
    if (pending_boundary_.valid()) sim_.cancel(pending_boundary_);
    pending_boundary_ = sim_.at(next_boundary, sim::EventPriority::Completion,
                                [this] {
                                  pending_boundary_ = sim::EventId{};
                                  settle_and_reschedule();
                                });
    pending_boundary_time_ = next_boundary;
  }

  // Trace: one ShareRealloc per settle that actually moved observable state
  // (membership, work, or a just-started job), not per sync() no-op.
  if (trace_ != nullptr && (changed || pending_start_realloc_) && !tasks_.empty())
    trace_->share_realloc(now, static_cast<int>(tasks_.size()));
  pending_start_realloc_ = false;

  notify_and_reclaim(completed, killed, overruns, now);
}

void TimeSharedExecutor::settle_and_reschedule_legacy() {
  const sim::SimTime now = sim_.now();
  LIBRISK_CHECK(now - last_settle_ >= -sim::kTimeEpsilon,
                "executor clock ran backwards");
  const bool time_advanced = now > last_settle_ && !tasks_.empty();
  last_settle_ = now;
  ++stats_.settles;
  ++stats_.global_recomputes;
  start_touched_.clear();  // a global recompute needs no touch tracking

  auto completed = std::move(completed_buf_);
  auto killed = std::move(killed_buf_);
  auto overruns = std::move(overrun_buf_);
  completed.clear();
  killed.clear();
  overruns.clear();

  // Phase 1: classify due boundaries by full scan (ascending job id, the
  // same processing order the incremental kernel sorts its due set into).
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    Task& t = it->second;
    if (t.boundary <= now) {
      reanchor(t, now);
      if (!t.boundary_is_expiry) {
        completed.push_back(t.job);
        remove_task_from_nodes(t);
        it = tasks_.erase(it);
        continue;
      }
      if (config_.kill_at_estimate) {
        LIBRISK_CHECK(on_kill_ != nullptr,
                      "kill_at_estimate requires a kill handler");
        killed.push_back(Killed{t.job, t.anchor_work});
        remove_task_from_nodes(t);
        it = tasks_.erase(it);
        continue;
      }
      t.est_current += config_.overrun_bump_fraction * t.job->scheduler_estimate;
      ++t.bumps;
      t.bump_pending = true;
      overruns.push_back(Overrun{t.job, t.bumps, t.est_current});
      LIBRISK_LOG(Debug) << "job " << t.job->id << " overran estimate (bump "
                         << t.bumps << ") at t=" << now;
    }
    ++it;
  }

  const bool changed = time_advanced || !completed.empty() || !killed.empty() ||
                       !overruns.empty();
  if (changed) ++epoch_;

  // Phase 2: recompute every demand and rate. Node-major accumulation in
  // resident start order — the same per-node summation order the
  // incremental kernel uses, so the two kernels agree bitwise.
  stats_.tasks_recomputed += tasks_.size();
  for (NodeId n = 0; n < cluster_.size(); ++n) {
    const double speed = cluster_.speed_factor(n);
    double sum = 0.0;
    for (const Task* const t : node_tasks_[static_cast<std::size_t>(n)])
      sum += std::min(1.0, demand_of(*t, now) / speed);
    node_demand_[static_cast<std::size_t>(n)] = sum;
  }
  const bool work_conserving =
      config_.work_conserving || config_.mode == ExecutionMode::EqualShare;
  sim::SimTime next_boundary = sim::kTimeInfinity;
  for (auto& [id, t] : tasks_) {
    const double d = demand_of(t, now);
    double rate = sim::kTimeInfinity;
    for (const NodeId n : t.nodes) {
      const double speed = cluster_.speed_factor(n);
      const double demand_here = std::min(1.0, d / speed);
      const double alloc =
          allocate_one(demand_here,
                       node_demand_[static_cast<std::size_t>(n)] - demand_here,
                       work_conserving);
      rate = std::min(rate, alloc * speed);
    }
    LIBRISK_CHECK(rate > 0.0 && rate < sim::kTimeInfinity,
                  "job " << id << " has no execution rate");
    if (rate != t.rate) {
      reanchor(t, now);
      t.rate = rate;
      refresh_boundary(t);
    } else if (t.bump_pending) {
      refresh_boundary(t);
    }
    t.bump_pending = false;
    next_boundary = std::min(next_boundary, t.boundary);
  }

  // Phase 3: cancel and reschedule the boundary event unconditionally (the
  // pre-incremental behavior; sequence numbers differ from the incremental
  // kernel but are unobservable — there is never more than one
  // Completion-priority event pending).
  if (pending_boundary_.valid()) {
    sim_.cancel(pending_boundary_);
    pending_boundary_ = sim::EventId{};
  }
  if (next_boundary < sim::kTimeInfinity) {
    pending_boundary_ = sim_.at(next_boundary, sim::EventPriority::Completion,
                                [this] {
                                  pending_boundary_ = sim::EventId{};
                                  settle_and_reschedule();
                                });
    pending_boundary_time_ = next_boundary;
  }

  if (trace_ != nullptr && (changed || pending_start_realloc_) && !tasks_.empty())
    trace_->share_realloc(now, static_cast<int>(tasks_.size()));
  pending_start_realloc_ = false;

  notify_and_reclaim(completed, killed, overruns, now);
}

void TimeSharedExecutor::notify_and_reclaim(std::vector<const Job*>& completed,
                                            std::vector<Killed>& killed,
                                            std::vector<Overrun>& overruns,
                                            sim::SimTime now) {
  // Phase 4: notify. Handlers run after internal state is consistent, so
  // they may call start()/sync() reentrantly (a nested settle swaps in the
  // then-empty member buffers and returns them before we reclaim). Trace
  // events fire immediately before the matching handler so reentrant starts
  // interleave in decision order.
  for (const Overrun& o : overruns) {
    if (trace_ != nullptr)
      trace_->job_overrun(now, o.job->id, o.bumps, o.est_current);
    if (on_overrun_) on_overrun_(*o.job, o.bumps);
  }
  for (const Killed& k : killed) {
    if (trace_ != nullptr) trace_->job_killed(now, k.job->id, k.work_done);
    on_kill_(*k.job, now);
  }
  for (const Job* const job : completed) {
    if (trace_ != nullptr)
      trace_->job_finished(now, job->id, now - job->absolute_deadline());
    if (on_completion_) on_completion_(*job, now);
  }
  completed.clear();
  killed.clear();
  overruns.clear();
  completed_buf_ = std::move(completed);
  killed_buf_ = std::move(killed);
  overrun_buf_ = std::move(overruns);
}

void TimeSharedExecutor::check_invariants() const {
  // Node lists and task node sets agree.
  std::size_t listed = 0;
  for (NodeId n = 0; n < cluster_.size(); ++n) {
    for (const JobId id : node_jobs_[static_cast<std::size_t>(n)]) {
      const auto it = tasks_.find(id);
      LIBRISK_CHECK(it != tasks_.end(), "node list references dead job " << id);
      const auto& nodes = it->second.nodes;
      LIBRISK_CHECK(std::find(nodes.begin(), nodes.end(), n) != nodes.end(),
                    "node list / task nodes disagree for job " << id);
      ++listed;
    }
  }
  std::size_t multi_expected = 0;
  for (NodeId n = 0; n < cluster_.size(); ++n) {
    const auto& ids = node_jobs_[static_cast<std::size_t>(n)];
    const auto& ptrs = node_tasks_[static_cast<std::size_t>(n)];
    LIBRISK_CHECK(ids.size() == ptrs.size(),
                  "node " << n << " id/task lists out of sync");
    for (std::size_t i = 0; i < ids.size(); ++i)
      LIBRISK_CHECK(ptrs[i]->job->id == ids[i],
                    "node " << n << " task pointer mismatch at slot " << i);
    const std::int32_t pos = multi_pos_[static_cast<std::size_t>(n)];
    LIBRISK_CHECK((ids.size() >= 2) == (pos >= 0),
                  "node " << n << " multi-tenant index out of date");
    if (pos >= 0) {
      LIBRISK_CHECK(static_cast<std::size_t>(pos) < multi_nodes_.size() &&
                        multi_nodes_[static_cast<std::size_t>(pos)] == n,
                    "node " << n << " multi-tenant position stale");
      ++multi_expected;
    }
  }
  LIBRISK_CHECK(multi_expected == multi_nodes_.size(),
                "multi-tenant node list out of sync");

  std::size_t expected = 0;
  std::size_t queued = 0;
  for (const auto& [id, task] : tasks_) {
    expected += task.nodes.size();
    const double work = work_at(task, last_settle_);
    LIBRISK_CHECK(work >= -kWorkEpsilon, "negative work for job " << id);
    LIBRISK_CHECK(work <= task.actual_total + 1.0,
                  "work far past completion for job " << id);
    LIBRISK_CHECK(task.rate >= 0.0, "negative rate");
    LIBRISK_CHECK(task.est_current >= task.job->scheduler_estimate - kWorkEpsilon,
                  "estimate shrank for job " << id);
    if (task.rate > 0.0) {
      // The boundary must be exactly what refresh_boundary would derive
      // from the anchor (it is never recomputed between rate changes).
      const double to_completion =
          (task.actual_total - task.anchor_work) / task.rate;
      const double to_expiry =
          (task.est_current - task.anchor_work) / task.rate;
      const bool expiry = to_expiry < to_completion;
      const sim::SimTime boundary =
          task.anchor_time + std::max(expiry ? to_expiry : to_completion, 0.0);
      LIBRISK_CHECK(task.boundary == boundary &&
                        task.boundary_is_expiry == expiry,
                    "stale boundary for job " << id);
    }
    if (task.heap_pos >= 0) {
      ++queued;
      LIBRISK_CHECK(!config_.legacy_kernel,
                    "legacy kernel must not use the boundary heap");
      LIBRISK_CHECK(static_cast<std::size_t>(task.heap_pos) < bheap_.size() &&
                        bheap_[static_cast<std::size_t>(task.heap_pos)] == &task,
                    "boundary-heap position stale for job " << id);
    } else {
      // Between settles every running task is queued (only mid-settle due
      // processing pops them); a rate of 0 means the task was started but
      // never settled, which cannot be observed from outside.
      LIBRISK_CHECK(config_.legacy_kernel || task.rate == 0.0,
                    "running job " << id << " missing from the boundary heap");
    }
  }
  LIBRISK_CHECK(listed == expected, "node lists and tasks out of sync");
  LIBRISK_CHECK(queued == bheap_.size(), "boundary heap size out of sync");
  for (std::size_t i = 1; i < bheap_.size(); ++i)
    LIBRISK_CHECK(!boundary_before(bheap_[i], bheap_[(i - 1) / 2]),
                  "boundary heap order violated at slot " << i);
}

}  // namespace librisk::cluster
