#include "cluster/timeshared.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/check.hpp"
#include "support/log.hpp"

namespace librisk::cluster {

namespace {
/// Work comparison slack, reference-seconds.
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

double TaskView::remaining_estimate_raw() const noexcept {
  return std::max(job->scheduler_estimate - work_done, 0.0);
}

double TaskView::remaining_estimate_current() const noexcept {
  return std::max(est_current - work_done, 0.0);
}

double TaskView::remaining_deadline(sim::SimTime now) const noexcept {
  return job->absolute_deadline() - now;
}

TimeSharedExecutor::TimeSharedExecutor(sim::Simulator& simulator,
                                       const Cluster& cluster,
                                       ShareModelConfig config)
    : sim_(simulator), cluster_(cluster), config_(config) {
  config_.validate();
  node_jobs_.resize(cluster_.size());
  node_tasks_.resize(cluster_.size());
  node_cache_.resize(cluster_.size());
  last_advance_ = sim_.now();
}

void TimeSharedExecutor::set_completion_handler(CompletionHandler handler) {
  on_completion_ = std::move(handler);
}

void TimeSharedExecutor::set_overrun_handler(OverrunHandler handler) {
  on_overrun_ = std::move(handler);
}

void TimeSharedExecutor::set_kill_handler(KillHandler handler) {
  on_kill_ = std::move(handler);
}

void TimeSharedExecutor::start(const Job& job, std::vector<NodeId> nodes) {
  job.validate();
  LIBRISK_CHECK(static_cast<int>(nodes.size()) == job.num_procs,
                "job " << job.id << " needs " << job.num_procs << " nodes, got "
                       << nodes.size());
  LIBRISK_CHECK(!is_running(job.id), "job " << job.id << " already running");
  std::unordered_set<NodeId> distinct(nodes.begin(), nodes.end());
  LIBRISK_CHECK(distinct.size() == nodes.size(),
                "job " << job.id << " assigned duplicate nodes");
  for (const NodeId n : nodes)
    LIBRISK_CHECK(n >= 0 && n < cluster_.size(), "node " << n << " out of range");

  Task task;
  task.job = &job;
  task.nodes = std::move(nodes);
  task.start_time = sim_.now();
  task.est_current = job.scheduler_estimate;
  task.actual_total = job.actual_runtime;
  const auto [it, inserted] = tasks_.emplace(job.id, std::move(task));
  LIBRISK_CHECK(inserted, "job " << job.id << " already running");
  for (const NodeId n : it->second.nodes) {
    node_jobs_[n].push_back(job.id);
    node_tasks_[n].push_back(&it->second);
  }
  if (trace_ != nullptr)
    trace_->job_started(sim_.now(), job.id, it->second.nodes.front(),
                        job.num_procs, job.scheduler_estimate);
  ++epoch_;
  pending_start_realloc_ = true;
  settle_and_reschedule();
}

void TimeSharedExecutor::sync() { settle_and_reschedule(); }

bool TimeSharedExecutor::is_running(JobId id) const noexcept {
  return tasks_.contains(id);
}

const std::vector<JobId>& TimeSharedExecutor::node_jobs(NodeId node) const {
  LIBRISK_CHECK(node >= 0 && node < cluster_.size(), "node " << node << " out of range");
  return node_jobs_[node];
}

TaskView TimeSharedExecutor::view(JobId id) const {
  const auto it = tasks_.find(id);
  LIBRISK_CHECK(it != tasks_.end(), "job " << id << " not running");
  const Task& t = it->second;
  TaskView v;
  v.job = t.job;
  v.nodes = t.nodes;
  v.start_time = t.start_time;
  v.work_done = t.work_done;
  v.est_original = t.job->scheduler_estimate;
  v.est_current = t.est_current;
  v.overrun_bumps = t.bumps;
  v.rate = t.rate;
  return v;
}

double TimeSharedExecutor::node_total_share(NodeId node, EstimateKind kind) const {
  const NodeStateView& state = node_state(node);
  return kind == EstimateKind::Raw ? state.total_share_raw
                                   : state.total_share_current;
}

double TimeSharedExecutor::node_available_capacity(NodeId node) const {
  return node_state(node).available_capacity;
}

const NodeStateView& TimeSharedExecutor::node_state(NodeId node) const {
  LIBRISK_CHECK(node >= 0 && node < cluster_.size(), "node " << node << " out of range");
  NodeCache& cache = node_cache_[node];
  // An empty node's view is time-independent, so epoch agreement alone
  // keeps it fresh across submissions; a populated view also pins the
  // instant it was computed at (remaining deadlines shrink with time).
  const bool fresh =
      cache.epoch == epoch_ &&
      (cache.view.residents.empty() || cache.at == sim_.now());
  if (!fresh) rebuild_node_cache(node, cache);
  return cache.view;
}

void TimeSharedExecutor::rebuild_node_cache(NodeId node, NodeCache& cache) const {
  const sim::SimTime now = sim_.now();
  const double speed = cluster_.speed_factor(node);
  const std::vector<const Task*>& residents = node_tasks_[node];

  cache.residents.clear();
  if (cache.residents.capacity() < residents.size())
    cache.residents.reserve(residents.size());
  double total_raw = 0.0;
  double total_current = 0.0;
  double demand = 0.0;
  double min_deadline = sim::kTimeInfinity;
  for (const Task* t : residents) {
    ResidentJobState r;
    r.job = t->job;
    r.remaining_raw = std::max(t->job->scheduler_estimate - t->work_done, 0.0);
    r.remaining_current = std::max(t->est_current - t->work_done, 0.0);
    r.remaining_deadline = t->job->absolute_deadline() - now;
    r.rate = t->rate;
    total_raw += required_share(r.remaining_raw, r.remaining_deadline,
                                config_.deadline_clamp, speed);
    total_current += required_share(r.remaining_current, r.remaining_deadline,
                                    config_.deadline_clamp, speed);
    demand += std::min(1.0, demand_of(*t) / speed);
    min_deadline = std::min(min_deadline, r.remaining_deadline);
    cache.residents.push_back(r);
  }

  cache.epoch = epoch_;
  cache.at = now;
  cache.view.residents = cache.residents;
  cache.view.total_share_raw = total_raw;
  cache.view.total_share_current = total_current;
  // EqualShare has no notion of reserved shares: a non-empty node is fully
  // used. Pacing modes report the *guaranteed* leftover (1 - total demand)
  // even when work-conserving, because spare redistribution is a bonus a
  // new job cannot rely on.
  cache.view.available_capacity = config_.mode == ExecutionMode::EqualShare
                                      ? (residents.empty() ? 1.0 : 0.0)
                                      : std::max(0.0, 1.0 - demand);
  cache.view.min_remaining_deadline = min_deadline;
}

double TimeSharedExecutor::demand_of(const Task& task) const {
  // EqualShare (GridSim time sharing): every resident job weighs the same,
  // so allocation collapses to capacity / n.
  if (config_.mode == ExecutionMode::EqualShare) return 1.0;
  // ProportionalPacing: demand at reference speed (per-node speed applied
  // by the caller), capped at 1 — a job cannot consume more than a whole
  // node, however far behind its deadline it is.
  const double rem_work = std::max(task.est_current - task.work_done, 0.0);
  return std::min(1.0, required_share(rem_work,
                                      task.job->absolute_deadline() - sim_.now(),
                                      config_.deadline_clamp));
}

bool TimeSharedExecutor::advance_to_now() {
  const sim::SimTime now = sim_.now();
  const double dt = now - last_advance_;
  LIBRISK_CHECK(dt >= -sim::kTimeEpsilon, "executor clock ran backwards");
  bool advanced = false;
  if (dt > 0.0) {
    for (auto& [id, task] : tasks_) {
      const double progress = task.rate * dt;
      task.work_done += progress;
      delivered_ += progress * static_cast<double>(task.job->num_procs);
      advanced = true;
      if (timeline_ != nullptr) {
        for (const NodeId n : task.nodes)
          timeline_->record(TimelineSegment{id, n, last_advance_, now, task.rate});
      }
    }
  }
  last_advance_ = now;
  return advanced;
}

void TimeSharedExecutor::complete(JobId id, Task& task) {
  for (const NodeId n : task.nodes) {
    auto& jobs = node_jobs_[n];
    jobs.erase(std::remove(jobs.begin(), jobs.end(), id), jobs.end());
    auto& tasks = node_tasks_[n];
    tasks.erase(std::remove(tasks.begin(), tasks.end(), &task), tasks.end());
  }
}

void TimeSharedExecutor::settle_and_reschedule() {
  const bool advanced = advance_to_now();
  const sim::SimTime now = sim_.now();

  // Phase 1: classify completions and estimate expiries at this instant.
  struct Killed {
    const Job* job;
    double work_done;
  };
  struct Overrun {
    const Job* job;
    int bumps;
    double est_current;
  };
  std::vector<const Job*> completed;
  std::vector<Killed> killed;
  std::vector<Overrun> overruns;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    Task& t = it->second;
    if (t.actual_total - t.work_done <= kWorkEpsilon) {
      completed.push_back(t.job);
      complete(it->first, t);
      it = tasks_.erase(it);
      continue;
    }
    if (t.est_current - t.work_done <= kWorkEpsilon) {
      if (config_.kill_at_estimate) {
        LIBRISK_CHECK(on_kill_ != nullptr,
                      "kill_at_estimate requires a kill handler");
        killed.push_back(Killed{t.job, t.work_done});
        complete(it->first, t);
        it = tasks_.erase(it);
        continue;
      }
      // User under-estimate: the scheduler observes the job still running
      // and extends its estimate (DESIGN.md §3.2). One bump always clears
      // the boundary because the increment is a fraction of the original
      // estimate, which is >= 1 s by Job::validate.
      t.est_current += config_.overrun_bump_fraction * t.job->scheduler_estimate;
      ++t.bumps;
      overruns.push_back(Overrun{t.job, t.bumps, t.est_current});
      LIBRISK_LOG(Debug) << "job " << t.job->id << " overran estimate (bump "
                         << t.bumps << ") at t=" << now;
    }
    ++it;
  }

  // Invalidate the node caches whenever the observable state changed: work
  // advanced, membership shrank, or an overrun bump re-estimated a job (any
  // of which also moves rates, recomputed below).
  const bool changed =
      advanced || !completed.empty() || !killed.empty() || !overruns.empty();
  if (changed) ++epoch_;

  // Phase 2: recompute demands and rates (piecewise-constant until the next
  // boundary).
  std::vector<double> node_demand(node_jobs_.size(), 0.0);
  for (auto& [id, task] : tasks_) {
    const double d = demand_of(task);
    for (const NodeId n : task.nodes)
      node_demand[n] += std::min(1.0, d / cluster_.speed_factor(n));
  }
  const bool work_conserving =
      config_.work_conserving || config_.mode == ExecutionMode::EqualShare;
  sim::SimTime next_boundary = sim::kTimeInfinity;
  for (auto& [id, task] : tasks_) {
    const double d = demand_of(task);
    double rate = sim::kTimeInfinity;
    for (const NodeId n : task.nodes) {
      const double speed = cluster_.speed_factor(n);
      const double demand_here = std::min(1.0, d / speed);
      const double alloc = allocate_one(demand_here, node_demand[n] - demand_here,
                                        work_conserving);
      rate = std::min(rate, alloc * speed);
    }
    LIBRISK_CHECK(rate > 0.0 && rate < sim::kTimeInfinity,
                  "job " << id << " has no execution rate");
    task.rate = rate;
    const double to_completion = (task.actual_total - task.work_done) / rate;
    const double to_expiry = (task.est_current - task.work_done) / rate;
    next_boundary = std::min(next_boundary, now + std::min(to_completion, to_expiry));
  }

  // Phase 3: keep exactly one pending boundary event.
  if (pending_boundary_.valid()) {
    sim_.cancel(pending_boundary_);
    pending_boundary_ = sim::EventId{};
  }
  if (next_boundary < sim::kTimeInfinity) {
    pending_boundary_ = sim_.at(next_boundary, sim::EventPriority::Completion,
                                [this] {
                                  pending_boundary_ = sim::EventId{};
                                  settle_and_reschedule();
                                });
  }

  // Trace: one ShareRealloc per settle that actually moved observable state
  // (membership, work, or a just-started job), not per sync() no-op.
  if (trace_ != nullptr && (changed || pending_start_realloc_) && !tasks_.empty())
    trace_->share_realloc(now, static_cast<int>(tasks_.size()));
  pending_start_realloc_ = false;

  // Phase 4: notify. Handlers run after internal state is consistent, so
  // they may call start()/sync() reentrantly. Trace events fire immediately
  // before the matching handler so reentrant starts interleave in decision
  // order.
  for (const auto& o : overruns) {
    if (trace_ != nullptr)
      trace_->job_overrun(now, o.job->id, o.bumps, o.est_current);
    if (on_overrun_) on_overrun_(*o.job, o.bumps);
  }
  for (const Killed& k : killed) {
    if (trace_ != nullptr) trace_->job_killed(now, k.job->id, k.work_done);
    on_kill_(*k.job, now);
  }
  for (const Job* job : completed) {
    if (trace_ != nullptr)
      trace_->job_finished(now, job->id, now - job->absolute_deadline());
    if (on_completion_) on_completion_(*job, now);
  }
}

void TimeSharedExecutor::check_invariants() const {
  // Node lists and task node sets agree.
  std::size_t listed = 0;
  for (NodeId n = 0; n < cluster_.size(); ++n) {
    for (const JobId id : node_jobs_[n]) {
      const auto it = tasks_.find(id);
      LIBRISK_CHECK(it != tasks_.end(), "node list references dead job " << id);
      const auto& nodes = it->second.nodes;
      LIBRISK_CHECK(std::find(nodes.begin(), nodes.end(), n) != nodes.end(),
                    "node list / task nodes disagree for job " << id);
      ++listed;
    }
  }
  for (NodeId n = 0; n < cluster_.size(); ++n) {
    const auto& ids = node_jobs_[n];
    const auto& ptrs = node_tasks_[n];
    LIBRISK_CHECK(ids.size() == ptrs.size(),
                  "node " << n << " id/task lists out of sync");
    for (std::size_t i = 0; i < ids.size(); ++i)
      LIBRISK_CHECK(ptrs[i]->job->id == ids[i],
                    "node " << n << " task pointer mismatch at slot " << i);
  }
  std::size_t expected = 0;
  for (const auto& [id, task] : tasks_) {
    expected += task.nodes.size();
    LIBRISK_CHECK(task.work_done >= -kWorkEpsilon, "negative work_done");
    LIBRISK_CHECK(task.work_done <= task.actual_total + 1.0,
                  "work_done far past completion for job " << id);
    LIBRISK_CHECK(task.rate >= 0.0, "negative rate");
    LIBRISK_CHECK(task.est_current >= task.job->scheduler_estimate - kWorkEpsilon,
                  "estimate shrank for job " << id);
  }
  LIBRISK_CHECK(listed == expected, "node lists and tasks out of sync");
}

}  // namespace librisk::cluster
