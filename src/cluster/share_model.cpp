#include "cluster/share_model.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace librisk::cluster {

void ShareModelConfig::validate() const {
  LIBRISK_CHECK(deadline_clamp > 0.0, "deadline_clamp must be positive");
  LIBRISK_CHECK(overrun_bump_fraction > 0.0 && overrun_bump_fraction <= 1.0,
                "overrun_bump_fraction must be in (0, 1]");
}

double required_share(double remaining_work, double remaining_deadline,
                      double deadline_clamp, double speed) noexcept {
  if (remaining_work <= 0.0) return 0.0;
  const double horizon = std::max(remaining_deadline, deadline_clamp);
  return remaining_work / (horizon * speed);
}

double total_share(std::span<const double> shares) noexcept {
  double sum = 0.0;
  for (const double s : shares) sum += s;
  return sum;
}

std::vector<double> allocate_capacity(std::span<const double> demands,
                                      bool work_conserving) noexcept {
  std::vector<double> out(demands.size(), 0.0);
  const double sum = total_share(demands);
  if (sum <= 0.0) return out;
  const double denom = work_conserving ? sum : std::max(sum, 1.0);
  for (std::size_t i = 0; i < demands.size(); ++i) out[i] = demands[i] / denom;
  return out;
}

double allocate_one(double demand, double other_total, bool work_conserving) noexcept {
  if (demand <= 0.0) return 0.0;
  const double sum = demand + std::max(other_total, 0.0);
  const double denom = work_conserving ? sum : std::max(sum, 1.0);
  return demand / denom;
}

}  // namespace librisk::cluster
