#include "cluster/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace librisk::cluster {

void TimelineRecorder::record(const TimelineSegment& segment) {
  LIBRISK_CHECK(segment.end >= segment.begin, "segment ends before it begins");
  LIBRISK_CHECK(segment.rate >= 0.0, "negative execution rate");
  if (segment.duration() <= 0.0) return;
  segments_.push_back(segment);
}

double TimelineRecorder::job_work(std::int64_t job_id) const noexcept {
  double work = 0.0;
  for (const TimelineSegment& s : segments_)
    if (s.job_id == job_id) work += s.work();
  return work;
}

double TimelineRecorder::node_busy_seconds(int node) const noexcept {
  double busy = 0.0;
  for (const TimelineSegment& s : segments_)
    if (s.node == node && s.rate > 0.0) busy += s.duration();
  return busy;
}

sim::SimTime TimelineRecorder::horizon() const noexcept {
  sim::SimTime h = 0.0;
  for (const TimelineSegment& s : segments_) h = std::max(h, s.end);
  return h;
}

namespace {
char job_symbol(std::int64_t id) {
  constexpr char kSymbols[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kSymbols[static_cast<std::size_t>(id % 62)];
}
}  // namespace

std::string TimelineRecorder::render_gantt(int node_count, int columns) const {
  LIBRISK_CHECK(node_count > 0, "need at least one node row");
  LIBRISK_CHECK(columns > 0, "need at least one column");
  const sim::SimTime end = horizon();
  std::ostringstream os;
  if (end <= 0.0) {
    os << "(empty timeline)\n";
    return os.str();
  }
  const double bucket = end / columns;

  for (int node = 0; node < node_count; ++node) {
    // For each bucket, find the job with the largest overlap on this node.
    std::vector<std::int64_t> owner(columns, -1);
    std::vector<double> best(columns, 0.0);
    std::vector<bool> shared(columns, false);
    for (const TimelineSegment& s : segments_) {
      if (s.node != node || s.rate <= 0.0) continue;
      const int first = std::clamp(static_cast<int>(s.begin / bucket), 0, columns - 1);
      const int last = std::clamp(static_cast<int>((s.end - 1e-9) / bucket), 0,
                                  columns - 1);
      for (int c = first; c <= last; ++c) {
        const double lo = std::max<double>(s.begin, c * bucket);
        const double hi = std::min<double>(s.end, (c + 1) * bucket);
        const double overlap = std::max(0.0, hi - lo);
        if (overlap <= 0.0) continue;
        if (owner[c] == -1 || owner[c] == s.job_id) {
          owner[c] = s.job_id;
          best[c] = std::max(best[c], overlap);
        } else {
          shared[c] = true;
        }
      }
    }
    os << "node " << node << " |";
    for (int c = 0; c < columns; ++c) {
      if (owner[c] == -1) os << '.';
      else if (shared[c]) os << '#';
      else os << job_symbol(owner[c]);
    }
    os << "|\n";
  }
  os << "          0";
  const std::string label = " t=" + std::to_string(static_cast<long long>(end)) + "s";
  if (columns > static_cast<int>(label.size()))
    os << std::string(columns - label.size(), ' ') << label;
  os << '\n';
  return os.str();
}

}  // namespace librisk::cluster
