// Cluster description: a set of single-CPU computation nodes with SPEC
// ratings (the SDSC SP2 is 128 nodes rated 168). Runtimes are expressed at
// a reference rating; node speed = rating / reference_rating.
#pragma once

#include <string>
#include <vector>

namespace librisk::cluster {

using NodeId = int;

struct NodeSpec {
  NodeId id = 0;
  /// SPEC rating of this node's processor.
  double rating = 1.0;
};

class Cluster {
 public:
  /// Heterogeneous cluster from explicit specs; reference_rating is the
  /// rating runtimes are normalised to.
  Cluster(std::vector<NodeSpec> nodes, double reference_rating);

  /// Homogeneous cluster of `count` nodes at `rating`.
  static Cluster homogeneous(int count, double rating);

  /// The paper's testbed: 128 nodes, SPEC rating 168.
  static Cluster sdsc_sp2();

  [[nodiscard]] int size() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const NodeSpec& node(NodeId id) const;
  [[nodiscard]] const std::vector<NodeSpec>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] double reference_rating() const noexcept { return reference_rating_; }

  /// Wall-clock speed factor of a node: reference-seconds executed per
  /// second when a job holds the whole node.
  [[nodiscard]] double speed_factor(NodeId id) const;

  /// Minimum speed factor across the cluster (bounds a job's best-case
  /// runtime when node placement is unknown).
  [[nodiscard]] double min_speed_factor() const noexcept;
  [[nodiscard]] double max_speed_factor() const noexcept;

  /// Sum of speed factors across all nodes: the cluster's aggregate
  /// processing capacity in reference-node units (a homogeneous cluster's
  /// total equals its size). The admission gateway scales its fast-reject
  /// share budget by this.
  [[nodiscard]] double total_speed_factor() const noexcept;

 private:
  std::vector<NodeSpec> nodes_;
  double reference_rating_;
};

}  // namespace librisk::cluster
