#include "cluster/spaceshared.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"
#include "support/check.hpp"

namespace librisk::cluster {

SpaceSharedExecutor::SpaceSharedExecutor(sim::Simulator& simulator,
                                         const Cluster& cluster,
                                         SpaceSharedConfig config)
    : sim_(simulator), cluster_(cluster), config_(config) {
  node_owner_.assign(cluster_.size(), -1);
  free_count_ = cluster_.size();
}

void SpaceSharedExecutor::set_completion_handler(CompletionHandler handler) {
  on_completion_ = std::move(handler);
}

void SpaceSharedExecutor::set_kill_handler(KillHandler handler) {
  on_kill_ = std::move(handler);
}

void SpaceSharedExecutor::start(const workload::Job& job, std::vector<NodeId> nodes) {
  job.validate();
  LIBRISK_CHECK(static_cast<int>(nodes.size()) == job.num_procs,
                "job " << job.id << " needs " << job.num_procs << " nodes");
  LIBRISK_CHECK(!is_running(job.id), "job " << job.id << " already running");
  // Validate every node before mutating any state, so a failed start
  // leaves the executor untouched.
  double slowest = sim::kTimeInfinity;
  for (const NodeId n : nodes) {
    LIBRISK_CHECK(n >= 0 && n < cluster_.size(), "node out of range");
    LIBRISK_CHECK(node_owner_[n] == -1, "node " << n << " is busy");
    slowest = std::min(slowest, cluster_.speed_factor(n));
  }
  for (const NodeId n : nodes) node_owner_[n] = job.id;
  free_count_ -= job.num_procs;

  Running r;
  r.job = &job;
  r.nodes = std::move(nodes);
  r.start_time = sim_.now();
  r.will_be_killed =
      config_.kill_at_estimate && job.scheduler_estimate < job.actual_runtime;
  if (r.will_be_killed)
    LIBRISK_CHECK(on_kill_ != nullptr, "kill_at_estimate requires a kill handler");
  const double held_for =
      r.will_be_killed ? job.scheduler_estimate : job.actual_runtime;
  r.finish_time = sim_.now() + held_for / slowest;
  const std::int64_t id = job.id;
  if (trace_ != nullptr)
    trace_->job_started(sim_.now(), id, r.nodes.front(), job.num_procs,
                        job.scheduler_estimate);
  running_.emplace(id, r);

  sim_.at(r.finish_time, sim::EventPriority::Completion, [this, id] {
    const auto it = running_.find(id);
    LIBRISK_CHECK(it != running_.end(), "completion for unknown job " << id);
    const Running done = it->second;
    for (const NodeId n : done.nodes) node_owner_[n] = -1;
    free_count_ += done.job->num_procs;
    if (timeline_ != nullptr) {
      for (const NodeId n : done.nodes) {
        timeline_->record(TimelineSegment{done.job->id, n, done.start_time,
                                          done.finish_time,
                                          cluster_.speed_factor(n)});
      }
    }
    busy_accumulated_ += (done.finish_time - done.start_time) *
                         static_cast<double>(done.job->num_procs);
    running_.erase(it);
    if (done.will_be_killed) {
      // Killed exactly at its estimate, so that is the work delivered.
      if (trace_ != nullptr)
        trace_->job_killed(sim_.now(), done.job->id, done.job->scheduler_estimate);
      on_kill_(*done.job, sim_.now());
    } else {
      if (trace_ != nullptr)
        trace_->job_finished(sim_.now(), done.job->id,
                             sim_.now() - done.job->absolute_deadline());
      if (on_completion_) on_completion_(*done.job, sim_.now());
    }
  });
}

bool SpaceSharedExecutor::is_free(NodeId node) const {
  LIBRISK_CHECK(node >= 0 && node < cluster_.size(), "node out of range");
  return node_owner_[node] == -1;
}

std::vector<NodeId> SpaceSharedExecutor::take_free_nodes(int count) const {
  LIBRISK_CHECK(count >= 0 && count <= free_count_,
                "requested " << count << " free nodes, have " << free_count_);
  std::vector<NodeId> out;
  out.reserve(count);
  for (NodeId n = 0; n < cluster_.size() && static_cast<int>(out.size()) < count; ++n)
    if (node_owner_[n] == -1) out.push_back(n);
  return out;
}

bool SpaceSharedExecutor::is_running(std::int64_t job_id) const noexcept {
  return running_.contains(job_id);
}

double SpaceSharedExecutor::busy_node_seconds(sim::SimTime now) const noexcept {
  double busy = busy_accumulated_;
  for (const auto& [id, r] : running_)
    busy += (std::min(now, r.finish_time) - r.start_time) *
            static_cast<double>(r.job->num_procs);
  return busy;
}

void SpaceSharedExecutor::attach(const Hooks& hooks) {
  trace_ = hooks.trace;
  obs::Telemetry* telemetry = hooks.telemetry;
  if (telemetry == nullptr) return;
  obs::Registry& reg = telemetry->registry();
  reg.gauge_fn("free_nodes", "nodes with no resident job",
               [this] { return static_cast<double>(free_count_); });
  reg.gauge_fn("running_jobs", "jobs currently executing",
               [this] { return static_cast<double>(running_.size()); });
  obs::Series& series = telemetry->add_series(
      "cluster", {"time", "free_nodes", "running_jobs", "busy_node_seconds",
                  "utilization"});
  telemetry->add_sampler([this, &series](sim::SimTime now) {
    const double size = static_cast<double>(cluster_.size());
    const double busy = busy_node_seconds(now);
    series.append({now, static_cast<double>(free_count_),
                   static_cast<double>(running_.size()), busy,
                   now > 0.0 ? busy / (size * now) : 0.0});
  });
}

}  // namespace librisk::cluster
