// Time-shared node executor: runs gang jobs under the deadline-based
// proportional processor-share model (the Libra/LibraRisk substrate).
//
// Execution model (DESIGN.md §3.2):
//  - Every running job i demands share s_i = required_share(remaining
//    scheduler-estimated work, remaining deadline) on each of its nodes.
//  - Each node allocates capacity a_ij = s_i / Σ s (work-conserving) and a
//    gang job progresses at the minimum allocated rate across its nodes.
//  - Rates are piecewise-constant between events; every arrival, completion
//    and estimate-expiry triggers a settle and the executor keeps exactly
//    one pending "next boundary" event.
//  - When a job exhausts its estimate without completing (user under-
//    estimate), the scheduler's estimate is bumped by overrun_bump_fraction
//    of the original and an overrun notification fires. This divergence
//    between the *raw estimate* (what Libra believes, Eq. 1) and the
//    *current estimate* (what the node is actually contending with) is the
//    phenomenon the paper's risk metric manages.
//
// Execution kernel (docs/MODEL.md "incremental execution kernel"): a settle
// does work proportional to what the triggering event touched, not to the
// resident population. Work is never stepped forward; each task carries an
// anchor (anchor_work, anchor_time) and its work at any instant is
// anchor_work + rate * (t - anchor_time), re-anchored only when the rate
// changes. Completion/expiry instants live in an intrusive binary min-heap
// keyed by absolute boundary time, so due tasks pop in O(log n) and the
// next-boundary event reschedules only when the minimum actually moves.
// Only the dirty set — residents of nodes whose membership or contention
// changed — gets its demand and rate recomputed; everyone else is skipped
// (KernelStats counts both). settle_and_reschedule_legacy() retains the
// whole-resident-set recompute on the same anchored arithmetic as a
// differential oracle (ShareModelConfig::legacy_kernel); the two produce
// bit-identical decision traces.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/share_model.hpp"
#include "cluster/timeline.hpp"
#include "core/risk.hpp"  // header-only value types (ResidentRiskAggregates)
#include "sim/simulator.hpp"
#include "support/hooks.hpp"
#include "trace/recorder.hpp"
#include "workload/job.hpp"

namespace librisk::obs {
class Telemetry;
class PhaseProfiler;
}

namespace librisk::cluster {

using workload::Job;
using JobId = std::int64_t;

/// Read-only snapshot of a running job, as observable by an admission
/// control (no field leaks the job's actual runtime).
struct TaskView {
  const Job* job = nullptr;
  std::vector<NodeId> nodes;
  sim::SimTime start_time = 0.0;
  double work_done = 0.0;       ///< reference-seconds executed so far
  double est_original = 0.0;    ///< scheduler estimate at start
  double est_current = 0.0;     ///< estimate including overrun bumps
  int overrun_bumps = 0;
  double rate = 0.0;            ///< current ref-seconds per second

  /// Remaining work by the *raw* user/scheduler estimate (Libra's belief,
  /// Eq. 1): zero once the job has run past its estimate.
  [[nodiscard]] double remaining_estimate_raw() const noexcept;
  /// Remaining work by the current (bumped) estimate — always > 0 while
  /// running.
  [[nodiscard]] double remaining_estimate_current() const noexcept;
  /// Seconds until the job's absolute deadline (negative if past it).
  [[nodiscard]] double remaining_deadline(sim::SimTime now) const noexcept;
};

/// Selector for which derived parts of a NodeStateView a caller needs.
/// The base snapshot (jobs, remaining work/deadline, rates,
/// min_remaining_deadline) is always built; each flag below gates one
/// divide-per-resident family so policies that never read a part never pay
/// for it. Flags accumulate in the cache: requesting a part another caller
/// already built this instant is free.
using NodeStateParts = std::uint8_t;
inline constexpr NodeStateParts kStateSharesRaw = 1;      ///< share_raw[] + total_share_raw
inline constexpr NodeStateParts kStateSharesCurrent = 2;  ///< share_current[] + total_share_current
inline constexpr NodeStateParts kStateCapacity = 4;       ///< available_capacity
inline constexpr NodeStateParts kStateRiskAggregates = 8; ///< risk_current (implies SharesCurrent)
inline constexpr NodeStateParts kStateAll = 15;

/// Cached per-node aggregates + resident snapshot in structure-of-arrays
/// layout: index i across every span describes the i-th resident (in start
/// order), so the σ-risk assessment and share summation stream over
/// contiguous doubles instead of hopping through an array of structs.
/// Spans alias the executor's internal cache: they stay valid until the
/// executor's state next changes (start/completion/overrun/kill/sync that
/// advances work) — i.e. for the duration of one admission scan, not across
/// submissions.
struct NodeStateView {
  std::span<const Job* const> jobs;             ///< in start order
  std::span<const double> remaining_raw;        ///< raw-estimate remaining work (Eq. 1 belief)
  std::span<const double> remaining_current;    ///< overrun-bumped remaining work
  std::span<const double> remaining_deadline;   ///< seconds to absolute deadline (may be < 0)
  std::span<const double> rate;                 ///< current ref-seconds per second
  std::span<const double> share_raw;            ///< required_share of remaining_raw [SharesRaw]
  std::span<const double> share_current;        ///< required_share of remaining_current [SharesCurrent]
  double total_share_raw = 0.0;      ///< == node_total_share(EstimateKind::Raw) [SharesRaw]
  double total_share_current = 0.0;  ///< == node_total_share(EstimateKind::Current) [SharesCurrent]
  double available_capacity = 1.0;   ///< == node_available_capacity() [Capacity]
  double min_remaining_deadline = 0.0;  ///< +inf when the node is empty
  /// Left-fold of the CurrentRate σ-risk resident terms in start order
  /// (share_current / observed rate), ready for core::assess_nodes'
  /// O(1)-per-node aggregate path. [RiskAggregates]
  core::ResidentRiskAggregates risk_current;
  NodeStateParts parts = 0;  ///< which gated parts above are populated

  [[nodiscard]] std::size_t count() const noexcept { return jobs.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs.empty(); }
};

/// Execution-kernel effort counters, AdmissionStats-style: cumulative over
/// the executor's lifetime, cheap enough to keep always-on. The skip ratio
/// (tasks_skipped vs tasks_recomputed) is the incremental kernel's win; the
/// legacy kernel reports every settle as a global recompute with no skips.
struct KernelStats {
  std::uint64_t settles = 0;           ///< settle passes (events + syncs)
  std::uint64_t global_recomputes = 0; ///< settles that recomputed every task
  std::uint64_t tasks_recomputed = 0;  ///< demand/rate recomputations
  std::uint64_t tasks_skipped = 0;     ///< resident-settle pairs left untouched
  std::uint64_t reanchors = 0;         ///< work anchors advanced (rate changes)
  std::uint64_t boundary_updates = 0;  ///< boundary-heap insert/move operations

  /// Derived views shared by every stats surface (CLI, diagnose, telemetry)
  /// so the arithmetic lives in exactly one place. All are 0 when the
  /// denominator is 0 (space-shared policies never drive this executor).
  [[nodiscard]] double recomputes_per_settle() const noexcept {
    return settles > 0 ? static_cast<double>(tasks_recomputed) /
                             static_cast<double>(settles)
                       : 0.0;
  }
  /// Fraction (%) of resident-settle pairs the dirty-set pass left
  /// untouched — the incremental kernel's win.
  [[nodiscard]] double skip_pct() const noexcept {
    const std::uint64_t touched = tasks_recomputed + tasks_skipped;
    return touched > 0 ? 100.0 * static_cast<double>(tasks_skipped) /
                             static_cast<double>(touched)
                       : 0.0;
  }
};

class TimeSharedExecutor {
 public:
  using CompletionHandler = std::function<void(const Job&, sim::SimTime finish)>;
  using OverrunHandler = std::function<void(const Job&, int bumps)>;
  using KillHandler = std::function<void(const Job&, sim::SimTime when)>;

  TimeSharedExecutor(sim::Simulator& simulator, const Cluster& cluster,
                     ShareModelConfig config = {});

  /// Completion callback (fires once per job, at its finish instant, after
  /// the executor has removed it from its nodes).
  void set_completion_handler(CompletionHandler handler);
  /// Optional: estimate-expiry callback.
  void set_overrun_handler(OverrunHandler handler);
  /// Required when config.kill_at_estimate is set: fires instead of the
  /// overrun bump when a job exhausts its estimate (the job is removed).
  void set_kill_handler(KillHandler handler);

  /// Optional: stream execution segments into `recorder` (nullptr to stop).
  /// The recorder must outlive the executor or the detach call. Segments
  /// are emitted per constant-rate stretch (anchor to anchor), so they are
  /// coarser than one-per-event but tile each job's execution exactly.
  void set_timeline_recorder(TimelineRecorder* recorder) noexcept {
    timeline_ = recorder;
  }

  /// Attaches the optional observation hooks (support/hooks.hpp) as one
  /// value. A trace recorder receives lifecycle events
  /// (start/finish/kill/overrun/realloc; docs/TRACING.md). A telemetry hub
  /// (docs/OBSERVABILITY.md) gets the kernel effort counters as pull
  /// metrics, a per-tick "kernel" delta series, and settle passes timed as
  /// the `settle` phase. Both are borrowed and must outlive the executor.
  /// Null members detach (telemetry metric registrations are permanent).
  void attach(const Hooks& hooks);

  /// Starts `job` now on the given distinct nodes (job.num_procs of them).
  /// The caller (admission control) retains ownership of the Job, which
  /// must outlive completion.
  void start(const Job& job, std::vector<NodeId> nodes);

  /// Settles rates/boundaries at simulator time (call before inspecting
  /// views mid-simulation; completion events do this automatically).
  void sync();

  // ---- observation API (used by admission controls and tests) ----
  [[nodiscard]] std::size_t running_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool is_running(JobId id) const noexcept;
  /// Jobs currently on a node, in start order.
  [[nodiscard]] const std::vector<JobId>& node_jobs(NodeId node) const;
  [[nodiscard]] TaskView view(JobId id) const;
  /// Total demanded share on a node under the raw-estimate belief
  /// (Libra's Eq. 2) or the current-estimate reality.
  enum class EstimateKind { Raw, Current };
  [[nodiscard]] double node_total_share(NodeId node, EstimateKind kind) const;
  /// Fraction of the node's capacity not currently allocated to jobs
  /// (always 0 in work-conserving modes, which use everything).
  [[nodiscard]] double node_available_capacity(NodeId node) const;
  /// Resident snapshot + aggregates for one node, served from a per-node
  /// cache invalidated by the state epoch (below) and, for non-empty nodes,
  /// by simulation time. Each requested part is computed at most once per
  /// admission scan (parts accumulate in the cache); empty nodes stay
  /// cached across submissions until a start touches them. Call sync()
  /// first mid-simulation, like the other views.
  [[nodiscard]] const NodeStateView& node_state(
      NodeId node, NodeStateParts parts = kStateAll) const;
  /// Monotonic counter bumped whenever observable execution state changes
  /// (start, completion, overrun bump, kill, or work advancing under sync).
  /// Snapshot it to detect staleness of previously read views.
  [[nodiscard]] std::uint64_t state_epoch() const noexcept { return epoch_; }

  /// Reference-work delivered so far, for utilization accounting.
  [[nodiscard]] double delivered_node_seconds() const noexcept { return delivered_; }
  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] const ShareModelConfig& config() const noexcept { return config_; }
  /// Cumulative execution-kernel effort counters.
  [[nodiscard]] const KernelStats& kernel_stats() const noexcept { return stats_; }

  /// Validates internal invariants (tests / failure injection); throws
  /// CheckError on violation.
  void check_invariants() const;

 private:
  struct Task {
    const Job* job;
    std::vector<NodeId> nodes;
    sim::SimTime start_time;
    double est_current;
    double actual_total;
    double rate = 0.0;
    int bumps = 0;
    /// Anchored lazy work: work at time t is anchor_work + rate *
    /// (t - anchor_time) for t since the anchor. The anchor advances only
    /// when the rate changes (exact under piecewise-constant rates), so
    /// unaffected tasks cost nothing per settle.
    double anchor_work = 0.0;
    sim::SimTime anchor_time = 0.0;
    /// Absolute instant of the next completion-or-expiry (min of the two);
    /// the boundary-heap key. Invariant under unchanged rate by
    /// construction: derived from the anchor, not from "now".
    sim::SimTime boundary = sim::kTimeInfinity;
    bool boundary_is_expiry = false;
    /// Overrun bump this settle: boundary must refresh even if the rate
    /// comes out bitwise-unchanged.
    bool bump_pending = false;
    std::int32_t heap_pos = -1;      ///< boundary-heap slot, -1 = not queued
    std::uint64_t dirty_serial = 0;  ///< settle serial when last marked dirty
  };
  struct Killed {
    const Job* job;
    double work_done;
  };
  struct Overrun {
    const Job* job;
    int bumps;
    double est_current;
  };

  void settle_and_reschedule();
  void settle_and_reschedule_incremental();
  void settle_and_reschedule_legacy();

  /// Canonical lazy-work read; every consumer goes through this one
  /// expression so both kernels share bit-identical arithmetic.
  [[nodiscard]] double work_at(const Task& task, sim::SimTime now) const noexcept {
    return task.anchor_work + task.rate * (now - task.anchor_time);
  }
  /// Moves the anchor to `now`, crediting delivered work and emitting the
  /// closed constant-rate timeline segment. No-op when already anchored at
  /// `now`; the anchor update matches work_at(now) bitwise.
  void reanchor(Task& task, sim::SimTime now);
  /// Recomputes boundary/boundary_is_expiry from the anchor (rate must be
  /// set). Ties resolve to completion, like the legacy classification
  /// order.
  void refresh_boundary(Task& task);
  [[nodiscard]] double demand_of(const Task& task, sim::SimTime now) const;
  void remove_task_from_nodes(Task& task);
  void notify_and_reclaim(std::vector<const Job*>& completed,
                          std::vector<Killed>& killed,
                          std::vector<Overrun>& overruns, sim::SimTime now);

  // Dirty-set bookkeeping (incremental kernel).
  void touch_node(NodeId node);
  void mark_dirty(Task* task);
  void multi_add(NodeId node);
  void multi_remove(NodeId node);

  // Intrusive binary min-heap of running tasks keyed by (boundary, job id).
  [[nodiscard]] static bool boundary_before(const Task* a, const Task* b) noexcept;
  void bheap_sift_up(std::size_t pos);
  void bheap_sift_down(std::size_t pos);
  void bheap_update(Task* task);
  void bheap_remove(Task* task);

  /// Lazily rebuilt per-node admission view (see node_state()). SoA
  /// columns are grow-only storage the view's spans alias.
  struct NodeCache {
    std::uint64_t epoch = 0;  ///< 0 = never built (epoch_ starts at 1)
    sim::SimTime at = 0.0;
    std::vector<const Job*> jobs;
    std::vector<double> remaining_raw;
    std::vector<double> remaining_current;
    std::vector<double> remaining_deadline;
    std::vector<double> rate;
    std::vector<double> share_raw;
    std::vector<double> share_current;
    NodeStateView view;
  };
  void rebuild_node_cache(NodeId node, NodeCache& cache,
                          NodeStateParts parts) const;

  sim::Simulator& sim_;
  const Cluster& cluster_;
  ShareModelConfig config_;
  CompletionHandler on_completion_;
  OverrunHandler on_overrun_;
  KillHandler on_kill_;

  std::map<JobId, Task> tasks_;  // ordered => deterministic iteration
  std::vector<std::vector<JobId>> node_jobs_;
  /// Parallel to node_jobs_: direct Task pointers (std::map nodes are
  /// stable), so per-node scans skip the map lookups.
  std::vector<std::vector<Task*>> node_tasks_;
  std::uint64_t epoch_ = 1;
  mutable std::vector<NodeCache> node_cache_;
  sim::SimTime last_settle_ = 0.0;
  sim::EventId pending_boundary_{};
  sim::SimTime pending_boundary_time_ = 0.0;
  double delivered_ = 0.0;
  TimelineRecorder* timeline_ = nullptr;
  trace::Recorder* trace_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;  ///< borrowed via attach()
  /// Makes the settle pass after a start() emit a ShareRealloc even though
  /// the start itself (not the settle) changed the membership.
  bool pending_start_realloc_ = false;

  KernelStats stats_;
  std::uint64_t settle_serial_ = 0;
  std::vector<Task*> bheap_;            ///< boundary min-heap (incremental)
  /// Nodes with >= 2 residents (the only ones where work-conserving pacing
  /// rates drift with time), with a per-node position index for O(1)
  /// membership updates.
  std::vector<NodeId> multi_nodes_;
  std::vector<std::int32_t> multi_pos_;
  /// Per-settle workspaces (member-owned so steady-state settles allocate
  /// nothing; serial stamps replace clearing).
  std::vector<double> node_demand_;
  std::vector<std::uint64_t> node_touched_serial_;
  std::vector<std::uint64_t> node_demand_serial_;
  std::vector<NodeId> touched_nodes_;
  std::vector<NodeId> demand_nodes_;
  std::vector<NodeId> start_touched_;   ///< nodes gaining a task since last settle
  std::vector<Task*> due_;
  std::vector<Task*> dirty_;
  std::vector<const Job*> completed_buf_;
  std::vector<Killed> killed_buf_;
  std::vector<Overrun> overrun_buf_;
};

}  // namespace librisk::cluster
