// Space-shared node executor: each node runs at most one job at a time,
// held exclusively until completion (the EDF substrate; paper Section 4:
// "EDF executes only a single job on a processor at any time").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/timeline.hpp"
#include "sim/simulator.hpp"
#include "support/hooks.hpp"
#include "trace/recorder.hpp"
#include "workload/job.hpp"

namespace librisk::obs {
class Telemetry;
}

namespace librisk::cluster {

struct SpaceSharedConfig {
  /// Kill-at-limit policy: a job is terminated when its estimate elapses
  /// (see ShareModelConfig::kill_at_estimate). Requires a kill handler.
  bool kill_at_estimate = false;
};

class SpaceSharedExecutor {
 public:
  using CompletionHandler =
      std::function<void(const workload::Job&, sim::SimTime finish)>;
  using KillHandler = std::function<void(const workload::Job&, sim::SimTime when)>;

  SpaceSharedExecutor(sim::Simulator& simulator, const Cluster& cluster,
                      SpaceSharedConfig config = {});

  void set_completion_handler(CompletionHandler handler);
  /// Required when config.kill_at_estimate is set.
  void set_kill_handler(KillHandler handler);

  /// Optional: record execution segments (one per node, emitted at the
  /// job's completion). The recorder must outlive the executor.
  void set_timeline_recorder(TimelineRecorder* recorder) noexcept {
    timeline_ = recorder;
  }

  /// Attaches the optional observation hooks (support/hooks.hpp) as one
  /// value. A trace recorder receives start/finish/kill events
  /// (docs/TRACING.md); a telemetry hub (docs/OBSERVABILITY.md) gets
  /// occupancy gauges and a per-tick "cluster" series. Both are borrowed
  /// and must outlive the executor.
  void attach(const Hooks& hooks);

  /// Starts `job` now on the given free nodes; it holds them exclusively
  /// for actual_runtime / min(speed factor) seconds.
  void start(const workload::Job& job, std::vector<NodeId> nodes);

  [[nodiscard]] int free_count() const noexcept { return free_count_; }
  [[nodiscard]] bool is_free(NodeId node) const;
  /// The lowest-numbered `count` free nodes; count must be <= free_count().
  [[nodiscard]] std::vector<NodeId> take_free_nodes(int count) const;
  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }
  [[nodiscard]] bool is_running(std::int64_t job_id) const noexcept;

  /// Busy node-seconds delivered so far, for utilization accounting.
  [[nodiscard]] double busy_node_seconds(sim::SimTime now) const noexcept;

  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }

 private:
  struct Running {
    const workload::Job* job;
    std::vector<NodeId> nodes;
    sim::SimTime start_time;
    sim::SimTime finish_time;
    bool will_be_killed = false;
  };

  sim::Simulator& sim_;
  const Cluster& cluster_;
  SpaceSharedConfig config_;
  CompletionHandler on_completion_;
  KillHandler on_kill_;
  std::vector<std::int64_t> node_owner_;  // -1 == free
  std::map<std::int64_t, Running> running_;
  int free_count_ = 0;
  double busy_accumulated_ = 0.0;
  TimelineRecorder* timeline_ = nullptr;
  trace::Recorder* trace_ = nullptr;
};

}  // namespace librisk::cluster
