#include "cluster/cluster.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace librisk::cluster {

Cluster::Cluster(std::vector<NodeSpec> nodes, double reference_rating)
    : nodes_(std::move(nodes)), reference_rating_(reference_rating) {
  LIBRISK_CHECK(!nodes_.empty(), "cluster needs at least one node");
  LIBRISK_CHECK(reference_rating_ > 0.0, "reference rating must be positive");
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    LIBRISK_CHECK(nodes_[i].id == i, "node ids must be dense 0..n-1");
    LIBRISK_CHECK(nodes_[i].rating > 0.0, "node rating must be positive");
  }
}

Cluster Cluster::homogeneous(int count, double rating) {
  LIBRISK_CHECK(count > 0, "node count must be positive");
  std::vector<NodeSpec> nodes;
  nodes.reserve(count);
  for (int i = 0; i < count; ++i) nodes.push_back(NodeSpec{i, rating});
  return Cluster(std::move(nodes), rating);
}

Cluster Cluster::sdsc_sp2() { return homogeneous(128, 168.0); }

const NodeSpec& Cluster::node(NodeId id) const {
  LIBRISK_CHECK(id >= 0 && id < size(), "node id " << id << " out of range");
  return nodes_[id];
}

double Cluster::speed_factor(NodeId id) const {
  return node(id).rating / reference_rating_;
}

double Cluster::min_speed_factor() const noexcept {
  double m = nodes_.front().rating;
  for (const auto& n : nodes_) m = std::min(m, n.rating);
  return m / reference_rating_;
}

double Cluster::max_speed_factor() const noexcept {
  double m = nodes_.front().rating;
  for (const auto& n : nodes_) m = std::max(m, n.rating);
  return m / reference_rating_;
}

double Cluster::total_speed_factor() const noexcept {
  double sum = 0.0;
  for (const auto& n : nodes_) sum += n.rating;
  return sum / reference_rating_;
}

}  // namespace librisk::cluster
