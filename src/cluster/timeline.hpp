// Execution-timeline recording: who ran where, when, and at what rate.
//
// Executors optionally stream execution segments into a TimelineRecorder;
// the recorder can verify conservation (work integrates to runtimes) and
// render an ASCII Gantt chart (examples/gantt.cpp). Recording is off unless
// a recorder is attached, so simulations pay nothing by default.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace librisk::cluster {

/// One piecewise-constant execution interval of a job on a node.
struct TimelineSegment {
  std::int64_t job_id = 0;
  int node = 0;
  sim::SimTime begin = 0.0;
  sim::SimTime end = 0.0;
  double rate = 0.0;  ///< reference-seconds per second during the interval

  [[nodiscard]] double duration() const noexcept { return end - begin; }
  [[nodiscard]] double work() const noexcept { return rate * duration(); }
};

class TimelineRecorder {
 public:
  /// Appends a segment (zero-duration segments are dropped).
  void record(const TimelineSegment& segment);

  [[nodiscard]] const std::vector<TimelineSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }

  /// Total recorded work (reference-seconds) for one job across all nodes.
  [[nodiscard]] double job_work(std::int64_t job_id) const noexcept;
  /// Busy time of one node (the union is not computed — segments on a node
  /// may overlap under time sharing; this sums durations).
  [[nodiscard]] double node_busy_seconds(int node) const noexcept;
  /// Latest segment end (the recorded horizon).
  [[nodiscard]] sim::SimTime horizon() const noexcept;

  /// Renders an ASCII Gantt chart: one row per node, `columns` time buckets
  /// wide. A cell shows '.' when idle, the job's symbol (id mod 62 as
  /// [0-9a-zA-Z]) when one job dominates the bucket, '#' when several
  /// share it.
  [[nodiscard]] std::string render_gantt(int node_count, int columns = 100) const;

 private:
  std::vector<TimelineSegment> segments_;
};

}  // namespace librisk::cluster
