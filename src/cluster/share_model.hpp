// The deadline-based proportional processor-share model (paper Eq. 1-2).
//
// A job with remaining work W (reference-seconds) and remaining deadline D
// (wall seconds) requires share s = W / D of a reference-speed processor
// (Eq. 1). This file holds the pure share arithmetic used both by the
// time-shared executor (reality) and by the admission controls (belief /
// prediction), so the two can never drift apart accidentally.
#pragma once

#include <span>
#include <vector>

namespace librisk::cluster {

/// How a time-shared node divides its capacity among resident jobs.
enum class ExecutionMode {
  /// Strict Libra pacing (default): each job runs at exactly its required
  /// share (deadline-proportional), scaled down only when demands exceed
  /// capacity. "The new job starts execution immediately based on its
  /// allocated share" — paper Section 3.1.
  ProportionalPacing,
  /// GridSim-style time sharing ablation: capacity split *equally* among
  /// resident jobs (processor sharing), ignoring shares.
  EqualShare,
};

struct ShareModelConfig {
  ExecutionMode mode = ExecutionMode::ProportionalPacing;
  /// Remaining deadlines are clamped below at this many seconds when
  /// computing shares, so a job at or past its deadline demands a huge but
  /// finite share (capped at a whole node by the executor) instead of
  /// dividing by zero. Must be small relative to deadlines or pacing
  /// under-allocates the final stretch of healthy jobs. [cal]
  double deadline_clamp = 1.0;
  /// When a running job exhausts its estimate without finishing, the
  /// scheduler re-estimates the remaining work as this fraction of the
  /// original estimate (repeatedly). Models "the RMS observes the job is
  /// still running". [cal]
  double overrun_bump_fraction = 0.10;
  /// Kill-at-limit policy: terminate a job the moment it exhausts its
  /// estimate instead of letting it overrun (what the real SDSC SP2 did —
  /// the reason its trace shows a spike at estimate == runtime). Off by
  /// default: the paper's simulation lets jobs run to completion.
  bool kill_at_estimate = false;
  /// ProportionalPacing only. When true (default), spare capacity is
  /// redistributed proportionally to demands, so jobs run ahead of their
  /// deadline pace when the node has headroom — this is what lets a job
  /// whose user under-estimated the runtime absorb the overrun before its
  /// deadline. When false, nodes run each job at exactly its required share
  /// (strict pacing: every job finishes right at its deadline, and any
  /// overrun is fatal). EqualShare mode is inherently work-conserving.
  bool work_conserving = true;
  /// Differential-testing switch: route every settle through the retained
  /// whole-resident-set recompute (settle_and_reschedule_legacy) instead of
  /// the incremental dirty-set kernel. Decisions are bit-identical either
  /// way (tests/test_kernel_equivalence.cpp holds the two to byte-identical
  /// .lrt traces); the legacy path exists as that test's oracle and as the
  /// baseline leg of bench/micro_kernel.
  bool legacy_kernel = false;

  void validate() const;
};

/// Required share of a processor with speed factor `speed` (reference-
/// seconds per wall second): W / (max(D, clamp) * speed), floored at 0.
/// Deliberately *not* capped at 1: a result above 1 means the job cannot
/// meet its deadline on this node, which the admission tests (Eq. 2) must
/// see. Executors cap the value at the node's capacity when allocating.
[[nodiscard]] double required_share(double remaining_work, double remaining_deadline,
                                    double deadline_clamp, double speed = 1.0) noexcept;

/// Eq. 2: total share demanded on a node.
[[nodiscard]] double total_share(std::span<const double> shares) noexcept;

/// Capacity actually allocated to each demand on one node (fractions of the
/// node). Work-conserving: a_i = s_i / max(sum, 1) plus the proportional
/// spare, which collapses to a_i = s_i / sum (the node is never idle while
/// work remains). Non-work-conserving: a_i = s_i / max(sum, 1).
[[nodiscard]] std::vector<double> allocate_capacity(std::span<const double> demands,
                                                    bool work_conserving) noexcept;

/// Allocation a single demand would receive on a node where the other
/// demands sum to `other_total` (avoids building vectors in hot paths).
[[nodiscard]] double allocate_one(double demand, double other_total,
                                  bool work_conserving) noexcept;

}  // namespace librisk::cluster
