// Federated multi-cluster admission: K independent AdmissionEngine shards
// behind one Router.
//
// Each shard is a complete owning-mode engine — its own cluster (any node
// count / SPEC ratings), simulator, collector and scheduler stack — so a
// federation run is exactly K standalone cluster simulations plus a
// deterministic assignment of jobs to shards. Jobs stream in globally
// ordered by submit time; per job the Federation (1) advances every shard
// to the job's submit time (the *route barrier* — shards step in parallel
// on a thread pool, each mutating only its own state), (2) snapshots
// per-shard load from the shards' obs pull-metric registries, (3) asks the
// Router for a shard, and (4) submits eagerly, returning the shard index
// with the engine's own AdmissionOutcome.
//
// Determinism: the barrier makes per-shard stepping a pure function of the
// jobs previously routed to that shard (docs/MODEL.md §"engine stepping"),
// views are read only after the barrier joins, and all routing state
// advances on the caller's thread once per job — so every result, down to
// per-shard .lrt decision traces, is bitwise independent of the worker
// thread count (tested in tests/test_federation.cpp). With K = 1 every
// policy routes every job to shard 0 and the run is byte-identical to a
// standalone streaming engine.
//
// Telemetry: unless a shard's EngineConfig already carries a telemetry
// hook, the Federation gives each shard its own Telemetry hub whose metric
// names are prefixed "<shard-name>_" (obs::TelemetryConfig::metric_prefix),
// so metrics_table()/write_openmetrics() can merge all K registries into
// one collision-free export.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/overload.hpp"
#include "federation/router.hpp"
#include "obs/telemetry.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace librisk::federation {

/// One cluster in the federation. `engine` must describe an owning-mode
/// engine (cluster set, no borrowed components): a federation of borrowed
/// stacks would share simulators, which contradicts shard independence.
struct ShardConfig {
  core::EngineConfig engine;
  /// Display / metric-prefix name; empty = "cluster<index>".
  std::string name;
  /// $/share-unit this cluster charges (PriceWeighted routing).
  double price = 1.0;
};

struct FederationConfig {
  std::vector<ShardConfig> shards;
  RoutePolicy route = RoutePolicy::RoundRobin;
  /// Seed for the router's RNG stream (RandomTwoChoice).
  std::uint64_t route_seed = 1;
  /// Worker threads for the per-job stepping barrier: 1 = step shards
  /// inline on the caller's thread (default), 0 = hardware concurrency.
  /// Results are identical for every value (see header comment).
  std::size_t threads = 1;
  /// Federation-level degradation (core/overload.hpp): any mode other than
  /// HardReject arms the spill lane — when the routed shard's load factor
  /// is at or past `overload.activation_load`, the job is re-routed to the
  /// least-loaded feasible shard still below that line (the *salvage
  /// shard*, ties to the lowest index) before the saturated shard gets to
  /// reject it. Reject-everywhere only happens when every feasible shard is
  /// saturated. HardReject (default) keeps routing byte-identical to the
  /// pre-catalog federation. Per-shard engines carry their own
  /// `options.overload` independently; this knob only bends routing.
  core::OverloadConfig overload;
};

/// Decision for one submitted job: where it went and what that shard said.
struct RouteResult {
  int shard = 0;
  core::AdmissionOutcome outcome;
  /// The router's original pick before the overload spill lane moved the
  /// job; equals `shard` when no spill happened.
  int routed_shard = 0;
  bool spilled = false;
};

/// Per-shard slice of a federation run.
struct ShardSummary {
  std::string name;
  int nodes = 0;
  std::uint64_t routed = 0;
  /// Jobs this shard *received* through the overload spill lane (they count
  /// in `routed` too — spilled_in attributes, it does not add).
  std::uint64_t spilled_in = 0;
  /// Jobs the router picked this shard for but the spill lane moved away.
  std::uint64_t spilled_out = 0;
  metrics::RunSummary summary;
  core::AdmissionStats admission;
};

/// Whole-federation results: `total` aggregates every shard's collector
/// exactly (metrics::summarize_all), with utilization = delivered work over
/// total federated capacity.
struct FederationSummary {
  metrics::RunSummary total;
  std::vector<ShardSummary> shards;
  std::uint64_t routed = 0;
  /// Jobs moved by the overload spill lane (0 under HardReject).
  std::uint64_t spilled = 0;
};

class Federation {
 public:
  explicit Federation(FederationConfig config);
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;
  ~Federation();

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] RoutePolicy route_policy() const noexcept { return router_.policy(); }

  /// Routes and eagerly submits one job. Jobs must arrive monotone in
  /// submit time (globally — the per-shard subsequences then are too).
  RouteResult submit(const workload::Job& job);

  /// Runs every shard to completion (parallel finish barrier); idempotent.
  void finish();

  [[nodiscard]] FederationSummary summary() const;

  /// Merged views over every shard's metrics registry (collision-free by
  /// per-shard name prefixes).
  [[nodiscard]] table::Table metrics_table() const;
  void write_openmetrics(std::ostream& out) const;

  /// The shard's engine, for tests and trace wiring.
  [[nodiscard]] const core::AdmissionEngine& engine(std::size_t shard) const;
  [[nodiscard]] const std::string& shard_name(std::size_t shard) const;

 private:
  struct Shard;

  /// Runs fn(shard) for every shard — in parallel when the pool exists,
  /// inline otherwise. A barrier: returns after every shard completes.
  void for_each_shard(const std::function<void(std::size_t)>& fn);
  /// Rebuilds views_ from each shard's registry readings. Only called
  /// between barriers, on the caller's thread.
  void refresh_views();
  /// Overload spill lane: when the routed shard is saturated
  /// (load_factor >= activation_load) returns the least-loaded feasible
  /// shard still under the line (ties to the lowest index), else -1.
  [[nodiscard]] int pick_salvage_shard(const workload::Job& job,
                                       int routed_shard) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  Router router_;
  std::unique_ptr<support::ThreadPool> pool_;  ///< null when threads == 1
  std::vector<ShardView> views_;
  std::uint64_t routed_ = 0;
  std::uint64_t spilled_ = 0;
  bool spill_enabled_ = false;
  core::OverloadConfig overload_;
  sim::SimTime last_submit_ = 0.0;
  bool finished_ = false;
};

}  // namespace librisk::federation
