#include "federation/federation.hpp"

#include <utility>

#include "cluster/share_model.hpp"
#include "obs/render.hpp"
#include "support/check.hpp"

namespace librisk::federation {

/// Everything one cluster shard owns. Held behind unique_ptr so addresses
/// stay stable for the metric closures and the resolution observer; the
/// in-flight accounting is touched on the routing thread (add, between
/// barriers) and from the observer (subtract, while the shard steps) —
/// never concurrently, because a shard steps on exactly one worker at a
/// time and the barrier's futures establish happens-before both ways.
struct Federation::Shard {
  std::string name;
  double price = 1.0;
  int nodes = 0;
  double total_speed = 0.0;
  double deadline_clamp = 0.0;

  std::unique_ptr<obs::Telemetry> owned_telemetry;  ///< null if caller-provided
  obs::Telemetry* telemetry = nullptr;
  std::unique_ptr<core::AdmissionEngine> engine;

  /// Deadline-proportional share (Eq. 1, processor units) of every job
  /// routed here and not yet resolved, keyed for subtract-on-resolve.
  double inflight_share = 0.0;
  std::unordered_map<std::int64_t, double> contributions;
  std::uint64_t routed = 0;
  std::uint64_t spilled_in = 0;   ///< jobs received via the spill lane
  std::uint64_t spilled_out = 0;  ///< router picks moved away from here

  /// Full (prefixed) metric names, precomputed for refresh_views().
  std::string inflight_metric;
  std::string live_jobs_metric;
};

Federation::Federation(FederationConfig config)
    : router_(config.route, config.route_seed), overload_(config.overload) {
  LIBRISK_CHECK(!config.shards.empty(), "federation needs at least one shard");
  overload_.validate();
  spill_enabled_ = overload_.mode != core::DegradedMode::HardReject;
  if (config.threads != 1 && config.shards.size() > 1)
    pool_ = std::make_unique<support::ThreadPool>(config.threads);

  shards_.reserve(config.shards.size());
  views_.reserve(config.shards.size());
  for (std::size_t k = 0; k < config.shards.size(); ++k) {
    ShardConfig& sc = config.shards[k];
    LIBRISK_CHECK(sc.engine.cluster.has_value() &&
                      sc.engine.simulator == nullptr &&
                      sc.engine.scheduler == nullptr &&
                      sc.engine.collector == nullptr,
                  "federation shard " << k << " must be an owning-mode "
                  "EngineConfig (cluster set, no borrowed components)");

    auto shard = std::make_unique<Shard>();
    shard->name = sc.name.empty() ? "cluster" + std::to_string(k)
                                  : std::move(sc.name);
    shard->price = sc.price;
    shard->nodes = sc.engine.cluster->size();
    shard->total_speed = sc.engine.cluster->total_speed_factor();
    shard->deadline_clamp = sc.engine.options.share_model.deadline_clamp;

    if (sc.engine.options.hooks.telemetry == nullptr) {
      obs::TelemetryConfig tel;
      tel.metric_prefix = shard->name + "_";
      shard->owned_telemetry = std::make_unique<obs::Telemetry>(tel);
      sc.engine.options.hooks.telemetry = shard->owned_telemetry.get();
    }
    shard->telemetry = sc.engine.options.hooks.telemetry;
    shard->engine = core::make_engine(std::move(sc.engine));

    // The router's load signal, exposed the same way every other component
    // exposes state: pull metrics in the shard's registry. refresh_views()
    // reads these back by (prefixed) name.
    Shard* raw = shard.get();
    obs::Registry& reg = shard->telemetry->registry();
    shard->inflight_metric =
        reg.name_prefix() + "federation_inflight_share";
    shard->live_jobs_metric = reg.name_prefix() + "federation_live_jobs";
    reg.gauge_fn("federation_inflight_share",
                 "in-flight deadline share routed to this shard (processor "
                 "units)",
                 [raw] { return raw->inflight_share; });
    reg.gauge_fn("federation_live_jobs",
                 "jobs routed to this shard, not yet resolved",
                 [raw] { return static_cast<double>(raw->engine->live_jobs()); });
    reg.counter_fn("federation_routed", "jobs ever routed to this shard",
                   [raw] { return raw->routed; });
    reg.counter_fn("federation_spilled_in",
                   "jobs received via the overload spill lane",
                   [raw] { return raw->spilled_in; });
    reg.counter_fn("federation_spilled_out",
                   "router picks the overload spill lane moved elsewhere",
                   [raw] { return raw->spilled_out; });

    shard->engine->collector().add_resolution_observer([raw](std::int64_t id) {
      const auto it = raw->contributions.find(id);
      if (it == raw->contributions.end()) return;
      raw->inflight_share -= it->second;
      raw->contributions.erase(it);
    });

    ShardView view;
    view.shard = static_cast<int>(k);
    view.nodes = shard->nodes;
    view.total_speed = shard->total_speed;
    view.price = shard->price;
    views_.push_back(view);
    shards_.push_back(std::move(shard));
  }
}

Federation::~Federation() = default;

void Federation::for_each_shard(const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr) {
    for (std::size_t k = 0; k < shards_.size(); ++k) fn(k);
    return;
  }
  support::parallel_for(*pool_, shards_.size(), fn);
}

void Federation::refresh_views() {
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = *shards_[k];
    const obs::Registry& reg = shard.telemetry->registry();
    ShardView& view = views_[k];
    view.inflight_share = reg.reading(shard.inflight_metric).value;
    view.live_jobs = static_cast<std::size_t>(
        reg.reading(shard.live_jobs_metric).value);
    view.routed = shard.routed;
  }
}

RouteResult Federation::submit(const workload::Job& job) {
  LIBRISK_CHECK(!finished_, "federation submit after finish() on job " << job.id);
  LIBRISK_CHECK(routed_ == 0 || job.submit_time >= last_submit_,
                "job " << job.id << " submitted out of order: submit time "
                       << job.submit_time << " after a job at " << last_submit_);

  // Route barrier: every shard catches up to the arrival instant before any
  // load is read or any decision taken.
  const sim::SimTime t = job.submit_time;
  for_each_shard([this, t](std::size_t k) { shards_[k]->engine->advance_to(t); });
  refresh_views();

  RouteResult result;
  result.shard = router_.route(job, views_);
  result.routed_shard = result.shard;
  // Spill lane (docs/OVERLOAD.md): before a saturated shard gets to reject
  // the job, offer it to a salvage shard that still has headroom. Runs
  // after route() so every router's internal state (cursor, affinity map,
  // RNG stream) advances exactly as it would without the lane — the spill
  // is a pure function of the same views the router saw, keeping the run
  // deterministic and HardReject byte-identical (lane disarmed).
  if (spill_enabled_) {
    const int salvage = pick_salvage_shard(job, result.shard);
    if (salvage >= 0) {
      shards_[static_cast<std::size_t>(result.shard)]->spilled_out++;
      result.shard = salvage;
      result.spilled = true;
      ++spilled_;
    }
  }
  Shard& shard = *shards_[static_cast<std::size_t>(result.shard)];
  if (result.spilled) ++shard.spilled_in;
  result.outcome = shard.engine->submit(job);
  ++shard.routed;
  ++routed_;
  last_submit_ = t;

  // Track the admitted job's deadline share until it resolves. Guard on the
  // recorded fate, not the outcome verdict: a zero-length job can resolve
  // inside its own arrival step, in which case the observer already fired
  // and an add here would leak share forever.
  if (shard.engine->collector().record(job.id).fate ==
      metrics::JobFate::Pending) {
    const double share =
        static_cast<double>(job.num_procs) *
        cluster::required_share(job.scheduler_estimate, job.deadline,
                                shard.deadline_clamp);
    shard.contributions.emplace(job.id, share);
    shard.inflight_share += share;
  }
  return result;
}

int Federation::pick_salvage_shard(const workload::Job& job,
                                   int routed_shard) const {
  const ShardView& routed = views_[static_cast<std::size_t>(routed_shard)];
  if (routed.load_factor() < overload_.activation_load) return -1;
  int best = -1;
  double best_load = 0.0;
  for (const ShardView& view : views_) {
    if (view.shard == routed_shard) continue;
    if (view.nodes < job.num_procs) continue;
    const double load = view.load_factor();
    // Salvage must have real headroom; a shard past the activation line
    // would just be a different flavour of saturated.
    if (load >= overload_.activation_load) continue;
    if (best < 0 || load < best_load) {  // strict <: ties keep lowest index
      best = view.shard;
      best_load = load;
    }
  }
  return best;
}

void Federation::finish() {
  if (finished_) return;
  finished_ = true;
  for_each_shard([this](std::size_t k) { shards_[k]->engine->finish(); });
}

FederationSummary Federation::summary() const {
  FederationSummary fs;
  fs.routed = routed_;
  fs.spilled = spilled_;

  std::vector<const metrics::Collector*> collectors;
  collectors.reserve(shards_.size());
  double busy = 0.0;
  double capacity_seconds = 0.0;
  for (const auto& shard : shards_) {
    collectors.push_back(&shard->engine->collector());
    busy += shard->engine->busy_node_seconds();
    capacity_seconds +=
        static_cast<double>(shard->engine->cluster_size()) *
        shard->engine->now();

    ShardSummary ss;
    ss.name = shard->name;
    ss.nodes = shard->nodes;
    ss.routed = shard->routed;
    ss.spilled_in = shard->spilled_in;
    ss.spilled_out = shard->spilled_out;
    ss.summary = shard->engine->summary();
    ss.admission = shard->engine->admission_stats();
    fs.shards.push_back(std::move(ss));
  }
  fs.total = metrics::summarize_all(collectors);
  if (capacity_seconds > 0.0) fs.total.utilization = busy / capacity_seconds;
  return fs;
}

table::Table Federation::metrics_table() const {
  std::vector<const obs::Registry*> registries;
  registries.reserve(shards_.size());
  for (const auto& shard : shards_)
    registries.push_back(&shard->telemetry->registry());
  return obs::metrics_table(registries);
}

void Federation::write_openmetrics(std::ostream& out) const {
  std::vector<const obs::Registry*> registries;
  registries.reserve(shards_.size());
  for (const auto& shard : shards_)
    registries.push_back(&shard->telemetry->registry());
  obs::write_openmetrics(out, registries);
}

const core::AdmissionEngine& Federation::engine(std::size_t shard) const {
  LIBRISK_CHECK(shard < shards_.size(),
                "shard " << shard << " out of range (" << shards_.size() << ")");
  return *shards_[shard]->engine;
}

const std::string& Federation::shard_name(std::size_t shard) const {
  LIBRISK_CHECK(shard < shards_.size(),
                "shard " << shard << " out of range (" << shards_.size() << ")");
  return shards_[shard]->name;
}

}  // namespace librisk::federation
