#include "federation/router.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "support/check.hpp"

namespace librisk::federation {

namespace {

constexpr std::array<RoutePolicy, 5> kAllPolicies = {
    RoutePolicy::RoundRobin, RoutePolicy::LeastRisk, RoutePolicy::PriceWeighted,
    RoutePolicy::Affinity, RoutePolicy::RandomTwoChoice};

/// True when `view` can physically hold the job (enough nodes). Load is the
/// policies' business; feasibility is not.
bool feasible(const ShardView& view, const workload::Job& job) noexcept {
  return view.nodes >= job.num_procs;
}

/// Fallback target when no shard is feasible: the largest shard (ties to
/// the lowest index), where "not enough nodes" is closest to the truth.
int largest_shard(std::span<const ShardView> views) noexcept {
  int best = 0;
  for (std::size_t i = 1; i < views.size(); ++i)
    if (views[i].nodes > views[best].nodes) best = static_cast<int>(i);
  return best;
}

}  // namespace

const char* to_string(RoutePolicy policy) noexcept {
  switch (policy) {
    case RoutePolicy::RoundRobin: return "RoundRobin";
    case RoutePolicy::LeastRisk: return "LeastRisk";
    case RoutePolicy::PriceWeighted: return "PriceWeighted";
    case RoutePolicy::Affinity: return "Affinity";
    case RoutePolicy::RandomTwoChoice: return "RandomTwoChoice";
  }
  return "?";
}

std::optional<RoutePolicy> parse_route_policy(std::string_view name) noexcept {
  for (const RoutePolicy policy : kAllPolicies)
    if (name == to_string(policy)) return policy;
  return std::nullopt;
}

std::span<const RoutePolicy> all_route_policies() noexcept { return kAllPolicies; }

Router::Router(RoutePolicy policy, std::uint64_t seed)
    : policy_(policy), stream_("federation-router", seed) {}

int Router::pick_least_loaded(std::span<const ShardView> views) const {
  int best = -1;
  double best_load = 0.0;
  for (const ShardView& view : views) {
    if (best < 0 || view.load_factor() < best_load) {
      best = view.shard;
      best_load = view.load_factor();
    }
  }
  return best;
}

int Router::route(const workload::Job& job, std::span<const ShardView> views) {
  LIBRISK_CHECK(!views.empty(), "route() needs at least one shard view");

  // Feasibility filter, preserving shard order.
  std::vector<ShardView> eligible;
  eligible.reserve(views.size());
  for (const ShardView& view : views)
    if (feasible(view, job)) eligible.push_back(view);
  if (eligible.empty()) return views[largest_shard(views)].shard;

  switch (policy_) {
    case RoutePolicy::RoundRobin: {
      const std::size_t pick = cursor_ % eligible.size();
      ++cursor_;
      return eligible[pick].shard;
    }
    case RoutePolicy::LeastRisk:
      return pick_least_loaded(eligible);
    case RoutePolicy::PriceWeighted: {
      // Libra's economy, federated: each shard's effective offer is its
      // price marked up by how contended it already is; take the cheapest.
      int best = -1;
      double best_offer = 0.0;
      for (const ShardView& view : eligible) {
        const double offer = view.price * (1.0 + view.load_factor());
        if (best < 0 || offer < best_offer) {
          best = view.shard;
          best_offer = offer;
        }
      }
      return best;
    }
    case RoutePolicy::Affinity: {
      const std::int64_t user =
          job.user_id >= 0 ? static_cast<std::int64_t>(job.user_id)
                           : job.id % 1024;
      const auto it = affinity_.find(user);
      if (it != affinity_.end()) {
        // Spill without re-pinning when the sticky shard cannot hold this
        // job; the user's smaller jobs keep their home.
        for (const ShardView& view : eligible)
          if (view.shard == it->second) return it->second;
        return pick_least_loaded(eligible);
      }
      const int home = pick_least_loaded(eligible);
      affinity_.emplace(user, home);
      return home;
    }
    case RoutePolicy::RandomTwoChoice: {
      // Power of two choices: sample two distinct candidates, keep the
      // less loaded. One eligible shard means no choice to make (but the
      // stream still advances once per job, keeping decisions a pure
      // function of arrival order).
      const auto n = static_cast<std::int64_t>(eligible.size());
      const std::int64_t a = stream_.uniform_int(0, n - 1);
      const std::int64_t b = stream_.uniform_int(0, n - 1);
      const ShardView& va = eligible[static_cast<std::size_t>(a)];
      const ShardView& vb = eligible[static_cast<std::size_t>(b)];
      if (va.load_factor() != vb.load_factor())
        return va.load_factor() < vb.load_factor() ? va.shard : vb.shard;
      return std::min(va.shard, vb.shard);
    }
  }
  LIBRISK_CHECK(false, "unreachable route policy");
  return 0;
}

}  // namespace librisk::federation
