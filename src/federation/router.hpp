// Routing policies for the federated meta-scheduler: which cluster shard
// gets each arriving job.
//
// A Router is a pure sequential decision procedure over per-shard load
// views. It never touches an engine: the Federation snapshots every shard's
// pull metrics between stepping barriers (federation.hpp), hands the views
// to route(), and submits the job to the chosen shard. All routing state —
// the round-robin cursor, the affinity map, the two-choice RNG stream — is
// consumed on the routing thread only and advanced exactly once per job in
// arrival order, which is what makes federation results independent of how
// many worker threads step the shards (docs/FEDERATION.md).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>

#include "support/rng.hpp"
#include "workload/job.hpp"

namespace librisk::federation {

/// Per-shard load snapshot the Federation refreshes before each decision.
struct ShardView {
  int shard = 0;            ///< index into the federation's shard list
  int nodes = 0;            ///< cluster size (feasibility: nodes >= num_procs)
  double total_speed = 0.0; ///< aggregate capacity, reference-node units
  /// Sum of deadline-proportional shares (Eq. 1, processor units) of jobs
  /// routed here and not yet resolved — the same quantity the admission
  /// gateway budgets against, read from the shard's pull metrics.
  double inflight_share = 0.0;
  std::size_t live_jobs = 0;  ///< routed, not yet resolved
  std::uint64_t routed = 0;   ///< jobs ever routed to this shard
  double price = 1.0;         ///< $/share unit (PriceWeighted)

  /// Demand-normalised load: in-flight share per unit capacity. 0 = idle;
  /// ~1 = the shard's whole capacity is promised to deadlines.
  [[nodiscard]] double load_factor() const noexcept {
    return total_speed > 0.0 ? inflight_share / total_speed : 0.0;
  }
};

enum class RoutePolicy : std::uint8_t {
  RoundRobin = 0,    ///< cycle through feasible shards (baseline)
  LeastRisk,         ///< lowest load factor: most share headroom
  PriceWeighted,     ///< cheapest risk-adjusted offer: price * (1 + load)
  Affinity,          ///< sticky user -> shard, spill when infeasible
  RandomTwoChoice,   ///< power of two choices on load factor
};

[[nodiscard]] const char* to_string(RoutePolicy policy) noexcept;
/// Case-sensitive parse of the to_string names ("LeastRisk", ...);
/// nullopt for unknown names.
[[nodiscard]] std::optional<RoutePolicy> parse_route_policy(
    std::string_view name) noexcept;
/// Every policy, for sweeps.
[[nodiscard]] std::span<const RoutePolicy> all_route_policies() noexcept;

class Router {
 public:
  explicit Router(RoutePolicy policy, std::uint64_t seed = 1);

  [[nodiscard]] RoutePolicy policy() const noexcept { return policy_; }

  /// Picks the shard for `job` given one view per shard (indexed by
  /// ShardView::shard). Only shards with nodes >= job.num_procs are
  /// eligible; when none is, the job goes to the largest shard (lowest
  /// index on ties) so the rejection is recorded where it is least absurd.
  /// Ties on the policy's score break toward the lowest shard index.
  [[nodiscard]] int route(const workload::Job& job,
                          std::span<const ShardView> views);

 private:
  [[nodiscard]] int pick_least_loaded(std::span<const ShardView> views) const;

  RoutePolicy policy_;
  rng::Stream stream_;
  std::uint64_t cursor_ = 0;  ///< RoundRobin position
  /// Affinity: user id -> sticky shard. Jobs without a user id (-1) hash
  /// their job id into 1024 pseudo-users so the policy stays meaningful on
  /// anonymised traces.
  std::unordered_map<std::int64_t, int> affinity_;
};

}  // namespace librisk::federation
