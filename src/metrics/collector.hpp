// Per-job accounting and the paper's two evaluation metrics.
//
// Section 5: (i) percentage of jobs with deadlines fulfilled = jobs
// completed within their specified deadline / *total jobs submitted*;
// (ii) average slowdown = mean over *fulfilled jobs only* of
// response time / minimum runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "support/stats.hpp"
#include "trace/event.hpp"
#include "workload/job.hpp"

namespace librisk::metrics {

using workload::Job;
using sim::SimTime;

/// Terminal state of a submitted job.
enum class JobFate : std::uint8_t {
  Pending = 0,          ///< submitted, not yet resolved
  RejectedAtSubmit,     ///< admission control refused at submission
  RejectedAtDispatch,   ///< EDF-style rejection when selected for execution
  FulfilledInTime,      ///< completed within deadline
  CompletedLate,        ///< completed after deadline (deadline violated)
  Killed,               ///< terminated at its estimate (kill-at-limit mode)
};

[[nodiscard]] const char* to_string(JobFate fate) noexcept;

/// Completion this close to the deadline (seconds) still counts as
/// fulfilled: proportional-share pacing finishes jobs *exactly* at their
/// deadline, so sub-second arithmetic residue must not read as a violation.
inline constexpr double kDelayTolerance = 0.5;

/// Records copy the job fields they report on instead of keeping a
/// `const Job*`: a streaming driver (core::AdmissionEngine) reclaims Job
/// storage as soon as a job resolves, so a retained pointer would dangle by
/// summarize() time.
struct JobRecord {
  JobFate fate = JobFate::Pending;
  SimTime submit_time = 0.0;
  SimTime start_time = 0.0;    ///< valid when started
  SimTime finish_time = 0.0;   ///< valid when completed
  double min_runtime = 0.0;    ///< best-case runtime on its allocated nodes
  double delay = 0.0;          ///< Eq. 3, valid when completed
  bool started = false;
  // Copied at submission (see above).
  int num_procs = 0;
  workload::Urgency urgency = workload::Urgency::Unspecified;
  bool underestimated = false;  ///< user_estimate < actual_runtime
  /// Which admission test said no (None unless fate is a rejection) — the
  /// per-job attribution that used to require diffing AdmissionStats
  /// counters around each submission.
  trace::RejectionReason reject_reason = trace::RejectionReason::None;

  [[nodiscard]] double response_time() const noexcept {
    return finish_time - submit_time;
  }
  [[nodiscard]] double slowdown() const noexcept {
    return min_runtime > 0.0 ? response_time() / min_runtime : 0.0;
  }
};

/// Aggregate results of one simulation run.
struct RunSummary {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected_at_submit = 0;
  std::size_t rejected_at_dispatch = 0;
  std::size_t fulfilled = 0;
  std::size_t completed_late = 0;
  std::size_t killed = 0;

  /// Paper metric (i), in percent of submitted jobs.
  double fulfilled_pct = 0.0;
  /// Paper metric (ii): mean slowdown over fulfilled jobs.
  double avg_slowdown_fulfilled = 0.0;
  /// Mean slowdown over every completed job (diagnostic).
  double avg_slowdown_completed = 0.0;
  /// Mean delay (Eq. 3) over late jobs; 0 when none.
  double avg_delay_late = 0.0;
  /// Tail behaviour (0 when no fulfilled/late jobs respectively): the p95
  /// slowdown answers "how bad is service for the unluckiest accepted
  /// jobs", the max delay bounds the worst broken promise.
  double p95_slowdown_fulfilled = 0.0;
  double max_delay = 0.0;
  /// Fulfilled percentage within each urgency class.
  double fulfilled_pct_high_urgency = 0.0;
  double fulfilled_pct_low_urgency = 0.0;
  /// Simulation makespan: last completion (or last submission) time.
  SimTime makespan = 0.0;
  /// Delivered-work utilization over [0, makespan], when the scenario
  /// provides it (0 otherwise).
  double utilization = 0.0;
};

class Collector {
 public:
  /// Every job must be announced exactly once before any other record_* call.
  void record_submitted(const Job& job, SimTime now);
  void record_rejected(const Job& job, SimTime now, bool at_dispatch,
                       trace::RejectionReason reason = trace::RejectionReason::None);
  /// `min_runtime`: the job's best-case runtime on the nodes it received.
  void record_started(const Job& job, SimTime now, double min_runtime);
  void record_completed(const Job& job, SimTime finish);
  /// Kill-at-limit termination (started, never finished its work).
  void record_killed(const Job& job, SimTime when);

  /// True when every submitted job reached a terminal fate.
  [[nodiscard]] bool all_resolved() const noexcept;
  [[nodiscard]] std::size_t submitted_count() const noexcept { return records_.size(); }
  /// Jobs that reached a terminal fate so far.
  [[nodiscard]] std::size_t resolved_count() const noexcept { return resolved_; }

  /// Observers fired once per job the instant it reaches a terminal fate
  /// (rejected, completed, or killed), with the job's id, in registration
  /// order. core::AdmissionEngine registers one to reclaim job storage;
  /// core::AdmissionGateway registers another to subtract the job's
  /// fixed-point share from its fast-reject accumulator. Callbacks must not
  /// call back into this Collector. remove_resolution_observer() is safe
  /// while other observers stay registered (tokens are stable); it must not
  /// be called from inside an observer.
  using ResolutionObserver = std::function<void(std::int64_t)>;
  using ObserverId = std::size_t;
  ObserverId add_resolution_observer(ResolutionObserver observer);
  void remove_resolution_observer(ObserverId id);
  [[nodiscard]] const JobRecord& record(std::int64_t job_id) const;
  [[nodiscard]] const std::map<std::int64_t, JobRecord>& records() const noexcept {
    return records_;
  }

  [[nodiscard]] RunSummary summarize() const;

  /// Steady-state methodology: only jobs submitted inside [begin, end] are
  /// counted (warmup/cooldown exclusion; Feitelson's recommendation for
  /// open-system experiments). Jobs outside still executed — they shaped
  /// the system state — they are just not measured.
  struct MeasurementWindow {
    SimTime begin = 0.0;
    SimTime end = std::numeric_limits<SimTime>::infinity();
  };
  [[nodiscard]] RunSummary summarize(const MeasurementWindow& window) const;

 private:
  JobRecord& fetch(const Job& job, bool must_exist);
  void resolved(const Job& job);
  std::map<std::int64_t, JobRecord> records_;
  std::size_t resolved_ = 0;
  /// Fan-out slots; a removed observer leaves a null slot so ObserverId
  /// tokens stay stable (slots are reused by the next add).
  std::vector<ResolutionObserver> observers_;
};

/// Summary over the union of several collectors' records, as if every job
/// had been recorded in one collector — the paper metrics are sums and
/// record-weighted means, so a federation's K per-shard collectors
/// aggregate exactly (no mean-of-means bias). Collector::summarize is the
/// single-collector special case; job ids must be disjoint across inputs
/// (each job lives in exactly one shard).
[[nodiscard]] RunSummary summarize_all(
    const std::vector<const Collector*>& collectors,
    const Collector::MeasurementWindow& window = {});

}  // namespace librisk::metrics
