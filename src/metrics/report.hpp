// Human-readable reporting of run summaries (examples and harnesses).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/collector.hpp"

namespace librisk::metrics {

/// One labelled run, for side-by-side comparison tables.
struct LabelledSummary {
  std::string label;
  RunSummary summary;
};

/// Prints one run's accounting as a small table.
void print_summary(std::ostream& out, const std::string& label, const RunSummary& s);

/// Prints several runs side by side (one row per policy) — the shape the
/// paper's figures tabulate.
void print_comparison(std::ostream& out, const std::vector<LabelledSummary>& runs);

}  // namespace librisk::metrics
