#include "metrics/collector.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace librisk::metrics {

const char* to_string(JobFate fate) noexcept {
  switch (fate) {
    case JobFate::Pending: return "pending";
    case JobFate::RejectedAtSubmit: return "rejected-at-submit";
    case JobFate::RejectedAtDispatch: return "rejected-at-dispatch";
    case JobFate::FulfilledInTime: return "fulfilled";
    case JobFate::CompletedLate: return "completed-late";
    case JobFate::Killed: return "killed";
  }
  return "?";
}

JobRecord& Collector::fetch(const Job& job, bool must_exist) {
  const auto it = records_.find(job.id);
  if (must_exist) {
    LIBRISK_CHECK(it != records_.end(), "job " << job.id << " was never submitted");
    return it->second;
  }
  LIBRISK_CHECK(it == records_.end(), "job " << job.id << " submitted twice");
  return records_[job.id];
}

void Collector::resolved(const Job& job) {
  ++resolved_;
  for (const ResolutionObserver& observer : observers_)
    if (observer) observer(job.id);
}

Collector::ObserverId Collector::add_resolution_observer(
    ResolutionObserver observer) {
  LIBRISK_CHECK(observer != nullptr, "null resolution observer");
  for (ObserverId id = 0; id < observers_.size(); ++id) {
    if (!observers_[id]) {
      observers_[id] = std::move(observer);
      return id;
    }
  }
  observers_.push_back(std::move(observer));
  return observers_.size() - 1;
}

void Collector::remove_resolution_observer(ObserverId id) {
  LIBRISK_CHECK(id < observers_.size() && observers_[id] != nullptr,
                "removing unknown resolution observer " << id);
  observers_[id] = nullptr;
}

void Collector::record_submitted(const Job& job, SimTime now) {
  JobRecord& r = fetch(job, /*must_exist=*/false);
  r.submit_time = now;
  r.num_procs = job.num_procs;
  r.urgency = job.urgency;
  r.underestimated = job.user_estimate < job.actual_runtime;
}

void Collector::record_rejected(const Job& job, SimTime now, bool at_dispatch,
                                trace::RejectionReason reason) {
  JobRecord& r = fetch(job, /*must_exist=*/true);
  LIBRISK_CHECK(r.fate == JobFate::Pending,
                "job " << job.id << " already resolved as " << to_string(r.fate));
  LIBRISK_CHECK(!r.started, "job " << job.id << " rejected after starting");
  r.fate = at_dispatch ? JobFate::RejectedAtDispatch : JobFate::RejectedAtSubmit;
  r.finish_time = now;
  r.reject_reason = reason;
  resolved(job);
}

void Collector::record_started(const Job& job, SimTime now, double min_runtime) {
  JobRecord& r = fetch(job, /*must_exist=*/true);
  LIBRISK_CHECK(r.fate == JobFate::Pending, "job " << job.id << " started after resolution");
  LIBRISK_CHECK(!r.started, "job " << job.id << " started twice");
  LIBRISK_CHECK(min_runtime > 0.0, "min_runtime must be positive");
  r.started = true;
  r.start_time = now;
  r.min_runtime = min_runtime;
}

void Collector::record_completed(const Job& job, SimTime finish) {
  JobRecord& r = fetch(job, /*must_exist=*/true);
  LIBRISK_CHECK(r.started, "job " << job.id << " completed without starting");
  LIBRISK_CHECK(r.fate == JobFate::Pending, "job " << job.id << " completed twice");
  r.finish_time = finish;
  r.delay = std::max(0.0, (finish - r.submit_time) - job.deadline);
  if (r.delay <= kDelayTolerance) r.delay = 0.0;
  r.fate = r.delay == 0.0 ? JobFate::FulfilledInTime : JobFate::CompletedLate;
  resolved(job);
}

void Collector::record_killed(const Job& job, SimTime when) {
  JobRecord& r = fetch(job, /*must_exist=*/true);
  LIBRISK_CHECK(r.started, "job " << job.id << " killed without starting");
  LIBRISK_CHECK(r.fate == JobFate::Pending, "job " << job.id << " killed after resolution");
  r.finish_time = when;
  r.fate = JobFate::Killed;
  resolved(job);
}

bool Collector::all_resolved() const noexcept { return resolved_ == records_.size(); }

const JobRecord& Collector::record(std::int64_t job_id) const {
  const auto it = records_.find(job_id);
  LIBRISK_CHECK(it != records_.end(), "no record for job " << job_id);
  return it->second;
}

RunSummary Collector::summarize() const { return summarize(MeasurementWindow{}); }

RunSummary Collector::summarize(const MeasurementWindow& window) const {
  return summarize_all({this}, window);
}

RunSummary summarize_all(const std::vector<const Collector*>& collectors,
                         const Collector::MeasurementWindow& window) {
  RunSummary s;
  stats::Accumulator slowdown_fulfilled, slowdown_completed, delay_late;
  std::vector<double> fulfilled_slowdowns;
  std::size_t high_total = 0, high_fulfilled = 0;
  std::size_t low_total = 0, low_fulfilled = 0;

  for (const Collector* collector : collectors) {
    LIBRISK_CHECK(collector != nullptr, "null collector in summarize_all");
    for (const auto& [id, r] : collector->records()) {
      if (r.submit_time < window.begin || r.submit_time > window.end) continue;
      ++s.submitted;
      s.makespan = std::max(s.makespan, std::max(r.finish_time, r.submit_time));
      const bool high = r.urgency == workload::Urgency::High;
      (high ? high_total : low_total) += 1;
      switch (r.fate) {
        case JobFate::Pending:
          break;
        case JobFate::RejectedAtSubmit:
          ++s.rejected_at_submit;
          break;
        case JobFate::RejectedAtDispatch:
          ++s.rejected_at_dispatch;
          break;
        case JobFate::FulfilledInTime:
          ++s.accepted;
          ++s.fulfilled;
          (high ? high_fulfilled : low_fulfilled) += 1;
          slowdown_fulfilled.add(r.slowdown());
          fulfilled_slowdowns.push_back(r.slowdown());
          slowdown_completed.add(r.slowdown());
          break;
        case JobFate::CompletedLate:
          ++s.accepted;
          ++s.completed_late;
          slowdown_completed.add(r.slowdown());
          delay_late.add(r.delay);
          s.max_delay = std::max(s.max_delay, r.delay);
          break;
        case JobFate::Killed:
          ++s.accepted;
          ++s.killed;
          break;
      }
    }
  }

  const auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
  };
  s.fulfilled_pct = pct(s.fulfilled, s.submitted);
  s.fulfilled_pct_high_urgency = pct(high_fulfilled, high_total);
  s.fulfilled_pct_low_urgency = pct(low_fulfilled, low_total);
  s.avg_slowdown_fulfilled = slowdown_fulfilled.mean();
  s.avg_slowdown_completed = slowdown_completed.mean();
  s.avg_delay_late = delay_late.mean();
  s.p95_slowdown_fulfilled = stats::percentile(fulfilled_slowdowns, 95.0);
  return s;
}

}  // namespace librisk::metrics
