// Computation-at-Risk metrics (Kleban & Clearwater [7][8] — the approach
// the paper's deadline-delay metric is "analogous to").
//
// CaR transplants finance's value-at-risk to job portfolios: given the
// distribution of a badness measure (makespan/response time, or expansion
// factor/slowdown), CaR(q) is the q-th percentile — "with probability q the
// job will cost no more than this" — and the conditional tail expectation
// (mean badness beyond CaR) quantifies how bad the bad cases are. Useful
// for comparing how each admission control shapes the *tail* of service,
// which the mean slowdown of the headline metrics hides.
#pragma once

#include <vector>

#include "metrics/collector.hpp"

namespace librisk::metrics {

/// Which badness measure the CaR is computed over.
enum class CarMeasure {
  ResponseTime,  ///< makespan-style: finish - submit, seconds
  Slowdown,      ///< expansion-factor-style: response / minimum runtime
};

[[nodiscard]] const char* to_string(CarMeasure measure) noexcept;

struct CarReport {
  CarMeasure measure{};
  std::size_t jobs = 0;       ///< completed jobs the distribution covers
  double quantile = 95.0;     ///< q used
  double at_risk = 0.0;       ///< CaR(q): q-th percentile of the measure
  double tail_mean = 0.0;     ///< mean of the measure beyond CaR(q)
  double mean = 0.0;
  double max = 0.0;
};

/// Computes CaR over every *completed* job in the collector (fulfilled and
/// late — rejections have no execution to measure). `quantile` in (0, 100).
[[nodiscard]] CarReport computation_at_risk(const Collector& collector,
                                            CarMeasure measure,
                                            double quantile = 95.0);

/// Same, over a pre-extracted sample (for tests / custom filters).
[[nodiscard]] CarReport computation_at_risk(std::vector<double> sample,
                                            CarMeasure measure,
                                            double quantile = 95.0);

}  // namespace librisk::metrics
