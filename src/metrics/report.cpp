#include "metrics/report.hpp"

#include <ostream>

#include "support/table.hpp"

namespace librisk::metrics {

void print_summary(std::ostream& out, const std::string& label, const RunSummary& s) {
  table::Table t({"metric", "value"});
  t.add_row({"submitted", std::to_string(s.submitted)});
  t.add_row({"accepted", std::to_string(s.accepted)});
  t.add_row({"rejected at submit", std::to_string(s.rejected_at_submit)});
  t.add_row({"rejected at dispatch", std::to_string(s.rejected_at_dispatch)});
  t.add_row({"fulfilled in time", std::to_string(s.fulfilled)});
  t.add_row({"completed late", std::to_string(s.completed_late)});
  if (s.killed > 0) t.add_row({"killed at estimate", std::to_string(s.killed)});
  t.add_row({"fulfilled %", table::pct(s.fulfilled_pct)});
  t.add_row({"avg slowdown (fulfilled)", table::num(s.avg_slowdown_fulfilled)});
  t.add_row({"fulfilled % (high urgency)", table::pct(s.fulfilled_pct_high_urgency)});
  t.add_row({"fulfilled % (low urgency)", table::pct(s.fulfilled_pct_low_urgency)});
  t.add_row({"avg delay of late jobs (s)", table::num(s.avg_delay_late, 0)});
  t.add_row({"makespan (days)", table::num(s.makespan / 86400.0, 2)});
  if (s.utilization > 0.0) t.add_row({"utilization", table::pct(100.0 * s.utilization)});
  out << "== " << label << " ==\n" << t.str();
}

void print_comparison(std::ostream& out, const std::vector<LabelledSummary>& runs) {
  table::Table t({"policy", "fulfilled %", "avg slowdown", "accepted", "rejected",
                  "late", "high-urg %", "low-urg %"});
  for (const auto& run : runs) {
    const RunSummary& s = run.summary;
    t.add_row({run.label, table::pct(s.fulfilled_pct),
               table::num(s.avg_slowdown_fulfilled),
               std::to_string(s.accepted),
               std::to_string(s.rejected_at_submit + s.rejected_at_dispatch),
               std::to_string(s.completed_late),
               table::pct(s.fulfilled_pct_high_urgency),
               table::pct(s.fulfilled_pct_low_urgency)});
  }
  out << t.str();
}

}  // namespace librisk::metrics
