#include "metrics/car.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace librisk::metrics {

const char* to_string(CarMeasure measure) noexcept {
  switch (measure) {
    case CarMeasure::ResponseTime: return "response_time";
    case CarMeasure::Slowdown: return "slowdown";
  }
  return "?";
}

CarReport computation_at_risk(std::vector<double> sample, CarMeasure measure,
                              double quantile) {
  LIBRISK_CHECK(quantile > 0.0 && quantile < 100.0, "quantile must be in (0, 100)");
  CarReport report;
  report.measure = measure;
  report.quantile = quantile;
  report.jobs = sample.size();
  if (sample.empty()) return report;

  std::sort(sample.begin(), sample.end());
  report.at_risk = stats::percentile(sample, quantile);
  report.max = sample.back();

  double total = 0.0;
  double tail_total = 0.0;
  std::size_t tail_count = 0;
  for (const double x : sample) {
    total += x;
    if (x >= report.at_risk) {
      tail_total += x;
      ++tail_count;
    }
  }
  report.mean = total / static_cast<double>(sample.size());
  report.tail_mean =
      tail_count == 0 ? report.at_risk : tail_total / static_cast<double>(tail_count);
  return report;
}

CarReport computation_at_risk(const Collector& collector, CarMeasure measure,
                              double quantile) {
  std::vector<double> sample;
  sample.reserve(collector.records().size());
  for (const auto& [id, record] : collector.records()) {
    if (record.fate != JobFate::FulfilledInTime &&
        record.fate != JobFate::CompletedLate)
      continue;
    sample.push_back(measure == CarMeasure::ResponseTime ? record.response_time()
                                                         : record.slowdown());
  }
  return computation_at_risk(std::move(sample), measure, quantile);
}

}  // namespace librisk::metrics
