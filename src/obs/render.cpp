#include "obs/render.hpp"

#include <charconv>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_set>

#include "obs/registry.hpp"
#include "support/check.hpp"

namespace librisk::obs {

namespace {

/// Walks several registries in order, rejecting duplicate names: merged
/// exports must never let one registry's reading shadow another's.
void visit_merged(const std::vector<const Registry*>& registries,
                  const std::function<void(const Registry::Reading&)>& fn) {
  std::unordered_set<std::string_view> seen;
  for (const Registry* registry : registries) {
    LIBRISK_CHECK(registry != nullptr, "null registry in merged export");
    registry->visit([&](const Registry::Reading& r) {
      LIBRISK_CHECK(seen.insert(r.name).second,
                    "metric '" << r.name
                               << "' appears in more than one merged registry; "
                                  "give each registry a name prefix");
      fn(r);
    });
  }
}

/// Shortest round-trip double formatting (matches the JSONL/CSV writers).
std::string fmt(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, end);
}

std::string fmt_value(const Registry::Reading& r) {
  if (r.kind == MetricKind::Histogram) {
    const Histogram& h = *r.histogram;
    std::ostringstream out;
    out << "n=" << h.count() << " mean=" << table::num(h.mean(), 4)
        << " p50=" << table::num(h.quantile(50.0), 4)
        << " p99=" << table::num(h.quantile(99.0), 4)
        << " max=" << table::num(h.max(), 4);
    return out.str();
  }
  return fmt(r.value);
}

void add_table_row(table::Table& table, const Registry::Reading& r) {
  table.add_row({std::string(r.name), std::string(to_string(r.kind)),
                 fmt_value(r), std::string(r.help)});
}

void write_openmetrics_entry(std::ostream& out, const Registry::Reading& r) {
  out << "# HELP " << r.name << " " << r.help << "\n";
  out << "# TYPE " << r.name << " " << to_string(r.kind) << "\n";
  switch (r.kind) {
    case MetricKind::Counter:
      out << r.name << "_total " << fmt(r.value) << "\n";
      break;
    case MetricKind::Gauge:
      out << r.name << " " << fmt(r.value) << "\n";
      break;
    case MetricKind::Histogram: {
      const Histogram& h = *r.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bucket_count(); ++b) {
        const std::uint64_t n = h.bucket_value(b);
        if (n == 0) continue;  // sparse: emit only occupied buckets
        cumulative += n;
        out << r.name << "_bucket{le=\"" << fmt(h.bucket_upper_edge(b))
            << "\"} " << cumulative << "\n";
      }
      out << r.name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
      out << r.name << "_sum " << fmt(h.sum()) << "\n";
      out << r.name << "_count " << h.count() << "\n";
      break;
    }
  }
}

table::Table make_metrics_table() {
  table::Table table({"metric", "kind", "value", "help"});
  table.set_align(2, table::Align::Right);
  table.set_align(3, table::Align::Left);
  return table;
}

}  // namespace

table::Table metrics_table(const Registry& registry) {
  table::Table table = make_metrics_table();
  registry.visit([&](const Registry::Reading& r) { add_table_row(table, r); });
  return table;
}

table::Table metrics_table(const std::vector<const Registry*>& registries) {
  table::Table table = make_metrics_table();
  visit_merged(registries,
               [&](const Registry::Reading& r) { add_table_row(table, r); });
  return table;
}

void write_openmetrics(std::ostream& out, const Registry& registry) {
  registry.visit(
      [&](const Registry::Reading& r) { write_openmetrics_entry(out, r); });
  out << "# EOF\n";
}

void write_openmetrics(std::ostream& out,
                       const std::vector<const Registry*>& registries) {
  visit_merged(registries, [&](const Registry::Reading& r) {
    write_openmetrics_entry(out, r);
  });
  out << "# EOF\n";
}

}  // namespace librisk::obs
