// Columnar time-series buffer for the sim-time sampler.
//
// One Series is a named table with fixed double columns; each sampler tick
// appends one row (or several — the per-node series appends one row per
// node per tick). Storage is column-major (one grow-only vector per
// column), so a whole column reads contiguously for analysis and the
// append path is a handful of push_backs with amortised-zero allocation.
//
// Export: CSV (header + rows, round-trip double formatting) and JSON Lines
// (one object per row, keys = column names) via the existing support
// writers — the same files `librisk-sim run --telemetry-out` drops.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace librisk::obs {

class Series {
 public:
  Series(std::string name, std::vector<std::string> columns);

  /// Appends one row; `row.size()` must equal `columns().size()`.
  void append(std::span<const double> row);
  void append(std::initializer_list<double> row) {
    append(std::span<const double>(row.begin(), row.size()));
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] double at(std::size_t row, std::size_t column) const;
  /// Whole column, contiguous.
  [[nodiscard]] std::span<const double> column(std::size_t column) const;
  /// Column index by name; throws CheckError when absent.
  [[nodiscard]] std::size_t column_index(std::string_view column) const;

  void write_csv(std::ostream& out) const;
  void write_jsonl(std::ostream& out) const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> data_;  ///< one vector per column
  std::size_t rows_ = 0;
};

}  // namespace librisk::obs
