#include "obs/profiler.hpp"

#include "support/table.hpp"

namespace librisk::obs {

namespace {
constexpr std::array<std::string_view, kPhaseCount> kNames = {
    "run", "admission", "settle", "sample", "metrics"};
// Parent index per phase; Run and Metrics are roots.
constexpr std::array<int, kPhaseCount> kParents = {-1, 0, 0, 0, -1};
}  // namespace

std::string_view to_string(Phase phase) noexcept {
  return kNames[static_cast<std::size_t>(phase)];
}

int phase_parent(Phase phase) noexcept {
  return kParents[static_cast<std::size_t>(phase)];
}

double ProfileReport::seconds(Phase phase) const noexcept {
  return static_cast<double>(phases[static_cast<std::size_t>(phase)].nanos) *
         1e-9;
}

std::uint64_t ProfileReport::calls(Phase phase) const noexcept {
  return phases[static_cast<std::size_t>(phase)].calls;
}

bool ProfileReport::empty() const noexcept {
  for (const PhaseTotals& t : phases)
    if (t.calls != 0) return false;
  return true;
}

std::string ProfileReport::str() const {
  table::Table table({"phase", "calls", "inclusive s", "self s"});
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseTotals& t = phases[i];
    std::uint64_t child_nanos = 0;
    for (std::size_t c = 0; c < kPhaseCount; ++c)
      if (kParents[c] == static_cast<int>(i)) child_nanos += phases[c].nanos;
    const std::uint64_t self =
        t.nanos > child_nanos ? t.nanos - child_nanos : 0;
    std::string label(kNames[i]);
    if (kParents[i] >= 0) label = "  " + label;
    table.add_row({label, table::num(static_cast<double>(t.calls), 0),
                   table::num(static_cast<double>(t.nanos) * 1e-9, 4),
                   table::num(static_cast<double>(self) * 1e-9, 4)});
  }
  return table.str();
}

}  // namespace librisk::obs
