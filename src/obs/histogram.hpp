// Log-linear histogram (HDR-histogram style) for live telemetry.
//
// Values are bucketed by (octave, linear sub-bucket): each power-of-two
// range between `min_value` and `max_value` is split into 2^precision_bits
// equal-width sub-buckets, so the relative quantile error is bounded by
// 1 / 2^(precision_bits + 1) across the whole dynamic range at O(1) record
// cost. The bucket array is sized once at construction and `record` touches
// a single counter — no allocation, no branches that depend on history —
// which is what lets hot paths (admission scans, settle passes) feed a
// histogram unconditionally when telemetry is attached.
//
// Domain handling, chosen so adversarial inputs stay well-defined:
//   - NaN: counted in nan_count(), excluded from everything else.
//   - v < min_value (zero, denormals, negatives): counted in the dedicated
//     underflow bucket; quantiles falling there report 0.0 (absolute error
//     <= min_value, relative error unbounded by design — document, don't
//     pretend).
//   - v >= max_value (including +inf): clamped into the top bucket.
//
// merge() is exact (adds count arrays), so merging is associative and
// commutative — the property that makes per-shard histograms aggregatable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace librisk::obs {

struct HistogramConfig {
  /// Lowest discernible positive value; everything smaller lands in the
  /// underflow bucket and reads back as 0.0.
  double min_value = 1e-9;
  /// Values at or above this clamp into the top bucket.
  double max_value = 1e12;
  /// Sub-buckets per octave = 2^precision_bits. 7 bits ~= 0.4% worst-case
  /// relative quantile error at ~5 KB per histogram for the default range.
  int precision_bits = 7;

  friend bool operator==(const HistogramConfig&, const HistogramConfig&) = default;
};

class Histogram {
 public:
  explicit Histogram(HistogramConfig config = {});

  /// O(1), allocation-free. See the domain-handling table above.
  void record(double value) noexcept { record_n(value, 1); }
  void record_n(double value, std::uint64_t n) noexcept;

  /// q in [0, 100]. Returns the representative (midpoint) value of the
  /// bucket holding the ceil(q/100 * count)-th smallest recording; the
  /// exact-sort quantile with the same rank convention lies in the same
  /// bucket, so the relative error is <= max_relative_error(). Returns 0
  /// when empty or when the rank falls in the underflow bucket.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Adds `other` into this histogram. Configurations must match (checked).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t nan_count() const noexcept { return nan_; }
  [[nodiscard]] std::uint64_t underflow_count() const noexcept { return underflow_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  /// Exact extremes of the recorded (non-NaN) values, not bucket edges.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Worst-case relative error of quantile() outside the underflow bucket:
  /// half a sub-bucket width, 1 / 2^(precision_bits + 1).
  [[nodiscard]] double max_relative_error() const noexcept;

  [[nodiscard]] const HistogramConfig& config() const noexcept { return config_; }

  /// Bucket iteration for export (OpenMetrics, tests). Bucket 0 is the
  /// underflow bucket with upper_edge == min_value.
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size() + 1; }
  [[nodiscard]] std::uint64_t bucket_value(std::size_t bucket) const noexcept;
  [[nodiscard]] double bucket_upper_edge(std::size_t bucket) const noexcept;

 private:
  [[nodiscard]] std::size_t index_of(double scaled) const noexcept;
  [[nodiscard]] double representative(std::size_t index) const noexcept;

  HistogramConfig config_;
  std::vector<std::uint64_t> counts_;  ///< log-linear buckets, sized once
  std::size_t sub_count_ = 0;          ///< 2^precision_bits
  double scaled_limit_ = 0.0;          ///< max_value / min_value
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t nan_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace librisk::obs
