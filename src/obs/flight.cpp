#include "obs/flight.hpp"

#include <sstream>

#include "support/table.hpp"

namespace librisk::obs {

const char* to_string(FlightVerdict verdict) noexcept {
  switch (verdict) {
    case FlightVerdict::Accepted: return "accepted";
    case FlightVerdict::Queued: return "queued";
    case FlightVerdict::Rejected: return "rejected";
    case FlightVerdict::Shed: return "shed";
    case FlightVerdict::DegradedAdmit: return "degraded_admit";
    case FlightVerdict::Deferred: return "deferred";
  }
  return "?";
}

FlightRecorder::FlightRecorder(FlightConfig config)
    : config_(config),
      queue_wait_(config_.latency),
      decide_(config_.latency) {
  ring_.reserve(config_.capacity);
}

void FlightRecorder::record(const FlightEntry& entry) {
  if (config_.capacity == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  queue_wait_.record(entry.queue_wait);
  decide_.record(entry.decide_latency);
  if (ring_.size() < config_.capacity) {
    ring_.push_back(entry);
    return;
  }
  ring_[next_] = entry;
  next_ = (next_ + 1) % config_.capacity;
}

std::vector<FlightEntry> FlightRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEntry> out;
  out.reserve(ring_.size());
  // Before the first wrap next_ is 0 and the ring is already oldest-first;
  // after it, the oldest entry is at next_.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

Histogram FlightRecorder::queue_wait_histogram() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_wait_;
}

Histogram FlightRecorder::decide_histogram() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return decide_;
}

std::string FlightRecorder::dump() const {
  // Copy out under the lock, render outside it.
  const std::vector<FlightEntry> entries = snapshot();
  Histogram waits = queue_wait_histogram();
  Histogram decides = decide_histogram();
  std::uint64_t total = recorded();

  std::ostringstream os;
  os << "flight recorder: last " << entries.size() << " of " << total
     << " decisions\n";
  if (waits.count() > 0)
    os << "  queue-wait  p50 " << table::num(waits.quantile(50.0) * 1e6, 1)
       << " us  p99 " << table::num(waits.quantile(99.0) * 1e6, 1)
       << " us  max " << table::num(waits.max() * 1e6, 1) << " us\n";
  if (decides.count() > 0)
    os << "  decide      p50 " << table::num(decides.quantile(50.0) * 1e6, 1)
       << " us  p99 " << table::num(decides.quantile(99.0) * 1e6, 1)
       << " us  max " << table::num(decides.max() * 1e6, 1) << " us\n";
  if (entries.empty()) return os.str();

  table::Table t({"job", "verdict", "reason", "node", "sigma", "margin",
                  "sim_t", "wait_us", "decide_us"});
  for (const FlightEntry& e : entries) {
    t.add_row({std::to_string(e.job_id), to_string(e.verdict),
               e.reason == trace::RejectionReason::None
                   ? "-"
                   : std::string(trace::to_string(e.reason)),
               std::to_string(e.node),
               e.sigma >= 0.0 ? table::num(e.sigma, 4) : "-",
               table::num(e.margin, 4), table::num(e.sim_time, 2),
               table::num(e.queue_wait * 1e6, 1),
               table::num(e.decide_latency * 1e6, 1)});
  }
  os << t.str();
  return os.str();
}

void FlightRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  queue_wait_ = Histogram(config_.latency);
  decide_ = Histogram(config_.latency);
}

}  // namespace librisk::obs
