#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace librisk::obs {

Histogram::Histogram(HistogramConfig config) : config_(config) {
  LIBRISK_CHECK(config_.min_value > 0.0 && std::isfinite(config_.min_value),
                "histogram min_value must be positive and finite");
  LIBRISK_CHECK(config_.max_value > config_.min_value &&
                    std::isfinite(config_.max_value),
                "histogram max_value must exceed min_value and be finite");
  LIBRISK_CHECK(config_.precision_bits >= 1 && config_.precision_bits <= 14,
                "histogram precision_bits out of range [1, 14]");
  sub_count_ = std::size_t{1} << config_.precision_bits;
  scaled_limit_ = config_.max_value / config_.min_value;
  int octaves = 0;
  (void)std::frexp(scaled_limit_, &octaves);  // scaled values span [1, 2^octaves)
  counts_.assign(static_cast<std::size_t>(octaves) * sub_count_, 0);
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::size_t Histogram::index_of(double scaled) const noexcept {
  // scaled >= 1: frexp yields m in [0.5, 1), e >= 1, so 2m - 1 in [0, 1)
  // picks the linear sub-bucket inside octave e-1.
  int e = 0;
  const double m = std::frexp(scaled, &e);
  const auto sub = static_cast<std::size_t>(
      (m * 2.0 - 1.0) * static_cast<double>(sub_count_));
  const std::size_t index =
      static_cast<std::size_t>(e - 1) * sub_count_ + std::min(sub, sub_count_ - 1);
  return std::min(index, counts_.size() - 1);
}

double Histogram::representative(std::size_t index) const noexcept {
  const std::size_t octave = index / sub_count_;
  const std::size_t sub = index % sub_count_;
  const double base = std::ldexp(1.0, static_cast<int>(octave));
  const double scaled =
      base * (1.0 + (static_cast<double>(sub) + 0.5) /
                        static_cast<double>(sub_count_));
  return scaled * config_.min_value;
}

void Histogram::record_n(double value, std::uint64_t n) noexcept {
  if (n == 0) return;
  if (std::isnan(value)) {
    nan_ += n;
    return;
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (value < config_.min_value) {  // zero, denormals, negatives
    underflow_ += n;
    return;
  }
  const double scaled = value / config_.min_value;
  if (scaled >= scaled_limit_) {
    counts_.back() += n;
    return;
  }
  counts_[index_of(scaled)] += n;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 100.0);
  // Rank convention: the ceil(q/100 * count)-th smallest value, floored at 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped / 100.0 * static_cast<double>(count_))));
  if (rank <= underflow_) return 0.0;
  std::uint64_t cumulative = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return representative(i);
  }
  return max_;  // unreachable unless counters were merged inconsistently
}

void Histogram::merge(const Histogram& other) {
  LIBRISK_CHECK(config_ == other.config_,
                "histogram merge requires identical configurations");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  underflow_ += other.underflow_;
  nan_ += other.nan_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::mean() const noexcept {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::min() const noexcept { return count_ > 0 ? min_ : 0.0; }

double Histogram::max() const noexcept { return count_ > 0 ? max_ : 0.0; }

double Histogram::max_relative_error() const noexcept {
  return 1.0 / static_cast<double>(std::size_t{2} << config_.precision_bits);
}

std::uint64_t Histogram::bucket_value(std::size_t bucket) const noexcept {
  if (bucket == 0) return underflow_;
  return bucket - 1 < counts_.size() ? counts_[bucket - 1] : 0;
}

double Histogram::bucket_upper_edge(std::size_t bucket) const noexcept {
  if (bucket == 0) return config_.min_value;
  const std::size_t index = bucket - 1;
  const std::size_t octave = index / sub_count_;
  const std::size_t sub = index % sub_count_;
  const double base = std::ldexp(1.0, static_cast<int>(octave));
  const double scaled = base * (1.0 + (static_cast<double>(sub) + 1.0) /
                                          static_cast<double>(sub_count_));
  return scaled * config_.min_value;
}

}  // namespace librisk::obs
