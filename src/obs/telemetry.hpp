// Telemetry: the per-run observability hub.
//
// One Telemetry owns a metrics Registry, a wall-clock PhaseProfiler, a set
// of named time Series, and the sampler callbacks that fill them. It is
// *borrowed* by the scheduler/executors through PolicyOptions (the same
// ownership model as trace::Recorder): components that receive a non-null
// pointer register their counters as pull metrics and contribute sampler
// closures; a null pointer costs one predictable branch per hook site.
//
// Sampling runs on a sim-time metronome (Simulator::set_metronome): when
// `sample_period > 0`, ticks fire inside the dispatch loop at nominal times
// k * period, *before* the first event at-or-after each tick, observing
// pre-event state. Ticks consume no event-queue sequence numbers and
// schedule nothing — which is what makes a telemetry-on run byte-identical
// to a telemetry-off run at the .lrt trace level (tested). finish() takes
// one terminal sample at end-of-run so cumulative columns always reach the
// final totals even when the run length is not a multiple of the period.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/series.hpp"
#include "sim/types.hpp"

namespace librisk::sim {
class Simulator;
}

namespace librisk::obs {

struct TelemetryConfig {
  /// Sim-time seconds between sampler ticks; 0 disables periodic sampling
  /// (metrics registry and profiler still work — finish() then records the
  /// single terminal sample).
  double sample_period = 0.0;
  /// Name prefix for every metric registered in this hub's registry (e.g.
  /// "cluster3_"), so per-shard hubs merge into one export collision-free
  /// (obs/render.hpp merged overloads). Empty = unprefixed, the default.
  std::string metric_prefix = {};
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryConfig& config() const noexcept { return config_; }
  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }
  [[nodiscard]] PhaseProfiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] const PhaseProfiler& profiler() const noexcept { return profiler_; }

  /// Creates an owned series; the reference is stable for this Telemetry's
  /// lifetime. Names must be unique.
  Series& add_series(std::string name, std::vector<std::string> columns);
  /// Series by name; nullptr when absent.
  [[nodiscard]] Series* find_series(std::string_view name) noexcept;
  [[nodiscard]] const Series* find_series(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<std::unique_ptr<Series>>& series() const noexcept {
    return series_;
  }

  /// Registers a sampler called once per tick with the sample time.
  /// Samplers must only read simulation state — scheduling events or
  /// mutating components from a sampler is a contract violation.
  void add_sampler(std::function<void(sim::SimTime)> fn);

  /// Attaches to a simulator: installs the metronome (when sample_period
  /// > 0) and registers the event-queue depth gauge. Call once, after all
  /// components registered their samplers, before simulator.run().
  void arm(sim::Simulator& simulator);

  /// Terminal sample at end-of-run time `now` (skipped when a periodic
  /// tick already sampled exactly `now`, or when there are no samplers).
  void finish(sim::SimTime now);

  /// End-of-run detach: freezes every pull metric at its terminal value
  /// and drops the sampler closures, both of which borrow the scheduler /
  /// executor / simulator. After seal() the hub is safe to read, render
  /// and write_dir() even once those components are destroyed (the
  /// scheduler stack and simulator usually die inside exp::run_jobs while
  /// the caller's Telemetry lives on). run_trace calls this; idempotent.
  void seal();

  /// Number of sampler ticks taken (periodic + terminal).
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

  /// Writes everything under `dir` (created if needed): one `<series>.csv`
  /// and `<series>.jsonl` per series, `metrics.txt` (OpenMetrics) and
  /// `profile.txt`.
  void write_dir(const std::filesystem::path& dir) const;

 private:
  void tick(sim::SimTime t);

  TelemetryConfig config_;
  Registry registry_;
  PhaseProfiler profiler_;
  std::vector<std::unique_ptr<Series>> series_;
  std::vector<std::function<void(sim::SimTime)>> samplers_;
  std::uint64_t samples_ = 0;
  sim::SimTime last_sample_ = -1.0;
  bool armed_ = false;
};

}  // namespace librisk::obs
