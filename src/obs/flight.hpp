// Flight recorder: the last N admission decisions with wall-clock timing,
// kept in a fixed ring for post-hoc incident diagnosis (docs/OBSERVABILITY.md
// "Flight recorder").
//
// The concurrent gateway (core::AdmissionGateway) decides jobs on its drive
// thread while producers only see a coarse SubmitStatus. When a shed spike
// or a latency stall hits, the aggregate counters say *that* it happened but
// not *what* the decisions around it looked like. The flight recorder keeps
// exactly that: a bounded ring of the most recent decisions — verdict,
// reason, chosen node, sigma, admission margin, queue wait and decide
// latency — plus two wall-clock histograms (queue-wait and decide latency)
// that the gateway merges into its registry at close() for OpenMetrics
// export.
//
// Threading: record() is called from the single drive thread; snapshot(),
// the histogram copies and dump() may be called from any thread (the
// monitoring path). A plain mutex guards the ring — the drive loop takes it
// once per decision, never under a producer-visible lock, so producers are
// unaffected (docs/CONCURRENCY.md).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "trace/event.hpp"

namespace librisk::obs {

/// Decision verdict as the gateway saw it (mirrors
/// core::AdmissionOutcome::Verdict, plus Shed for fast-rejected jobs that
/// never reached the engine — obs sits below core, so the enum is restated
/// here rather than included).
enum class FlightVerdict : std::uint8_t {
  Accepted,
  Queued,
  Rejected,
  Shed,
  /// Overload-catalog mirrors (core/overload.hpp): admitted through a
  /// licensed degraded-mode bend / parked by the salvage lane.
  DegradedAdmit,
  Deferred,
};

[[nodiscard]] const char* to_string(FlightVerdict verdict) noexcept;

/// One decision as recorded by the gateway drive loop.
struct FlightEntry {
  std::int64_t job_id = -1;
  FlightVerdict verdict = FlightVerdict::Queued;
  trace::RejectionReason reason = trace::RejectionReason::None;
  std::int32_t node = -1;     ///< placement; -1 when not accepted/reported
  double sigma = -1.0;        ///< tentative sigma; -1 when none ran
  double margin = 0.0;        ///< chosen-node admission margin (accepts)
  double sim_time = 0.0;      ///< simulation clock at the decision
  double queue_wait = 0.0;    ///< wall seconds from enqueue to decision
  double decide_latency = 0.0;  ///< wall seconds the drive loop spent deciding
};

struct FlightConfig {
  /// Ring capacity; 0 disables recording entirely (record() is a no-op and
  /// the histograms stay empty).
  std::size_t capacity = 256;
  /// Wall-clock histogram range: sub-microsecond to 100 s covers both the
  /// lock-free fast path and a badly stalled queue.
  HistogramConfig latency{.min_value = 1e-7, .max_value = 100.0};
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightConfig config = {});

  /// Drive-thread side: appends one decision, overwriting the oldest once
  /// the ring is full, and feeds the latency histograms.
  void record(const FlightEntry& entry);

  /// Monitoring side: copies the retained entries, oldest first.
  [[nodiscard]] std::vector<FlightEntry> snapshot() const;
  /// Decisions ever offered to record() (>= snapshot().size()).
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] const FlightConfig& config() const noexcept { return config_; }

  /// Histogram copies (consistent under the ring lock). Empty-config copies
  /// when disabled.
  [[nodiscard]] Histogram queue_wait_histogram() const;
  [[nodiscard]] Histogram decide_histogram() const;

  /// Human rendering of snapshot() plus the latency quantiles — what the
  /// gateway writes on a shed spike and `replay` prints on demand.
  [[nodiscard]] std::string dump() const;

  void clear();

 private:
  FlightConfig config_;
  mutable std::mutex mutex_;
  std::vector<FlightEntry> ring_;  ///< fixed size once full; next_ wraps
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
  Histogram queue_wait_;
  Histogram decide_;
};

}  // namespace librisk::obs
