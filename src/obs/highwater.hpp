// Lock-free high-water mark: concurrent writers race to raise it, readers
// see the maximum ever observed. The gateway uses one per contended gauge
// (queue depth, in-flight share) where a plain Gauge would need a lock to
// keep "last written" meaningful across threads — for a watermark only the
// max matters, and compare-exchange gives exactly that.
#pragma once

#include <atomic>
#include <cstdint>

namespace librisk::obs {

class HighWater {
 public:
  /// Raises the mark to at least `value`. Wait-free for readers; writers
  /// loop only while the mark is being raised past them by someone else,
  /// in which case their own update is already subsumed.
  void observe(std::uint64_t value) noexcept {
    std::uint64_t seen = mark_.load(std::memory_order_relaxed);
    while (value > seen &&
           !mark_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return mark_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> mark_{0};
};

}  // namespace librisk::obs
