#include "obs/explain.hpp"

#include <algorithm>
#include <sstream>

#include "support/table.hpp"

namespace librisk::obs {

ExplainRecorder::ExplainRecorder(ExplainConfig config) : config_(config) {}

void ExplainRecorder::begin(sim::SimTime time, std::int64_t job_id,
                            int num_procs, double deadline, double estimate) {
  current_ = DecisionExplain{};
  current_.time = time;
  current_.job_id = job_id;
  current_.num_procs = num_procs;
  current_.deadline = deadline;
  current_.estimate = estimate;
  in_flight_ = true;
}

void ExplainRecorder::node(const NodeMargin& m) {
  // Extremes fold every sigma evaluation, retained or not: the stability
  // interval must certify the complete verdict sequence.
  if (m.sigma >= 0.0) {
    if (m.suitable) {
      extremes_.pass_max = std::max(extremes_.pass_max, m.sigma);
      ++extremes_.passes;
    } else if (m.test == trace::RejectionReason::RiskSigma) {
      extremes_.fail_min = std::min(extremes_.fail_min, m.sigma);
      ++extremes_.fails;
    }
  }
  if (!in_flight_) return;
  current_.nodes.push_back(m);
}

namespace {

bool retained(const ExplainConfig& config, const DecisionExplain& d) noexcept {
  if (config.capacity == 0) return false;
  if (config.only_job >= 0 && d.job_id != config.only_job) return false;
  if (config.only_rejections && d.accepted) return false;
  return true;
}

}  // namespace

void ExplainRecorder::finish_accept(std::int32_t chosen_node,
                                    double chosen_margin, int suitable) {
  if (!in_flight_) return;
  in_flight_ = false;
  current_.accepted = true;
  current_.reason = trace::RejectionReason::None;
  current_.suitable = suitable;
  current_.chosen_node = chosen_node;
  current_.margin = chosen_margin;
  ++recorded_;
  if (!retained(config_, current_)) {
    ++dropped_;
    return;
  }
  if (!config_.keep_nodes) current_.nodes.clear();
  ring_.push_back(std::move(current_));
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
}

void ExplainRecorder::finish_reject(trace::RejectionReason reason,
                                    int suitable, double job_margin) {
  if (!in_flight_) return;
  in_flight_ = false;
  current_.accepted = false;
  current_.reason = reason;
  current_.suitable = suitable;
  current_.chosen_node = -1;
  current_.margin = job_margin;
  ++recorded_;
  if (!retained(config_, current_)) {
    ++dropped_;
    return;
  }
  if (!config_.keep_nodes) current_.nodes.clear();
  ring_.push_back(std::move(current_));
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
}

const DecisionExplain* ExplainRecorder::find(std::int64_t job_id) const noexcept {
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it)
    if (it->job_id == job_id) return &*it;
  return nullptr;
}

void ExplainRecorder::clear() {
  ring_.clear();
  in_flight_ = false;
  extremes_ = SigmaExtremes{};
  recorded_ = 0;
  dropped_ = 0;
}

double required_improvement(const DecisionExplain& d) noexcept {
  return d.accepted ? 0.0 : std::max(0.0, -d.margin);
}

std::string describe(const DecisionExplain& d) {
  std::ostringstream os;
  os << "job " << d.job_id << " @ t=" << d.time << "  (procs=" << d.num_procs
     << ", deadline=" << d.deadline << ", estimate=" << d.estimate << ")\n";
  if (d.accepted) {
    os << "  ACCEPTED on node " << d.chosen_node << " (" << d.suitable
       << " suitable node(s); chosen-node margin " << d.margin << ")\n";
  } else {
    os << "  REJECTED: " << trace::to_string(d.reason) << " (" << d.suitable
       << '/' << d.num_procs << " suitable nodes; job margin " << d.margin
       << ")\n";
    const double need = required_improvement(d);
    if (need > 0.0)
      os << "  to admit: the decisive test needed " << need
         << " more headroom on " << (d.num_procs - d.suitable)
         << " more node(s)\n";
  }
  if (!d.nodes.empty()) {
    table::Table t({"node", "verdict", "test", "sigma", "share", "margin"});
    for (const NodeMargin& m : d.nodes) {
      t.add_row({std::to_string(m.node), m.suitable ? "ok" : "fail",
                 m.suitable ? "-" : std::string(trace::to_string(m.test)),
                 m.sigma >= 0.0 ? table::num(m.sigma, 4) : "-",
                 m.share >= 0.0 ? table::num(m.share, 4) : "-",
                 table::num(m.margin, 4)});
    }
    os << t.str();
  }
  return os.str();
}

}  // namespace librisk::obs
