// Decision provenance: per-submission margin records (docs/OBSERVABILITY.md
// "Decision provenance & margins").
//
// The admission path decides with inequalities — total share vs capacity
// (Eq. 2), sigma vs the risk threshold (Eq. 6), best-case finish vs the
// deadline — but the aggregate surfaces only keep the verdicts. An
// ExplainRecorder, attached through Hooks::explain, captures the *margins*:
// for every submission, each candidate node the scan touched with the
// signed headroom of its decisive test, plus a job-level margin that says
// what it would have taken to flip the decision. Detached it costs the hot
// path one pointer compare per submission (the same contract as
// trace::Recorder); attached it never changes a decision — it forces the
// scan to compute exact sigmas (disabling the batch spread-bound skip,
// exactly like tracing does), which alters effort counters but is proven
// decision-neutral (tests/test_explain.cpp holds traces byte-identical).
//
// Margin sign convention (shared with trace Event::margin, see
// docs/TRACING.md "Margins"): margin >= 0 means the test passed with that
// much slack, margin < 0 means it failed by that much.
//   TotalShare node:  capacity - total_share_after_acceptance
//   ZeroRisk node:    sigma_threshold - sigma   (tolerance excluded: the
//                     engine's test is sigma <= threshold + tolerance, so a
//                     node passes iff margin >= -tolerance)
//   Deadline reject:  allowed_finish - best_case_finish
//   Job-level reject: -(k-th smallest node deficit), k = num_procs -
//                     suitable_count — the smallest per-node improvement
//                     that would have yielded enough suitable nodes.
//
// The recorder also folds every sigma evaluation into running extremes
// (SigmaExtremes): the largest sigma that passed and the smallest that
// failed. Those two numbers certify a threshold interval on which *every*
// verdict — hence the whole decision trajectory — is invariant, which is
// what exp::sweep_sigma_thresholds exploits to recompute the paper's
// risk-knob curve from one run (docs/MODEL.md "threshold stability").
//
// Thread affinity: single-threaded, called only from the thread driving the
// simulator (the gateway's drive thread in concurrent front-ends), like
// every other hook.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "trace/event.hpp"

namespace librisk::obs {

/// One candidate node's admission-test outcome inside one decision.
struct NodeMargin {
  std::int32_t node = -1;
  bool suitable = false;
  /// The failed test when !suitable; None when suitable.
  trace::RejectionReason test = trace::RejectionReason::None;
  /// Sigma the test saw; -1 when no sigma was computed (TotalShare).
  double sigma = -1.0;
  /// Eq. 2 fit key (total share after acceptance); -1 when not computed.
  double share = -1.0;
  /// Signed headroom of the decisive test (see header comment).
  double margin = 0.0;
};

/// One admission decision with its full margin context.
struct DecisionExplain {
  std::int64_t job_id = -1;
  sim::SimTime time = 0.0;
  int num_procs = 1;
  double deadline = 0.0;  ///< relative deadline at submission
  double estimate = 0.0;  ///< scheduler runtime estimate at submission
  bool accepted = false;
  trace::RejectionReason reason = trace::RejectionReason::None;
  int suitable = 0;            ///< suitable nodes the scan found
  std::int32_t chosen_node = -1;  ///< first chosen node (accepts)
  /// Job-level signed margin: accepts carry the chosen node's headroom,
  /// rejects carry -(smallest improvement that would have admitted), see
  /// header comment. 0.0 when no margin applies (e.g. NoSuitableNode).
  double margin = 0.0;
  /// Per-node margins in scan order; empty for policies without a node
  /// scan (EDF family) or when ExplainConfig::keep_nodes is off.
  std::vector<NodeMargin> nodes;
};

/// Running extremes over every sigma evaluation a recorder observed. The
/// zero-risk test is sigma <= threshold + tolerance, monotone in sigma, so
/// all verdicts — and with them the whole deterministic decision trajectory
/// — are unchanged for any probe threshold T' with
///   pass_max <= T' + tolerance  and  !(fail_min <= T' + tolerance),
/// evaluated in the engine's own floating-point expressions (covers()).
struct SigmaExtremes {
  double pass_max = -std::numeric_limits<double>::infinity();
  double fail_min = std::numeric_limits<double>::infinity();
  std::uint64_t passes = 0;
  std::uint64_t fails = 0;

  /// True when every recorded sigma verdict is provably identical at
  /// `threshold` (same tolerance as the recorded run).
  [[nodiscard]] bool covers(double threshold, double tolerance) const noexcept {
    const bool passes_hold = passes == 0 || pass_max <= threshold + tolerance;
    const bool fails_hold = fails == 0 || !(fail_min <= threshold + tolerance);
    return passes_hold && fails_hold;
  }
};

struct ExplainConfig {
  /// Decisions retained (ring; the oldest is dropped). 0 keeps nothing —
  /// extremes and counts are still maintained, which is all the
  /// counterfactual sweep needs.
  std::size_t capacity = 256;
  /// Retain only this job's decisions (-1 = all). Filters retention only;
  /// extremes always see every evaluation.
  std::int64_t only_job = -1;
  /// Retain only rejections.
  bool only_rejections = false;
  /// Keep the per-node margin vectors (the bulk of the memory).
  bool keep_nodes = true;
};

class ExplainRecorder {
 public:
  explicit ExplainRecorder(ExplainConfig config = {});

  // ---- recording protocol (scheduler-facing, one decision at a time) ----

  /// Opens a decision record at submission.
  void begin(sim::SimTime time, std::int64_t job_id, int num_procs,
             double deadline, double estimate);
  /// Adds one evaluated node; also folds sigma into the extremes.
  void node(const NodeMargin& m);
  /// Closes the open record as an acceptance.
  void finish_accept(std::int32_t chosen_node, double chosen_margin,
                     int suitable);
  /// Closes the open record as a rejection. `job_margin` follows the
  /// job-level convention above (<= 0).
  void finish_reject(trace::RejectionReason reason, int suitable,
                     double job_margin);

  // ---- queries ----

  [[nodiscard]] const ExplainConfig& config() const noexcept { return config_; }
  /// Retained decisions, oldest first.
  [[nodiscard]] const std::deque<DecisionExplain>& decisions() const noexcept {
    return ring_;
  }
  /// Most recent retained decision for `job_id`; nullptr when absent.
  [[nodiscard]] const DecisionExplain* find(std::int64_t job_id) const noexcept;
  [[nodiscard]] const SigmaExtremes& sigma_extremes() const noexcept {
    return extremes_;
  }
  /// Decisions offered for retention / dropped by capacity or filters.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  void clear();

 private:
  ExplainConfig config_;
  std::deque<DecisionExplain> ring_;
  DecisionExplain current_;
  bool in_flight_ = false;
  SigmaExtremes extremes_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The smallest per-node improvement that would have admitted a rejected
/// job (0.0 for accepted decisions): max(0, -margin) in the job-level
/// convention.
[[nodiscard]] double required_improvement(const DecisionExplain& d) noexcept;

/// Multi-line human rendering: verdict, job-level margin, what it would
/// have taken, and the per-node margin table (when retained). Shared by
/// `librisk-sim explain` and `trace explain`.
[[nodiscard]] std::string describe(const DecisionExplain& d);

}  // namespace librisk::obs
