#include "obs/series.hpp"

#include <ostream>

#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/json.hpp"

namespace librisk::obs {

Series::Series(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  LIBRISK_CHECK(!name_.empty(), "series name must not be empty");
  LIBRISK_CHECK(!columns_.empty(), "series needs at least one column");
  data_.resize(columns_.size());
}

void Series::append(std::span<const double> row) {
  LIBRISK_CHECK(row.size() == columns_.size(),
                "series '" << name_ << "' expects " << columns_.size()
                           << " columns, got " << row.size());
  for (std::size_t c = 0; c < row.size(); ++c) data_[c].push_back(row[c]);
  ++rows_;
}

double Series::at(std::size_t row, std::size_t column) const {
  LIBRISK_CHECK(row < rows_ && column < columns_.size(),
                "series '" << name_ << "' index out of range");
  return data_[column][row];
}

std::span<const double> Series::column(std::size_t column) const {
  LIBRISK_CHECK(column < columns_.size(),
                "series '" << name_ << "' column out of range");
  return data_[column];
}

std::size_t Series::column_index(std::string_view column) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    if (columns_[c] == column) return c;
  LIBRISK_CHECK(false, "series '" << name_ << "' has no column '" << column << "'");
  return 0;
}

void Series::write_csv(std::ostream& out) const {
  csv::Writer writer(out);
  std::vector<std::string> fields(columns_.begin(), columns_.end());
  writer.header(fields);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c)
      fields[c] = csv::Writer::field(data_[c][r]);
    writer.row(fields);
  }
}

void Series::write_jsonl(std::ostream& out) const {
  json::LineWriter writer(out);
  for (std::size_t r = 0; r < rows_; ++r) {
    writer.begin();
    for (std::size_t c = 0; c < columns_.size(); ++c)
      writer.field(columns_[c], data_[c][r]);
    writer.end();
  }
}

}  // namespace librisk::obs
