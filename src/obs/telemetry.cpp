#include "obs/telemetry.hpp"

#include <fstream>

#include "obs/render.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace librisk::obs {

Telemetry::Telemetry(TelemetryConfig config)
    : config_(std::move(config)), registry_(config_.metric_prefix) {
  LIBRISK_CHECK(config_.sample_period >= 0.0,
                "sample_period must be >= 0, got " << config_.sample_period);
}

Series& Telemetry::add_series(std::string name,
                              std::vector<std::string> columns) {
  LIBRISK_CHECK(find_series(name) == nullptr,
                "series '" << name << "' already exists");
  series_.push_back(
      std::make_unique<Series>(std::move(name), std::move(columns)));
  return *series_.back();
}

Series* Telemetry::find_series(std::string_view name) noexcept {
  for (auto& s : series_)
    if (s->name() == name) return s.get();
  return nullptr;
}

const Series* Telemetry::find_series(std::string_view name) const noexcept {
  for (const auto& s : series_)
    if (s->name() == name) return s.get();
  return nullptr;
}

void Telemetry::add_sampler(std::function<void(sim::SimTime)> fn) {
  LIBRISK_CHECK(fn != nullptr, "sampler must not be null");
  samplers_.push_back(std::move(fn));
}

void Telemetry::tick(sim::SimTime t) {
  ScopedPhase scope(&profiler_, Phase::Sample);
  for (auto& sampler : samplers_) sampler(t);
  ++samples_;
  last_sample_ = t;
}

void Telemetry::arm(sim::Simulator& simulator) {
  LIBRISK_CHECK(!armed_, "telemetry armed twice");
  armed_ = true;
  registry_.gauge_fn("event_queue_depth", "live events pending in the queue",
                     [&simulator] {
                       return static_cast<double>(simulator.queue().pending());
                     });
  if (config_.sample_period > 0.0)
    simulator.set_metronome(config_.sample_period,
                            [this](sim::SimTime t) { tick(t); });
}

void Telemetry::finish(sim::SimTime now) {
  if (samplers_.empty()) return;
  if (samples_ > 0 && last_sample_ == now) return;
  tick(now);
}

void Telemetry::seal() {
  registry_.materialize();
  samplers_.clear();
}

void Telemetry::write_dir(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& s : series_) {
    {
      std::ofstream out(dir / (s->name() + ".csv"));
      LIBRISK_CHECK(out.good(), "cannot write series csv for '" << s->name() << "'");
      s->write_csv(out);
    }
    {
      std::ofstream out(dir / (s->name() + ".jsonl"));
      LIBRISK_CHECK(out.good(), "cannot write series jsonl for '" << s->name() << "'");
      s->write_jsonl(out);
    }
  }
  {
    std::ofstream out(dir / "metrics.txt");
    LIBRISK_CHECK(out.good(), "cannot write metrics.txt");
    write_openmetrics(out, registry_);
  }
  {
    std::ofstream out(dir / "profile.txt");
    LIBRISK_CHECK(out.good(), "cannot write profile.txt");
    out << profiler_.report().str();
  }
}

}  // namespace librisk::obs
