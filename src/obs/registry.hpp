// Metrics registry: named counters, gauges and histograms with stable
// handles, plus pull-mode metrics whose value is read from a callback at
// render/sample time.
//
// Push metrics (counter/gauge/histogram) hand back a reference the owner
// increments directly — the registry never sits on a hot path. Pull metrics
// exist so already-maintained counters (core::AdmissionStats,
// cluster::KernelStats, queue depth) can be surfaced without mirroring or
// extra hot-path work: the component registers a closure, and the live value
// is read only when someone looks (table render, OpenMetrics export, a
// sampler tick).
//
// Registration order is preserved — visit() and the renderers are
// deterministic, which keeps golden-output tests honest. Names must be
// unique; use OpenMetrics-style snake_case ("admission_accepted").
//
// A registry may carry a name prefix ("cluster3_"): every registered name is
// stored and exported prefixed, so K per-component registries (one per
// federation shard) merge into a single metrics_table/OpenMetrics export
// without collisions — the merged renderers in obs/render.hpp reject
// duplicate names instead of silently shadowing one reading with another.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace librisk::obs {

/// Monotonic event count. Plain member increment, no indirection.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

class Registry {
 public:
  Registry() = default;
  /// Registry whose every metric name is stored as `prefix + name`
  /// (lookups via contains()/reading() use the full, prefixed name).
  explicit Registry(std::string name_prefix) : prefix_(std::move(name_prefix)) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] const std::string& name_prefix() const noexcept { return prefix_; }

  /// Owning registrations; the returned reference is stable for the
  /// registry's lifetime. Names must be unique across all metric kinds.
  Counter& counter(std::string name, std::string help);
  Gauge& gauge(std::string name, std::string help);
  Histogram& histogram(std::string name, std::string help,
                       HistogramConfig config = {});

  /// Pull-mode registrations: `fn` is invoked at read time and must stay
  /// valid for the registry's lifetime (the usual owner is the component
  /// whose counters it reads, which outlives the run).
  void counter_fn(std::string name, std::string help,
                  std::function<std::uint64_t()> fn);
  void gauge_fn(std::string name, std::string help, std::function<double()> fn);

  /// One metric's current reading. `histogram` is non-null only for
  /// histogram metrics (value then carries the recording count).
  struct Reading {
    std::string_view name;
    std::string_view help;
    MetricKind kind{};
    double value = 0.0;
    const Histogram* histogram = nullptr;
  };

  /// Visits every metric in registration order with its live value.
  void visit(const std::function<void(const Reading&)>& fn) const;

  /// Freezes every pull metric at its current value and drops the
  /// callbacks, so readings stay valid after the components that
  /// registered them are destroyed. Called by the end-of-run hook
  /// (Telemetry::seal); idempotent.
  void materialize();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// True when `name` is already registered.
  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  /// Current reading of one metric by name; throws CheckError when absent.
  [[nodiscard]] Reading reading(std::string_view name) const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind{};
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
  };

  Entry& add(std::string name, std::string help, MetricKind kind);
  [[nodiscard]] Reading read(const Entry& entry) const;

  std::string prefix_;
  std::vector<Entry> entries_;
};

}  // namespace librisk::obs
