// Renderers over a Registry: the one plain-text metrics table every CLI
// surface shares, and OpenMetrics text exposition for external tooling.
#pragma once

#include <iosfwd>

#include "support/table.hpp"

namespace librisk::obs {

class Registry;

/// All metrics as an aligned table (name, kind, value, help). Histograms
/// render count/mean/p50/p99/max in the value cell.
[[nodiscard]] table::Table metrics_table(const Registry& registry);

/// OpenMetrics text exposition (counters as `<name>_total`, gauges as-is,
/// histograms as cumulative `_bucket{le="..."}` plus `_sum`/`_count`).
void write_openmetrics(std::ostream& out, const Registry& registry);

}  // namespace librisk::obs
