// Renderers over a Registry: the one plain-text metrics table every CLI
// surface shares, and OpenMetrics text exposition for external tooling.
//
// The multi-registry overloads merge several registries (the federation's
// per-shard hubs) into one export, preserving per-registry registration
// order. Metric names must be unique across *all* inputs — a duplicate
// throws CheckError instead of silently shadowing one reading with another
// (give each registry a name prefix, registry.hpp).
#pragma once

#include <iosfwd>
#include <vector>

#include "support/table.hpp"

namespace librisk::obs {

class Registry;

/// All metrics as an aligned table (name, kind, value, help). Histograms
/// render count/mean/p50/p99/max in the value cell.
[[nodiscard]] table::Table metrics_table(const Registry& registry);
[[nodiscard]] table::Table metrics_table(
    const std::vector<const Registry*>& registries);

/// OpenMetrics text exposition (counters as `<name>_total`, gauges as-is,
/// histograms as cumulative `_bucket{le="..."}` plus `_sum`/`_count`).
void write_openmetrics(std::ostream& out, const Registry& registry);
void write_openmetrics(std::ostream& out,
                       const std::vector<const Registry*>& registries);

}  // namespace librisk::obs
