// Wall-clock phase profiler: RAII scoped timers over the simulation's
// coarse phases, so a perf PR can attribute time (admission scan vs settle
// vs everything else in the event loop) without external tooling.
//
// Phases form a fixed two-level hierarchy:
//
//   run                 the whole simulator.run() drain
//     admission         Libra-family submission handling
//     settle            time-shared executor settle passes
//     sample            telemetry sampler ticks
//   metrics             post-run summarisation
//
// Times are *inclusive*: a settle triggered from inside an admission scan
// (executor sync) is counted in both phases, and the report's "self" column
// for `run` subtracts child totals, clamped at zero. This keeps the timers
// two instructions of bookkeeping instead of a stack — the caveats are
// documented in docs/OBSERVABILITY.md, not hidden.
//
// A null PhaseProfiler* makes ScopedPhase a no-op (one predictable branch),
// the same contract as trace::Recorder — which is how the hot paths stay
// unperturbed when telemetry is not attached.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace librisk::obs {

enum class Phase : std::uint8_t { Run = 0, Admission, Settle, Sample, Metrics };
inline constexpr std::size_t kPhaseCount = 5;

[[nodiscard]] std::string_view to_string(Phase phase) noexcept;
/// Parent phase index in the report hierarchy; -1 for roots.
[[nodiscard]] int phase_parent(Phase phase) noexcept;

/// One phase's accumulated wall-clock cost.
struct PhaseTotals {
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;  ///< inclusive
};

/// Copyable snapshot of a finished run's profile (lives in ScenarioResult).
struct ProfileReport {
  std::array<PhaseTotals, kPhaseCount> phases{};

  [[nodiscard]] double seconds(Phase phase) const noexcept;
  [[nodiscard]] std::uint64_t calls(Phase phase) const noexcept;
  /// True when any phase recorded time (i.e. a profiler was attached).
  [[nodiscard]] bool empty() const noexcept;
  /// Hierarchical plain-text rendering (phase, calls, inclusive, self).
  [[nodiscard]] std::string str() const;
};

class PhaseProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  void add(Phase phase, std::uint64_t nanos) noexcept {
    auto& t = totals_[static_cast<std::size_t>(phase)];
    ++t.calls;
    t.nanos += nanos;
  }

  [[nodiscard]] ProfileReport report() const { return ProfileReport{totals_}; }

 private:
  std::array<PhaseTotals, kPhaseCount> totals_{};
};

/// RAII timer; safe (and free) on a null profiler.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase) noexcept
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = PhaseProfiler::Clock::now();
  }
  ~ScopedPhase() {
    if (profiler_ != nullptr)
      profiler_->add(phase_,
                     static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             PhaseProfiler::Clock::now() - start_)
                             .count()));
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
  PhaseProfiler::Clock::time_point start_{};
};

}  // namespace librisk::obs
