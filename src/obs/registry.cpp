#include "obs/registry.hpp"

#include "support/check.hpp"

namespace librisk::obs {

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

Registry::Entry& Registry::add(std::string name, std::string help,
                               MetricKind kind) {
  LIBRISK_CHECK(!name.empty(), "metric name must not be empty");
  name.insert(0, prefix_);
  LIBRISK_CHECK(!contains(name), "metric '" << name << "' already registered");
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.kind = kind;
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Counter& Registry::counter(std::string name, std::string help) {
  Entry& e = add(std::move(name), std::move(help), MetricKind::Counter);
  e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(std::string name, std::string help) {
  Entry& e = add(std::move(name), std::move(help), MetricKind::Gauge);
  e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(std::string name, std::string help,
                               HistogramConfig config) {
  Entry& e = add(std::move(name), std::move(help), MetricKind::Histogram);
  e.histogram = std::make_unique<Histogram>(config);
  return *e.histogram;
}

void Registry::counter_fn(std::string name, std::string help,
                          std::function<std::uint64_t()> fn) {
  LIBRISK_CHECK(fn != nullptr, "pull counter needs a callback");
  add(std::move(name), std::move(help), MetricKind::Counter).counter_fn =
      std::move(fn);
}

void Registry::gauge_fn(std::string name, std::string help,
                        std::function<double()> fn) {
  LIBRISK_CHECK(fn != nullptr, "pull gauge needs a callback");
  add(std::move(name), std::move(help), MetricKind::Gauge).gauge_fn =
      std::move(fn);
}

Registry::Reading Registry::read(const Entry& entry) const {
  Reading r;
  r.name = entry.name;
  r.help = entry.help;
  r.kind = entry.kind;
  switch (entry.kind) {
    case MetricKind::Counter:
      r.value = entry.counter ? static_cast<double>(entry.counter->value())
                              : static_cast<double>(entry.counter_fn());
      break;
    case MetricKind::Gauge:
      r.value = entry.gauge ? entry.gauge->value() : entry.gauge_fn();
      break;
    case MetricKind::Histogram:
      r.histogram = entry.histogram.get();
      r.value = static_cast<double>(entry.histogram->count());
      break;
  }
  return r;
}

void Registry::materialize() {
  for (Entry& entry : entries_) {
    if (entry.counter_fn) {
      entry.counter = std::make_unique<Counter>();
      entry.counter->inc(entry.counter_fn());
      entry.counter_fn = nullptr;
    }
    if (entry.gauge_fn) {
      entry.gauge = std::make_unique<Gauge>();
      entry.gauge->set(entry.gauge_fn());
      entry.gauge_fn = nullptr;
    }
  }
}

void Registry::visit(const std::function<void(const Reading&)>& fn) const {
  for (const Entry& entry : entries_) fn(read(entry));
}

bool Registry::contains(std::string_view name) const noexcept {
  for (const Entry& entry : entries_)
    if (entry.name == name) return true;
  return false;
}

Registry::Reading Registry::reading(std::string_view name) const {
  for (const Entry& entry : entries_)
    if (entry.name == name) return read(entry);
  LIBRISK_CHECK(false, "metric '" << name << "' not registered");
  return {};
}

}  // namespace librisk::obs
