#include "trace/reader.hpp"

#include <bit>
#include <fstream>
#include <sstream>

#include "support/json.hpp"
#include "trace/sink.hpp"

namespace librisk::trace {

namespace {

/// Cursor over the fully-buffered .lrt bytes. Buffering first keeps the
/// incremental checksum trivial (hash bytes as they are consumed) and makes
/// "trailing bytes" detection exact.
class LrtCursor {
 public:
  explicit LrtCursor(std::string bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }

  std::uint8_t take_u8() {
    need(1);
    const auto v = static_cast<std::uint8_t>(bytes_[pos_]);
    absorb(1);
    return v;
  }

  std::uint64_t take_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw TraceError("varint too long (corrupt trace)");
      const std::uint8_t byte = take_u8();
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t take_zigzag() { return zigzag_decode(take_varint()); }

  double take_f64() {
    need(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
              << (8 * i);
    absorb(8);
    return std::bit_cast<double>(bits);
  }

  std::string take_string(std::size_t n) {
    need(n);
    std::string s = bytes_.substr(pos_, n);
    absorb(n);
    return s;
  }

  /// Reads 8 raw bytes WITHOUT hashing them — the stored checksum itself.
  std::uint64_t take_checksum() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size())
      throw TraceError("truncated trace: wanted " + std::to_string(n) +
                       " byte(s) at offset " + std::to_string(pos_));
  }
  void absorb(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= static_cast<std::uint8_t>(bytes_[pos_ + i]);
      hash_ *= kFnvPrime;
    }
    pos_ += n;
  }

  std::string bytes_;
  std::size_t pos_ = 0;
  std::uint64_t hash_ = kFnvOffset;
};

std::string slurp(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

Event event_from_json(const json::Value& v, std::size_t line_no) {
  const auto fail = [line_no](const std::string& what) -> TraceError {
    return TraceError("JSONL trace line " + std::to_string(line_no) + ": " + what);
  };
  const json::Value* kind = v.find("kind");
  if (kind == nullptr) throw fail("missing \"kind\"");
  Event e;
  try {
    e.kind = parse_event_kind(kind->as_string());
    e.time = v.number_or("t", 0.0);
    e.job = static_cast<std::int64_t>(v.number_or("job", -1.0));
    e.node = static_cast<std::int32_t>(v.int_or("node", -1));
    e.a = v.number_or("a", 0.0);
    e.b = v.number_or("b", 0.0);
    e.margin = v.number_or("margin", 0.0);
    if (const json::Value* reason = v.find("reason"); reason != nullptr)
      e.reason = parse_rejection_reason(reason->as_string());
  } catch (const std::invalid_argument& err) {
    throw fail(err.what());
  } catch (const json::ParseError& err) {
    throw fail(err.what());
  }
  return e;
}

}  // namespace

TraceData read_lrt(std::istream& in) {
  LrtCursor cur(slurp(in));

  char magic[4];
  for (char& c : magic) c = static_cast<char>(cur.take_u8());
  if (std::string_view(magic, 4) != std::string_view(kLrtMagic, 4))
    throw TraceError("not an .lrt trace (bad magic)");
  const std::uint8_t version = cur.take_u8();
  if (version != kLrtVersionV1 && version != kLrtVersion)
    throw TraceError("unsupported .lrt version " + std::to_string(version));

  TraceData data;
  data.version = version;
  // v2 grew a header flags byte; v1 files go straight to the policy name.
  if (version >= 2) {
    const std::uint8_t flags = cur.take_u8();
    if ((flags & ~(kLrtFlagMargins | kLrtFlagOverload)) != 0)
      throw TraceError("unknown .lrt header flags " + std::to_string(flags));
    data.has_margins = (flags & kLrtFlagMargins) != 0;
    data.has_overload = (flags & kLrtFlagOverload) != 0;
  }
  const std::uint64_t name_len = cur.take_varint();
  if (name_len > 4096) throw TraceError("implausible policy-name length (corrupt trace)");
  data.meta.policy = cur.take_string(static_cast<std::size_t>(name_len));
  data.meta.seed = cur.take_varint();

  for (;;) {
    const std::uint8_t raw_kind = cur.take_u8();
    if (raw_kind == 0) break;  // end-of-stream marker
    if (!valid_event_kind(raw_kind))
      throw TraceError("unknown event kind " + std::to_string(raw_kind) +
                       " at offset " + std::to_string(cur.pos() - 1));
    Event e;
    e.kind = static_cast<EventKind>(raw_kind);
    const std::uint8_t raw_reason = cur.take_u8();
    if (!valid_rejection_reason(raw_reason))
      throw TraceError("unknown rejection reason " + std::to_string(raw_reason));
    e.reason = static_cast<RejectionReason>(raw_reason);
    e.node = static_cast<std::int32_t>(cur.take_zigzag());
    e.job = cur.take_zigzag();
    e.time = cur.take_f64();
    e.a = cur.take_f64();
    e.b = cur.take_f64();
    if (data.has_margins) e.margin = cur.take_f64();
    data.events.push_back(e);
  }

  const std::uint64_t count = cur.take_varint();
  if (count != data.events.size())
    throw TraceError("event-count mismatch: footer says " + std::to_string(count) +
                     ", stream held " + std::to_string(data.events.size()));
  const std::uint64_t expected = cur.hash();
  const std::uint64_t stored = cur.take_checksum();
  if (stored != expected) throw TraceError("checksum mismatch (corrupt trace)");
  if (cur.pos() != cur.size())
    throw TraceError("trailing bytes after trace footer");
  return data;
}

TraceData read_jsonl(std::istream& in) {
  TraceData data;
  std::string line;
  std::size_t line_no = 0;
  bool saw_meta = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const json::ParseError& err) {
      throw TraceError("JSONL trace line " + std::to_string(line_no) + ": " +
                       err.what());
    }
    if (!saw_meta) {
      if (v.string_or("trace", "") != "librisk")
        throw TraceError("not a librisk JSONL trace (missing meta line)");
      data.meta.policy = v.string_or("policy", "");
      data.meta.seed = static_cast<std::uint64_t>(v.number_or("seed", 0.0));
      data.version =
          static_cast<std::uint8_t>(v.number_or("version", kLrtVersionV1));
      data.has_margins = v.bool_or("margins", false);
      data.has_overload = v.bool_or("overload", false);
      saw_meta = true;
      continue;
    }
    data.events.push_back(event_from_json(v, line_no));
  }
  if (!saw_meta) throw TraceError("empty JSONL trace (no meta line)");
  return data;
}

TraceData read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open trace file: " + path);
  char magic[4] = {};
  in.read(magic, 4);
  const bool binary =
      in.gcount() == 4 && std::string_view(magic, 4) == std::string_view(kLrtMagic, 4);
  in.clear();
  in.seekg(0);
  return binary ? read_lrt(in) : read_jsonl(in);
}

}  // namespace librisk::trace
