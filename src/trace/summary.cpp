#include "trace/summary.hpp"

#include <ostream>

#include "support/table.hpp"

namespace librisk::trace {

TraceSummary summarize(const std::vector<Event>& events) {
  TraceSummary s;
  s.total = events.size();
  for (const Event& e : events) {
    ++s.by_kind[static_cast<std::size_t>(e.kind)];
    if (e.kind == EventKind::JobRejected)
      ++s.rejected_by_reason[static_cast<std::size_t>(e.reason)];
    else if (e.kind == EventKind::NodeEvaluated)
      ++s.node_eval_by_reason[static_cast<std::size_t>(e.reason)];
  }
  return s;
}

void print_summary(std::ostream& out, const TraceMeta& meta,
                   const TraceSummary& summary) {
  out << "policy=" << meta.policy << " seed=" << meta.seed << " events="
      << summary.total << "\n\n";

  table::Table kinds({"event", "count"});
  for (int raw = 1; raw <= kEventKindCount; ++raw) {
    const auto kind = static_cast<EventKind>(raw);
    kinds.add_row({std::string(to_string(kind)),
                   std::to_string(summary.count(kind))});
  }
  out << kinds.str();

  if (summary.count(EventKind::JobRejected) > 0) {
    out << "\nrejections by reason\n";
    table::Table reasons({"reason", "count"});
    for (int raw = 1; raw < kRejectionReasonCount; ++raw) {
      const auto reason = static_cast<RejectionReason>(raw);
      const std::uint64_t n =
          summary.rejected_by_reason[static_cast<std::size_t>(raw)];
      if (n > 0) reasons.add_row({std::string(to_string(reason)), std::to_string(n)});
    }
    out << reasons.str();
  }

  if (summary.count(EventKind::NodeEvaluated) > 0) {
    out << "\nper-node admission evaluations\n";
    table::Table evals({"outcome", "count"});
    evals.add_row({"suitable", std::to_string(summary.node_eval_by_reason[0])});
    for (int raw = 1; raw < kRejectionReasonCount; ++raw) {
      const std::uint64_t n =
          summary.node_eval_by_reason[static_cast<std::size_t>(raw)];
      if (n > 0)
        evals.add_row({std::string(to_string(static_cast<RejectionReason>(raw))),
                       std::to_string(n)});
    }
    out << evals.str();
  }
}

void print_breakdown(std::ostream& out,
                     const std::vector<std::pair<TraceMeta, TraceSummary>>& rows) {
  table::Table t({"policy", "seed", "submitted", "admitted", "rejected",
                  "finished", "killed", "share_ovf", "risk_sigma", "no_node",
                  "infeasible"});
  for (const auto& [meta, s] : rows) {
    t.add_row({meta.policy, std::to_string(meta.seed),
               std::to_string(s.count(EventKind::JobSubmitted)),
               std::to_string(s.count(EventKind::JobAdmitted)),
               std::to_string(s.count(EventKind::JobRejected)),
               std::to_string(s.count(EventKind::JobFinished)),
               std::to_string(s.count(EventKind::JobKilled)),
               std::to_string(s.rejected_by_reason[static_cast<std::size_t>(
                   RejectionReason::ShareOverflow)]),
               std::to_string(s.rejected_by_reason[static_cast<std::size_t>(
                   RejectionReason::RiskSigma)]),
               std::to_string(s.rejected_by_reason[static_cast<std::size_t>(
                   RejectionReason::NoSuitableNode)]),
               std::to_string(s.rejected_by_reason[static_cast<std::size_t>(
                   RejectionReason::DeadlineInfeasible)])});
  }
  out << t.str();
}

}  // namespace librisk::trace
