// trace::Recorder — the handle schedulers and executors emit through.
//
// A Recorder wraps one Sink behind typed emit helpers so call sites read as
// statements about what happened (`trace_->job_rejected(...)`) rather than
// struct assembly. Every helper starts with `if (!enabled_) return;` where
// enabled_ is cached at attach time from Sink::discards() — with the default
// NullSink (or no recorder at all) an emission site costs one predictable
// branch and constructs nothing, which is how the admission hot path stays
// zero-allocation and bit-identical (guarded by test_admission_equivalence
// and bench/micro_trace.cpp's <=2% budget).
//
// Ownership: the Recorder borrows the Sink; callers keep both alive for the
// duration of the run and call sink.close() (or let BinarySink's destructor)
// when done. Everything here is single-threaded, like the simulator.
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "trace/event.hpp"
#include "trace/sink.hpp"

namespace librisk::trace {

class Recorder {
 public:
  Recorder() = default;
  explicit Recorder(Sink& sink) { attach(sink); }

  void attach(Sink& sink) {
    sink_ = &sink;
    enabled_ = !sink.discards();
  }

  /// False when emissions would be discarded — callers computing extra
  /// payload (e.g. the sigma out-param in node_suitable) gate on this.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void job_submitted(sim::SimTime t, std::int64_t job, int num_procs,
                     double deadline, double estimate) {
    if (!enabled_) return;
    emit({t, job, deadline, estimate, EventKind::JobSubmitted,
          RejectionReason::None, num_procs});
  }

  /// The three decision-carrying emitters take an optional margin — the
  /// signed headroom of the decisive admission test (Event::margin). Call
  /// sites that compute no margin (FCFS/QoPS family) use the 0.0 default;
  /// the payload only reaches disk when the sink enabled margins.
  void job_admitted(sim::SimTime t, std::int64_t job, int first_node,
                    int suitable, double fit, double margin = 0.0) {
    if (!enabled_) return;
    emit({t, job, static_cast<double>(suitable), fit, EventKind::JobAdmitted,
          RejectionReason::None, first_node, margin});
  }

  void job_rejected(sim::SimTime t, std::int64_t job, RejectionReason reason,
                    int suitable, int num_procs, double margin = 0.0) {
    if (!enabled_) return;
    emit({t, job, static_cast<double>(suitable),
          static_cast<double>(num_procs), EventKind::JobRejected, reason, -1,
          margin});
  }

  void node_evaluated(sim::SimTime t, std::int64_t job, int node,
                      RejectionReason reason, double sigma, double share,
                      double margin = 0.0) {
    if (!enabled_) return;
    emit({t, job, sigma, share, EventKind::NodeEvaluated, reason, node, margin});
  }

  void job_started(sim::SimTime t, std::int64_t job, int first_node,
                   int num_nodes, double estimate) {
    if (!enabled_) return;
    emit({t, job, static_cast<double>(num_nodes), estimate,
          EventKind::JobStarted, RejectionReason::None, first_node});
  }

  void job_finished(sim::SimTime t, std::int64_t job, double lateness) {
    if (!enabled_) return;
    emit({t, job, lateness, 0.0, EventKind::JobFinished, RejectionReason::None,
          -1});
  }

  void job_killed(sim::SimTime t, std::int64_t job, double work_done) {
    if (!enabled_) return;
    emit({t, job, work_done, 0.0, EventKind::JobKilled, RejectionReason::None,
          -1});
  }

  void job_overrun(sim::SimTime t, std::int64_t job, int bumps,
                   double new_estimate) {
    if (!enabled_) return;
    emit({t, job, static_cast<double>(bumps), new_estimate,
          EventKind::JobOverrun, RejectionReason::None, -1});
  }

  void share_realloc(sim::SimTime t, int running_jobs) {
    if (!enabled_) return;
    emit({t, -1, static_cast<double>(running_jobs), 0.0,
          EventKind::ShareRealloc, RejectionReason::None, -1});
  }

  // Overload-catalog emitters (core/overload.hpp). Only a non-HardReject
  // governor reaches these, so default traces keep their pre-catalog bytes.

  /// The overload governor flipped between normal and degraded operation.
  void mode_transition(sim::SimTime t, int mode, bool engaged,
                       double utilization) {
    if (!enabled_) return;
    emit({t, -1, utilization, static_cast<double>(mode),
          EventKind::ModeTransition, RejectionReason::None, engaged ? 1 : 0});
  }

  /// DeferToSalvage parked a shortfall job; `reason` names the test that
  /// failed, `retry_time` when the salvage retry fires, `deferral` which
  /// retry this will be (1-based).
  void job_deferred(sim::SimTime t, std::int64_t job, RejectionReason reason,
                    double retry_time, int deferral) {
    if (!enabled_) return;
    emit({t, job, retry_time, static_cast<double>(deferral),
          EventKind::JobDeferred, reason, -1});
  }

  /// A degraded mode admitted a job that failed the normal test; `reason`
  /// names the test the mode was licensed to bend.
  void job_degraded_admit(sim::SimTime t, std::int64_t job,
                          RejectionReason reason, int first_node, double sigma,
                          double fit, double margin = 0.0) {
    if (!enabled_) return;
    emit({t, job, sigma, fit, EventKind::JobDegradedAdmit, reason, first_node,
          margin});
  }

 private:
  void emit(const Event& event) { sink_->write(event); }

  Sink* sink_ = nullptr;
  bool enabled_ = false;
};

}  // namespace librisk::trace
