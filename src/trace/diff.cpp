#include "trace/diff.hpp"

#include <algorithm>
#include <sstream>

namespace librisk::trace {

namespace {

/// Field-for-field event equality, with the margin payload compared only
/// when both files actually serialised one — this is what lets `trace diff`
/// hold a margin-bearing v2 trace against a v1 (or margin-free v2) trace of
/// the same run and still report "identical": the decisions are the oracle,
/// the margins are annotation.
bool events_equal(const Event& a, const Event& b, bool with_margins) noexcept {
  if (with_margins) return a == b;
  return a.time == b.time && a.job == b.job && a.a == b.a && a.b == b.b &&
         a.kind == b.kind && a.reason == b.reason && a.node == b.node;
}

}  // namespace

Divergence first_divergence(const TraceData& a, const TraceData& b) {
  Divergence d;
  if (a.meta != b.meta) {
    d.kind = Divergence::Kind::MetaDiffers;
    return d;
  }
  const bool with_margins = a.has_margins && b.has_margins;
  const std::size_t n = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!events_equal(a.events[i], b.events[i], with_margins)) {
      d.kind = Divergence::Kind::EventDiffers;
      d.index = i;
      d.has_a = d.has_b = true;
      d.a = a.events[i];
      d.b = b.events[i];
      return d;
    }
  }
  if (a.events.size() != b.events.size()) {
    d.kind = Divergence::Kind::LengthDiffers;
    d.index = n;
    d.has_a = a.events.size() > n;
    d.has_b = b.events.size() > n;
    if (d.has_a) d.a = a.events[n];
    if (d.has_b) d.b = b.events[n];
    return d;
  }
  return d;
}

std::string describe(const Event& event) {
  std::ostringstream os;
  os << "t=" << event.time << ' ' << to_string(event.kind);
  if (event.job >= 0) os << " job=" << event.job;
  if (event.node >= 0) os << " node=" << event.node;
  if (event.reason != RejectionReason::None)
    os << " reason=" << to_string(event.reason);
  os << " a=" << event.a << " b=" << event.b;
  return os.str();
}

std::string describe(const Divergence& d, const TraceData& a, const TraceData& b) {
  std::ostringstream os;
  switch (d.kind) {
    case Divergence::Kind::Identical:
      os << "traces identical (" << a.events.size() << " events)\n";
      break;
    case Divergence::Kind::MetaDiffers:
      os << "trace headers differ:\n"
         << "  A: policy=" << a.meta.policy << " seed=" << a.meta.seed << '\n'
         << "  B: policy=" << b.meta.policy << " seed=" << b.meta.seed << '\n';
      break;
    case Divergence::Kind::EventDiffers:
      os << "first divergence at event " << d.index << ":\n"
         << "  A: " << describe(d.a) << '\n'
         << "  B: " << describe(d.b) << '\n';
      break;
    case Divergence::Kind::LengthDiffers:
      os << "traces agree on the first " << d.index
         << " events, then one ends:\n"
         << "  A: "
         << (d.has_a ? describe(d.a) : "<end of trace, " +
                                           std::to_string(a.events.size()) + " events>")
         << '\n'
         << "  B: "
         << (d.has_b ? describe(d.b) : "<end of trace, " +
                                           std::to_string(b.events.size()) + " events>")
         << '\n';
      break;
  }
  return os.str();
}

}  // namespace librisk::trace
