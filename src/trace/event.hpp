// Structured event records for the decision-audit trace (docs/TRACING.md).
//
// One Event is a flat, fixed-layout record of something the simulation
// decided or executed: a job moving through its lifecycle, one node being
// evaluated during an admission scan, or the share model recomputing rates.
// Events are plain values — deterministic runs produce identical event
// sequences, which is what makes a trace file a byte-level determinism and
// equivalence oracle (trace::first_divergence, `librisk-sim trace diff`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace librisk::trace {

/// What happened. Values are part of the on-disk format (.lrt stores them
/// as a single byte); 0 is reserved as the binary end-of-stream marker.
enum class EventKind : std::uint8_t {
  JobSubmitted = 1,  ///< job arrived (node = num_procs, a = deadline, b = estimate)
  JobAdmitted = 2,   ///< admission accepted (node = first chosen, a = #suitable, b = its fit)
  JobRejected = 3,   ///< admission refused (reason set, a = #suitable, b = num_procs)
  JobStarted = 4,    ///< executor began running it (node = first node, a = #nodes, b = estimate)
  JobFinished = 5,   ///< completed (a = lateness: finish - absolute deadline)
  JobKilled = 6,     ///< terminated at its estimate (a = work done)
  JobOverrun = 7,    ///< exhausted estimate, re-estimated (a = bump count, b = new estimate)
  NodeEvaluated = 8, ///< admission probed one node (a = sigma or -1, b = total share)
  ShareRealloc = 9,  ///< proportional shares recomputed (a = #running jobs)
  /// Overload-catalog events (core/overload.hpp): emitted only when a
  /// degraded mode other than HardReject is configured, so default traces
  /// stay byte-identical to pre-catalog builds.
  ModeTransition = 10,   ///< governor flipped (node = engaged 1/0, a = utilization, b = mode index)
  JobDeferred = 11,      ///< shortfall parked for retry (reason = failed test, a = retry time, b = deferral #)
  JobDegradedAdmit = 12, ///< degraded mode admitted a shortfall (reason = test bent, node = first chosen, a = sigma or -1, b = fit)
};
inline constexpr int kEventKindCount = 12;

/// Why an admission test said no — the per-decision attribution the paper's
/// aggregate metrics hide. For NodeEvaluated events, None means the node
/// was suitable; a reason names the failed test.
enum class RejectionReason : std::uint8_t {
  None = 0,                ///< not a rejection / node suitable
  ShareOverflow = 1,       ///< Libra's Eq. 2 total-share test failed
  RiskSigma = 2,           ///< LibraRisk's sigma test (Eq. 6) failed
  NoSuitableNode = 3,      ///< structurally impossible: needs more nodes than exist
  DeadlineInfeasible = 4,  ///< estimate-based feasibility test failed (EDF/QoPS family)
};
inline constexpr int kRejectionReasonCount = 5;

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;
[[nodiscard]] std::string_view to_string(RejectionReason reason) noexcept;
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] EventKind parse_event_kind(std::string_view name);
[[nodiscard]] RejectionReason parse_rejection_reason(std::string_view name);
[[nodiscard]] bool valid_event_kind(std::uint8_t raw) noexcept;
[[nodiscard]] bool valid_rejection_reason(std::uint8_t raw) noexcept;

/// One trace record. The payload fields `a` and `b` are kind-specific (see
/// EventKind comments); fields that do not apply hold their defaults so
/// identical decisions always serialise to identical bytes.
struct Event {
  sim::SimTime time = 0.0;
  std::int64_t job = -1;  ///< -1 for events not tied to a job (ShareRealloc)
  double a = 0.0;
  double b = 0.0;
  EventKind kind = EventKind::JobSubmitted;
  RejectionReason reason = RejectionReason::None;
  std::int32_t node = -1;
  /// Signed headroom of the decisive admission test (format v2 payload,
  /// docs/TRACING.md "Margins"): >= 0 passed with that much slack, < 0
  /// failed by that much. 0.0 when the emitter computed no margin; only
  /// serialised when the sink was opened with margins enabled.
  double margin = 0.0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Run-level identification stored in every trace file's header.
struct TraceMeta {
  std::string policy;
  std::uint64_t seed = 0;

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

}  // namespace librisk::trace
