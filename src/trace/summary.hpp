// Aggregation over a trace: event-kind counts, rejection-reason histogram,
// accept/kill/finish breakdown. Backs `librisk-sim trace summary`.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "trace/reader.hpp"

namespace librisk::trace {

struct TraceSummary {
  /// Indexed by raw EventKind value (slot 0 unused).
  std::array<std::uint64_t, kEventKindCount + 1> by_kind{};
  /// JobRejected events, indexed by raw RejectionReason value.
  std::array<std::uint64_t, kRejectionReasonCount> rejected_by_reason{};
  /// NodeEvaluated events that failed, indexed by raw RejectionReason value
  /// (slot 0 counts the evaluations that passed).
  std::array<std::uint64_t, kRejectionReasonCount> node_eval_by_reason{};
  std::uint64_t total = 0;

  [[nodiscard]] std::uint64_t count(EventKind kind) const noexcept {
    return by_kind[static_cast<std::size_t>(kind)];
  }
};

[[nodiscard]] TraceSummary summarize(const std::vector<Event>& events);

/// Detailed single-trace report: event counts and the rejection-reason
/// histogram.
void print_summary(std::ostream& out, const TraceMeta& meta,
                   const TraceSummary& summary);

/// Side-by-side accept/reject/kill breakdown, one row per trace — the
/// per-policy comparison view for multi-file `trace summary`.
void print_breakdown(std::ostream& out,
                     const std::vector<std::pair<TraceMeta, TraceSummary>>& rows);

}  // namespace librisk::trace
