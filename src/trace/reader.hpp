// Readers for both trace encodings, plus the file-level dispatcher used by
// the `librisk-sim trace` subcommands. Strict by design: a truncated or
// bit-flipped .lrt must fail loudly (TraceError), never yield a shorter
// event list — a diff tool that silently accepts damage is not an oracle.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace librisk::trace {

class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct TraceData {
  TraceMeta meta;
  std::vector<Event> events;
  /// Container version the file declared (1 = seed format, 2 = current).
  std::uint8_t version = 0;
  /// True when every event carried a serialised margin (v2 flag bit 0 /
  /// JSONL meta "margins"); false for v1 files and margin-free v2 files,
  /// whose events read back with margin == 0.0.
  bool has_margins = false;
  /// True when the writer declared overload-catalog event kinds possible
  /// (v2 flag bit 1 / JSONL meta "overload"). Layout is unchanged either
  /// way; the bit is a fail-fast marker for overload-unaware readers.
  bool has_overload = false;
};

/// Parses a binary .lrt stream, version 1 or 2. Throws TraceError on bad
/// magic, unknown version/flags/kind/reason, truncation, event-count
/// mismatch, checksum mismatch, or trailing bytes.
[[nodiscard]] TraceData read_lrt(std::istream& in);

/// Parses a JSONL trace (meta line first). Throws TraceError on a missing or
/// foreign meta line and on malformed event lines.
[[nodiscard]] TraceData read_jsonl(std::istream& in);

/// Opens `path` and dispatches on content: "LRT1" magic -> binary, anything
/// else -> JSONL. Throws TraceError when the file cannot be opened.
[[nodiscard]] TraceData read_trace_file(const std::string& path);

}  // namespace librisk::trace
