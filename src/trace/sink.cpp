#include "trace/sink.hpp"

#include <bit>
#include <ostream>

namespace librisk::trace {

JsonlSink::JsonlSink(std::ostream& os, const TraceMeta& meta, SinkOptions options)
    : os_(&os), writer_(os), options_(options) {
  writer_.begin()
      .field("trace", "librisk")
      .field("version", static_cast<std::uint64_t>(kLrtVersion))
      .field("policy", meta.policy)
      .field("seed", meta.seed);
  // Written even when false-by-omission would do: the meta line is the one
  // place readers learn whether event lines carry margins.
  if (options_.margins) writer_.field("margins", true);
  if (options_.overload) writer_.field("overload", true);
  writer_.end();
}

void JsonlSink::write(const Event& event) {
  writer_.begin()
      .field("t", event.time)
      .field("kind", to_string(event.kind))
      .field("job", event.job)
      .field("node", static_cast<std::int64_t>(event.node));
  if (event.reason != RejectionReason::None)
    writer_.field("reason", to_string(event.reason));
  writer_.field("a", event.a).field("b", event.b);
  // Margins are written unconditionally (0.0 included) when enabled, so a
  // margin-bearing file has one shape, not a per-event optional.
  if (options_.margins) writer_.field("margin", event.margin);
  writer_.end();
}

void JsonlSink::close() { os_->flush(); }

BinarySink::BinarySink(std::ostream& os, const TraceMeta& meta,
                       SinkOptions options)
    : os_(&os), options_(options) {
  put_bytes(kLrtMagic, sizeof kLrtMagic);
  put_u8(kLrtVersion);
  put_u8(static_cast<std::uint8_t>((options_.margins ? kLrtFlagMargins : 0) |
                                   (options_.overload ? kLrtFlagOverload : 0)));
  put_varint(meta.policy.size());
  put_bytes(meta.policy.data(), meta.policy.size());
  put_varint(meta.seed);
}

BinarySink::~BinarySink() { close(); }

void BinarySink::put_bytes(const char* data, std::size_t n) {
  os_->write(data, static_cast<std::streamsize>(n));
  for (std::size_t i = 0; i < n; ++i) {
    hash_ ^= static_cast<std::uint8_t>(data[i]);
    hash_ *= kFnvPrime;
  }
}

void BinarySink::put_u8(std::uint8_t v) {
  const char c = static_cast<char>(v);
  put_bytes(&c, 1);
}

void BinarySink::put_varint(std::uint64_t v) {
  char buf[10];
  std::size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  put_bytes(buf, n);
}

void BinarySink::put_zigzag(std::int64_t v) { put_varint(zigzag_encode(v)); }

void BinarySink::put_f64(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
  put_bytes(buf, 8);
}

void BinarySink::write(const Event& event) {
  put_u8(static_cast<std::uint8_t>(event.kind));
  put_u8(static_cast<std::uint8_t>(event.reason));
  put_zigzag(event.node);
  put_zigzag(event.job);
  put_f64(event.time);
  put_f64(event.a);
  put_f64(event.b);
  if (options_.margins) put_f64(event.margin);
  ++count_;
}

void BinarySink::close() {
  if (closed_) return;
  closed_ = true;
  put_u8(0);  // end-of-stream marker (no EventKind uses 0)
  put_varint(count_);
  // The checksum covers everything written so far, including the count.
  const std::uint64_t sum = hash_;
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
  os_->write(buf, 8);
  os_->flush();
}

}  // namespace librisk::trace
