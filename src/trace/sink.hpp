// Trace sinks: where Event records go (docs/TRACING.md has the format spec).
//
// Three implementations with very different cost profiles:
//   NullSink   — discards everything; discards() lets the Recorder skip even
//                constructing the Event, so an attached-but-null recorder
//                costs one predictable branch per emission site.
//   JsonlSink  — one JSON object per line via json::LineWriter; greppable,
//                jq-able, ~10x larger than binary.
//   BinarySink — compact varint-encoded .lrt file with a checksummed footer;
//                byte-identical across same-seed runs, the determinism oracle
//                `librisk-sim trace diff` operates on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "support/json.hpp"
#include "trace/event.hpp"

namespace librisk::trace {

/// .lrt container constants. The magic names the container family, the
/// version byte the layout: v1 is the seed format, v2 adds a header flags
/// byte and (when flag bit 0 is set) a per-event margin payload. Writers
/// emit v2; readers accept both (docs/TRACING.md "Format v2").
inline constexpr char kLrtMagic[4] = {'L', 'R', 'T', '1'};
inline constexpr std::uint8_t kLrtVersionV1 = 1;
inline constexpr std::uint8_t kLrtVersion = 2;
/// v2 header flags bit 0: every event record carries a trailing f64 margin.
inline constexpr std::uint8_t kLrtFlagMargins = 0x01;
/// v2 header flags bit 1: the stream may contain overload-catalog event
/// kinds (ModeTransition / JobDeferred / JobDegradedAdmit). Record layout
/// is unchanged — the bit exists so an overload-unaware reader fails fast
/// at the header instead of choking on an unknown kind byte mid-stream.
inline constexpr std::uint8_t kLrtFlagOverload = 0x02;
/// FNV-1a 64-bit, computed incrementally over every byte that precedes the
/// checksum itself (header, events, end marker, event count).
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Per-sink format options shared by both encoders.
struct SinkOptions {
  /// Serialise each event's margin (v2 flag bit 0 / JSONL "margin" field).
  /// Off by default: margin-free v2 events are byte-compatible with what a
  /// margin-unaware emitter produces, so determinism oracles keep working
  /// across runs that do and do not compute margins.
  bool margins = false;
  /// Declare that the run may emit overload-catalog events (v2 flag bit 1 /
  /// JSONL "overload" meta field). Off by default: a HardReject run emits
  /// none, and leaving the bit clear keeps its header byte-identical to
  /// pre-catalog traces.
  bool overload = false;
};

class Sink {
 public:
  virtual ~Sink() = default;
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  virtual void write(const Event& event) = 0;
  /// Finalises the output (footer, flush). Idempotent; safe to skip for
  /// sinks whose destructor closes them.
  virtual void close() {}
  /// True when write() provably ignores its argument. The Recorder caches
  /// this at attach time and skips event construction entirely, which is
  /// what keeps the default configuration's hot path unperturbed.
  [[nodiscard]] virtual bool discards() const noexcept { return false; }

 protected:
  Sink() = default;
};

class NullSink final : public Sink {
 public:
  void write(const Event&) override {}
  [[nodiscard]] bool discards() const noexcept override { return true; }
};

/// JSON Lines: a meta line, then one object per event. `reason` is omitted
/// when None so the common case stays short; readers default it.
class JsonlSink final : public Sink {
 public:
  JsonlSink(std::ostream& os, const TraceMeta& meta, SinkOptions options = {});
  void write(const Event& event) override;
  void close() override;

 private:
  std::ostream* os_;
  json::LineWriter writer_;
  SinkOptions options_;
};

/// Binary .lrt v2. Layout (all integers varint unless noted):
///   header:  magic "LRT1", u8 version (2), u8 flags, varint policy
///            length + bytes, varint seed
///   events:  u8 kind (nonzero), u8 reason, zigzag node, zigzag job,
///            raw LE64 bits of time, a, b
///            [+ raw LE64 bits of margin when flags bit 0 is set]
///   footer:  u8 0x00 end marker, varint event count, u64 LE FNV-1a of all
///            preceding bytes
/// v1 (the seed format) differs only in the version byte and the absence of
/// the flags byte and margin payload; trace::read_lrt accepts both.
/// Doubles are stored as raw bit patterns, never formatted, so identical
/// decisions serialise to identical bytes — the property trace-diff relies on.
class BinarySink final : public Sink {
 public:
  BinarySink(std::ostream& os, const TraceMeta& meta, SinkOptions options = {});
  ~BinarySink() override;
  void write(const Event& event) override;
  void close() override;

 private:
  void put_bytes(const char* data, std::size_t n);
  void put_u8(std::uint8_t v);
  void put_varint(std::uint64_t v);
  void put_zigzag(std::int64_t v);
  void put_f64(double v);

  std::ostream* os_;
  SinkOptions options_;
  std::uint64_t hash_ = kFnvOffset;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

/// Zigzag mapping for signed varints: small magnitudes of either sign
/// encode in one byte (-1 -> 1, 1 -> 2, ...).
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace librisk::trace
