#include "trace/event.hpp"

#include <stdexcept>

namespace librisk::trace {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::JobSubmitted: return "job_submitted";
    case EventKind::JobAdmitted: return "job_admitted";
    case EventKind::JobRejected: return "job_rejected";
    case EventKind::JobStarted: return "job_started";
    case EventKind::JobFinished: return "job_finished";
    case EventKind::JobKilled: return "job_killed";
    case EventKind::JobOverrun: return "job_overrun";
    case EventKind::NodeEvaluated: return "node_evaluated";
    case EventKind::ShareRealloc: return "share_realloc";
    case EventKind::ModeTransition: return "mode_transition";
    case EventKind::JobDeferred: return "job_deferred";
    case EventKind::JobDegradedAdmit: return "job_degraded_admit";
  }
  return "?";
}

std::string_view to_string(RejectionReason reason) noexcept {
  switch (reason) {
    case RejectionReason::None: return "none";
    case RejectionReason::ShareOverflow: return "share_overflow";
    case RejectionReason::RiskSigma: return "risk_sigma";
    case RejectionReason::NoSuitableNode: return "no_suitable_node";
    case RejectionReason::DeadlineInfeasible: return "deadline_infeasible";
  }
  return "?";
}

EventKind parse_event_kind(std::string_view name) {
  for (int raw = 1; raw <= kEventKindCount; ++raw) {
    const auto kind = static_cast<EventKind>(raw);
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown trace event kind: " + std::string(name));
}

RejectionReason parse_rejection_reason(std::string_view name) {
  for (int raw = 0; raw < kRejectionReasonCount; ++raw) {
    const auto reason = static_cast<RejectionReason>(raw);
    if (name == to_string(reason)) return reason;
  }
  throw std::invalid_argument("unknown rejection reason: " + std::string(name));
}

bool valid_event_kind(std::uint8_t raw) noexcept {
  return raw >= 1 && raw <= kEventKindCount;
}

bool valid_rejection_reason(std::uint8_t raw) noexcept {
  return raw < kRejectionReasonCount;
}

}  // namespace librisk::trace
