// Trace comparison — the determinism/equivalence oracle.
//
// Two runs are equivalent iff their traces are: same meta, same event
// sequence, field-for-field (doubles compared by value, which for .lrt files
// means bit-for-bit since the format stores raw bits). first_divergence finds
// the earliest point where they differ; `librisk-sim trace diff` renders it.
#pragma once

#include <cstddef>
#include <string>

#include "trace/reader.hpp"

namespace librisk::trace {

struct Divergence {
  enum class Kind {
    Identical,     ///< traces match completely
    MetaDiffers,   ///< different policy or seed in the header
    EventDiffers,  ///< events at `index` differ (both present)
    LengthDiffers, ///< one trace ends at `index`, the other continues
  };

  Kind kind = Kind::Identical;
  std::size_t index = 0;  ///< event index of the first difference
  bool has_a = false;     ///< whether `a` holds trace A's event at index
  bool has_b = false;
  Event a;
  Event b;

  [[nodiscard]] bool identical() const noexcept { return kind == Kind::Identical; }
};

[[nodiscard]] Divergence first_divergence(const TraceData& a, const TraceData& b);

/// One-line human rendering of an event: time, kind, job/node, payload,
/// reason when set. Used by diff output and tests.
[[nodiscard]] std::string describe(const Event& event);

/// Multi-line report of a divergence (empty-ish "traces identical" for the
/// Identical kind).
[[nodiscard]] std::string describe(const Divergence& d, const TraceData& a,
                                   const TraceData& b);

}  // namespace librisk::trace
