#include "sim/event_queue.hpp"

#include "support/check.hpp"

namespace librisk::sim {

EventId EventQueue::schedule(SimTime time, EventPriority priority, Handler handler) {
  LIBRISK_CHECK(handler != nullptr, "null event handler");
  LIBRISK_CHECK(time == time, "NaN event time");  // NaN never compares equal
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{time, static_cast<int>(priority), id});
  handlers_.emplace(id, std::move(handler));
  ++live_;
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = handlers_.find(id.value);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id.value);
  ++cancelled_total_;
  --live_;
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

SimTime EventQueue::next_time() const {
  LIBRISK_CHECK(!empty(), "next_time on empty queue");
  const_cast<EventQueue*>(this)->drop_dead_top();
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  LIBRISK_CHECK(!empty(), "pop on empty queue");
  drop_dead_top();
  const Entry top = heap_.top();
  heap_.pop();
  const auto it = handlers_.find(top.id);
  LIBRISK_CHECK(it != handlers_.end(), "live event without handler");
  Popped out{top.time, static_cast<EventPriority>(top.priority), std::move(it->second)};
  handlers_.erase(it);
  --live_;
  return out;
}

}  // namespace librisk::sim
