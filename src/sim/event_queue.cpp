#include "sim/event_queue.hpp"

#include <utility>

#include "support/check.hpp"

namespace librisk::sim {

EventId EventQueue::schedule(SimTime time, EventPriority priority, Handler handler) {
  LIBRISK_CHECK(handler != nullptr, "null event handler");
  LIBRISK_CHECK(time == time, "NaN event time");  // NaN never compares equal
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[idx];
  slot.time = time;
  slot.priority = static_cast<int>(priority);
  slot.seq = next_seq_++;
  slot.handler = std::move(handler);
  slot.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(idx);
  sift_up(slot.heap_pos);
  return EventId{slot.seq, idx};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  if (id.slot >= slots_.size()) return false;
  Slot& slot = slots_[id.slot];
  // A recycled slot carries a newer seq; a freed slot carries seq 0. Either
  // way the original event already fired or was cancelled.
  if (slot.seq != id.value) return false;
  heap_erase(slot.heap_pos);
  release(id.slot);
  ++cancelled_total_;
  return true;
}

SimTime EventQueue::next_time() const {
  LIBRISK_CHECK(!empty(), "next_time on empty queue");
  return slots_[heap_.front()].time;
}

EventQueue::Popped EventQueue::pop() {
  LIBRISK_CHECK(!empty(), "pop on empty queue");
  const std::uint32_t idx = heap_.front();
  Slot& slot = slots_[idx];
  Popped out{slot.time, static_cast<EventPriority>(slot.priority),
             std::move(slot.handler), slot.seq};
  heap_erase(0);
  release(idx);
  return out;
}

void EventQueue::sift_up(std::uint32_t pos) {
  const std::uint32_t idx = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!before(idx, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = idx;
  slots_[idx].heap_pos = pos;
}

void EventQueue::sift_down(std::uint32_t pos) {
  const std::uint32_t idx = heap_[pos];
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first_child = 4 * pos + 1;
    if (first_child >= n) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        first_child + 4 <= n ? first_child + 4 : n;
    for (std::uint32_t c = first_child + 1; c < last_child; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], idx)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = idx;
  slots_[idx].heap_pos = pos;
}

void EventQueue::heap_erase(std::uint32_t pos) {
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos]].heap_pos = pos;
    heap_.pop_back();
    // The moved-in entry may belong either above or below its new spot.
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.seq = 0;
  s.heap_pos = kNoPos;
  s.handler = nullptr;  // drop the closure (and any captured resources) now
  free_.push_back(slot);
}

}  // namespace librisk::sim
