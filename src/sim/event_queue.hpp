// Pending-event set for the DES kernel.
//
// Ordering is (time, priority, sequence): equal-time events run in priority
// order, and equal-priority ties run in schedule order, which makes runs
// bit-reproducible. Cancellation is O(1) by id with lazy deletion at pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace librisk::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Scheduling priority at equal timestamps. Lower runs first. Completions
/// run before arrivals at the same instant so freed capacity is visible to
/// the admission decision made at that instant.
enum class EventPriority : int {
  Completion = 0,
  Internal = 1,
  Arrival = 2,
  Control = 3,
};

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute `time`. Returns an id for cancel().
  EventId schedule(SimTime time, EventPriority priority, Handler handler);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled (both are benign).
  bool cancel(EventId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const noexcept;

  /// Timestamp of the next live event; empty() must be false.
  [[nodiscard]] SimTime next_time() const;

  /// Pops the next live event. empty() must be false.
  struct Popped {
    SimTime time;
    EventPriority priority;
    Handler handler;
  };
  [[nodiscard]] Popped pop();

  /// Lifetime counters, exposed for tests and the kernel microbenchmark.
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept { return next_id_ - 1; }
  [[nodiscard]] std::uint64_t cancelled_total() const noexcept { return cancelled_total_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

 private:
  struct Entry {
    SimTime time;
    int priority;
    std::uint64_t id;
    // min-heap via greater-than
    [[nodiscard]] bool operator>(const Entry& o) const noexcept {
      if (time != o.time) return time > o.time;
      if (priority != o.priority) return priority > o.priority;
      return id > o.id;
    }
  };

  void drop_dead_top();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 1;
  std::uint64_t cancelled_total_ = 0;
  std::size_t live_ = 0;
};

}  // namespace librisk::sim
