// Pending-event set for the DES kernel.
//
// Ordering is (time, priority, sequence): equal-time events run in priority
// order, and equal-priority ties run in schedule order, which makes runs
// bit-reproducible.
//
// Storage is a slab of slots (grow-only, recycled through a free list) plus
// an intrusive 4-ary min-heap of slot indices; each slot remembers its heap
// position, so cancel() removes the entry in place (one sift) instead of
// tombstoning it. Consequences that matter for the simulation hot loop:
//   - steady-state schedule/fire/cancel cycles allocate nothing (slots and
//     their std::function storage are reused; small closures stay in the
//     function's inline buffer),
//   - pop() moves the handler out of its slot rather than copying it,
//   - no dead entries survive a cancel, so long cancel-heavy runs (the
//     executor's reschedule-one-boundary pattern) keep no garbage, and
//     next_time() is genuinely const.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace librisk::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
/// `value` is the globally unique schedule sequence number (also the FIFO
/// tie-break key); `slot` is the slab index it lives in, making cancel O(1)
/// to locate with no hash lookup.
struct EventId {
  std::uint64_t value = 0;
  std::uint32_t slot = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Scheduling priority at equal timestamps. Lower runs first. Completions
/// run before arrivals at the same instant so freed capacity is visible to
/// the admission decision made at that instant.
enum class EventPriority : int {
  Completion = 0,
  Internal = 1,
  Arrival = 2,
  Control = 3,
};

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute `time`. Returns an id for cancel().
  EventId schedule(SimTime time, EventPriority priority, Handler handler);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled (both are benign).
  bool cancel(EventId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Timestamp of the next live event; empty() must be false.
  [[nodiscard]] SimTime next_time() const;

  /// Pops the next live event. empty() must be false. `seq` is the schedule
  /// sequence number (EventId::value), letting a driver recognise a
  /// specific event as it is dispatched (Simulator::run_through).
  struct Popped {
    SimTime time;
    EventPriority priority;
    Handler handler;
    std::uint64_t seq;
  };
  [[nodiscard]] Popped pop();

  /// Lifetime counters, exposed for tests and the kernel microbenchmark.
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t cancelled_total() const noexcept { return cancelled_total_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  /// Slab high-water mark (slots ever created); pending() <= slot_capacity().
  [[nodiscard]] std::size_t slot_capacity() const noexcept { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoPos = 0xffffffffu;

  struct Slot {
    SimTime time = 0.0;
    int priority = 0;
    std::uint64_t seq = 0;      ///< 0 = free (seq numbers start at 1)
    std::uint32_t heap_pos = kNoPos;
    Handler handler;            ///< storage reused across occupancies
  };

  /// Strict weak order of live slots: (time, priority, seq) ascending.
  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const noexcept {
    const Slot& x = slots_[a];
    const Slot& y = slots_[b];
    if (x.time != y.time) return x.time < y.time;
    if (x.priority != y.priority) return x.priority < y.priority;
    return x.seq < y.seq;
  }

  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void heap_erase(std::uint32_t pos);
  void release(std::uint32_t slot);

  std::vector<Slot> slots_;            // slab; grow-only
  std::vector<std::uint32_t> heap_;    // 4-ary min-heap of slot indices
  std::vector<std::uint32_t> free_;    // recycled slot indices
  std::uint64_t next_seq_ = 1;
  std::uint64_t cancelled_total_ = 0;
};

}  // namespace librisk::sim
