#include "sim/simulator.hpp"

#include "support/check.hpp"

namespace librisk::sim {

EventId Simulator::at(SimTime t, EventPriority priority, Handler handler) {
  LIBRISK_CHECK(t >= now_ - kTimeEpsilon,
                "scheduling into the past: t=" << t << " now=" << now_);
  if (t < now_) t = now_;
  return queue_.schedule(t, priority, std::move(handler));
}

EventId Simulator::after(SimTime delay, EventPriority priority, Handler handler) {
  LIBRISK_CHECK(delay >= -kTimeEpsilon, "negative delay: " << delay);
  return at(now_ + (delay < 0 ? 0 : delay), priority, std::move(handler));
}

void Simulator::set_metronome(SimTime period, Metronome fn) {
  LIBRISK_CHECK(period > 0.0, "metronome period must be > 0, got " << period);
  LIBRISK_CHECK(fn != nullptr, "metronome callback must not be null");
  metronome_ = std::move(fn);
  tick_period_ = period;
  // First tick at the first multiple of period strictly after now().
  tick_index_ = static_cast<std::uint64_t>(now_ / period) + 1;
  while (period * static_cast<double>(tick_index_) <= now_) ++tick_index_;
}

void Simulator::clear_metronome() noexcept {
  metronome_ = nullptr;
  tick_period_ = 0.0;
}

std::uint64_t Simulator::dispatch_next() {
  if (metronome_) {
    // Fire every nominal tick at-or-before the next event's timestamp,
    // observing pre-event state. Nominal times are computed as k * period
    // (not accumulated) so long runs don't drift.
    const SimTime te = queue_.next_time();
    for (SimTime tick = tick_period_ * static_cast<double>(tick_index_);
         tick <= te;
         tick = tick_period_ * static_cast<double>(++tick_index_)) {
      now_ = tick;
      ++ticks_;
      metronome_(tick);
    }
  }
  auto [time, priority, handler, seq] = queue_.pop();
  LIBRISK_CHECK(time >= now_, "event queue returned a past event");
  now_ = time;
  in_event_ = true;
  handler();
  in_event_ = false;
  ++processed_;
  return seq;
}

std::uint64_t Simulator::run() {
  stopping_ = false;
  const std::uint64_t start = processed_;
  while (!queue_.empty() && !stopping_) dispatch_next();
  return processed_ - start;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  stopping_ = false;
  const std::uint64_t start = processed_;
  while (!queue_.empty() && !stopping_ && queue_.next_time() <= horizon)
    dispatch_next();
  return processed_ - start;
}

std::uint64_t Simulator::run_before(SimTime horizon) {
  stopping_ = false;
  const std::uint64_t start = processed_;
  while (!queue_.empty() && !stopping_ && queue_.next_time() < horizon)
    dispatch_next();
  return processed_ - start;
}

std::uint64_t Simulator::run_through(EventId target) {
  LIBRISK_CHECK(target.valid(), "run_through on an invalid event id");
  stopping_ = false;
  const std::uint64_t start = processed_;
  while (!queue_.empty() && !stopping_) {
    if (dispatch_next() == target.value) return processed_ - start;
  }
  LIBRISK_CHECK(stopping_,
                "run_through drained the queue without dispatching event "
                    << target.value << " — it already fired or was cancelled");
  return processed_ - start;
}

}  // namespace librisk::sim
