#include "sim/simulator.hpp"

#include "support/check.hpp"

namespace librisk::sim {

EventId Simulator::at(SimTime t, EventPriority priority, Handler handler) {
  LIBRISK_CHECK(t >= now_ - kTimeEpsilon,
                "scheduling into the past: t=" << t << " now=" << now_);
  if (t < now_) t = now_;
  return queue_.schedule(t, priority, std::move(handler));
}

EventId Simulator::after(SimTime delay, EventPriority priority, Handler handler) {
  LIBRISK_CHECK(delay >= -kTimeEpsilon, "negative delay: " << delay);
  return at(now_ + (delay < 0 ? 0 : delay), priority, std::move(handler));
}

void Simulator::dispatch_next() {
  auto [time, priority, handler] = queue_.pop();
  LIBRISK_CHECK(time >= now_, "event queue returned a past event");
  now_ = time;
  in_event_ = true;
  handler();
  in_event_ = false;
  ++processed_;
}

std::uint64_t Simulator::run() {
  stopping_ = false;
  const std::uint64_t start = processed_;
  while (!queue_.empty() && !stopping_) dispatch_next();
  return processed_ - start;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  stopping_ = false;
  const std::uint64_t start = processed_;
  while (!queue_.empty() && !stopping_ && queue_.next_time() <= horizon)
    dispatch_next();
  return processed_ - start;
}

}  // namespace librisk::sim
