// Shared simulation-time vocabulary.
#pragma once

#include <limits>

namespace librisk::sim {

/// Simulation time in seconds since simulation start. Double precision keeps
/// sub-second resolution over multi-month traces (2^53 ulp ≫ trace spans).
using SimTime = double;

inline constexpr SimTime kTimeZero = 0.0;
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Comparison slack for derived times (rate divisions accumulate rounding).
inline constexpr double kTimeEpsilon = 1e-6;

}  // namespace librisk::sim
