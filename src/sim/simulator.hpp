// The discrete-event simulation kernel (the GridSim substitute).
//
// A Simulator owns the clock and the pending-event set. Components schedule
// closures at absolute or relative times; run() drains events in
// deterministic order. Time never goes backwards; scheduling in the past
// (within kTimeEpsilon, from rate arithmetic) is clamped to `now`.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace librisk::sim {

class Simulator {
 public:
  using Handler = EventQueue::Handler;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules at absolute time t (clamped up to now() if slightly past).
  EventId at(SimTime t, EventPriority priority, Handler handler);

  /// Schedules at now() + delay (delay >= -kTimeEpsilon).
  EventId after(SimTime delay, EventPriority priority, Handler handler);

  /// Cancels a pending event; false if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event set is empty or stop() is called.
  /// Returns the number of events processed by this call.
  std::uint64_t run();

  /// Runs events with time <= horizon (inclusive); the clock advances to
  /// the last processed event, not to the horizon itself.
  std::uint64_t run_until(SimTime horizon);

  /// Runs events with time strictly < horizon, leaving every event *at* the
  /// horizon pending. The streaming driver's step: advancing to an
  /// arrival's submit time before scheduling it keeps equal-time events in
  /// the same (time, priority, seq) order the batch driver produces.
  std::uint64_t run_before(SimTime horizon);

  /// Runs events up to and including the one identified by `target`, which
  /// must be pending (not fired, not cancelled). Everything that precedes
  /// `target` in the (time, priority, seq) total order fires first — the
  /// exact prefix the batch driver would run — then `target` itself, and
  /// nothing after it. This is AdmissionEngine::submit's eager step: it
  /// yields a per-job verdict at the submit() call site while keeping the
  /// dispatch order byte-identical to the batch drive.
  std::uint64_t run_through(EventId target);

  /// Requests run() to return after the current event completes.
  void stop() noexcept { stopping_ = true; }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

  /// Metronome tick callback; receives the nominal tick time k * period.
  using Metronome = std::function<void(SimTime)>;

  /// Installs a sim-time metronome: before dispatching each event, `fn`
  /// fires once for every nominal tick time k * period (k = 1, 2, ...) that
  /// is <= the event's timestamp, with now() advanced to the tick time.
  /// Ticks live outside the event set — they consume no sequence numbers
  /// and cannot reorder events — and they stop when the queue drains, so a
  /// metronome never keeps run() alive or advances the clock past the last
  /// real event. `fn` must only observe state, never schedule. period > 0.
  void set_metronome(SimTime period, Metronome fn);
  void clear_metronome() noexcept;
  /// Ticks fired so far by the installed metronome(s).
  [[nodiscard]] std::uint64_t metronome_ticks() const noexcept { return ticks_; }

 private:
  /// Dispatches the next event; returns its schedule sequence number.
  std::uint64_t dispatch_next();

  EventQueue queue_;
  SimTime now_ = kTimeZero;
  std::uint64_t processed_ = 0;
  bool stopping_ = false;
  bool in_event_ = false;
  Metronome metronome_;
  SimTime tick_period_ = 0.0;
  std::uint64_t tick_index_ = 0;  ///< index of the next pending tick
  std::uint64_t ticks_ = 0;
};

}  // namespace librisk::sim
