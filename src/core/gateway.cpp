#include "core/gateway.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/share_model.hpp"
#include "obs/telemetry.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace librisk::core {

AdmissionGateway::AdmissionGateway(GatewayConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      flight_(obs::FlightConfig{.capacity = config_.flight_capacity}) {
  LIBRISK_CHECK(config_.engine.cluster.has_value(),
                "the gateway requires an owning-mode EngineConfig (cluster "
                "set): its drive thread must be the engine's only user");
  LIBRISK_CHECK(config_.granularity > 0, "granularity must be positive");
  LIBRISK_CHECK(config_.aggregate_headroom > 0.0, "headroom must be positive");

  // Derive the certificate parameters before the cluster is moved into the
  // engine. Each mirrors the policy's own admission expression exactly —
  // same floating-point operations, same tolerances — so the monotonicity
  // argument in docs/CONCURRENCY.md applies to the computed values, not
  // just the real-number idealisation.
  const cluster::Cluster& cluster = *config_.engine.cluster;
  model_.cluster_size = cluster.size();
  model_.max_speed = cluster.max_speed_factor();
  switch (config_.engine.policy) {
    case Policy::Libra:
      // Eq. 2 on the fastest node with an empty resident set is a lower
      // bound on every node's total-share test. Capacity/tolerance are
      // LibraConfig::libra() defaults, which make_scheduler never
      // overrides; the clamp is the executor's share model.
      model_.share_test = true;
      model_.deadline_clamp = config_.engine.options.share_model.deadline_clamp;
      model_.share_capacity = LibraConfig{}.capacity;
      model_.share_tolerance = LibraConfig{}.tolerance;
      break;
    case Policy::Edf:
    case Policy::EdfBackfill:
      // deadline_feasible() at the earliest possible `now` (the submit
      // instant) with the fastest node; admission_control is always on for
      // these two in the factory.
      model_.deadline_test = true;
      model_.slack_factor = 1.0;
      break;
    case Policy::Qops:
      // The candidate's own completion bound inside feasible_with():
      // start >= submit, finish >= submit + estimate/max_speed.
      model_.deadline_test = true;
      model_.slack_factor = config_.engine.options.qops_slack_factor;
      break;
    case Policy::LibraRisk:  // sigma-only salvage lane admits any share on
    case Policy::EdfNoAC:    // an empty node / no admission test at all —
    case Policy::Fcfs:       // no sound C2 certificate exists; C1 only.
    case Policy::Easy:
      break;
  }
  // Overload-catalog gating (core/overload.hpp): the C2 certificates rest
  // on "no now implies no later" monotonicity of the *normal* admission
  // test. A mode licensed to bend a shortfall site breaks that implication
  // — DowngradeQoS re-tests against an extended deadline (both C2
  // expressions), and the salvage/relax lanes re-decide under bent terms —
  // so those modes drop the gate to C1 (structural) only. ShedTail never
  // admits more than HardReject, so every certificate stays sound under it.
  // The rule is deliberately coarse: disabling a certificate only reduces
  // shedding, never correctness.
  const DegradedMode degraded_mode = config_.engine.options.overload.mode;
  if (degraded_mode != DegradedMode::HardReject &&
      degraded_mode != DegradedMode::ShedTail) {
    model_.share_test = false;
    model_.deadline_test = false;
  }
  const double budget = config_.aggregate_headroom * cluster.total_speed_factor() *
                        static_cast<double>(config_.granularity);
  share_budget_scaled_ = static_cast<std::uint64_t>(std::min(budget, 9.0e18));

  Hooks hooks = config_.engine.options.hooks;
  engine_ = make_engine(std::move(config_.engine));

  // Subtract-on-resolve: fires on the drive thread (the only thread that
  // steps the engine), so the accumulator has a single writer. Jobs the
  // gate or the engine rejected at submit have no entry — the map guard
  // makes underflow structurally impossible.
  observer_id_ = engine_->collector().add_resolution_observer(
      [this](std::int64_t id) {
        // Deferred audit: a pre-shed job the engine queued must resolve as
        // a rejection (for the EDF family that happens at dispatch time);
        // any shed job that actually ran falsifies a certificate.
        const auto shed_it = shed_pending_.find(id);
        if (shed_it != shed_pending_.end()) {
          const metrics::JobFate fate = engine_->collector().record(id).fate;
          if (fate != metrics::JobFate::RejectedAtSubmit &&
              fate != metrics::JobFate::RejectedAtDispatch)
            audit_violations_.fetch_add(1, std::memory_order_relaxed);
          shed_pending_.erase(shed_it);
        }
        const auto it = contributions_.find(id);
        if (it == contributions_.end()) return;
        share_scaled_.store(share_scaled_.load(std::memory_order_relaxed) -
                                it->second,
                            std::memory_order_release);
        contributions_.erase(it);
      });

  if (hooks.telemetry != nullptr) {
    obs::Registry& reg = hooks.telemetry->registry();
    reg.counter_fn("gateway_submitted", "jobs offered to the gateway",
                   [this] { return submitted_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_fast_rejected", "jobs shed by the fast-reject gate",
                   [this] { return fast_rejected_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_enqueued", "jobs handed to the drive thread",
                   [this] { return enqueued_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_decided", "engine decisions made",
                   [this] { return decided_.load(std::memory_order_relaxed); });
    reg.counter_fn(
        "gateway_audit_violations",
        "fast-shed jobs the exact path admitted (certificate failures)",
        [this] { return audit_violations_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_queue_high_water", "peak drive-queue occupancy",
                   [this] { return static_cast<std::uint64_t>(queue_.high_water()); });
    reg.gauge_fn("gateway_queue_depth", "current drive-queue occupancy",
                 [this] { return static_cast<double>(queue_.size()); });
    reg.gauge_fn("gateway_inflight_share",
                 "in-flight share accumulator (processor units)", [this] {
                   return static_cast<double>(
                              share_scaled_.load(std::memory_order_relaxed)) /
                          static_cast<double>(config_.granularity);
                 });
    reg.gauge_fn("gateway_inflight_share_peak",
                 "in-flight share accumulator high-water mark (processor "
                 "units)",
                 [this] {
                   return static_cast<double>(share_peak_.value()) /
                          static_cast<double>(config_.granularity);
                 });
    reg.counter_fn("gateway_shed_no_suitable_node",
                   "sheds by certificate C1 (larger than the cluster)",
                   [this] { return shed_no_node_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_shed_share",
                   "sheds by certificate C2-share (Eq. 2 lower bound)",
                   [this] { return shed_share_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_shed_deadline",
                   "sheds by certificate C2-deadline (best-case finish)",
                   [this] { return shed_deadline_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_shed_aggregate",
                   "sheds by the aggregate accumulator (Aggressive only)",
                   [this] { return shed_aggregate_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_shed_spikes",
                   "shed-spike threshold crossings observed",
                   [this] { return spike_events_.load(std::memory_order_relaxed); });
    reg.counter_fn(
        "gateway_degraded_admits",
        "engine decisions that were degraded-mode admissions",
        [this] { return degraded_admits_.load(std::memory_order_relaxed); });
    reg.counter_fn(
        "gateway_deferred", "engine decisions parked by the salvage lane",
        [this] { return deferred_.load(std::memory_order_relaxed); });
    reg.gauge_fn("gateway_overload_mode",
                 "configured degraded mode (catalog index; 0 = hard-reject)",
                 [degraded_mode] {
                   return static_cast<double>(degraded_mode);
                 });
    if (config_.flight_capacity > 0) {
      // Registry-owned sinks the flight histograms merge into at close():
      // the recorder's own copies stay mutex-guarded for live snapshots,
      // the registry ones feed the OpenMetrics render.
      queue_wait_hist_ =
          &reg.histogram("gateway_queue_wait_seconds",
                         "wall seconds from enqueue to decision",
                         flight_.config().latency);
      decide_hist_ = &reg.histogram("gateway_decide_seconds",
                                    "drive-loop wall seconds per decision",
                                    flight_.config().latency);
    }
  }

  drive_thread_ = std::thread([this] { drive(); });
}

AdmissionGateway::~AdmissionGateway() {
  try {
    close();
  } catch (...) {
    // A drive-thread error surfaces from close(); in a destructor the best
    // we can do is not terminate. Callers who care call close() themselves.
  }
}

std::uint64_t AdmissionGateway::scaled_share(
    const workload::Job& job) const noexcept {
  const double min_share =
      cluster::required_share(job.scheduler_estimate, job.deadline,
                              model_.deadline_clamp, model_.max_speed);
  // Fixed-point in double first (floor keeps truncation deterministic),
  // clamped below the uint64 range before the cast — a near-zero deadline
  // can push the share to ~1e18 and beyond.
  const double scaled = static_cast<double>(job.num_procs) *
                        std::floor(static_cast<double>(config_.granularity) *
                                   min_share);
  return static_cast<std::uint64_t>(std::min(scaled, 9.0e18));
}

AdmissionGateway::Certificate AdmissionGateway::classify(
    const workload::Job& job) const noexcept {
  // C1: structurally impossible on every policy.
  if (job.num_procs > model_.cluster_size) return Certificate::NoNode;
  // C2-share: Eq. 2's per-node total is resident + new_share with
  // resident >= 0, and new_share is antitone in node speed — so the
  // fastest-node empty-cluster share is a lower bound on every node's
  // test value (both monotonicities hold under IEEE round-to-nearest).
  if (model_.share_test) {
    const double share =
        cluster::required_share(job.scheduler_estimate, job.deadline,
                                model_.deadline_clamp, model_.max_speed);
    if (share > model_.share_capacity + model_.share_tolerance)
      return Certificate::Share;
  }
  // C2-deadline: the dispatch-time test compares now + estimate/max_speed
  // against submit + slack*deadline + eps, and `now >= submit` at every
  // evaluation; IEEE addition is weakly monotone, so failing at
  // now == submit implies failing at every later now.
  if (model_.deadline_test) {
    const double best_finish =
        job.submit_time + job.scheduler_estimate / model_.max_speed;
    const double allowed =
        job.submit_time + model_.slack_factor * job.deadline;
    if (best_finish > allowed + sim::kTimeEpsilon)
      return Certificate::Deadline;
  }
  // C3: aggregate saturation — NOT a certificate (per-node admission can
  // admit under aggregate overload); sheds only when explicitly unsound.
  if (config_.shedding == GatewayConfig::Shedding::Aggressive) {
    const std::uint64_t c = scaled_share(job);
    const std::uint64_t spent = share_scaled_.load(std::memory_order_acquire);
    if (c > share_budget_scaled_ || spent > share_budget_scaled_ - c)
      return Certificate::Aggregate;
  }
  return Certificate::None;
}

std::optional<trace::RejectionReason> AdmissionGateway::fast_reject_reason(
    const workload::Job& job) const noexcept {
  switch (classify(job)) {
    case Certificate::None:
      return std::nullopt;
    case Certificate::NoNode:
      return trace::RejectionReason::NoSuitableNode;
    case Certificate::Share:
    case Certificate::Aggregate:
      return trace::RejectionReason::ShareOverflow;
    case Certificate::Deadline:
      return trace::RejectionReason::DeadlineInfeasible;
  }
  return std::nullopt;
}

void AdmissionGateway::note_shed_spike() noexcept {
  const std::uint64_t now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  const std::uint64_t window_ns =
      static_cast<std::uint64_t>(config_.shed_spike_window * 1e9);
  std::uint64_t start = spike_window_start_ns_.load(std::memory_order_relaxed);
  if (now_ns - start > window_ns) {
    // Rotate the window; the one winning producer resets the count. Racing
    // losers keep counting into the fresh window — the detector is
    // deliberately approximate (relaxed, never blocking).
    if (spike_window_start_ns_.compare_exchange_strong(
            start, now_ns, std::memory_order_relaxed))
      spike_count_.store(0, std::memory_order_relaxed);
  }
  const std::uint64_t in_window =
      spike_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (in_window == config_.shed_spike_threshold) {
    spike_events_.fetch_add(1, std::memory_order_relaxed);
    spike_pending_.store(true, std::memory_order_release);
  }
}

SubmitStatus AdmissionGateway::submit(const workload::Job& job) {
  if (closed_.load(std::memory_order_acquire)) return SubmitStatus::Closed;
  const Certificate cert = classify(job);
  if (cert != Certificate::None) {
    if (config_.audit_shed) {
      // Replay the shed job through the exact path: byte-identity with an
      // ungated run, plus a live audit of the certificate.
      if (!queue_.push(QueueItem{job, /*pre_shed=*/true,
                                 std::chrono::steady_clock::now()}))
        return SubmitStatus::Closed;
      enqueued_.fetch_add(1, std::memory_order_relaxed);
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    fast_rejected_.fetch_add(1, std::memory_order_relaxed);
    switch (cert) {
      case Certificate::NoNode:
        shed_no_node_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Certificate::Share:
        shed_share_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Certificate::Deadline:
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Certificate::Aggregate:
        shed_aggregate_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Certificate::None:
        break;
    }
    if (config_.shed_spike_threshold > 0) note_shed_spike();
    return SubmitStatus::FastRejected;
  }
  if (!queue_.push(QueueItem{job, /*pre_shed=*/false,
                             std::chrono::steady_clock::now()}))
    return SubmitStatus::Closed;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  return SubmitStatus::Enqueued;
}

void AdmissionGateway::drive() {
  try {
    QueueItem item;
    while (queue_.pop(item)) {
      const std::chrono::steady_clock::time_point decide_start =
          std::chrono::steady_clock::now();
      workload::Job job = std::move(item.job);
      // Multi-producer interleaving can deliver a job stamped earlier than
      // one already submitted; clamp to the watermark (and the clock) so
      // the engine's monotonicity contract holds. With one producer the
      // stream is already monotone and both clamps are the identity —
      // that is the byte-identity case.
      job.submit_time =
          std::max({job.submit_time, last_submit_, engine_->now()});
      const AdmissionOutcome outcome = engine_->submit(job);
      last_submit_ = job.submit_time;
      decided_.fetch_add(1, std::memory_order_relaxed);
      if (outcome.verdict == AdmissionOutcome::Verdict::DegradedAdmit)
        degraded_admits_.fetch_add(1, std::memory_order_relaxed);
      else if (outcome.deferred())
        deferred_.fetch_add(1, std::memory_order_relaxed);
      if (item.pre_shed && !outcome.rejected()) {
        if (outcome.accepted()) {
          // Started at its arrival instant: the certificate is plainly wrong.
          audit_violations_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Queued: the EDF family decides feasibility at dispatch, so the
          // verdict is not in yet — audit it when the job resolves.
          shed_pending_.insert(job.id);
        }
      }
      if (!outcome.rejected()) {
        // Add-on-admit — unless the job already resolved inside its own
        // arrival step (zero-runtime completion), in which case the
        // observer has already fired and an add here would never be
        // subtracted.
        const metrics::JobRecord& rec = engine_->collector().record(job.id);
        if (rec.fate == metrics::JobFate::Pending) {
          const std::uint64_t c = scaled_share(job);
          if (c > 0) {
            contributions_.emplace(job.id, c);
            const std::uint64_t next =
                share_scaled_.load(std::memory_order_relaxed) + c;
            share_scaled_.store(next, std::memory_order_release);
            share_peak_.observe(next);
          }
        }
      }
      if (config_.flight_capacity > 0) {
        obs::FlightEntry entry;
        entry.job_id = job.id;
        entry.verdict =
            item.pre_shed ? obs::FlightVerdict::Shed
            : outcome.verdict == AdmissionOutcome::Verdict::DegradedAdmit
                ? obs::FlightVerdict::DegradedAdmit
            : outcome.deferred() ? obs::FlightVerdict::Deferred
            : outcome.accepted() ? obs::FlightVerdict::Accepted
            : outcome.rejected() ? obs::FlightVerdict::Rejected
                                 : obs::FlightVerdict::Queued;
        entry.reason = outcome.reason;
        entry.node = outcome.node;
        entry.sigma = outcome.sigma;
        entry.margin = outcome.margin;
        entry.sim_time = job.submit_time;
        entry.queue_wait =
            std::chrono::duration<double>(decide_start - item.enqueued_at)
                .count();
        entry.decide_latency = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   decide_start)
                                   .count();
        flight_.record(entry);
      }
      // Shed-spike dump, issued from the drive thread so the log line and
      // the flight snapshot come from one place.
      if (spike_pending_.exchange(false, std::memory_order_acq_rel)) {
        LIBRISK_LOG(Warn) << "gateway: shed spike (>= "
                          << config_.shed_spike_threshold << " sheds within "
                          << config_.shed_spike_window << " s)\n"
                          << flight_.dump();
      }
    }
  } catch (...) {
    drive_error_ = std::current_exception();
    // Unblock producers waiting on a full queue; their pushes fail Closed.
    queue_.close();
  }
}

void AdmissionGateway::close() {
  closed_.store(true, std::memory_order_release);
  queue_.close();
  if (!join_done_) {
    if (drive_thread_.joinable()) drive_thread_.join();
    join_done_ = true;
  }
  if (drive_error_ != nullptr) {
    std::exception_ptr error = drive_error_;
    drive_error_ = nullptr;
    std::rethrow_exception(error);
  }
  // Fold the flight latency histograms into the registry-owned sinks before
  // the engine seals telemetry (the OpenMetrics render reads the registry).
  if (!flight_merged_) {
    flight_merged_ = true;
    if (queue_wait_hist_ != nullptr)
      queue_wait_hist_->merge(flight_.queue_wait_histogram());
    if (decide_hist_ != nullptr)
      decide_hist_->merge(flight_.decide_histogram());
  }
  if (!engine_->finished()) engine_->finish();
}

GatewayStats AdmissionGateway::stats() const {
  GatewayStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.fast_rejected = fast_rejected_.load(std::memory_order_relaxed);
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.decided = decided_.load(std::memory_order_relaxed);
  s.audit_violations = audit_violations_.load(std::memory_order_relaxed);
  s.queue_high_water = static_cast<std::uint64_t>(queue_.high_water());
  s.share_scaled_now = share_scaled_.load(std::memory_order_relaxed);
  s.share_scaled_peak = share_peak_.value();
  s.shed_no_suitable_node = shed_no_node_.load(std::memory_order_relaxed);
  s.shed_share = shed_share_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_aggregate = shed_aggregate_.load(std::memory_order_relaxed);
  s.shed_spikes = spike_events_.load(std::memory_order_relaxed);
  s.flight_recorded = flight_.recorded();
  s.degraded_admits = degraded_admits_.load(std::memory_order_relaxed);
  s.deferred = deferred_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace librisk::core
