#include "core/gateway.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/share_model.hpp"
#include "obs/telemetry.hpp"
#include "support/check.hpp"

namespace librisk::core {

AdmissionGateway::AdmissionGateway(GatewayConfig config)
    : config_(std::move(config)), queue_(config_.queue_capacity) {
  LIBRISK_CHECK(config_.engine.cluster.has_value(),
                "the gateway requires an owning-mode EngineConfig (cluster "
                "set): its drive thread must be the engine's only user");
  LIBRISK_CHECK(config_.granularity > 0, "granularity must be positive");
  LIBRISK_CHECK(config_.aggregate_headroom > 0.0, "headroom must be positive");

  // Derive the certificate parameters before the cluster is moved into the
  // engine. Each mirrors the policy's own admission expression exactly —
  // same floating-point operations, same tolerances — so the monotonicity
  // argument in docs/CONCURRENCY.md applies to the computed values, not
  // just the real-number idealisation.
  const cluster::Cluster& cluster = *config_.engine.cluster;
  model_.cluster_size = cluster.size();
  model_.max_speed = cluster.max_speed_factor();
  switch (config_.engine.policy) {
    case Policy::Libra:
      // Eq. 2 on the fastest node with an empty resident set is a lower
      // bound on every node's total-share test. Capacity/tolerance are
      // LibraConfig::libra() defaults, which make_scheduler never
      // overrides; the clamp is the executor's share model.
      model_.share_test = true;
      model_.deadline_clamp = config_.engine.options.share_model.deadline_clamp;
      model_.share_capacity = LibraConfig{}.capacity;
      model_.share_tolerance = LibraConfig{}.tolerance;
      break;
    case Policy::Edf:
    case Policy::EdfBackfill:
      // deadline_feasible() at the earliest possible `now` (the submit
      // instant) with the fastest node; admission_control is always on for
      // these two in the factory.
      model_.deadline_test = true;
      model_.slack_factor = 1.0;
      break;
    case Policy::Qops:
      // The candidate's own completion bound inside feasible_with():
      // start >= submit, finish >= submit + estimate/max_speed.
      model_.deadline_test = true;
      model_.slack_factor = config_.engine.options.qops_slack_factor;
      break;
    case Policy::LibraRisk:  // sigma-only salvage lane admits any share on
    case Policy::EdfNoAC:    // an empty node / no admission test at all —
    case Policy::Fcfs:       // no sound C2 certificate exists; C1 only.
    case Policy::Easy:
      break;
  }
  const double budget = config_.aggregate_headroom * cluster.total_speed_factor() *
                        static_cast<double>(config_.granularity);
  share_budget_scaled_ = static_cast<std::uint64_t>(std::min(budget, 9.0e18));

  Hooks hooks = config_.engine.options.hooks;
  engine_ = make_engine(std::move(config_.engine));

  // Subtract-on-resolve: fires on the drive thread (the only thread that
  // steps the engine), so the accumulator has a single writer. Jobs the
  // gate or the engine rejected at submit have no entry — the map guard
  // makes underflow structurally impossible.
  observer_id_ = engine_->collector().add_resolution_observer(
      [this](std::int64_t id) {
        // Deferred audit: a pre-shed job the engine queued must resolve as
        // a rejection (for the EDF family that happens at dispatch time);
        // any shed job that actually ran falsifies a certificate.
        const auto shed_it = shed_pending_.find(id);
        if (shed_it != shed_pending_.end()) {
          const metrics::JobFate fate = engine_->collector().record(id).fate;
          if (fate != metrics::JobFate::RejectedAtSubmit &&
              fate != metrics::JobFate::RejectedAtDispatch)
            audit_violations_.fetch_add(1, std::memory_order_relaxed);
          shed_pending_.erase(shed_it);
        }
        const auto it = contributions_.find(id);
        if (it == contributions_.end()) return;
        share_scaled_.store(share_scaled_.load(std::memory_order_relaxed) -
                                it->second,
                            std::memory_order_release);
        contributions_.erase(it);
      });

  if (hooks.telemetry != nullptr) {
    obs::Registry& reg = hooks.telemetry->registry();
    reg.counter_fn("gateway_submitted", "jobs offered to the gateway",
                   [this] { return submitted_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_fast_rejected", "jobs shed by the fast-reject gate",
                   [this] { return fast_rejected_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_enqueued", "jobs handed to the drive thread",
                   [this] { return enqueued_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_decided", "engine decisions made",
                   [this] { return decided_.load(std::memory_order_relaxed); });
    reg.counter_fn(
        "gateway_audit_violations",
        "fast-shed jobs the exact path admitted (certificate failures)",
        [this] { return audit_violations_.load(std::memory_order_relaxed); });
    reg.counter_fn("gateway_queue_high_water", "peak drive-queue occupancy",
                   [this] { return static_cast<std::uint64_t>(queue_.high_water()); });
    reg.gauge_fn("gateway_queue_depth", "current drive-queue occupancy",
                 [this] { return static_cast<double>(queue_.size()); });
    reg.gauge_fn("gateway_inflight_share",
                 "in-flight share accumulator (processor units)", [this] {
                   return static_cast<double>(
                              share_scaled_.load(std::memory_order_relaxed)) /
                          static_cast<double>(config_.granularity);
                 });
  }

  drive_thread_ = std::thread([this] { drive(); });
}

AdmissionGateway::~AdmissionGateway() {
  try {
    close();
  } catch (...) {
    // A drive-thread error surfaces from close(); in a destructor the best
    // we can do is not terminate. Callers who care call close() themselves.
  }
}

std::uint64_t AdmissionGateway::scaled_share(
    const workload::Job& job) const noexcept {
  const double min_share =
      cluster::required_share(job.scheduler_estimate, job.deadline,
                              model_.deadline_clamp, model_.max_speed);
  // Fixed-point in double first (floor keeps truncation deterministic),
  // clamped below the uint64 range before the cast — a near-zero deadline
  // can push the share to ~1e18 and beyond.
  const double scaled = static_cast<double>(job.num_procs) *
                        std::floor(static_cast<double>(config_.granularity) *
                                   min_share);
  return static_cast<std::uint64_t>(std::min(scaled, 9.0e18));
}

std::optional<trace::RejectionReason> AdmissionGateway::fast_reject_reason(
    const workload::Job& job) const noexcept {
  // C1: structurally impossible on every policy.
  if (job.num_procs > model_.cluster_size)
    return trace::RejectionReason::NoSuitableNode;
  // C2-share: Eq. 2's per-node total is resident + new_share with
  // resident >= 0, and new_share is antitone in node speed — so the
  // fastest-node empty-cluster share is a lower bound on every node's
  // test value (both monotonicities hold under IEEE round-to-nearest).
  if (model_.share_test) {
    const double share =
        cluster::required_share(job.scheduler_estimate, job.deadline,
                                model_.deadline_clamp, model_.max_speed);
    if (share > model_.share_capacity + model_.share_tolerance)
      return trace::RejectionReason::ShareOverflow;
  }
  // C2-deadline: the dispatch-time test compares now + estimate/max_speed
  // against submit + slack*deadline + eps, and `now >= submit` at every
  // evaluation; IEEE addition is weakly monotone, so failing at
  // now == submit implies failing at every later now.
  if (model_.deadline_test) {
    const double best_finish =
        job.submit_time + job.scheduler_estimate / model_.max_speed;
    const double allowed =
        job.submit_time + model_.slack_factor * job.deadline;
    if (best_finish > allowed + sim::kTimeEpsilon)
      return trace::RejectionReason::DeadlineInfeasible;
  }
  // C3: aggregate saturation — NOT a certificate (per-node admission can
  // admit under aggregate overload); sheds only when explicitly unsound.
  if (config_.shedding == GatewayConfig::Shedding::Aggressive) {
    const std::uint64_t c = scaled_share(job);
    const std::uint64_t spent = share_scaled_.load(std::memory_order_acquire);
    if (c > share_budget_scaled_ || spent > share_budget_scaled_ - c)
      return trace::RejectionReason::ShareOverflow;
  }
  return std::nullopt;
}

SubmitStatus AdmissionGateway::submit(const workload::Job& job) {
  if (closed_.load(std::memory_order_acquire)) return SubmitStatus::Closed;
  const std::optional<trace::RejectionReason> shed = fast_reject_reason(job);
  if (shed.has_value()) {
    if (config_.audit_shed) {
      // Replay the shed job through the exact path: byte-identity with an
      // ungated run, plus a live audit of the certificate.
      if (!queue_.push(QueueItem{job, /*pre_shed=*/true}))
        return SubmitStatus::Closed;
      enqueued_.fetch_add(1, std::memory_order_relaxed);
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    fast_rejected_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::FastRejected;
  }
  if (!queue_.push(QueueItem{job, /*pre_shed=*/false}))
    return SubmitStatus::Closed;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  return SubmitStatus::Enqueued;
}

void AdmissionGateway::drive() {
  try {
    QueueItem item;
    while (queue_.pop(item)) {
      workload::Job job = std::move(item.job);
      // Multi-producer interleaving can deliver a job stamped earlier than
      // one already submitted; clamp to the watermark (and the clock) so
      // the engine's monotonicity contract holds. With one producer the
      // stream is already monotone and both clamps are the identity —
      // that is the byte-identity case.
      job.submit_time =
          std::max({job.submit_time, last_submit_, engine_->now()});
      const AdmissionOutcome outcome = engine_->submit(job);
      last_submit_ = job.submit_time;
      decided_.fetch_add(1, std::memory_order_relaxed);
      if (item.pre_shed && !outcome.rejected()) {
        if (outcome.accepted()) {
          // Started at its arrival instant: the certificate is plainly wrong.
          audit_violations_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Queued: the EDF family decides feasibility at dispatch, so the
          // verdict is not in yet — audit it when the job resolves.
          shed_pending_.insert(job.id);
        }
      }
      if (!outcome.rejected()) {
        // Add-on-admit — unless the job already resolved inside its own
        // arrival step (zero-runtime completion), in which case the
        // observer has already fired and an add here would never be
        // subtracted.
        const metrics::JobRecord& rec = engine_->collector().record(job.id);
        if (rec.fate == metrics::JobFate::Pending) {
          const std::uint64_t c = scaled_share(job);
          if (c > 0) {
            contributions_.emplace(job.id, c);
            const std::uint64_t next =
                share_scaled_.load(std::memory_order_relaxed) + c;
            share_scaled_.store(next, std::memory_order_release);
            share_peak_.observe(next);
          }
        }
      }
    }
  } catch (...) {
    drive_error_ = std::current_exception();
    // Unblock producers waiting on a full queue; their pushes fail Closed.
    queue_.close();
  }
}

void AdmissionGateway::close() {
  closed_.store(true, std::memory_order_release);
  queue_.close();
  if (!join_done_) {
    if (drive_thread_.joinable()) drive_thread_.join();
    join_done_ = true;
  }
  if (drive_error_ != nullptr) {
    std::exception_ptr error = drive_error_;
    drive_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (!engine_->finished()) engine_->finish();
}

GatewayStats AdmissionGateway::stats() const {
  GatewayStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.fast_rejected = fast_rejected_.load(std::memory_order_relaxed);
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.decided = decided_.load(std::memory_order_relaxed);
  s.audit_violations = audit_violations_.load(std::memory_order_relaxed);
  s.queue_high_water = static_cast<std::uint64_t>(queue_.high_water());
  s.share_scaled_now = share_scaled_.load(std::memory_order_relaxed);
  s.share_scaled_peak = share_peak_.value();
  return s;
}

}  // namespace librisk::core
