// Non-preemptive space-shared Earliest Deadline First (paper Section 4).
//
// Jobs queue at submission; whenever capacity frees or a job arrives, EDF
// selects the queued job with the earliest absolute deadline. Its admission
// control is *relaxed*: a job is rejected only when selected, if its
// deadline has expired or can no longer be met by its runtime estimate.
// If the selected job cannot start for lack of free processors, EDF waits
// for them (head-of-line blocking) — but a later-arriving job with an
// earlier deadline can displace the head during the wait, which is the
// "better selection choice" advantage the paper discusses. EDF-NoAC
// (admission control disabled) is the paper's Section 4 observation that
// EDF without admission control performs far worse.
#pragma once

#include <string>
#include <vector>

#include "cluster/spaceshared.hpp"
#include "core/libra.hpp"  // AdmissionStats (the shared stats shape)
#include "core/scheduler.hpp"

namespace librisk::core {

struct EdfConfig {
  /// When false, never reject: expired jobs run anyway and count as late.
  bool admission_control = true;
  /// EASY-style backfilling on top of EDF order (extension; the paper's EDF
  /// does not backfill): while the earliest-deadline job waits for
  /// processors, a later-deadline job may start if — by runtime estimates —
  /// it cannot delay the head's reservation.
  bool backfilling = false;
  /// Graceful-degradation catalog entry (core/overload.hpp). EDF's only
  /// rejection site is the dispatch-time deadline-feasibility test, so the
  /// only mode with something to bend is DowngradeQoS (evaluate feasibility
  /// against deadline x downgrade_factor while engaged); every other mode
  /// behaves exactly like HardReject here (docs/OVERLOAD.md support matrix).
  OverloadConfig overload;
};

class EdfScheduler final : public Scheduler {
 public:
  EdfScheduler(sim::Simulator& simulator, cluster::SpaceSharedExecutor& executor,
               Collector& collector, EdfConfig config, std::string name = "EDF");

  void on_job_submitted(const Job& job) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Hot-path counters in the shared AdmissionStats shape. EDF has no node
  /// scan, so only submissions/accepted/rejections, the reason attribution
  /// and the deadline near-miss pair are populated. Rejections happen at
  /// dispatch (the relaxed admission control), so provenance records
  /// (Hooks::explain) are emitted for rejections only — acceptance is
  /// implicit in starting.
  [[nodiscard]] const AdmissionStats& admission_stats() const noexcept {
    return stats_;
  }

 private:
  void dispatch();
  void start_job(const Job& job);
  /// True when the job, started now on the fastest free nodes, could still
  /// meet its deadline according to its runtime estimate.
  [[nodiscard]] bool deadline_feasible(const Job& job) const;
  /// Signed headroom of that test (obs::NodeMargin convention):
  /// absolute_deadline - (now + best_runtime); the feasibility test passes
  /// iff margin >= -kTimeEpsilon (and the deadline has not expired).
  [[nodiscard]] double deadline_margin(const Job& job) const;
  /// EASY reservation for the waiting head (backfilling only).
  struct Reservation {
    sim::SimTime shadow_time = 0.0;
    int extra_nodes = 0;
  };
  [[nodiscard]] Reservation head_reservation(const Job& head) const;

  // ---- overload-catalog consult (core/overload.hpp) ----
  /// EDF's load signal: busy-processor fraction.
  [[nodiscard]] LoadSignal load_signal() const noexcept;
  /// DowngradeQoS consult at the dispatch rejection site: true when the
  /// selected job, infeasible at its submitted deadline, is feasible at the
  /// downgraded one — the job then keeps its granted extension (sticky in
  /// downgraded_deadline_) so later passes stay consistent even after the
  /// governor disengages.
  [[nodiscard]] bool try_degrade_head(const Job& job);

  sim::Simulator& sim_;
  cluster::SpaceSharedExecutor& executor_;
  Collector& collector_;
  EdfConfig config_;
  std::string name_;
  AdmissionStats stats_;
  std::vector<const Job*> queue_;
  /// Estimate-based completion times of running jobs (backfilling only).
  std::map<std::int64_t, sim::SimTime> estimated_finish_;
  /// Only DowngradeQoS has a license EDF can honor; every other mode keeps
  /// this false and the consult sites dead (byte-identity under HardReject).
  bool overload_enabled_ = false;
  OverloadGovernor governor_;
  /// Granted deadline extensions (job id -> effective absolute deadline);
  /// erased at start (with degraded-admit provenance) or final rejection.
  std::map<std::int64_t, sim::SimTime> downgraded_deadline_;
};

}  // namespace librisk::core
