#include "core/overload.hpp"

#include <stdexcept>
#include <string>

namespace librisk::core {

std::string_view to_string(DegradedMode mode) noexcept {
  return kOverloadCatalog[static_cast<std::size_t>(mode)].name;
}

DegradedMode parse_degraded_mode(std::string_view name) {
  for (const ModeSpec& spec : kOverloadCatalog)
    if (spec.name == name) return spec.mode;
  throw std::invalid_argument("unknown degraded mode: " + std::string(name));
}

std::array<DegradedMode, kDegradedModeCount> all_degraded_modes() {
  std::array<DegradedMode, kDegradedModeCount> modes{};
  for (std::size_t i = 0; i < modes.size(); ++i)
    modes[i] = kOverloadCatalog[i].mode;
  return modes;
}

const ModeSpec& mode_spec(DegradedMode mode) {
  const auto index = static_cast<std::size_t>(mode);
  if (index >= kOverloadCatalog.size())
    throw std::logic_error("mode_spec: out-of-range DegradedMode " +
                           std::to_string(index));
  return kOverloadCatalog[index];
}

void audit_catalog() {
  // Mirrors the compile-time static_assert — defense against a build that
  // somehow linked a divergent table — plus the string checks that are
  // nicer to report at runtime.
  for (std::size_t i = 0; i < kOverloadCatalog.size(); ++i) {
    const ModeSpec& spec = kOverloadCatalog[i];
    if (static_cast<std::size_t>(spec.mode) != i)
      throw std::logic_error("overload catalog: entry " + std::to_string(i) +
                             " is out of order");
    if ((spec.forbidden & kUniversalForbidden) != kUniversalForbidden)
      throw std::logic_error("overload catalog: mode '" +
                             std::string(spec.name) +
                             "' is missing a universal forbidden flag");
    if ((spec.forbidden & ~kAllForbidden) != 0)
      throw std::logic_error("overload catalog: mode '" +
                             std::string(spec.name) +
                             "' carries an unknown forbidden flag");
    for (std::size_t j = 0; j < i; ++j)
      if (kOverloadCatalog[j].name == spec.name)
        throw std::logic_error("overload catalog: duplicate mode name '" +
                               std::string(spec.name) + "'");
  }
  if (kOverloadCatalog[0].mode != DegradedMode::HardReject ||
      kOverloadCatalog[0].forbidden != kAllForbidden)
    throw std::logic_error(
        "overload catalog: HardReject must be entry 0 with every flag set");
}

void OverloadConfig::validate() const {
  if (static_cast<std::size_t>(mode) >= kOverloadCatalog.size())
    throw std::invalid_argument("OverloadConfig: unknown mode");
  if (!(activation_load >= 0.0))
    throw std::invalid_argument(
        "OverloadConfig: activation_load must be >= 0");
  if (!(tail_share > 0.0))
    throw std::invalid_argument("OverloadConfig: tail_share must be > 0");
  if (!(relax_sigma >= 0.0))
    throw std::invalid_argument("OverloadConfig: relax_sigma must be >= 0");
  if (!(defer_delay > 0.0))
    throw std::invalid_argument("OverloadConfig: defer_delay must be > 0");
  if (max_deferrals < 1)
    throw std::invalid_argument("OverloadConfig: max_deferrals must be >= 1");
  if (!(downgrade_factor > 1.0))
    throw std::invalid_argument(
        "OverloadConfig: downgrade_factor must be > 1");
}

OverloadGovernor::OverloadGovernor(OverloadConfig config)
    : config_(config) {
  config_.validate();
}

bool OverloadGovernor::evaluate(sim::SimTime now, const LoadSignal& load) {
  const bool degrade =
      overload_action(config_, load) == OverloadAction::Degrade;
  if (degrade != engaged_) {
    engaged_ = degrade;
    if (degrade) ++activations_;
    // Never reached under HardReject (overload_action returns Proceed), so
    // a HardReject run emits nothing — the byte-identity guarantee.
    if (trace_ != nullptr)
      trace_->mode_transition(now, static_cast<int>(config_.mode), engaged_,
                              load.utilization());
  }
  return engaged_;
}

}  // namespace librisk::core
