#include "core/risk.hpp"

#include <algorithm>
#include <cmath>

#if defined(LIBRISK_RISK_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

#include "cluster/share_model.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace librisk::core {

namespace {

// Eq. 6 acceptance shared by the owning and the view result types.
bool zero_risk_test(double sigma, double max_deadline_delay,
                    const RiskConfig& config) noexcept {
  if (sigma > config.sigma_threshold + config.tolerance) return false;
  if (config.rule == RiskConfig::Rule::SigmaAndNoDelay)
    return max_deadline_delay <= 1.0 + config.tolerance;
  return true;
}

}  // namespace

bool RiskAssessment::zero_risk(const RiskConfig& config) const noexcept {
  return zero_risk_test(sigma, max_deadline_delay, config);
}

bool RiskAssessmentView::zero_risk(const RiskConfig& config) const noexcept {
  return zero_risk_test(sigma, max_deadline_delay, config);
}

void processor_sharing_finish_times_into(std::span<const double> works,
                                         double speed_factor,
                                         std::vector<std::size_t>& order_scratch,
                                         std::vector<double>& finish) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  const std::size_t n = works.size();
  order_scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_scratch[i] = i;
  std::sort(order_scratch.begin(), order_scratch.end(),
            [&](std::size_t a, std::size_t b) { return works[a] < works[b]; });

  // Under equal splitting, the k-th job (by remaining work) finishes after
  // the previous one plus (n-k) shares of the work difference:
  //   F(k) = F(k-1) + (n - k + 1) * (w(k) - w(k-1)) / speed.
  finish.assign(n, 0.0);
  double clock = 0.0;
  double prev_work = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = works[order_scratch[k]];
    LIBRISK_CHECK(w >= 0.0, "negative remaining work");
    clock += static_cast<double>(n - k) * (w - prev_work) / speed_factor;
    prev_work = w;
    finish[order_scratch[k]] = clock;
  }
}

std::vector<double> processor_sharing_finish_times(std::span<const double> works,
                                                   double speed_factor) {
  std::vector<std::size_t> order;
  std::vector<double> finish;
  processor_sharing_finish_times_into(works, speed_factor, order, finish);
  return finish;
}

namespace {

// Predicted delay (Algorithm 1, line 4) from a finish offset; the shared
// inline helper carries the arithmetic (see risk.hpp).
double delay_from_finish(const RiskJobInput& j, double finish_offset) noexcept {
  return delay_from_finish_offset(j.remaining_work, j.remaining_deadline,
                                  finish_offset);
}

// Predicted time-from-now to completion for every job, under the configured
// node execution model (legacy multi-pass path).
std::vector<double> predict_finish_offsets(std::span<const RiskJobInput> jobs,
                                           const RiskConfig& config,
                                           double speed_factor,
                                           double available_capacity,
                                           std::span<const double> shares,
                                           double total_share) {
  if (config.prediction == RiskConfig::Prediction::ProcessorSharing) {
    std::vector<double> works;
    works.reserve(jobs.size());
    for (const RiskJobInput& j : jobs) works.push_back(j.remaining_work);
    return processor_sharing_finish_times(works, speed_factor);
  }

  std::vector<double> finish(jobs.size(), 0.0);
  if (config.prediction == RiskConfig::Prediction::CurrentRate) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const RiskJobInput& j = jobs[i];
      if (j.remaining_work <= 0.0) continue;
      double rate;
      if (j.current_rate == RiskJobInput::kNewJob) {
        // Admission candidate: it can claim at most the node's spare
        // capacity, and never needs more than its required share.
        const double alloc =
            std::min(shares[i], std::max(available_capacity, 0.0));
        rate = std::min(alloc, 1.0) * speed_factor;
      } else {
        rate = j.current_rate;
      }
      finish[i] = rate > 0.0 ? j.remaining_work / rate : kStarvedFinish;
      finish[i] = std::min(finish[i], kStarvedFinish);
    }
    return finish;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].remaining_work <= 0.0) continue;
    const double alloc = cluster::allocate_one(shares[i], total_share - shares[i],
                                               config.work_conserving_prediction);
    // alloc > 0 because remaining_work > 0 forces shares[i] > 0.
    finish[i] = jobs[i].remaining_work / (alloc * speed_factor);
  }
  return finish;
}

}  // namespace

RiskAssessment assess_node_legacy(std::span<const RiskJobInput> jobs,
                                  const RiskConfig& config, double speed_factor,
                                  double available_capacity) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  RiskAssessment out;
  if (jobs.empty()) {
    out.max_deadline_delay = 1.0;  // empty node: ideal by definition
    return out;
  }

  // Eq. 1-2: per-job required shares and the node total.
  std::vector<double> shares;
  shares.reserve(jobs.size());
  for (const RiskJobInput& j : jobs) {
    LIBRISK_CHECK(j.remaining_work >= 0.0, "negative remaining work");
    shares.push_back(cluster::required_share(j.remaining_work, j.remaining_deadline,
                                             config.deadline_clamp, speed_factor));
  }
  out.total_share = cluster::total_share(shares);

  // Algorithm 1, line 4: the delay each job would incur on this node.
  const std::vector<double> finish_offsets = predict_finish_offsets(
      jobs, config, speed_factor, available_capacity, shares, out.total_share);
  out.predicted_delay.reserve(jobs.size());
  out.deadline_delay.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double delay = delay_from_finish(jobs[i], finish_offsets[i]);
    out.predicted_delay.push_back(delay);
    out.deadline_delay.push_back(deadline_delay_metric(
        delay, jobs[i].remaining_deadline, config.deadline_clamp));
  }

  // Eq. 5-6.
  out.mu = stats::mean(out.deadline_delay);
  out.sigma = stats::stddev_population_eq6(out.deadline_delay);
  out.max_deadline_delay =
      *std::max_element(out.deadline_delay.begin(), out.deadline_delay.end());
  return out;
}

RiskAssessmentView assess_node(std::span<const RiskJobInput> jobs,
                               const RiskConfig& config, double speed_factor,
                               double available_capacity,
                               RiskWorkspace& ws) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  RiskAssessmentView out;
  if (jobs.empty()) {
    out.max_deadline_delay = 1.0;  // empty node: ideal by definition
    return out;
  }

  const std::size_t n = jobs.size();
  ws.predicted_delay_.resize(n);
  ws.deadline_delay_.resize(n);

  // Accumulators fused into the per-job loops. Each matches the exact
  // summation order of the legacy path (in-order sums over index 0..n-1),
  // so total_share, mu (Eq. 5) and sigma (Eq. 6) come out bit-identical.
  double total = 0.0;
  double dd_sum = 0.0;
  double dd_sum_sq = 0.0;
  double dd_max = 0.0;

  if (config.prediction == RiskConfig::Prediction::CurrentRate) {
    // Hot path: everything per job is local, so one fused pass suffices —
    // no shares/finish arrays at all.
    const double spare = std::max(available_capacity, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const RiskJobInput& j = jobs[i];
      LIBRISK_CHECK(j.remaining_work >= 0.0, "negative remaining work");
      const double share = cluster::required_share(
          j.remaining_work, j.remaining_deadline, config.deadline_clamp,
          speed_factor);
      total += share;
      double finish = 0.0;
      if (j.remaining_work > 0.0) {
        const double rate = j.current_rate == RiskJobInput::kNewJob
                                ? std::min(std::min(share, spare), 1.0) * speed_factor
                                : j.current_rate;
        finish = rate > 0.0 ? j.remaining_work / rate : kStarvedFinish;
        finish = std::min(finish, kStarvedFinish);
      }
      const double delay = delay_from_finish(j, finish);
      const double dd = deadline_delay_metric(delay, j.remaining_deadline,
                                              config.deadline_clamp);
      ws.predicted_delay_[i] = delay;
      ws.deadline_delay_[i] = dd;
      dd_sum += dd;
      dd_sum_sq += dd * dd;
      dd_max = std::max(dd_max, dd);
    }
  } else {
    // ProcessorSharing / ProportionalShare predictions need the whole node
    // population before any finish time is known; mirror the legacy pass
    // structure over workspace buffers.
    ws.shares_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      LIBRISK_CHECK(jobs[i].remaining_work >= 0.0, "negative remaining work");
      ws.shares_[i] = cluster::required_share(jobs[i].remaining_work,
                                              jobs[i].remaining_deadline,
                                              config.deadline_clamp, speed_factor);
      total += ws.shares_[i];
    }

    if (config.prediction == RiskConfig::Prediction::ProcessorSharing) {
      // Stage remaining works in the predicted-delay buffer (overwritten by
      // the delay pass below) to avoid a dedicated works array.
      for (std::size_t i = 0; i < n; ++i)
        ws.predicted_delay_[i] = jobs[i].remaining_work;
      processor_sharing_finish_times_into(ws.predicted_delay_, speed_factor,
                                          ws.order_, ws.finish_);
    } else {
      ws.finish_.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (jobs[i].remaining_work <= 0.0) continue;
        const double alloc =
            cluster::allocate_one(ws.shares_[i], total - ws.shares_[i],
                                  config.work_conserving_prediction);
        // alloc > 0 because remaining_work > 0 forces shares_[i] > 0.
        ws.finish_[i] = jobs[i].remaining_work / (alloc * speed_factor);
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      const double delay = delay_from_finish(jobs[i], ws.finish_[i]);
      const double dd = deadline_delay_metric(delay, jobs[i].remaining_deadline,
                                              config.deadline_clamp);
      ws.predicted_delay_[i] = delay;
      ws.deadline_delay_[i] = dd;
      dd_sum += dd;
      dd_sum_sq += dd * dd;
      dd_max = std::max(dd_max, dd);
    }
  }

  out.total_share = total;
  out.predicted_delay = ws.predicted_delay_;
  out.deadline_delay = ws.deadline_delay_;
  const double dn = static_cast<double>(n);
  out.mu = dd_sum / dn;  // == stats::mean: in-order sum, then divide
  // == stats::stddev_population_eq6 (0 below two samples).
  if (n >= 2) {
    const double m = dd_sum / dn;
    out.sigma = std::sqrt(std::max(0.0, dd_sum_sq / dn - m * m));
  }
  out.max_deadline_delay = dd_max;
  return out;
}

RiskAssessment assess_node(std::span<const RiskJobInput> jobs,
                           const RiskConfig& config, double speed_factor,
                           double available_capacity) {
  RiskWorkspace ws;
  const RiskAssessmentView view =
      assess_node(jobs, config, speed_factor, available_capacity, ws);
  RiskAssessment out;
  out.predicted_delay.assign(view.predicted_delay.begin(),
                             view.predicted_delay.end());
  out.deadline_delay.assign(view.deadline_delay.begin(),
                            view.deadline_delay.end());
  out.total_share = view.total_share;
  out.mu = view.mu;
  out.sigma = view.sigma;
  out.max_deadline_delay = view.max_deadline_delay;
  return out;
}

// ---- batched kernel (assess_nodes) ----------------------------------------

namespace {

// The admission candidate's contribution, appended after the residents' fold
// in every path — exactly the kNewJob iteration of the scalar fused loop.
struct CandidateTerms {
  double share = 0.0;
  double dd = 0.0;
};

CandidateTerms candidate_terms(double work, double deadline,
                               const RiskConfig& config, double speed_factor,
                               double available_capacity) noexcept {
  CandidateTerms t;
  t.share = cluster::required_share(work, deadline, config.deadline_clamp,
                                    speed_factor);
  double finish = 0.0;
  if (work > 0.0) {
    const double spare = std::max(available_capacity, 0.0);
    const double rate = std::min(std::min(t.share, spare), 1.0) * speed_factor;
    finish = rate > 0.0 ? work / rate : kStarvedFinish;
    finish = std::min(finish, kStarvedFinish);
  }
  const double delay = delay_from_finish_offset(work, deadline, finish);
  t.dd = deadline_delay_metric(delay, deadline, config.deadline_clamp);
  return t;
}

// Resident power sums of one node, strict order: the scalar fused loop's
// left-fold over the SoA spans, accumulator for accumulator.
ResidentRiskAggregates fold_residents_strict(const NodeRiskInput& node,
                                             const RiskConfig& config) noexcept {
  ResidentRiskAggregates agg;
  const std::size_t n = node.remaining_work.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double share = cluster::required_share(node.remaining_work[i],
                                                 node.remaining_deadline[i],
                                                 config.deadline_clamp,
                                                 node.speed_factor);
    agg.fold(share, node.remaining_work[i], node.remaining_deadline[i],
             node.rate[i], config.deadline_clamp);
  }
  agg.computed = true;
  return agg;
}

#if defined(LIBRISK_RISK_SIMD) && defined(__AVX2__)

// Explicit AVX2 lane for the Reassociated mode: four residents per step,
// branchless selects instead of the scalar branches. Per-element values are
// identical to the strict fold (same expressions, blended); only the
// partial-sum grouping differs, which is what Reassociated licenses.
ResidentRiskAggregates fold_residents_avx2(const NodeRiskInput& node,
                                           const RiskConfig& config) noexcept {
  ResidentRiskAggregates agg;
  const std::size_t n = node.remaining_work.size();
  const double clamp = config.deadline_clamp;
  const double speed = node.speed_factor;

  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vclamp = _mm256_set1_pd(clamp);
  const __m256d vspeed = _mm256_set1_pd(speed);
  const __m256d vstarved = _mm256_set1_pd(kStarvedFinish);
  __m256d vshare_sum = vzero;
  __m256d vdd_sum = vzero;
  __m256d vdd_sum_sq = vzero;
  __m256d vdd_max = vzero;
  __m256d vdd_min = _mm256_set1_pd(std::numeric_limits<double>::infinity());

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d w = _mm256_loadu_pd(node.remaining_work.data() + i);
    const __m256d d = _mm256_loadu_pd(node.remaining_deadline.data() + i);
    const __m256d r = _mm256_loadu_pd(node.rate.data() + i);
    const __m256d wpos = _mm256_cmp_pd(w, vzero, _CMP_GT_OQ);
    // share = w > 0 ? w / (max(d, clamp) * speed) : 0
    const __m256d horizon = _mm256_max_pd(d, vclamp);
    const __m256d share =
        _mm256_and_pd(_mm256_div_pd(w, _mm256_mul_pd(horizon, vspeed)), wpos);
    // finish = w > 0 ? min(r > 0 ? w / r : starved, starved) : 0
    const __m256d rpos = _mm256_cmp_pd(r, vzero, _CMP_GT_OQ);
    __m256d finish = _mm256_blendv_pd(vstarved, _mm256_div_pd(w, r), rpos);
    finish = _mm256_min_pd(finish, vstarved);
    finish = _mm256_and_pd(finish, wpos);
    // delay = w > 0 ? max(0, finish - d) : max(-d, 0)
    const __m256d late = _mm256_max_pd(vzero, _mm256_sub_pd(finish, d));
    const __m256d past = _mm256_max_pd(_mm256_sub_pd(vzero, d), vzero);
    const __m256d delay = _mm256_blendv_pd(past, late, wpos);
    // dd = (delay + max(d, clamp)) / max(d, clamp)
    const __m256d dd =
        _mm256_div_pd(_mm256_add_pd(delay, horizon), horizon);
    vshare_sum = _mm256_add_pd(vshare_sum, share);
    vdd_sum = _mm256_add_pd(vdd_sum, dd);
    vdd_sum_sq = _mm256_add_pd(vdd_sum_sq, _mm256_mul_pd(dd, dd));
    vdd_max = _mm256_max_pd(vdd_max, dd);
    vdd_min = _mm256_min_pd(vdd_min, dd);
  }

  // Fixed-order lane reduction (deterministic for a given build).
  alignas(32) double lanes[4];
  const auto reduce_add = [&lanes](__m256d v) {
    _mm256_store_pd(lanes, v);
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  };
  _mm256_store_pd(lanes, vdd_max);
  agg.dd_max = std::max(std::max(lanes[0], lanes[1]),
                        std::max(lanes[2], lanes[3]));
  _mm256_store_pd(lanes, vdd_min);
  agg.dd_min = std::min(std::min(lanes[0], lanes[1]),
                        std::min(lanes[2], lanes[3]));
  agg.share_sum = reduce_add(vshare_sum);
  agg.dd_sum = reduce_add(vdd_sum);
  agg.dd_sum_sq = reduce_add(vdd_sum_sq);

  for (; i < n; ++i) {
    const double share = cluster::required_share(node.remaining_work[i],
                                                 node.remaining_deadline[i],
                                                 clamp, speed);
    agg.fold(share, node.remaining_work[i], node.remaining_deadline[i],
             node.rate[i], clamp);
  }
  agg.computed = true;
  return agg;
}

#endif  // LIBRISK_RISK_SIMD && __AVX2__

// Reassociated mode: four independent accumulator lanes so the compiler can
// keep the divide pipeline full (and autovectorize under -march=x86-64-v3);
// the explicit AVX2 kernel takes over when compiled in. Element values match
// the strict fold exactly — only summation grouping differs, bounded as
// documented on RiskConfig::Accumulation.
ResidentRiskAggregates fold_residents_reassociated(
    const NodeRiskInput& node, const RiskConfig& config) noexcept {
#if defined(LIBRISK_RISK_SIMD) && defined(__AVX2__)
  return fold_residents_avx2(node, config);
#else
  ResidentRiskAggregates agg;
  const std::size_t n = node.remaining_work.size();
  const double clamp = config.deadline_clamp;
  const double speed = node.speed_factor;
  double share_sum[4] = {0.0, 0.0, 0.0, 0.0};
  double dd_sum[4] = {0.0, 0.0, 0.0, 0.0};
  double dd_sum_sq[4] = {0.0, 0.0, 0.0, 0.0};
  double dd_max[4] = {0.0, 0.0, 0.0, 0.0};
  double dd_min[4] = {std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity()};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const std::size_t k = i + lane;
      const double w = node.remaining_work[k];
      const double d = node.remaining_deadline[k];
      const double r = node.rate[k];
      const double horizon = std::max(d, clamp);
      const double share = w > 0.0 ? w / (horizon * speed) : 0.0;
      double finish = r > 0.0 ? w / r : kStarvedFinish;
      finish = std::min(finish, kStarvedFinish);
      finish = w > 0.0 ? finish : 0.0;
      const double delay =
          w > 0.0 ? std::max(0.0, finish - d) : std::max(-d, 0.0);
      const double dd = (delay + horizon) / horizon;
      share_sum[lane] += share;
      dd_sum[lane] += dd;
      dd_sum_sq[lane] += dd * dd;
      dd_max[lane] = std::max(dd_max[lane], dd);
      dd_min[lane] = std::min(dd_min[lane], dd);
    }
  }
  agg.share_sum = ((share_sum[0] + share_sum[1]) + share_sum[2]) + share_sum[3];
  agg.dd_sum = ((dd_sum[0] + dd_sum[1]) + dd_sum[2]) + dd_sum[3];
  agg.dd_sum_sq = ((dd_sum_sq[0] + dd_sum_sq[1]) + dd_sum_sq[2]) + dd_sum_sq[3];
  agg.dd_max = std::max(std::max(dd_max[0], dd_max[1]),
                        std::max(dd_max[2], dd_max[3]));
  agg.dd_min = std::min(std::min(dd_min[0], dd_min[1]),
                        std::min(dd_min[2], dd_min[3]));
  for (; i < n; ++i) {
    const double share = cluster::required_share(node.remaining_work[i],
                                                 node.remaining_deadline[i],
                                                 clamp, speed);
    agg.fold(share, node.remaining_work[i], node.remaining_deadline[i],
             node.rate[i], clamp);
  }
  agg.computed = true;
  return agg;
#endif
}

}  // namespace

void assess_nodes(std::span<const NodeRiskInput> nodes, double candidate_work,
                  double candidate_deadline, const RiskConfig& config,
                  RiskWorkspace& workspace, std::span<NodeRiskVerdict> verdicts,
                  const AssessNodesOptions& options) {
  LIBRISK_CHECK(verdicts.size() >= nodes.size(),
                "verdict span shorter than node batch");
  LIBRISK_CHECK(candidate_work >= 0.0, "negative remaining work");
  const bool current_rate =
      config.prediction == RiskConfig::Prediction::CurrentRate;

  for (std::size_t v = 0; v < nodes.size(); ++v) {
    const NodeRiskInput& node = nodes[v];
    NodeRiskVerdict& verdict = verdicts[v];
    verdict = NodeRiskVerdict{};
    LIBRISK_CHECK(node.speed_factor > 0.0, "speed factor must be positive");
    const std::size_t n_res = node.remaining_work.size();
    LIBRISK_CHECK(node.remaining_deadline.size() == n_res &&
                      node.rate.size() == n_res,
                  "SoA spans must be index-aligned");

    if (!current_rate) {
      // ProcessorSharing / ProportionalShare need the whole population at
      // once anyway: stage into the workspace and reuse the scalar kernel
      // (bit-identical by construction).
      workspace.inputs.clear();
      for (std::size_t i = 0; i < n_res; ++i)
        workspace.inputs.push_back(RiskJobInput{node.remaining_work[i],
                                                node.remaining_deadline[i],
                                                node.rate[i]});
      workspace.inputs.push_back(RiskJobInput{candidate_work,
                                              candidate_deadline,
                                              RiskJobInput::kNewJob});
      const RiskAssessmentView a =
          assess_node(workspace.inputs, config, node.speed_factor,
                      node.available_capacity, workspace);
      verdict.suitable = a.zero_risk(config);
      verdict.sigma = a.sigma;
      verdict.total_share = a.total_share;
      verdict.mu = a.mu;
      verdict.max_deadline_delay = a.max_deadline_delay;
      continue;
    }

    const bool cached = node.aggregates != nullptr && node.aggregates->computed;
    ResidentRiskAggregates folded;
    const ResidentRiskAggregates* agg = node.aggregates;
    if (!cached) {
      folded = config.batch_accumulation == RiskConfig::Accumulation::Strict
                   ? fold_residents_strict(node, config)
                   : fold_residents_reassociated(node, config);
      agg = &folded;
    }
    verdict.aggregate_path = cached;

    // Batch-level early exit: the residents' dd spread alone can force
    // sigma past the threshold whatever the candidate adds.
    if (options.allow_bound_skip && n_res >= 2 &&
        sigma_bound_rejects(agg->dd_max, agg->dd_min, n_res + 1, config)) {
      verdict.bound_skipped = true;
      verdict.suitable = false;
      continue;
    }

    // Candidate terms appended last — the scalar loop's accumulation order.
    const CandidateTerms cand =
        candidate_terms(candidate_work, candidate_deadline, config,
                        node.speed_factor, node.available_capacity);
    const double total = agg->share_sum + cand.share;
    const double dd_sum = agg->dd_sum + cand.dd;
    const double dd_sum_sq = agg->dd_sum_sq + cand.dd * cand.dd;
    const double dd_max = std::max(agg->dd_max, cand.dd);
    const std::size_t n = n_res + 1;
    verdict.total_share = total;
    verdict.mu = dd_sum / static_cast<double>(n);
    verdict.sigma = sigma_from_sums(dd_sum, dd_sum_sq, n);
    verdict.max_deadline_delay = dd_max;
    verdict.suitable = zero_risk_test(verdict.sigma, dd_max, config);
  }
}

}  // namespace librisk::core
