#include "core/risk.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/share_model.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace librisk::core {

double job_delay(double finish_time, double submit_time, double deadline) noexcept {
  return std::max(0.0, (finish_time - submit_time) - deadline);
}

double deadline_delay_metric(double delay, double remaining_deadline,
                             double deadline_clamp) noexcept {
  const double rd = std::max(remaining_deadline, deadline_clamp);
  return (std::max(delay, 0.0) + rd) / rd;
}

namespace {

// Eq. 6 acceptance shared by the owning and the view result types.
bool zero_risk_test(double sigma, double max_deadline_delay,
                    const RiskConfig& config) noexcept {
  if (sigma > config.sigma_threshold + config.tolerance) return false;
  if (config.rule == RiskConfig::Rule::SigmaAndNoDelay)
    return max_deadline_delay <= 1.0 + config.tolerance;
  return true;
}

}  // namespace

bool RiskAssessment::zero_risk(const RiskConfig& config) const noexcept {
  return zero_risk_test(sigma, max_deadline_delay, config);
}

bool RiskAssessmentView::zero_risk(const RiskConfig& config) const noexcept {
  return zero_risk_test(sigma, max_deadline_delay, config);
}

void processor_sharing_finish_times_into(std::span<const double> works,
                                         double speed_factor,
                                         std::vector<std::size_t>& order_scratch,
                                         std::vector<double>& finish) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  const std::size_t n = works.size();
  order_scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_scratch[i] = i;
  std::sort(order_scratch.begin(), order_scratch.end(),
            [&](std::size_t a, std::size_t b) { return works[a] < works[b]; });

  // Under equal splitting, the k-th job (by remaining work) finishes after
  // the previous one plus (n-k) shares of the work difference:
  //   F(k) = F(k-1) + (n - k + 1) * (w(k) - w(k-1)) / speed.
  finish.assign(n, 0.0);
  double clock = 0.0;
  double prev_work = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = works[order_scratch[k]];
    LIBRISK_CHECK(w >= 0.0, "negative remaining work");
    clock += static_cast<double>(n - k) * (w - prev_work) / speed_factor;
    prev_work = w;
    finish[order_scratch[k]] = clock;
  }
}

std::vector<double> processor_sharing_finish_times(std::span<const double> works,
                                                   double speed_factor) {
  std::vector<std::size_t> order;
  std::vector<double> finish;
  processor_sharing_finish_times_into(works, speed_factor, order, finish);
  return finish;
}

namespace {

// An effectively-starved job's predicted completion: far enough out to
// dominate any deadline, small enough to stay numerically benign.
constexpr double kStarvedFinish = 1e15;

// Predicted delay (Algorithm 1, line 4) from a finish offset: past-deadline
// jobs believed finished are already late by their overshoot.
double delay_from_finish(const RiskJobInput& j, double finish_offset) noexcept {
  if (j.remaining_work > 0.0)
    return std::max(0.0, finish_offset - j.remaining_deadline);
  if (j.remaining_deadline < 0.0) return -j.remaining_deadline;
  return 0.0;
}

// Predicted time-from-now to completion for every job, under the configured
// node execution model (legacy multi-pass path).
std::vector<double> predict_finish_offsets(std::span<const RiskJobInput> jobs,
                                           const RiskConfig& config,
                                           double speed_factor,
                                           double available_capacity,
                                           std::span<const double> shares,
                                           double total_share) {
  if (config.prediction == RiskConfig::Prediction::ProcessorSharing) {
    std::vector<double> works;
    works.reserve(jobs.size());
    for (const RiskJobInput& j : jobs) works.push_back(j.remaining_work);
    return processor_sharing_finish_times(works, speed_factor);
  }

  std::vector<double> finish(jobs.size(), 0.0);
  if (config.prediction == RiskConfig::Prediction::CurrentRate) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const RiskJobInput& j = jobs[i];
      if (j.remaining_work <= 0.0) continue;
      double rate;
      if (j.current_rate == RiskJobInput::kNewJob) {
        // Admission candidate: it can claim at most the node's spare
        // capacity, and never needs more than its required share.
        const double alloc =
            std::min(shares[i], std::max(available_capacity, 0.0));
        rate = std::min(alloc, 1.0) * speed_factor;
      } else {
        rate = j.current_rate;
      }
      finish[i] = rate > 0.0 ? j.remaining_work / rate : kStarvedFinish;
      finish[i] = std::min(finish[i], kStarvedFinish);
    }
    return finish;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].remaining_work <= 0.0) continue;
    const double alloc = cluster::allocate_one(shares[i], total_share - shares[i],
                                               config.work_conserving_prediction);
    // alloc > 0 because remaining_work > 0 forces shares[i] > 0.
    finish[i] = jobs[i].remaining_work / (alloc * speed_factor);
  }
  return finish;
}

}  // namespace

RiskAssessment assess_node_legacy(std::span<const RiskJobInput> jobs,
                                  const RiskConfig& config, double speed_factor,
                                  double available_capacity) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  RiskAssessment out;
  if (jobs.empty()) {
    out.max_deadline_delay = 1.0;  // empty node: ideal by definition
    return out;
  }

  // Eq. 1-2: per-job required shares and the node total.
  std::vector<double> shares;
  shares.reserve(jobs.size());
  for (const RiskJobInput& j : jobs) {
    LIBRISK_CHECK(j.remaining_work >= 0.0, "negative remaining work");
    shares.push_back(cluster::required_share(j.remaining_work, j.remaining_deadline,
                                             config.deadline_clamp, speed_factor));
  }
  out.total_share = cluster::total_share(shares);

  // Algorithm 1, line 4: the delay each job would incur on this node.
  const std::vector<double> finish_offsets = predict_finish_offsets(
      jobs, config, speed_factor, available_capacity, shares, out.total_share);
  out.predicted_delay.reserve(jobs.size());
  out.deadline_delay.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double delay = delay_from_finish(jobs[i], finish_offsets[i]);
    out.predicted_delay.push_back(delay);
    out.deadline_delay.push_back(deadline_delay_metric(
        delay, jobs[i].remaining_deadline, config.deadline_clamp));
  }

  // Eq. 5-6.
  out.mu = stats::mean(out.deadline_delay);
  out.sigma = stats::stddev_population_eq6(out.deadline_delay);
  out.max_deadline_delay =
      *std::max_element(out.deadline_delay.begin(), out.deadline_delay.end());
  return out;
}

RiskAssessmentView assess_node(std::span<const RiskJobInput> jobs,
                               const RiskConfig& config, double speed_factor,
                               double available_capacity,
                               RiskWorkspace& ws) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  RiskAssessmentView out;
  if (jobs.empty()) {
    out.max_deadline_delay = 1.0;  // empty node: ideal by definition
    return out;
  }

  const std::size_t n = jobs.size();
  ws.predicted_delay_.resize(n);
  ws.deadline_delay_.resize(n);

  // Accumulators fused into the per-job loops. Each matches the exact
  // summation order of the legacy path (in-order sums over index 0..n-1),
  // so total_share, mu (Eq. 5) and sigma (Eq. 6) come out bit-identical.
  double total = 0.0;
  double dd_sum = 0.0;
  double dd_sum_sq = 0.0;
  double dd_max = 0.0;

  if (config.prediction == RiskConfig::Prediction::CurrentRate) {
    // Hot path: everything per job is local, so one fused pass suffices —
    // no shares/finish arrays at all.
    const double spare = std::max(available_capacity, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const RiskJobInput& j = jobs[i];
      LIBRISK_CHECK(j.remaining_work >= 0.0, "negative remaining work");
      const double share = cluster::required_share(
          j.remaining_work, j.remaining_deadline, config.deadline_clamp,
          speed_factor);
      total += share;
      double finish = 0.0;
      if (j.remaining_work > 0.0) {
        const double rate = j.current_rate == RiskJobInput::kNewJob
                                ? std::min(std::min(share, spare), 1.0) * speed_factor
                                : j.current_rate;
        finish = rate > 0.0 ? j.remaining_work / rate : kStarvedFinish;
        finish = std::min(finish, kStarvedFinish);
      }
      const double delay = delay_from_finish(j, finish);
      const double dd = deadline_delay_metric(delay, j.remaining_deadline,
                                              config.deadline_clamp);
      ws.predicted_delay_[i] = delay;
      ws.deadline_delay_[i] = dd;
      dd_sum += dd;
      dd_sum_sq += dd * dd;
      dd_max = std::max(dd_max, dd);
    }
  } else {
    // ProcessorSharing / ProportionalShare predictions need the whole node
    // population before any finish time is known; mirror the legacy pass
    // structure over workspace buffers.
    ws.shares_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      LIBRISK_CHECK(jobs[i].remaining_work >= 0.0, "negative remaining work");
      ws.shares_[i] = cluster::required_share(jobs[i].remaining_work,
                                              jobs[i].remaining_deadline,
                                              config.deadline_clamp, speed_factor);
      total += ws.shares_[i];
    }

    if (config.prediction == RiskConfig::Prediction::ProcessorSharing) {
      // Stage remaining works in the predicted-delay buffer (overwritten by
      // the delay pass below) to avoid a dedicated works array.
      for (std::size_t i = 0; i < n; ++i)
        ws.predicted_delay_[i] = jobs[i].remaining_work;
      processor_sharing_finish_times_into(ws.predicted_delay_, speed_factor,
                                          ws.order_, ws.finish_);
    } else {
      ws.finish_.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (jobs[i].remaining_work <= 0.0) continue;
        const double alloc =
            cluster::allocate_one(ws.shares_[i], total - ws.shares_[i],
                                  config.work_conserving_prediction);
        // alloc > 0 because remaining_work > 0 forces shares_[i] > 0.
        ws.finish_[i] = jobs[i].remaining_work / (alloc * speed_factor);
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      const double delay = delay_from_finish(jobs[i], ws.finish_[i]);
      const double dd = deadline_delay_metric(delay, jobs[i].remaining_deadline,
                                              config.deadline_clamp);
      ws.predicted_delay_[i] = delay;
      ws.deadline_delay_[i] = dd;
      dd_sum += dd;
      dd_sum_sq += dd * dd;
      dd_max = std::max(dd_max, dd);
    }
  }

  out.total_share = total;
  out.predicted_delay = ws.predicted_delay_;
  out.deadline_delay = ws.deadline_delay_;
  const double dn = static_cast<double>(n);
  out.mu = dd_sum / dn;  // == stats::mean: in-order sum, then divide
  // == stats::stddev_population_eq6 (0 below two samples).
  if (n >= 2) {
    const double m = dd_sum / dn;
    out.sigma = std::sqrt(std::max(0.0, dd_sum_sq / dn - m * m));
  }
  out.max_deadline_delay = dd_max;
  return out;
}

RiskAssessment assess_node(std::span<const RiskJobInput> jobs,
                           const RiskConfig& config, double speed_factor,
                           double available_capacity) {
  RiskWorkspace ws;
  const RiskAssessmentView view =
      assess_node(jobs, config, speed_factor, available_capacity, ws);
  RiskAssessment out;
  out.predicted_delay.assign(view.predicted_delay.begin(),
                             view.predicted_delay.end());
  out.deadline_delay.assign(view.deadline_delay.begin(),
                            view.deadline_delay.end());
  out.total_share = view.total_share;
  out.mu = view.mu;
  out.sigma = view.sigma;
  out.max_deadline_delay = view.max_deadline_delay;
  return out;
}

}  // namespace librisk::core
