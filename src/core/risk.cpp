#include "core/risk.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/share_model.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace librisk::core {

double job_delay(double finish_time, double submit_time, double deadline) noexcept {
  return std::max(0.0, (finish_time - submit_time) - deadline);
}

double deadline_delay_metric(double delay, double remaining_deadline,
                             double deadline_clamp) noexcept {
  const double rd = std::max(remaining_deadline, deadline_clamp);
  return (std::max(delay, 0.0) + rd) / rd;
}

bool RiskAssessment::zero_risk(const RiskConfig& config) const noexcept {
  if (sigma > config.sigma_threshold + config.tolerance) return false;
  if (config.rule == RiskConfig::Rule::SigmaAndNoDelay)
    return max_deadline_delay <= 1.0 + config.tolerance;
  return true;
}

std::vector<double> processor_sharing_finish_times(std::span<const double> works,
                                                   double speed_factor) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  const std::size_t n = works.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return works[a] < works[b];
  });

  // Under equal splitting, the k-th job (by remaining work) finishes after
  // the previous one plus (n-k) shares of the work difference:
  //   F(k) = F(k-1) + (n - k + 1) * (w(k) - w(k-1)) / speed.
  std::vector<double> finish(n, 0.0);
  double clock = 0.0;
  double prev_work = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = works[order[k]];
    LIBRISK_CHECK(w >= 0.0, "negative remaining work");
    clock += static_cast<double>(n - k) * (w - prev_work) / speed_factor;
    prev_work = w;
    finish[order[k]] = clock;
  }
  return finish;
}

namespace {

// An effectively-starved job's predicted completion: far enough out to
// dominate any deadline, small enough to stay numerically benign.
constexpr double kStarvedFinish = 1e15;

// Predicted time-from-now to completion for every job, under the configured
// node execution model.
std::vector<double> predict_finish_offsets(std::span<const RiskJobInput> jobs,
                                           const RiskConfig& config,
                                           double speed_factor,
                                           double available_capacity,
                                           std::span<const double> shares,
                                           double total_share) {
  if (config.prediction == RiskConfig::Prediction::ProcessorSharing) {
    std::vector<double> works;
    works.reserve(jobs.size());
    for (const RiskJobInput& j : jobs) works.push_back(j.remaining_work);
    return processor_sharing_finish_times(works, speed_factor);
  }

  std::vector<double> finish(jobs.size(), 0.0);
  if (config.prediction == RiskConfig::Prediction::CurrentRate) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const RiskJobInput& j = jobs[i];
      if (j.remaining_work <= 0.0) continue;
      double rate;
      if (j.current_rate == RiskJobInput::kNewJob) {
        // Admission candidate: it can claim at most the node's spare
        // capacity, and never needs more than its required share.
        const double alloc =
            std::min(shares[i], std::max(available_capacity, 0.0));
        rate = std::min(alloc, 1.0) * speed_factor;
      } else {
        rate = j.current_rate;
      }
      finish[i] = rate > 0.0 ? j.remaining_work / rate : kStarvedFinish;
      finish[i] = std::min(finish[i], kStarvedFinish);
    }
    return finish;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].remaining_work <= 0.0) continue;
    const double alloc = cluster::allocate_one(shares[i], total_share - shares[i],
                                               config.work_conserving_prediction);
    // alloc > 0 because remaining_work > 0 forces shares[i] > 0.
    finish[i] = jobs[i].remaining_work / (alloc * speed_factor);
  }
  return finish;
}

}  // namespace

RiskAssessment assess_node(std::span<const RiskJobInput> jobs,
                           const RiskConfig& config, double speed_factor,
                           double available_capacity) {
  LIBRISK_CHECK(speed_factor > 0.0, "speed factor must be positive");
  RiskAssessment out;
  if (jobs.empty()) {
    out.max_deadline_delay = 1.0;  // empty node: ideal by definition
    return out;
  }

  // Eq. 1-2: per-job required shares and the node total.
  std::vector<double> shares;
  shares.reserve(jobs.size());
  for (const RiskJobInput& j : jobs) {
    LIBRISK_CHECK(j.remaining_work >= 0.0, "negative remaining work");
    shares.push_back(cluster::required_share(j.remaining_work, j.remaining_deadline,
                                             config.deadline_clamp, speed_factor));
  }
  out.total_share = cluster::total_share(shares);

  // Algorithm 1, line 4: the delay each job would incur on this node.
  const std::vector<double> finish_offsets = predict_finish_offsets(
      jobs, config, speed_factor, available_capacity, shares, out.total_share);
  out.predicted_delay.reserve(jobs.size());
  out.deadline_delay.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const RiskJobInput& j = jobs[i];
    double delay = 0.0;
    if (j.remaining_work > 0.0) {
      delay = std::max(0.0, finish_offsets[i] - j.remaining_deadline);
    } else if (j.remaining_deadline < 0.0) {
      // Believed-finished job past its deadline: already late by that much.
      delay = -j.remaining_deadline;
    }
    out.predicted_delay.push_back(delay);
    out.deadline_delay.push_back(
        deadline_delay_metric(delay, j.remaining_deadline, config.deadline_clamp));
  }

  // Eq. 5-6.
  out.mu = stats::mean(out.deadline_delay);
  out.sigma = stats::stddev_population_eq6(out.deadline_delay);
  out.max_deadline_delay =
      *std::max_element(out.deadline_delay.begin(), out.deadline_delay.end());
  return out;
}

}  // namespace librisk::core
