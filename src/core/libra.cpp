#include "core/libra.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/check.hpp"
#include "support/log.hpp"

namespace librisk::core {

LibraConfig LibraConfig::libra() {
  LibraConfig c;
  c.admission = Admission::TotalShare;
  c.selection = Selection::BestFit;
  c.estimate_kind = cluster::TimeSharedExecutor::EstimateKind::Raw;
  return c;
}

LibraConfig LibraConfig::libra_risk() {
  LibraConfig c;
  c.admission = Admission::ZeroRisk;
  c.selection = Selection::FirstFit;
  c.estimate_kind = cluster::TimeSharedExecutor::EstimateKind::Current;
  return c;
}

LibraScheduler::LibraScheduler(sim::Simulator& simulator,
                               cluster::TimeSharedExecutor& executor,
                               Collector& collector, LibraConfig config,
                               std::string name)
    : sim_(simulator),
      executor_(executor),
      collector_(collector),
      config_(config),
      name_(std::move(name)) {
  LIBRISK_CHECK(config_.capacity > 0.0, "node capacity must be positive");
  // The executor's cached risk aggregates reuse is sound only when the
  // admission test reads exactly what the executor folded: current-estimate
  // remaining work, CurrentRate completion prediction, and the same
  // deadline clamp on both sides (the factory guarantees clamp equality;
  // hand-built configs may not).
  use_aggregates_ =
      config_.admission == LibraConfig::Admission::ZeroRisk &&
      config_.risk.prediction == RiskConfig::Prediction::CurrentRate &&
      config_.estimate_kind ==
          cluster::TimeSharedExecutor::EstimateKind::Current &&
      config_.risk.deadline_clamp == executor_.config().deadline_clamp;
  if (config_.admission == LibraConfig::Admission::ZeroRisk) {
    scan_parts_ = use_aggregates_
                      ? (cluster::kStateCapacity | cluster::kStateRiskAggregates)
                      : cluster::kStateCapacity;
  } else {
    scan_parts_ =
        config_.estimate_kind == cluster::TimeSharedExecutor::EstimateKind::Raw
            ? cluster::kStateSharesRaw
            : cluster::kStateSharesCurrent;
  }
  // Overload-catalog governor (core/overload.hpp). Under the default
  // HardReject mode overload_enabled_ stays false and every consult site
  // below reduces to a dead branch — the byte-identity guarantee.
  governor_ = OverloadGovernor(config_.overload);
  overload_enabled_ = governor_.enabled();
  max_speed_ = 0.0;
  for (cluster::NodeId n = 0; n < executor_.cluster().size(); ++n)
    max_speed_ = std::max(max_speed_, executor_.cluster().speed_factor(n));
  if (max_speed_ <= 0.0) max_speed_ = 1.0;
  executor_.set_completion_handler(
      [this](const Job& job, sim::SimTime finish) {
        if (response_hist_ != nullptr)
          response_hist_->record(finish - job.submit_time);
        if (overload_enabled_) {
          resolve_overload(job, finish, /*killed=*/false);
          return;
        }
        collector_.record_completed(job, finish);
      });
  executor_.set_kill_handler([this](const Job& job, sim::SimTime when) {
    if (overload_enabled_) {
      resolve_overload(job, when, /*killed=*/true);
      return;
    }
    collector_.record_killed(job, when);
  });
}

double LibraScheduler::new_job_share(const Job& job, cluster::NodeId node) const {
  return cluster::required_share(job.scheduler_estimate, job.deadline,
                                 executor_.config().deadline_clamp,
                                 executor_.cluster().speed_factor(node));
}

bool LibraScheduler::node_suitable(cluster::NodeId node, const Job& job,
                                   double& fit) const {
  if (config_.legacy_path) return node_suitable_legacy(node, job, fit);
  return node_suitable_fast(node, job, fit);
}

trace::RejectionReason LibraScheduler::scan_reason() const noexcept {
  return config_.admission == LibraConfig::Admission::TotalShare
             ? trace::RejectionReason::ShareOverflow
             : trace::RejectionReason::RiskSigma;
}

bool LibraScheduler::node_suitable_fast(cluster::NodeId node, const Job& job,
                                        double& fit, double* sigma_out) const {
  switch (config_.admission) {
    case LibraConfig::Admission::TotalShare: {
      const cluster::NodeStateView& state =
          executor_.node_state(node, scan_parts_);
      ++stats_.assessments;
      const double resident_total =
          config_.estimate_kind == cluster::TimeSharedExecutor::EstimateKind::Raw
              ? state.total_share_raw
              : state.total_share_current;
      const double total = resident_total + new_job_share(job, node);
      fit = total;
      if (sigma_out != nullptr) *sigma_out = -1.0;  // no sigma in Eq. 2
      return total <= config_.capacity + config_.tolerance;
    }
    case LibraConfig::Admission::ZeroRisk: {
      const cluster::NodeStateView& state =
          executor_.node_state(node, scan_parts_);
      // Empty-node fast path: the assessment would see a single job, whose
      // sigma (Eq. 6) is 0 by definition, so under the paper's sigma-only
      // rule the node is suitable and the fit key collapses to the new
      // job's own share — exactly what the full assessment returns.
      if (state.empty() && config_.risk.rule == RiskConfig::Rule::SigmaOnly &&
          0.0 <= config_.risk.sigma_threshold + config_.risk.tolerance) {
        ++stats_.empty_node_skips;
        // The assessment's total_share over [new job] alone, with the risk
        // config's own clamp (it can differ from the executor's).
        fit = cluster::required_share(job.scheduler_estimate, job.deadline,
                                      config_.risk.deadline_clamp,
                                      executor_.cluster().speed_factor(node));
        if (sigma_out != nullptr) *sigma_out = 0.0;
        return true;
      }
      ++stats_.assessments;
      ++stats_.batched_assessments;
      const bool raw =
          config_.estimate_kind == cluster::TimeSharedExecutor::EstimateKind::Raw;
      // Batch of one through the SoA kernel (the scan path batches wider;
      // this keeps introspection and the scan on the same arithmetic).
      NodeRiskInput input;
      input.remaining_work = raw ? state.remaining_raw : state.remaining_current;
      input.remaining_deadline = state.remaining_deadline;
      input.rate = state.rate;
      input.speed_factor = executor_.cluster().speed_factor(node);
      input.available_capacity = state.available_capacity;
      if (use_aggregates_) input.aggregates = &state.risk_current;
      NodeRiskVerdict verdict;
      assess_nodes({&input, 1}, job.scheduler_estimate, job.deadline,
                   config_.risk, workspace_, {&verdict, 1});
      fit = verdict.total_share;
      if (sigma_out != nullptr) *sigma_out = verdict.sigma;
      return verdict.suitable;
    }
  }
  return false;
}

void LibraScheduler::select_prefix(int count) {
  // The legacy path stable_sorts candidates built in ascending node order,
  // so its result order is exactly (fit key, node id) — a strict total
  // order we can hand to the unstable partial-selection algorithms.
  const auto best = [](const Candidate& a, const Candidate& b) {
    return a.fit != b.fit ? a.fit > b.fit : a.node < b.node;
  };
  const auto worst = [](const Candidate& a, const Candidate& b) {
    return a.fit != b.fit ? a.fit < b.fit : a.node < b.node;
  };
  switch (config_.selection) {
    case LibraConfig::Selection::FirstFit:
      return;  // already in node order
    case LibraConfig::Selection::BestFit:
      if (static_cast<std::size_t>(count) < suitable_.size())
        std::nth_element(suitable_.begin(), suitable_.begin() + count,
                         suitable_.end(), best);
      std::sort(suitable_.begin(), suitable_.begin() + count, best);
      return;
    case LibraConfig::Selection::WorstFit:
      if (static_cast<std::size_t>(count) < suitable_.size())
        std::nth_element(suitable_.begin(), suitable_.begin() + count,
                         suitable_.end(), worst);
      std::sort(suitable_.begin(), suitable_.begin() + count, worst);
      return;
  }
}

void LibraScheduler::on_telemetry(obs::Telemetry& telemetry) {
  obs::Registry& reg = telemetry.registry();
  reg.counter_fn("admission_submissions", "jobs offered to the admission test",
                 [this] { return stats_.submissions; });
  reg.counter_fn("admission_accepted", "jobs accepted",
                 [this] { return stats_.accepted; });
  reg.counter_fn("admission_rejections", "jobs rejected",
                 [this] { return stats_.rejections; });
  reg.counter_fn("admission_nodes_scanned", "nodes examined for suitability",
                 [this] { return stats_.nodes_scanned; });
  reg.counter_fn("admission_assessments", "full share/risk evaluations run",
                 [this] { return stats_.assessments; });
  reg.counter_fn("admission_empty_node_skips",
                 "ZeroRisk empty-node fast-path hits",
                 [this] { return stats_.empty_node_skips; });
  reg.counter_fn("admission_early_exits",
                 "FirstFit scans stopped before the last node",
                 [this] { return stats_.early_exits; });
  reg.counter_fn("admission_batched_assessments",
                 "assessments served by the batched risk kernel",
                 [this] { return stats_.batched_assessments; });
  reg.counter_fn("admission_nodes_batch_skipped",
                 "nodes rejected by the batch sigma-spread bound",
                 [this] { return stats_.nodes_batch_skipped; });
  reg.counter_fn("admission_rejected_share_overflow",
                 "rejections: Eq. 2 total-share shortfall",
                 [this] { return stats_.rejected_share_overflow; });
  reg.counter_fn("admission_rejected_risk_sigma",
                 "rejections: sigma-test shortfall",
                 [this] { return stats_.rejected_risk_sigma; });
  reg.counter_fn("admission_rejected_no_suitable_node",
                 "rejections: needs more nodes than the cluster has",
                 [this] { return stats_.rejected_no_suitable_node; });
  reg.counter_fn("admission_near_miss_5pct",
                 "rejections within 5% margin of the decisive test",
                 [this] { return stats_.near_miss_5(); });
  reg.counter_fn("admission_near_miss_10pct",
                 "rejections within 10% margin of the decisive test",
                 [this] { return stats_.near_miss_10(); });
  reg.counter_fn("admission_degraded_admits",
                 "admissions via a degraded-mode bend",
                 [this] { return stats_.degraded_admits; });
  reg.counter_fn("admission_deferrals", "DeferToSalvage park events",
                 [this] { return stats_.deferrals; });
  reg.counter_fn("admission_shed_tail", "ShedTail pre-rejections",
                 [this] { return stats_.shed_tail; });
  reg.counter_fn("overload_activations",
                 "governor flips into degraded operation",
                 [this] { return stats_.overload_activations; });

  obs::HistogramConfig scan_cfg;
  scan_cfg.min_value = 1.0;
  scan_cfg.max_value = 1e6;
  scan_nodes_hist_ = &reg.histogram("admission_scan_nodes",
                                    "nodes scanned per submission", scan_cfg);
  response_hist_ = &reg.histogram("job_response_seconds",
                                  "submission-to-completion sim seconds");

  obs::Series& admission = telemetry.add_series(
      "admission",
      {"time", "submissions", "accepted", "rejections",
       "rejected_share_overflow", "rejected_risk_sigma",
       "rejected_no_suitable_node", "accept_rate"});
  telemetry.add_sampler([this, &admission](sim::SimTime now) {
    const double subs = static_cast<double>(stats_.submissions);
    admission.append(
        {now, subs, static_cast<double>(stats_.accepted),
         static_cast<double>(stats_.rejections),
         static_cast<double>(stats_.rejected_share_overflow),
         static_cast<double>(stats_.rejected_risk_sigma),
         static_cast<double>(stats_.rejected_no_suitable_node),
         subs > 0.0 ? static_cast<double>(stats_.accepted) / subs : 0.0});
  });

  obs::Series& nodes = telemetry.add_series(
      "nodes", {"time", "node", "residents", "share_raw", "share_current",
                "utilization", "sigma"});
  telemetry.add_sampler(
      [this, &nodes](sim::SimTime now) { sample_nodes(nodes, now); });
}

void LibraScheduler::sample_nodes(obs::Series& series, sim::SimTime now) const {
  // Pre-event observation: node_state() reads anchored lazy work at `now`
  // without settling, so sampling mutates nothing the decisions depend on
  // (the byte-identical-trace test pins this down). Sigma is the paper's
  // Eq. 6 delay deviation over the node's residents as currently known —
  // *tentative* in the sense that no new job is added.
  const int cluster_size = executor_.cluster().size();
  const bool raw =
      config_.estimate_kind == cluster::TimeSharedExecutor::EstimateKind::Raw;
  for (cluster::NodeId n = 0; n < cluster_size; ++n) {
    const cluster::NodeStateView& state = executor_.node_state(n);
    double sigma = 0.0;
    if (!state.empty()) {
      if (use_aggregates_ && state.risk_current.computed) {
        // The executor's fold is the same left-fold over the same resident
        // terms the scalar assessment would run, so the closed-form σ over
        // its power sums is bitwise the assessment's σ.
        sigma = sigma_from_sums(state.risk_current.dd_sum,
                                state.risk_current.dd_sum_sq, state.count());
      } else {
        workspace_.inputs.clear();
        for (std::size_t i = 0; i < state.count(); ++i)
          workspace_.inputs.push_back(RiskJobInput{
              raw ? state.remaining_raw[i] : state.remaining_current[i],
              state.remaining_deadline[i], state.rate[i]});
        const RiskAssessmentView assessment = assess_node(
            workspace_.inputs, config_.risk,
            executor_.cluster().speed_factor(n), state.available_capacity,
            workspace_);
        sigma = assessment.sigma;
      }
    }
    series.append({now, static_cast<double>(n),
                   static_cast<double>(state.count()), state.total_share_raw,
                   state.total_share_current,
                   std::min(1.0, state.total_share_current), sigma});
  }
}

double LibraScheduler::reject_job_margin(const Job& job, int suitable_count) {
  // Rebuild the failing-node deficits from the scan's per-node metrics. A
  // node failed its decisive test iff the metric exceeds the configured
  // tolerance band — the same comparison the scan ran — and an
  // unquantifiable shortfall (bound-skipped sigma, stored as +inf, or a
  // delay failure whose sigma passed) contributes no finite deficit, so
  // the near-miss counters undercount, never over.
  const bool share = config_.admission == LibraConfig::Admission::TotalShare;
  const double floor = share ? config_.capacity : config_.risk.sigma_threshold;
  const double tol = share ? config_.tolerance : config_.risk.tolerance;
  fail_deficit_.clear();
  for (const double metric : scan_metric_) {
    const double d = metric - floor;
    if (d > tol) fail_deficit_.push_back(d);
  }
  // The smallest per-node improvement that would have admitted the job:
  // it needed k = num_procs - suitable more suitable nodes, so the k-th
  // smallest failing-node deficit is decisive. nth_element scrambles
  // fail_deficit_, which is dead after this call.
  const int k = job.num_procs - suitable_count;
  double deficit = std::numeric_limits<double>::infinity();
  if (k >= 1 && static_cast<int>(fail_deficit_.size()) >= k) {
    std::nth_element(fail_deficit_.begin(), fail_deficit_.begin() + (k - 1),
                     fail_deficit_.end());
    deficit = fail_deficit_[static_cast<std::size_t>(k) - 1];
  }
  const double scale =
      share ? config_.capacity : std::max(config_.risk.sigma_threshold, 1.0);
  if (deficit <= 0.05 * scale)
    ++(share ? stats_.near_miss_share_5 : stats_.near_miss_sigma_5);
  if (deficit <= 0.10 * scale)
    ++(share ? stats_.near_miss_share_10 : stats_.near_miss_sigma_10);
  // A rejection's quantified deficit is strictly positive (it exceeded the
  // tolerance), so 0.0 unambiguously means "no margin computed".
  return std::isfinite(deficit) ? -deficit : 0.0;
}

void LibraScheduler::on_job_submitted(const Job& job) {
  obs::ScopedPhase phase(profiler_, obs::Phase::Admission);
  // The recorder arrives via attach() after construction, so the governor
  // borrows it lazily (cheap pointer store, degraded modes only).
  if (overload_enabled_) governor_.attach(trace_);
  if (config_.legacy_path) {
    submit_legacy(job);
    return;
  }
  submit_fast(job);
}

void LibraScheduler::submit_fast(const Job& job) {
  const sim::SimTime now = sim_.now();
  ++stats_.submissions;
  const bool explaining = explain_ != nullptr;
  if (explaining)
    explain_->begin(now, job.id, job.num_procs, job.deadline,
                    job.scheduler_estimate);
  const int cluster_size = executor_.cluster().size();
  if (job.num_procs > cluster_size) {
    ++stats_.rejections;
    ++stats_.rejected_no_suitable_node;
    collector_.record_rejected(job, now, /*at_dispatch=*/false,
                               trace::RejectionReason::NoSuitableNode);
    if (trace_ != nullptr)
      trace_->job_rejected(now, job.id, trace::RejectionReason::NoSuitableNode,
                           0, job.num_procs);
    if (explaining)
      explain_->finish_reject(trace::RejectionReason::NoSuitableNode, 0, 0.0);
    return;
  }
  // Overload consult #1: the per-submission governor pulse plus ShedTail's
  // pre-scan rejection (runs after the structural check — no mode may admit
  // a structurally infeasible job, so none may shed before that test ran).
  if (overload_enabled_ && shed_or_pulse(job, now)) return;
  executor_.sync();

  suitable_.clear();
  scan_metric_.resize(static_cast<std::size_t>(cluster_size));
  if (suitable_.capacity() < static_cast<std::size_t>(cluster_size))
    suitable_.reserve(cluster_size);
  const bool tracing = trace_ != nullptr && trace_->enabled();
  // FirstFit takes suitable nodes in node order, so the scan can stop at
  // num_procs hits: acceptance and the chosen sequence are already decided,
  // and a rejection (< num_procs suitable anywhere) still scans everything.
  const bool can_stop_early = config_.selection == LibraConfig::Selection::FirstFit;
  const std::uint64_t scanned_before = stats_.nodes_scanned;
  if (config_.admission == LibraConfig::Admission::ZeroRisk) {
    scan_zero_risk_batched(job, now, tracing, can_stop_early);
  } else {
    for (cluster::NodeId n = 0; n < cluster_size; ++n) {
      ++stats_.nodes_scanned;
      double fit = 0.0;
      double sigma = -1.0;
      // sigma is a by-product of the assessment either way; capturing it
      // unconditionally costs one store and feeds both the trace event and
      // the admission outcome (Scheduler::Decision).
      const bool ok = node_suitable_fast(n, job, fit, &sigma);
      scan_metric_[static_cast<std::size_t>(n)] = fit;
      if (tracing || explaining) {
        const double margin = config_.capacity - fit;  // Eq. 2 headroom
        if (tracing)
          trace_->node_evaluated(
              now, job.id, n,
              ok ? trace::RejectionReason::None : scan_reason(), sigma, fit,
              margin);
        if (explaining)
          explain_->node(obs::NodeMargin{
              n, ok, ok ? trace::RejectionReason::None : scan_reason(), sigma,
              fit, margin});
      }
      if (ok) {
        suitable_.push_back(Candidate{n, fit, sigma});
        if (can_stop_early &&
            static_cast<int>(suitable_.size()) == job.num_procs) {
          if (n + 1 < cluster_size) ++stats_.early_exits;
          break;
        }
      }
    }
  }
  if (scan_nodes_hist_ != nullptr)
    scan_nodes_hist_->record(
        static_cast<double>(stats_.nodes_scanned - scanned_before));

  if (static_cast<int>(suitable_.size()) < job.num_procs) {
    // Overload consult #2: the shortfall site. An engaged degraded mode may
    // admit (relaxed re-scan / QoS downgrade) or park (salvage deferral) the
    // job instead; on false the normal rejection below stands.
    if (overload_enabled_ && try_degraded(job, now)) return;
    ++stats_.rejections;
    if (config_.admission == LibraConfig::Admission::TotalShare)
      ++stats_.rejected_share_overflow;
    else
      ++stats_.rejected_risk_sigma;
    const double margin =
        reject_job_margin(job, static_cast<int>(suitable_.size()));
    collector_.record_rejected(job, now, /*at_dispatch=*/false, scan_reason());
    if (trace_ != nullptr)
      trace_->job_rejected(now, job.id, scan_reason(),
                           static_cast<int>(suitable_.size()), job.num_procs,
                           margin);
    if (explaining)
      explain_->finish_reject(scan_reason(),
                              static_cast<int>(suitable_.size()), margin);
    LIBRISK_LOG(Debug) << name_ << ": rejected job " << job.id << " ("
                       << suitable_.size() << '/' << job.num_procs
                       << " suitable nodes)";
    return;
  }

  select_prefix(job.num_procs);

  std::vector<cluster::NodeId> chosen;
  chosen.reserve(job.num_procs);
  double slowest = sim::kTimeInfinity;
  for (int i = 0; i < job.num_procs; ++i) {
    chosen.push_back(suitable_[i].node);
    slowest = std::min(slowest, executor_.cluster().speed_factor(suitable_[i].node));
  }
  ++stats_.accepted;
  const double margin = node_margin(suitable_[0].fit, suitable_[0].sigma);
  note_decision(job.id, suitable_[0].node, suitable_[0].sigma, margin);
  if (trace_ != nullptr)
    trace_->job_admitted(now, job.id, suitable_[0].node,
                         static_cast<int>(suitable_.size()), suitable_[0].fit,
                         margin);
  if (explaining)
    explain_->finish_accept(suitable_[0].node, margin,
                            static_cast<int>(suitable_.size()));
  if (overload_enabled_) track_inflight(job, chosen);
  collector_.record_started(job, now, job.actual_runtime / slowest);
  executor_.start(job, std::move(chosen));
}

namespace {
/// Adaptive batch sizing for the ZeroRisk scan: start small so a FirstFit
/// hit in the cluster's head discards little speculative work, then double
/// toward the sweet spot for long rejection scans.
constexpr std::size_t kBatchChunkMin = 4;
constexpr std::size_t kBatchChunkMax = 64;
}  // namespace

void LibraScheduler::scan_zero_risk_batched(const Job& job, sim::SimTime now,
                                            bool tracing, bool can_stop_early) {
  const int cluster_size = executor_.cluster().size();
  const bool raw =
      config_.estimate_kind == cluster::TimeSharedExecutor::EstimateKind::Raw;
  // The empty-node fast path's exact legacy condition, hoisted: under it an
  // empty node's verdict counts as a skip, not an assessment.
  const bool empty_fast =
      config_.risk.rule == RiskConfig::Rule::SigmaOnly &&
      0.0 <= config_.risk.sigma_threshold + config_.risk.tolerance;
  const bool explaining = explain_ != nullptr;
  AssessNodesOptions options;
  // The σ-spread bound rejects without computing the exact σ the
  // node_evaluated event and the explain record must carry, so it only arms
  // when neither observer is attached (decisions are identical either way —
  // the bound is conservative).
  options.allow_bound_skip = !tracing && !explaining;

  std::size_t chunk = kBatchChunkMin;
  int next = 0;
  while (next < cluster_size) {
    const int end =
        std::min(next + static_cast<int>(chunk), cluster_size);
    batch_inputs_.clear();
    batch_meta_.clear();
    for (int n = next; n < end; ++n) {
      const cluster::NodeStateView& state =
          executor_.node_state(n, scan_parts_);
      NodeRiskInput input;
      input.remaining_work =
          raw ? state.remaining_raw : state.remaining_current;
      input.remaining_deadline = state.remaining_deadline;
      input.rate = state.rate;
      input.speed_factor = executor_.cluster().speed_factor(n);
      input.available_capacity = state.available_capacity;
      if (use_aggregates_) input.aggregates = &state.risk_current;
      batch_inputs_.push_back(input);
      batch_meta_.push_back(BatchEntry{n, state.empty()});
    }
    batch_verdicts_.resize(batch_inputs_.size());
    assess_nodes(batch_inputs_, job.scheduler_estimate, job.deadline,
                 config_.risk, workspace_, batch_verdicts_, options);

    // Consume verdicts in node order; counters and trace events fire per
    // consumed node only, so a FirstFit stop mid-batch leaves the rest of
    // the batch uncounted — exactly as if the scalar scan never got there.
    for (std::size_t i = 0; i < batch_meta_.size(); ++i) {
      const NodeRiskVerdict& verdict = batch_verdicts_[i];
      const int n = batch_meta_[i].node;
      ++stats_.nodes_scanned;
      if (batch_meta_[i].empty && empty_fast)
        ++stats_.empty_node_skips;
      else if (verdict.bound_skipped)
        ++stats_.nodes_batch_skipped;
      else {
        ++stats_.assessments;
        ++stats_.batched_assessments;
      }
      // The reject-path deficit rebuild reads this: the sigma the test ran
      // on, or +inf for a bound-skipped node (shortfall unquantifiable —
      // near-miss counters then undercount, never over).
      scan_metric_[static_cast<std::size_t>(n)] =
          verdict.bound_skipped ? std::numeric_limits<double>::infinity()
                                : verdict.sigma;
      if (tracing || explaining) {
        const double margin = config_.risk.sigma_threshold - verdict.sigma;
        if (tracing)
          trace_->node_evaluated(now, job.id, n,
                                 verdict.suitable
                                     ? trace::RejectionReason::None
                                     : scan_reason(),
                                 verdict.sigma, verdict.total_share, margin);
        if (explaining)
          explain_->node(obs::NodeMargin{
              n, verdict.suitable,
              verdict.suitable ? trace::RejectionReason::None : scan_reason(),
              verdict.sigma, verdict.total_share, margin});
      }
      if (verdict.suitable) {
        suitable_.push_back(Candidate{n, verdict.total_share, verdict.sigma});
        if (can_stop_early &&
            static_cast<int>(suitable_.size()) == job.num_procs) {
          if (n + 1 < cluster_size) ++stats_.early_exits;
          return;
        }
      }
    }
    next = end;
    chunk = std::min(chunk * 2, kBatchChunkMax);
  }
}

// ---- seed implementation (differential-testing reference) ----

RiskAssessment LibraScheduler::assess_with_job_legacy(cluster::NodeId node,
                                                      const Job& job) const {
  const sim::SimTime now = sim_.now();
  std::vector<RiskJobInput> inputs;
  const auto& resident = executor_.node_jobs(node);
  inputs.reserve(resident.size() + 1);
  const bool raw =
      config_.estimate_kind == cluster::TimeSharedExecutor::EstimateKind::Raw;
  for (const cluster::JobId id : resident) {
    const cluster::TaskView v = executor_.view(id);
    inputs.push_back(RiskJobInput{
        raw ? v.remaining_estimate_raw() : v.remaining_estimate_current(),
        v.remaining_deadline(now), v.rate});
  }
  // Algorithm 1, line 2: add the new job temporarily.
  inputs.push_back(RiskJobInput{job.scheduler_estimate, job.deadline,
                                RiskJobInput::kNewJob});
  return assess_node_legacy(inputs, config_.risk,
                            executor_.cluster().speed_factor(node),
                            executor_.node_available_capacity(node));
}

bool LibraScheduler::node_suitable_legacy(cluster::NodeId node, const Job& job,
                                          double& fit, double* sigma_out) const {
  switch (config_.admission) {
    case LibraConfig::Admission::TotalShare: {
      const double total =
          executor_.node_total_share(node, config_.estimate_kind) +
          new_job_share(job, node);
      fit = total;
      if (sigma_out != nullptr) *sigma_out = -1.0;  // no sigma in Eq. 2
      return total <= config_.capacity + config_.tolerance;
    }
    case LibraConfig::Admission::ZeroRisk: {
      const RiskAssessment assessment = assess_with_job_legacy(node, job);
      fit = assessment.total_share;
      if (sigma_out != nullptr) *sigma_out = assessment.sigma;
      return assessment.zero_risk(config_.risk);
    }
  }
  return false;
}

void LibraScheduler::submit_legacy(const Job& job) {
  const sim::SimTime now = sim_.now();
  ++stats_.submissions;
  const bool explaining = explain_ != nullptr;
  if (explaining)
    explain_->begin(now, job.id, job.num_procs, job.deadline,
                    job.scheduler_estimate);
  if (job.num_procs > executor_.cluster().size()) {
    ++stats_.rejections;
    ++stats_.rejected_no_suitable_node;
    collector_.record_rejected(job, now, /*at_dispatch=*/false,
                               trace::RejectionReason::NoSuitableNode);
    if (trace_ != nullptr)
      trace_->job_rejected(now, job.id, trace::RejectionReason::NoSuitableNode,
                           0, job.num_procs);
    if (explaining)
      explain_->finish_reject(trace::RejectionReason::NoSuitableNode, 0, 0.0);
    return;
  }
  // Overload consults mirror submit_fast exactly (the degraded helpers
  // themselves always run the fast arithmetic — bit-identical decisions per
  // tests/test_admission_equivalence, so the paths cannot diverge here).
  if (overload_enabled_ && shed_or_pulse(job, now)) return;
  executor_.sync();

  const bool tracing = trace_ != nullptr && trace_->enabled();
  std::vector<Candidate> suitable;
  suitable.reserve(executor_.cluster().size());
  // Decisive metric per node for the reject-path deficit rebuild. Legacy
  // never bound-skips, so the sigma itself is always the right record.
  const bool share_mode = config_.admission == LibraConfig::Admission::TotalShare;
  scan_metric_.resize(static_cast<std::size_t>(executor_.cluster().size()));
  const std::uint64_t scanned_before = stats_.nodes_scanned;
  for (cluster::NodeId n = 0; n < executor_.cluster().size(); ++n) {
    ++stats_.nodes_scanned;
    double fit = 0.0;
    double sigma = -1.0;
    const bool ok = node_suitable_legacy(n, job, fit, &sigma);
    scan_metric_[static_cast<std::size_t>(n)] = share_mode ? fit : sigma;
    if (tracing || explaining) {
      const double margin = node_margin(fit, sigma);
      if (tracing)
        trace_->node_evaluated(
            now, job.id, n,
            ok ? trace::RejectionReason::None : scan_reason(), sigma, fit,
            margin);
      if (explaining)
        explain_->node(obs::NodeMargin{
            n, ok, ok ? trace::RejectionReason::None : scan_reason(), sigma,
            fit, margin});
    }
    if (ok) suitable.push_back(Candidate{n, fit, sigma});
  }
  if (scan_nodes_hist_ != nullptr)
    scan_nodes_hist_->record(
        static_cast<double>(stats_.nodes_scanned - scanned_before));

  if (static_cast<int>(suitable.size()) < job.num_procs) {
    if (overload_enabled_ && try_degraded(job, now)) return;
    ++stats_.rejections;
    if (config_.admission == LibraConfig::Admission::TotalShare)
      ++stats_.rejected_share_overflow;
    else
      ++stats_.rejected_risk_sigma;
    const double margin =
        reject_job_margin(job, static_cast<int>(suitable.size()));
    collector_.record_rejected(job, now, /*at_dispatch=*/false, scan_reason());
    if (trace_ != nullptr)
      trace_->job_rejected(now, job.id, scan_reason(),
                           static_cast<int>(suitable.size()), job.num_procs,
                           margin);
    if (explaining)
      explain_->finish_reject(scan_reason(), static_cast<int>(suitable.size()),
                              margin);
    LIBRISK_LOG(Debug) << name_ << ": rejected job " << job.id << " ("
                       << suitable.size() << '/' << job.num_procs
                       << " suitable nodes)";
    return;
  }

  switch (config_.selection) {
    case LibraConfig::Selection::FirstFit:
      break;  // already in node order
    case LibraConfig::Selection::BestFit:
      // Fullest after acceptance first; node id breaks ties for determinism.
      std::stable_sort(suitable.begin(), suitable.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.fit > b.fit;
                       });
      break;
    case LibraConfig::Selection::WorstFit:
      std::stable_sort(suitable.begin(), suitable.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.fit < b.fit;
                       });
      break;
  }

  std::vector<cluster::NodeId> chosen;
  chosen.reserve(job.num_procs);
  double slowest = sim::kTimeInfinity;
  for (int i = 0; i < job.num_procs; ++i) {
    chosen.push_back(suitable[i].node);
    slowest = std::min(slowest, executor_.cluster().speed_factor(suitable[i].node));
  }
  ++stats_.accepted;
  const double margin = node_margin(suitable[0].fit, suitable[0].sigma);
  note_decision(job.id, suitable[0].node, suitable[0].sigma, margin);
  if (trace_ != nullptr)
    trace_->job_admitted(now, job.id, suitable[0].node,
                         static_cast<int>(suitable.size()), suitable[0].fit,
                         margin);
  if (explaining)
    explain_->finish_accept(suitable[0].node, margin,
                            static_cast<int>(suitable.size()));
  if (overload_enabled_) track_inflight(job, chosen);
  collector_.record_started(job, now, job.actual_runtime / slowest);
  executor_.start(job, std::move(chosen));
}

// ---- overload-catalog consult sites (core/overload.hpp) ----
//
// Nothing below is reachable under HardReject (overload_enabled_ guards
// every entry), so the default configuration cannot touch this state.

bool LibraScheduler::shed_or_pulse(const Job& job, sim::SimTime now) {
  const bool engaged = governor_.evaluate(now, load_signal());
  stats_.overload_activations = governor_.activations();
  if (!engaged || governor_.config().mode != DegradedMode::ShedTail)
    return false;
  // The cheapest placement the job could possibly get is its share on the
  // fastest node; if even that exceeds tail_share the job is in the shed
  // tail. Using the lower bound keeps the shed test node-independent (a
  // pure function of the job and the engaged config — determinism lemma).
  const double cheapest = cluster::required_share(
      job.scheduler_estimate, job.deadline, executor_.config().deadline_clamp,
      max_speed_);
  if (cheapest <= governor_.config().tail_share) return false;
  // A shed is a full-fledged rejection: per-reason counters, collector
  // record, trace event (kForbidDropWithoutAccount). It reads as a share
  // rejection with the shed_tail sub-counter carrying the provenance.
  ++stats_.rejections;
  ++stats_.rejected_share_overflow;
  ++stats_.shed_tail;
  collector_.record_rejected(job, now, /*at_dispatch=*/false,
                             trace::RejectionReason::ShareOverflow);
  if (trace_ != nullptr)
    trace_->job_rejected(now, job.id, trace::RejectionReason::ShareOverflow, 0,
                         job.num_procs);
  if (explain_ != nullptr)
    explain_->finish_reject(trace::RejectionReason::ShareOverflow, 0, 0.0);
  LIBRISK_LOG(Debug) << name_ << ": shed job " << job.id
                     << " (tail share bound " << governor_.config().tail_share
                     << ")";
  return true;
}

bool LibraScheduler::try_degraded(const Job& job, sim::SimTime now) {
  if (!governor_.engaged()) return false;
  const OverloadConfig& oc = governor_.config();
  switch (oc.mode) {
    case DegradedMode::HardReject:
    case DegradedMode::ShedTail:
      // Neither holds a shortfall license (ShedTail only pre-rejects).
      return false;
    case DegradedMode::RelaxSigma:
      static_assert(mode_allows(DegradedMode::RelaxSigma, kForbidRelaxedRisk));
      // The license is sigma-specific: TotalShare admission has no sigma
      // test to relax, so Libra under RelaxSigma degenerates to HardReject.
      if (config_.admission != LibraConfig::Admission::ZeroRisk) return false;
      return rescan_and_admit(job, now,
                              config_.risk.sigma_threshold + oc.relax_sigma,
                              job.deadline, trace::RejectionReason::RiskSigma);
    case DegradedMode::DeferToSalvage:
      static_assert(
          mode_allows(DegradedMode::DeferToSalvage, kForbidDelayedDecision));
      defer_job(job, now);
      return true;
    case DegradedMode::DowngradeQoS:
      static_assert(
          mode_allows(DegradedMode::DowngradeQoS, kForbidDeadlineRewrite));
      return rescan_and_admit(job, now, config_.risk.sigma_threshold,
                              job.deadline * oc.downgrade_factor,
                              scan_reason());
  }
  return false;
}

bool LibraScheduler::rescan_and_admit(const Job& job, sim::SimTime now,
                                      double sigma_threshold, double deadline,
                                      trace::RejectionReason bent) {
  // Probe with the (possibly) rewritten deadline; the sigma threshold is
  // bent by a save/restore on the live config so the re-scan runs the exact
  // production arithmetic (node_suitable_fast) instead of a parallel
  // implementation that could drift.
  Job probe = job;
  probe.deadline = deadline;
  const double saved_threshold = config_.risk.sigma_threshold;
  config_.risk.sigma_threshold = sigma_threshold;
  const int cluster_size = executor_.cluster().size();
  // The re-scan builds into fail_deficit_'s sibling scratch — NOT suitable_,
  // which still holds the normal scan's candidates and feeds the rejection
  // accounting (suitable count, near-miss margins) if this bend fails.
  rescan_suitable_.clear();
  for (cluster::NodeId n = 0; n < cluster_size; ++n) {
    ++stats_.nodes_scanned;
    double fit = 0.0;
    double sigma = -1.0;
    bool ok = node_suitable_fast(n, probe, fit, &sigma);
    // kForbidAdmitPastEq2: whatever the bend, no candidate may be admitted
    // past the Eq. 2 total-share capacity. The sigma-only rule does not
    // test this bound itself, so the catalog guard enforces it here.
    if (ok && fit > config_.capacity + config_.tolerance) ok = false;
    if (ok) rescan_suitable_.push_back(Candidate{n, fit, sigma});
  }
  config_.risk.sigma_threshold = saved_threshold;
  if (static_cast<int>(rescan_suitable_.size()) < job.num_procs) return false;
  suitable_.swap(rescan_suitable_);
  select_prefix(job.num_procs);
  if (deadline != job.deadline) {
    // DowngradeQoS: the executor borrows Job pointers until completion, so
    // the deadline-extended copy needs scheduler-owned stable storage; the
    // completion/kill handler restores the submitted deadline before the
    // collector judges lateness (resolve_overload).
    const auto [it, inserted] =
        downgraded_.try_emplace(job.id, DowngradedJob{probe, job.deadline});
    LIBRISK_CHECK(inserted, "job " << job.id << " downgraded twice");
    degraded_admit_prepared(job, it->second.job, now, bent);
  } else {
    degraded_admit_prepared(job, job, now, bent);
  }
  return true;
}

void LibraScheduler::degraded_admit_prepared(const Job& job, const Job& run,
                                             sim::SimTime now,
                                             trace::RejectionReason bent) {
  std::vector<cluster::NodeId> chosen;
  chosen.reserve(job.num_procs);
  double slowest = sim::kTimeInfinity;
  for (int i = 0; i < job.num_procs; ++i) {
    chosen.push_back(suitable_[i].node);
    slowest =
        std::min(slowest, executor_.cluster().speed_factor(suitable_[i].node));
  }
  ++stats_.accepted;
  ++stats_.degraded_admits;
  const double margin = node_margin(suitable_[0].fit, suitable_[0].sigma);
  note_decision(job.id, suitable_[0].node, suitable_[0].sigma, margin,
                /*degraded=*/true);
  if (trace_ != nullptr)
    trace_->job_degraded_admit(now, job.id, bent, suitable_[0].node,
                               suitable_[0].sigma, suitable_[0].fit, margin);
  if (explain_ != nullptr)
    explain_->finish_accept(suitable_[0].node, margin,
                            static_cast<int>(suitable_.size()));
  // `run` carries the deadline the executor paces against; its share is the
  // one the cluster actually bears, so it feeds the load signal.
  track_inflight(run, chosen);
  collector_.record_started(job, now, job.actual_runtime / slowest);
  executor_.start(run, std::move(chosen));
  LIBRISK_LOG(Debug) << name_ << ": degraded-admitted job " << job.id
                     << " (bent " << trace::to_string(bent) << ")";
}

void LibraScheduler::defer_job(const Job& job, sim::SimTime now) {
  // First park inserts; a re-park finds the entry and bumps the count. The
  // parked pointer targets the engine slab, which keeps a Pending job's
  // storage alive until it resolves — the same contract EDF's queue uses.
  const auto [it, inserted] = parked_.try_emplace(job.id, Parked{&job, 0});
  const int deferral = ++it->second.deferrals;
  ++stats_.deferrals;
  const sim::SimTime retry = now + governor_.config().defer_delay;
  note_deferred(job.id);
  if (trace_ != nullptr)
    trace_->job_deferred(now, job.id, scan_reason(), retry, deferral);
  const std::int64_t id = job.id;
  sim_.at(retry, sim::EventPriority::Arrival,
          [this, id] { retry_deferred(id); });
  LIBRISK_LOG(Debug) << name_ << ": deferred job " << job.id << " until "
                     << retry << " (deferral " << deferral << ")";
}

void LibraScheduler::retry_deferred(std::int64_t job_id) {
  const auto it = parked_.find(job_id);
  LIBRISK_CHECK(it != parked_.end(),
                "salvage retry for job " << job_id << " that is not parked");
  const Job& job = *it->second.job;
  const int deferrals = it->second.deferrals;
  const sim::SimTime now = sim_.now();
  obs::ScopedPhase phase(profiler_, obs::Phase::Admission);
  executor_.sync();
  // The retry re-runs the NORMAL test at full strictness — DeferToSalvage
  // is licensed to delay the decision (kForbidDelayedDecision cleared), not
  // to bend risk or deadline. Not a new submission: the submissions counter
  // already saw this job, so submissions == accepted + rejections holds at
  // the end (scan-effort counters do tick — the scan really ran).
  const int cluster_size = executor_.cluster().size();
  const bool share_mode =
      config_.admission == LibraConfig::Admission::TotalShare;
  suitable_.clear();
  scan_metric_.resize(static_cast<std::size_t>(cluster_size));
  for (cluster::NodeId n = 0; n < cluster_size; ++n) {
    ++stats_.nodes_scanned;
    double fit = 0.0;
    double sigma = -1.0;
    const bool ok = node_suitable_fast(n, job, fit, &sigma);
    scan_metric_[static_cast<std::size_t>(n)] = share_mode ? fit : sigma;
    if (ok) suitable_.push_back(Candidate{n, fit, sigma});
  }
  if (static_cast<int>(suitable_.size()) >= job.num_procs) {
    select_prefix(job.num_procs);
    parked_.erase(it);  // the Job itself lives in the engine slab
    degraded_admit_prepared(job, job, now, scan_reason());
    return;
  }
  // Still short: re-park while the mode is engaged and the retry budget
  // lasts, otherwise this becomes the final, dispatch-time rejection.
  governor_.evaluate(now, load_signal());
  stats_.overload_activations = governor_.activations();
  if (governor_.engaged() && deferrals < governor_.config().max_deferrals) {
    defer_job(job, now);
    return;
  }
  parked_.erase(it);
  ++stats_.rejections;
  if (share_mode)
    ++stats_.rejected_share_overflow;
  else
    ++stats_.rejected_risk_sigma;
  const double margin =
      reject_job_margin(job, static_cast<int>(suitable_.size()));
  collector_.record_rejected(job, now, /*at_dispatch=*/true, scan_reason());
  if (trace_ != nullptr)
    trace_->job_rejected(now, job.id, scan_reason(),
                         static_cast<int>(suitable_.size()), job.num_procs,
                         margin);
  LIBRISK_LOG(Debug) << name_ << ": salvage-rejected job " << job.id << " ("
                     << suitable_.size() << '/' << job.num_procs
                     << " suitable nodes after " << deferrals << " deferrals)";
}

void LibraScheduler::track_inflight(const Job& job,
                                    const std::vector<cluster::NodeId>& nodes) {
  double total = 0.0;
  for (const cluster::NodeId n : nodes) total += new_job_share(job, n);
  inflight_share_ += total;
  inflight_contrib_.emplace(job.id, total);
}

void LibraScheduler::release_inflight(std::int64_t job_id) {
  const auto it = inflight_contrib_.find(job_id);
  if (it == inflight_contrib_.end()) return;
  inflight_share_ -= it->second;
  // Floating-point dust must not leave a phantom load behind an idle run.
  if (inflight_share_ < 1e-12) inflight_share_ = 0.0;
  inflight_contrib_.erase(it);
}

void LibraScheduler::resolve_overload(const Job& job, sim::SimTime when,
                                      bool killed) {
  release_inflight(job.id);
  const auto it = downgraded_.find(job.id);
  if (it == downgraded_.end()) {
    if (killed)
      collector_.record_killed(job, when);
    else
      collector_.record_completed(job, when);
    return;
  }
  // `job` aliases the map-owned degraded copy (the executor borrowed its
  // pointer). Restore the submitted deadline so the collector judges
  // lateness against the real QoS — the downgrade bought admission, not a
  // free pass on the fulfilled metric — then erase the entry last: the
  // alias dies with it.
  it->second.job.deadline = it->second.original_deadline;
  if (killed)
    collector_.record_killed(it->second.job, when);
  else
    collector_.record_completed(it->second.job, when);
  downgraded_.erase(it);
}

}  // namespace librisk::core
