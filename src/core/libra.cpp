#include "core/libra.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"
#include "support/log.hpp"

namespace librisk::core {

LibraConfig LibraConfig::libra() {
  LibraConfig c;
  c.admission = Admission::TotalShare;
  c.selection = Selection::BestFit;
  c.estimate_kind = cluster::TimeSharedExecutor::EstimateKind::Raw;
  return c;
}

LibraConfig LibraConfig::libra_risk() {
  LibraConfig c;
  c.admission = Admission::ZeroRisk;
  c.selection = Selection::FirstFit;
  c.estimate_kind = cluster::TimeSharedExecutor::EstimateKind::Current;
  return c;
}

LibraScheduler::LibraScheduler(sim::Simulator& simulator,
                               cluster::TimeSharedExecutor& executor,
                               Collector& collector, LibraConfig config,
                               std::string name)
    : sim_(simulator),
      executor_(executor),
      collector_(collector),
      config_(config),
      name_(std::move(name)) {
  LIBRISK_CHECK(config_.capacity > 0.0, "node capacity must be positive");
  executor_.set_completion_handler(
      [this](const Job& job, sim::SimTime finish) {
        collector_.record_completed(job, finish);
      });
  executor_.set_kill_handler([this](const Job& job, sim::SimTime when) {
    collector_.record_killed(job, when);
  });
}

double LibraScheduler::new_job_share(const Job& job, cluster::NodeId node) const {
  return cluster::required_share(job.scheduler_estimate, job.deadline,
                                 executor_.config().deadline_clamp,
                                 executor_.cluster().speed_factor(node));
}

RiskAssessment LibraScheduler::assess_with_job(cluster::NodeId node,
                                               const Job& job) const {
  const sim::SimTime now = sim_.now();
  std::vector<RiskJobInput> inputs;
  const auto& resident = executor_.node_jobs(node);
  inputs.reserve(resident.size() + 1);
  const bool raw =
      config_.estimate_kind == cluster::TimeSharedExecutor::EstimateKind::Raw;
  for (const cluster::JobId id : resident) {
    const cluster::TaskView v = executor_.view(id);
    inputs.push_back(RiskJobInput{
        raw ? v.remaining_estimate_raw() : v.remaining_estimate_current(),
        v.remaining_deadline(now), v.rate});
  }
  // Algorithm 1, line 2: add the new job temporarily.
  inputs.push_back(RiskJobInput{job.scheduler_estimate, job.deadline,
                                RiskJobInput::kNewJob});
  return assess_node(inputs, config_.risk, executor_.cluster().speed_factor(node),
                     executor_.node_available_capacity(node));
}

bool LibraScheduler::node_suitable(cluster::NodeId node, const Job& job,
                                   double& fit) const {
  switch (config_.admission) {
    case LibraConfig::Admission::TotalShare: {
      const double total =
          executor_.node_total_share(node, config_.estimate_kind) +
          new_job_share(job, node);
      fit = total;
      return total <= config_.capacity + config_.tolerance;
    }
    case LibraConfig::Admission::ZeroRisk: {
      const RiskAssessment assessment = assess_with_job(node, job);
      fit = assessment.total_share;
      return assessment.zero_risk(config_.risk);
    }
  }
  return false;
}

void LibraScheduler::on_job_submitted(const Job& job) {
  const sim::SimTime now = sim_.now();
  if (job.num_procs > executor_.cluster().size()) {
    collector_.record_rejected(job, now, /*at_dispatch=*/false);
    return;
  }
  executor_.sync();

  struct Candidate {
    cluster::NodeId node;
    double fit;  // total share after acceptance; higher = fuller
  };
  std::vector<Candidate> suitable;
  suitable.reserve(executor_.cluster().size());
  for (cluster::NodeId n = 0; n < executor_.cluster().size(); ++n) {
    double fit = 0.0;
    if (node_suitable(n, job, fit)) suitable.push_back(Candidate{n, fit});
  }

  if (static_cast<int>(suitable.size()) < job.num_procs) {
    collector_.record_rejected(job, now, /*at_dispatch=*/false);
    LIBRISK_LOG(Debug) << name_ << ": rejected job " << job.id << " ("
                       << suitable.size() << '/' << job.num_procs
                       << " suitable nodes)";
    return;
  }

  switch (config_.selection) {
    case LibraConfig::Selection::FirstFit:
      break;  // already in node order
    case LibraConfig::Selection::BestFit:
      // Fullest after acceptance first; node id breaks ties for determinism.
      std::stable_sort(suitable.begin(), suitable.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.fit > b.fit;
                       });
      break;
    case LibraConfig::Selection::WorstFit:
      std::stable_sort(suitable.begin(), suitable.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.fit < b.fit;
                       });
      break;
  }

  std::vector<cluster::NodeId> chosen;
  chosen.reserve(job.num_procs);
  double slowest = sim::kTimeInfinity;
  for (int i = 0; i < job.num_procs; ++i) {
    chosen.push_back(suitable[i].node);
    slowest = std::min(slowest, executor_.cluster().speed_factor(suitable[i].node));
  }
  collector_.record_started(job, now, job.actual_runtime / slowest);
  executor_.start(job, std::move(chosen));
}

}  // namespace librisk::core
