// Common interface for deadline-constrained job admission controls and the
// trace driver that feeds them.
#pragma once

#include <string_view>
#include <vector>

#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"

namespace librisk::core {

using metrics::Collector;
using workload::Job;

/// A cluster RMS policy: receives each job at its submission instant and is
/// responsible for eventually resolving it in the collector (reject, or
/// start + complete). Implementations drive their own executors off the
/// shared Simulator.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Called exactly once per job, at job.submit_time, after the collector
  /// has recorded the submission.
  virtual void on_job_submitted(const Job& job) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

 protected:
  Scheduler() = default;
};

/// Schedules every job's arrival event and runs the simulation to
/// completion. The trace must be validated and submit-ordered; it must
/// outlive the call (schedulers keep pointers into it).
void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs);

}  // namespace librisk::core
