// Common interface for deadline-constrained job admission controls and the
// trace driver that feeds them.
#pragma once

#include <string_view>
#include <vector>

#include "metrics/collector.hpp"
#include "obs/explain.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "support/hooks.hpp"
#include "trace/recorder.hpp"
#include "workload/job.hpp"

namespace librisk::core {

using metrics::Collector;
using workload::Job;

/// A cluster RMS policy: receives each job at its submission instant and is
/// responsible for eventually resolving it in the collector (reject, or
/// start + complete). Implementations drive their own executors off the
/// shared Simulator.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Called exactly once per job, at job.submit_time, after the collector
  /// has recorded the submission.
  virtual void on_job_submitted(const Job& job) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Placement detail of the most recent admission decision, for
  /// AdmissionEngine::submit's per-job outcome. Valid only while
  /// `job_id` matches the job just submitted — policies that queue instead
  /// of deciding at submission leave it untouched (the engine checks the id
  /// and reports such jobs as queued). Rejection *reasons* travel through
  /// the collector record, which survives later overwrites; this struct
  /// carries what the collector cannot: the node the job landed on and the
  /// tentative sigma its admission test saw.
  struct Decision {
    std::int64_t job_id = -1;
    std::int32_t node = -1;  ///< first selected node; -1 when none
    double sigma = -1.0;     ///< tentative sigma (Eq. 6); -1 when no sigma test ran
    /// Chosen-node admission margin (signed headroom of the decisive test,
    /// obs::NodeMargin convention); 0.0 when the policy computes none.
    double margin = 0.0;
    /// The admission went through a degraded-mode bend (core/overload.hpp):
    /// the job failed the normal test and a licensed mode admitted it
    /// anyway. The engine reports such jobs as Verdict::DegradedAdmit.
    bool degraded = false;
    /// The decision was parked by DeferToSalvage: no verdict yet, a salvage
    /// retry is scheduled. The engine reports Verdict::Deferred.
    bool deferred = false;
  };
  [[nodiscard]] const Decision& last_decision() const noexcept {
    return last_decision_;
  }

  /// Attaches the observation hooks (docs/TRACING.md, docs/OBSERVABILITY.md)
  /// in one shot: the trace recorder receives admission events, and a
  /// non-null telemetry makes the scheduler register its counters as pull
  /// metrics and contribute samplers via on_telemetry(). Call at most once,
  /// before the first submission; both hooks are optional and a null hook
  /// costs one branch per hook site.
  void attach(const Hooks& hooks) {
    trace_ = hooks.trace;
    telemetry_ = hooks.telemetry;
    explain_ = hooks.explain;
    profiler_ = hooks.telemetry != nullptr ? &hooks.telemetry->profiler() : nullptr;
    if (hooks.telemetry != nullptr) on_telemetry(*hooks.telemetry);
  }

 protected:
  Scheduler() = default;

  /// Registration hook: add pull metrics, series and samplers. Called once
  /// from attach() with a telemetry that outlives the run.
  virtual void on_telemetry(obs::Telemetry& telemetry) { (void)telemetry; }

  /// Records the placement of an accepted job for last_decision().
  void note_decision(std::int64_t job_id, std::int32_t node, double sigma,
                     double margin = 0.0, bool degraded = false) noexcept {
    last_decision_ = Decision{job_id, node, sigma, margin, degraded, false};
  }

  /// Records that DeferToSalvage parked `job_id` (no placement yet); the
  /// engine maps a pending job carrying this mark to Verdict::Deferred.
  void note_deferred(std::int64_t job_id) noexcept {
    last_decision_ = Decision{job_id, -1, -1.0, 0.0, false, true};
  }

  /// Borrowed, may be null; subclasses emit admission events through it.
  trace::Recorder* trace_ = nullptr;
  /// Borrowed, may be null.
  obs::Telemetry* telemetry_ = nullptr;
  /// Borrowed, may be null; subclasses record decision provenance through it.
  obs::ExplainRecorder* explain_ = nullptr;
  /// Cached &telemetry_->profiler(), null when telemetry is absent — so
  /// ScopedPhase sites pay a single null check.
  obs::PhaseProfiler* profiler_ = nullptr;

 private:
  Decision last_decision_;
};

/// Batch driver: submits every job of a validated, submit-ordered trace and
/// drains the simulation to completion. A thin loop over
/// core::AdmissionEngine (engine.hpp) in borrowed mode — the engine copies
/// each job into its own storage, so the vector only needs to outlive the
/// call itself. `hooks.trace` receives a JobSubmitted event per arrival
/// (before the scheduler sees the job); `hooks.telemetry` is armed on the
/// simulator (metronome sampling + queue-depth gauge), the drain is timed
/// as the `run` phase, and a terminal sample is taken at end-of-run time.
/// The hooks must be the same ones already attached to the scheduler stack
/// (PolicyOptions::hooks wires both when the stack comes from the factory).
void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs,
               const Hooks& hooks = {});

}  // namespace librisk::core
