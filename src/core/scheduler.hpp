// Common interface for deadline-constrained job admission controls and the
// trace driver that feeds them.
#pragma once

#include <string_view>
#include <vector>

#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"
#include "workload/job.hpp"

namespace librisk::core {

using metrics::Collector;
using workload::Job;

/// A cluster RMS policy: receives each job at its submission instant and is
/// responsible for eventually resolving it in the collector (reject, or
/// start + complete). Implementations drive their own executors off the
/// shared Simulator.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Called exactly once per job, at job.submit_time, after the collector
  /// has recorded the submission.
  virtual void on_job_submitted(const Job& job) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Attaches a decision-audit recorder (docs/TRACING.md). Optional; null
  /// (the default) emits nothing and perturbs nothing.
  void set_trace_recorder(trace::Recorder* recorder) noexcept { trace_ = recorder; }

 protected:
  Scheduler() = default;

  /// Borrowed, may be null; subclasses emit admission events through it.
  trace::Recorder* trace_ = nullptr;
};

/// Schedules every job's arrival event and runs the simulation to
/// completion. The trace must be validated and submit-ordered; it must
/// outlive the call (schedulers keep pointers into it). When `recorder` is
/// given, a JobSubmitted event is emitted per arrival (before the scheduler
/// sees the job).
void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs,
               trace::Recorder* recorder = nullptr);

}  // namespace librisk::core
