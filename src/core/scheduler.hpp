// Common interface for deadline-constrained job admission controls and the
// trace driver that feeds them.
#pragma once

#include <string_view>
#include <vector>

#include "metrics/collector.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"
#include "workload/job.hpp"

namespace librisk::core {

using metrics::Collector;
using workload::Job;

/// A cluster RMS policy: receives each job at its submission instant and is
/// responsible for eventually resolving it in the collector (reject, or
/// start + complete). Implementations drive their own executors off the
/// shared Simulator.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Called exactly once per job, at job.submit_time, after the collector
  /// has recorded the submission.
  virtual void on_job_submitted(const Job& job) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Attaches a decision-audit recorder (docs/TRACING.md). Optional; null
  /// (the default) emits nothing and perturbs nothing.
  void set_trace_recorder(trace::Recorder* recorder) noexcept { trace_ = recorder; }

  /// Attaches live telemetry (docs/OBSERVABILITY.md): the scheduler
  /// registers its counters as pull metrics and contributes samplers via
  /// on_telemetry(). Optional; null (the default) costs one branch per
  /// hook site and perturbs nothing.
  void set_telemetry(obs::Telemetry* telemetry) {
    telemetry_ = telemetry;
    profiler_ = telemetry != nullptr ? &telemetry->profiler() : nullptr;
    if (telemetry != nullptr) on_telemetry(*telemetry);
  }

 protected:
  Scheduler() = default;

  /// Registration hook: add pull metrics, series and samplers. Called once
  /// from set_telemetry with a telemetry that outlives the run.
  virtual void on_telemetry(obs::Telemetry& telemetry) { (void)telemetry; }

  /// Borrowed, may be null; subclasses emit admission events through it.
  trace::Recorder* trace_ = nullptr;
  /// Borrowed, may be null.
  obs::Telemetry* telemetry_ = nullptr;
  /// Cached &telemetry_->profiler(), null when telemetry is absent — so
  /// ScopedPhase sites pay a single null check.
  obs::PhaseProfiler* profiler_ = nullptr;
};

/// Schedules every job's arrival event and runs the simulation to
/// completion. The trace must be validated and submit-ordered; it must
/// outlive the call (schedulers keep pointers into it). When `recorder` is
/// given, a JobSubmitted event is emitted per arrival (before the scheduler
/// sees the job). When `telemetry` is given it is armed on the simulator
/// (metronome sampling + queue-depth gauge), the drain is timed as the
/// `run` phase, and a terminal sample is taken at end-of-run time.
void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs,
               trace::Recorder* recorder = nullptr,
               obs::Telemetry* telemetry = nullptr);

}  // namespace librisk::core
