// QoPS-style deadline-feasibility admission control (Islam et al.,
// Cluster 2004 — the paper's related work [6]).
//
// Where EDF's relaxed control rejects a job only when it is *selected* and
// already infeasible, QoPS tests at *submission* whether a schedule exists
// (by runtime estimates) in which every queued/running job still meets its
// deadline — optionally relaxed by a slack factor, the "soft deadline"
// feature the paper contrasts with its own hard-deadline focus: earlier
// jobs may be delayed up to slack_factor * deadline to admit later, more
// urgent jobs.
//
// The feasibility test simulates the space-shared EDF dispatch forward
// using estimates: running jobs release their nodes at their estimated
// completions, waiting jobs start in deadline order when enough nodes are
// free. This is the estimate-consuming counterpart of LibraRisk's risk
// test on the space-shared substrate.
#pragma once

#include <string>
#include <vector>

#include "cluster/spaceshared.hpp"
#include "core/scheduler.hpp"

namespace librisk::core {

struct QopsConfig {
  /// A job's effective deadline during admission is slack_factor * deadline
  /// (>= 1; exactly 1 enforces hard deadlines at admission). Completion
  /// accounting still uses the real, hard deadline.
  double slack_factor = 1.0;
};

class QopsScheduler final : public Scheduler {
 public:
  QopsScheduler(sim::Simulator& simulator, cluster::SpaceSharedExecutor& executor,
                Collector& collector, QopsConfig config, std::string name = "QoPS");

  void on_job_submitted(const Job& job) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] const QopsConfig& config() const noexcept { return config_; }

  /// The admission test, exposed for unit testing: would every queued job
  /// (plus `candidate`) meet its slack-relaxed deadline in the estimated
  /// forward schedule?
  [[nodiscard]] bool feasible_with(const Job& candidate) const;

 private:
  void dispatch();

  sim::Simulator& sim_;
  cluster::SpaceSharedExecutor& executor_;
  Collector& collector_;
  QopsConfig config_;
  std::string name_;
  std::vector<const Job*> queue_;
  /// Estimated completion times of running jobs (job id -> absolute time),
  /// maintained at start/completion.
  std::map<std::int64_t, sim::SimTime> estimated_finish_;
};

}  // namespace librisk::core
