#include "core/factory.hpp"

#include <stdexcept>

#include "cluster/spaceshared.hpp"
#include "cluster/timeshared.hpp"
#include "core/edf.hpp"
#include "core/fcfs.hpp"
#include "core/qops.hpp"

namespace librisk::core {

std::string_view to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::Edf: return "EDF";
    case Policy::EdfNoAC: return "EDF-NoAC";
    case Policy::Libra: return "Libra";
    case Policy::LibraRisk: return "LibraRisk";
    case Policy::Fcfs: return "FCFS";
    case Policy::Easy: return "EASY";
    case Policy::Qops: return "QoPS";
    case Policy::EdfBackfill: return "EDF-BF";
  }
  return "?";
}

Policy parse_policy(std::string_view name) {
  for (const Policy p : all_policies())
    if (name == to_string(p)) return p;
  throw std::invalid_argument("unknown policy: " + std::string(name));
}

std::vector<Policy> paper_policies() {
  return {Policy::Edf, Policy::Libra, Policy::LibraRisk};
}

std::vector<Policy> all_policies() {
  return {Policy::Edf,  Policy::EdfNoAC,     Policy::Libra, Policy::LibraRisk,
          Policy::Fcfs, Policy::Easy,        Policy::Qops,
          Policy::EdfBackfill};
}

namespace {

class TimeSharedStack final : public SchedulerStack {
 public:
  TimeSharedStack(sim::Simulator& simulator, const cluster::Cluster& cluster,
                  Collector& collector, LibraConfig config, std::string name,
                  cluster::ShareModelConfig share_model, const Hooks& hooks)
      : executor_(simulator, cluster, share_model),
        scheduler_(simulator, executor_, collector, config, std::move(name)) {
    if (hooks.any()) {
      executor_.attach(hooks);
      scheduler_.attach(hooks);
    }
  }

  Scheduler& scheduler() noexcept override { return scheduler_; }
  double busy_node_seconds(sim::SimTime) const override {
    return executor_.delivered_node_seconds();
  }
  AdmissionStats admission_stats() const override {
    return scheduler_.admission_stats();
  }
  cluster::KernelStats kernel_stats() const override {
    return executor_.kernel_stats();
  }

 private:
  cluster::TimeSharedExecutor executor_;
  LibraScheduler scheduler_;
};

template <typename SchedulerT, typename ConfigT>
class SpaceSharedStack final : public SchedulerStack {
 public:
  SpaceSharedStack(sim::Simulator& simulator, const cluster::Cluster& cluster,
                   Collector& collector, ConfigT config, std::string name,
                   cluster::SpaceSharedConfig executor_config, const Hooks& hooks)
      : executor_(simulator, cluster, executor_config),
        scheduler_(simulator, executor_, collector, config, std::move(name)) {
    if (hooks.any()) {
      executor_.attach(hooks);
      scheduler_.attach(hooks);
    }
  }

  Scheduler& scheduler() noexcept override { return scheduler_; }
  double busy_node_seconds(sim::SimTime now) const override {
    return executor_.busy_node_seconds(now);
  }
  AdmissionStats admission_stats() const override {
    // Schedulers that track the shared stats shape (EDF's dispatch-time
    // admission control) surface it; the rest keep the all-zero default.
    if constexpr (requires { scheduler_.admission_stats(); })
      return scheduler_.admission_stats();
    else
      return {};
  }

 private:
  cluster::SpaceSharedExecutor executor_;
  SchedulerT scheduler_;
};

LibraConfig libra_family_config(Policy policy, const PolicyOptions& options) {
  LibraConfig config = policy == Policy::LibraRisk ? LibraConfig::libra_risk()
                                                   : LibraConfig::libra();
  // Carry over cross-cutting risk knobs without letting callers silently
  // flip the policy-defining fields.
  config.risk.deadline_clamp = options.share_model.deadline_clamp;
  config.risk.prediction = options.risk.prediction;
  config.risk.work_conserving_prediction = options.risk.work_conserving_prediction;
  config.risk.tolerance = options.risk.tolerance;
  config.risk.sigma_threshold = options.risk.sigma_threshold;
  config.risk.rule = options.risk.rule;
  if (options.selection_override) config.selection = *options.selection_override;
  config.legacy_path = options.legacy_admission;
  config.overload = options.overload;
  return config;
}

}  // namespace

std::unique_ptr<SchedulerStack> make_scheduler(Policy policy,
                                               sim::Simulator& simulator,
                                               const cluster::Cluster& cluster,
                                               Collector& collector,
                                               const PolicyOptions& options) {
  const std::string name(to_string(policy));
  // The catalog self-audit runs once per stack: a malformed catalog (or a
  // nonsensical config) fails construction instead of misbehaving mid-run.
  audit_catalog();
  options.overload.validate();
  const cluster::SpaceSharedConfig space_config{
      .kill_at_estimate = options.share_model.kill_at_estimate};
  switch (policy) {
    case Policy::Libra:
    case Policy::LibraRisk:
      return std::make_unique<TimeSharedStack>(
          simulator, cluster, collector, libra_family_config(policy, options),
          name, options.share_model, options.hooks);
    case Policy::Edf:
      return std::make_unique<SpaceSharedStack<EdfScheduler, EdfConfig>>(
          simulator, cluster, collector,
          EdfConfig{.admission_control = true, .overload = options.overload},
          name, space_config, options.hooks);
    case Policy::EdfNoAC:
      // No admission control means no rejection site for any mode to bend.
      return std::make_unique<SpaceSharedStack<EdfScheduler, EdfConfig>>(
          simulator, cluster, collector, EdfConfig{.admission_control = false, .overload = {}},
          name, space_config, options.hooks);
    case Policy::EdfBackfill:
      return std::make_unique<SpaceSharedStack<EdfScheduler, EdfConfig>>(
          simulator, cluster, collector,
          EdfConfig{.admission_control = true, .backfilling = true,
                    .overload = options.overload},
          name, space_config, options.hooks);
    case Policy::Fcfs:
      return std::make_unique<SpaceSharedStack<FcfsScheduler, FcfsConfig>>(
          simulator, cluster, collector,
          FcfsConfig{.backfilling = false, .deadline_admission = false}, name,
          space_config, options.hooks);
    case Policy::Easy:
      return std::make_unique<SpaceSharedStack<FcfsScheduler, FcfsConfig>>(
          simulator, cluster, collector,
          FcfsConfig{.backfilling = true, .deadline_admission = false}, name,
          space_config, options.hooks);
    case Policy::Qops:
      return std::make_unique<SpaceSharedStack<QopsScheduler, QopsConfig>>(
          simulator, cluster, collector,
          QopsConfig{.slack_factor = options.qops_slack_factor}, name,
          space_config, options.hooks);
  }
  throw std::invalid_argument("unhandled policy");
}

}  // namespace librisk::core
