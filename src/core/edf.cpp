#include "core/edf.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/log.hpp"

namespace librisk::core {

EdfScheduler::EdfScheduler(sim::Simulator& simulator,
                           cluster::SpaceSharedExecutor& executor,
                           Collector& collector, EdfConfig config, std::string name)
    : sim_(simulator),
      executor_(executor),
      collector_(collector),
      config_(config),
      name_(std::move(name)) {
  governor_ = OverloadGovernor(config_.overload);
  // EDF's one rejection site tests deadline feasibility, so DowngradeQoS is
  // the only mode with a license to bend it; the rest reduce to HardReject.
  overload_enabled_ =
      governor_.enabled() && config_.overload.mode == DegradedMode::DowngradeQoS;
  executor_.set_completion_handler([this](const Job& job, sim::SimTime finish) {
    estimated_finish_.erase(job.id);
    collector_.record_completed(job, finish);
    dispatch();  // freed processors may admit the queue head
  });
  executor_.set_kill_handler([this](const Job& job, sim::SimTime when) {
    estimated_finish_.erase(job.id);
    collector_.record_killed(job, when);
    dispatch();
  });
}

bool EdfScheduler::deadline_feasible(const Job& job) const {
  const sim::SimTime now = sim_.now();
  if (now > job.absolute_deadline()) return false;  // deadline expired
  const double best_runtime =
      job.scheduler_estimate / executor_.cluster().max_speed_factor();
  return now + best_runtime <= job.absolute_deadline() + sim::kTimeEpsilon;
}

double EdfScheduler::deadline_margin(const Job& job) const {
  const double best_runtime =
      job.scheduler_estimate / executor_.cluster().max_speed_factor();
  return job.absolute_deadline() - (sim_.now() + best_runtime);
}

void EdfScheduler::on_job_submitted(const Job& job) {
  // The recorder arrives via attach() after construction; borrow it lazily.
  if (overload_enabled_) governor_.attach(trace_);
  ++stats_.submissions;
  // A request larger than the machine can never run; even EDF-NoAC must
  // reject it or the queue head would block forever.
  if (job.num_procs > executor_.cluster().size()) {
    ++stats_.rejections;
    ++stats_.rejected_no_suitable_node;
    collector_.record_rejected(job, sim_.now(), /*at_dispatch=*/false,
                               trace::RejectionReason::NoSuitableNode);
    if (trace_ != nullptr)
      trace_->job_rejected(sim_.now(), job.id,
                           trace::RejectionReason::NoSuitableNode, 0,
                           job.num_procs);
    if (explain_ != nullptr) {
      explain_->begin(sim_.now(), job.id, job.num_procs, job.deadline,
                      job.scheduler_estimate);
      explain_->finish_reject(trace::RejectionReason::NoSuitableNode, 0, 0.0);
    }
    return;
  }
  queue_.push_back(&job);
  dispatch();
}

void EdfScheduler::start_job(const Job& job) {
  ++stats_.accepted;
  if (overload_enabled_) {
    const auto it = downgraded_deadline_.find(job.id);
    if (it != downgraded_deadline_.end()) {
      // The job got here on a granted deadline extension: degraded-admit
      // provenance. The Job itself is untouched — it may simply finish late
      // and the collector judges it against the submitted deadline.
      ++stats_.degraded_admits;
      note_decision(job.id, /*node=*/-1, /*sigma=*/-1.0, /*margin=*/0.0,
                    /*degraded=*/true);
      if (trace_ != nullptr)
        trace_->job_degraded_admit(sim_.now(), job.id,
                                   trace::RejectionReason::DeadlineInfeasible,
                                   /*first_node=*/-1, /*sigma=*/-1.0,
                                   /*fit=*/0.0);
      downgraded_deadline_.erase(it);
    }
  }
  std::vector<cluster::NodeId> nodes = executor_.take_free_nodes(job.num_procs);
  double slowest = sim::kTimeInfinity;
  for (const cluster::NodeId n : nodes)
    slowest = std::min(slowest, executor_.cluster().speed_factor(n));
  collector_.record_started(job, sim_.now(), job.actual_runtime / slowest);
  if (config_.backfilling)
    estimated_finish_[job.id] = sim_.now() + job.scheduler_estimate / slowest;
  executor_.start(job, std::move(nodes));
}

EdfScheduler::Reservation EdfScheduler::head_reservation(const Job& head) const {
  const sim::SimTime now = sim_.now();
  struct Release {
    sim::SimTime time;
    int procs;
  };
  std::vector<Release> releases;
  releases.reserve(estimated_finish_.size());
  for (const auto& [id, finish] : estimated_finish_)
    releases.push_back(
        Release{std::max(finish, now), collector_.record(id).num_procs});
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.time < b.time; });

  int available = executor_.free_count();
  Reservation res;
  res.shadow_time = now;
  for (const Release& r : releases) {
    if (available >= head.num_procs) break;
    available += r.procs;
    res.shadow_time = r.time;
  }
  LIBRISK_CHECK(available >= head.num_procs,
                "reservation impossible: releases never free enough nodes");
  res.extra_nodes = available - head.num_procs;
  return res;
}

void EdfScheduler::dispatch() {
  for (;;) {
    if (queue_.empty()) return;
    // Select the earliest-absolute-deadline job (re-evaluated every pass, so
    // an earlier-deadline arrival can displace the waiting head).
    const auto deadline_before = [](const Job* a, const Job* b) {
      if (a->absolute_deadline() != b->absolute_deadline())
        return a->absolute_deadline() < b->absolute_deadline();
      return a->id < b->id;
    };
    const auto head = std::min_element(queue_.begin(), queue_.end(), deadline_before);
    const Job* job = *head;

    if (config_.admission_control && !deadline_feasible(*job) &&
        !(overload_enabled_ && try_degrade_head(*job))) {
      // The relaxed admission control: reject only at selection time. The
      // margin is the best-case-finish headroom (< 0 on this path); the
      // near-miss scale is the job's own deadline window.
      if (overload_enabled_) downgraded_deadline_.erase(job->id);
      ++stats_.rejections;
      ++stats_.rejected_deadline_infeasible;
      const double margin = deadline_margin(*job);
      const double deficit = -margin;
      if (deficit <= 0.05 * job->deadline) ++stats_.near_miss_deadline_5;
      if (deficit <= 0.10 * job->deadline) ++stats_.near_miss_deadline_10;
      collector_.record_rejected(*job, sim_.now(), /*at_dispatch=*/true,
                                 trace::RejectionReason::DeadlineInfeasible);
      if (trace_ != nullptr)
        trace_->job_rejected(sim_.now(), job->id,
                             trace::RejectionReason::DeadlineInfeasible, 0,
                             job->num_procs, margin);
      if (explain_ != nullptr) {
        explain_->begin(sim_.now(), job->id, job->num_procs, job->deadline,
                        job->scheduler_estimate);
        explain_->finish_reject(trace::RejectionReason::DeadlineInfeasible, 0,
                                margin);
      }
      queue_.erase(head);
      LIBRISK_LOG(Debug) << name_ << ": rejected job " << job->id
                         << " at dispatch (deadline infeasible)";
      continue;
    }
    if (executor_.free_count() >= job->num_procs) {
      queue_.erase(head);
      start_job(*job);
      continue;
    }
    if (!config_.backfilling) return;  // plain EDF: head-of-line blocking

    // Backfill in deadline order: a later job may start now iff (by
    // estimates) it finishes before the head's reservation or fits on the
    // nodes the head will not need.
    const Reservation res = head_reservation(*job);
    std::vector<const Job*> ordered(queue_.begin(), queue_.end());
    std::sort(ordered.begin(), ordered.end(), deadline_before);
    bool progressed = false;
    for (const Job* candidate : ordered) {
      if (candidate == job) continue;
      if (executor_.free_count() < candidate->num_procs) continue;
      const double best_runtime =
          candidate->scheduler_estimate / executor_.cluster().max_speed_factor();
      const bool fits_window =
          sim_.now() + best_runtime <= res.shadow_time + sim::kTimeEpsilon;
      const bool fits_extra = candidate->num_procs <= res.extra_nodes;
      if (!fits_window && !fits_extra) continue;
      if (config_.admission_control && !deadline_feasible(*candidate)) continue;
      queue_.erase(std::find(queue_.begin(), queue_.end(), candidate));
      start_job(*candidate);
      progressed = true;
      break;
    }
    if (!progressed) return;
  }
}

LoadSignal EdfScheduler::load_signal() const noexcept {
  const int size = executor_.cluster().size();
  return LoadSignal{static_cast<double>(size - executor_.free_count()),
                    static_cast<double>(size)};
}

bool EdfScheduler::try_degrade_head(const Job& job) {
  const sim::SimTime now = sim_.now();
  governor_.evaluate(now, load_signal());
  stats_.overload_activations = governor_.activations();
  const auto it = downgraded_deadline_.find(job.id);
  const bool granted = it != downgraded_deadline_.end();
  // A fresh extension needs the governor engaged; a previously granted one
  // is sticky — later passes honor it even after the load drops, so the
  // job's fate never depends on when capacity happened to free up relative
  // to a disengagement (determinism stays trivial; fairness stays sane).
  if (!granted && !governor_.engaged()) return false;
  const sim::SimTime effective =
      granted ? it->second
              : job.submit_time +
                    job.deadline * governor_.config().downgrade_factor;
  if (now > effective) return false;
  const double best_runtime =
      job.scheduler_estimate / executor_.cluster().max_speed_factor();
  if (now + best_runtime > effective + sim::kTimeEpsilon) return false;
  if (!granted) downgraded_deadline_.emplace(job.id, effective);
  return true;
}

}  // namespace librisk::core
