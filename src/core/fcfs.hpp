// FCFS and EASY-backfilling space-shared schedulers.
//
// Not part of the paper's comparison but the standard baselines of the
// scheduling literature it cites (Mu'alem & Feitelson). Included as extra
// comparators: they show how a throughput-oriented scheduler fares on the
// deadline-fulfilment metric, and EASY demonstrates a second consumer of
// runtime estimates (backfill reservations) inside the same framework.
#pragma once

#include <deque>
#include <string>

#include "cluster/spaceshared.hpp"
#include "core/scheduler.hpp"

namespace librisk::core {

struct FcfsConfig {
  /// EASY backfilling: later jobs may jump the queue if, by their runtime
  /// estimates, they do not delay the queue head's reservation.
  bool backfilling = true;
  /// Apply the same relaxed deadline admission control as EDF (reject a job
  /// at selection when its deadline is expired/infeasible). Off by default:
  /// plain FCFS/EASY accept everything and let deadlines miss.
  bool deadline_admission = false;
};

class FcfsScheduler final : public Scheduler {
 public:
  FcfsScheduler(sim::Simulator& simulator, cluster::SpaceSharedExecutor& executor,
                Collector& collector, FcfsConfig config, std::string name = "FCFS");

  void on_job_submitted(const Job& job) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }

 private:
  void dispatch();
  void start_job(const Job& job);
  [[nodiscard]] bool deadline_feasible(const Job& job) const;
  /// Earliest time the queue head could start, and the number of nodes that
  /// will be free *now* without delaying that start (the backfill window).
  struct Reservation {
    sim::SimTime shadow_time = 0.0;  ///< estimated start of the queue head
    int extra_nodes = 0;             ///< free nodes beyond the head's need
  };
  [[nodiscard]] Reservation head_reservation(const Job& head) const;

  sim::Simulator& sim_;
  cluster::SpaceSharedExecutor& executor_;
  Collector& collector_;
  FcfsConfig config_;
  std::string name_;
  std::deque<const Job*> queue_;
  /// Estimate-based finish times of running jobs (job id -> time), the
  /// knowledge EASY reservations are built from.
  std::map<std::int64_t, sim::SimTime> estimated_finish_;
};

}  // namespace librisk::core
