// The risk-of-deadline-delay metric (paper Section 3.2, Eq. 3-6).
//
// Pure functions over small value types so every formula is unit-testable
// against hand-computed examples (including the paper's own worked example:
// delay 40 s with remaining deadline 10 s gives deadline_delay 5; the same
// delay with remaining deadline 20 s gives 3).
#pragma once

#include <span>
#include <vector>

namespace librisk::core {

/// What an admission control knows about one job on a node when it
/// evaluates the node: how much work the scheduler believes remains and how
/// much wall-clock remains until the job's absolute deadline (negative when
/// the deadline has already passed).
struct RiskJobInput {
  double remaining_work = 0.0;      ///< reference-seconds, >= 0
  double remaining_deadline = 0.0;  ///< seconds; may be negative
  /// Observed execution rate (reference-seconds per second) for a job
  /// already running on the node; kNewJob for the job under admission,
  /// whose rate must be predicted from the node's spare capacity.
  double current_rate = kNewJob;

  static constexpr double kNewJob = -1.0;
};

struct RiskConfig {
  /// Deadline clamp shared with the share model (see ShareModelConfig).
  double deadline_clamp = 1.0;
  /// How completion times on the node are predicted (Algorithm 1, line 4):
  ///  - CurrentRate (default): residents finish their remaining work at the
  ///    rate they are *observed* to run at ("based on current workload"),
  ///    so a node polluted by an overrun job shows real, heterogeneous
  ///    delays; the job under admission is predicted at min(required share,
  ///    node spare capacity) — zero spare means an enormous predicted delay
  ///    and therefore sigma > 0 against any on-time resident.
  ///  - ProcessorSharing: equal-split time sharing (GridSim TimeShared
  ///    ablation, pairs with ExecutionMode::EqualShare).
  ///  - ProportionalShare: every job at its required share, scaled down
  ///    uniformly on overload. Note the degeneracy: a uniform squeeze
  ///    inflates every deadline_delay by the same factor, so sigma stays 0
  ///    on uniformly overloaded nodes — kept for the ablation study only.
  enum class Prediction { CurrentRate, ProcessorSharing, ProportionalShare };
  Prediction prediction = Prediction::CurrentRate;
  /// ProportionalShare prediction only: redistribute spare capacity
  /// (optimistic) instead of guaranteed shares (conservative).
  bool work_conserving_prediction = false;
  /// Numeric tolerance for the zero-risk test.
  double tolerance = 1e-9;
  /// Relaxation of the zero-risk rule: a node is suitable when
  /// sigma <= sigma_threshold (paper: exactly 0). Raising it trades
  /// deadline safety for acceptance; see bench/ablation_risk_threshold.
  double sigma_threshold = 0.0;
  /// Which test declares a node suitable:
  ///  - SigmaOnly (default): the literal Eq. 6 test, sigma == 0. Note its
  ///    consequence: a node carrying a *single* predicted-late job still has
  ///    sigma == 0, so a job whose (over)estimated share exceeds a whole
  ///    node can be admitted onto an otherwise-empty node — a salvage lane
  ///    where it runs at full speed and, because user estimates are usually
  ///    inflated, typically still meets its deadline. This is the mechanism
  ///    behind LibraRisk's reported gains on short-deadline jobs; Libra's
  ///    Eq. 2 test rejects those jobs outright.
  ///  - SigmaAndNoDelay: additionally require that no job has any predicted
  ///    delay (all deadline_delay == 1). Stricter, closes the salvage lane;
  ///    kept as an ablation.
  enum class Rule { SigmaAndNoDelay, SigmaOnly };
  Rule rule = Rule::SigmaOnly;
};

/// Eq. 3 clamped at zero: a job completing before its deadline has no delay.
[[nodiscard]] double job_delay(double finish_time, double submit_time,
                               double deadline) noexcept;

/// Eq. 4: impact of a delay on the remaining deadline; >= 1, equal to 1 iff
/// the delay is zero. The remaining deadline is clamped below at
/// `deadline_clamp` so jobs at/past their deadline register large but finite
/// impact.
[[nodiscard]] double deadline_delay_metric(double delay, double remaining_deadline,
                                           double deadline_clamp) noexcept;

/// Full assessment of one node (Algorithm 1, lines 2-6): predicted delay
/// and deadline_delay per job, plus Eq. 5-6 aggregates.
struct RiskAssessment {
  std::vector<double> predicted_delay;
  std::vector<double> deadline_delay;
  double total_share = 0.0;  ///< Eq. 2 over the same inputs
  double mu = 0.0;           ///< Eq. 5
  double sigma = 0.0;        ///< Eq. 6
  double max_deadline_delay = 0.0;

  [[nodiscard]] bool zero_risk(const RiskConfig& config) const noexcept;
};

/// Result of a workspace-based assessment. The spans alias the workspace
/// passed to assess_node and are invalidated by the next assessment with
/// (or resize of) that workspace — copy out anything that must persist.
struct RiskAssessmentView {
  std::span<const double> predicted_delay;
  std::span<const double> deadline_delay;
  double total_share = 0.0;  ///< Eq. 2 over the same inputs
  double mu = 0.0;           ///< Eq. 5
  double sigma = 0.0;        ///< Eq. 6
  double max_deadline_delay = 0.0;

  [[nodiscard]] bool zero_risk(const RiskConfig& config) const noexcept;
};

/// Reusable scratch memory for the non-allocating assess_node overload.
/// Buffers are grow-only: after the first few assessments at a given node
/// population, no assessment allocates. A workspace is cheap to hold per
/// scheduler; it is not thread-safe — one workspace per thread.
///
/// `inputs` is a caller-side staging buffer (clear + push the node's
/// residents and the admission candidate, then pass it as the jobs span);
/// the remaining buffers are owned by assess_node and aliased by the
/// returned RiskAssessmentView.
class RiskWorkspace {
 public:
  std::vector<RiskJobInput> inputs;

 private:
  std::vector<double> shares_;
  std::vector<double> predicted_delay_;
  std::vector<double> deadline_delay_;
  std::vector<double> finish_;
  std::vector<std::size_t> order_;

  friend RiskAssessmentView assess_node(std::span<const RiskJobInput>,
                                        const RiskConfig&, double, double,
                                        RiskWorkspace&);
};

/// Non-allocating assessment (the admission hot path): identical arithmetic
/// to the allocating overload — same operations in the same order, so
/// results are bit-identical — but all per-job storage lives in `workspace`.
[[nodiscard]] RiskAssessmentView assess_node(std::span<const RiskJobInput> jobs,
                                             const RiskConfig& config,
                                             double speed_factor,
                                             double available_capacity,
                                             RiskWorkspace& workspace);

/// Convenience wrapper over the workspace overload: allocates a fresh
/// RiskAssessment per call. Fine for tests and one-off introspection; use
/// the workspace overload in per-submission loops.
[[nodiscard]] RiskAssessment assess_node(std::span<const RiskJobInput> jobs,
                                         const RiskConfig& config,
                                         double speed_factor = 1.0,
                                         double available_capacity = 1.0);

/// The seed implementation (multi-pass, allocating), kept compiled as the
/// reference for the differential equivalence tests and benchmarks; do not
/// use in new code.
[[nodiscard]] RiskAssessment assess_node_legacy(std::span<const RiskJobInput> jobs,
                                                const RiskConfig& config,
                                                double speed_factor = 1.0,
                                                double available_capacity = 1.0);

/// Completion offsets (seconds from now) of jobs with the given remaining
/// works when a node of speed `speed_factor` splits capacity equally among
/// unfinished jobs (processor sharing). Returned in input order.
[[nodiscard]] std::vector<double> processor_sharing_finish_times(
    std::span<const double> works, double speed_factor);

/// In-place variant: writes the offsets into `finish` (resized to match)
/// using `order_scratch` for the rank sort; no allocation once both vectors
/// have grown to the node population.
void processor_sharing_finish_times_into(std::span<const double> works,
                                         double speed_factor,
                                         std::vector<std::size_t>& order_scratch,
                                         std::vector<double>& finish);

}  // namespace librisk::core
