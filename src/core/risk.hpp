// The risk-of-deadline-delay metric (paper Section 3.2, Eq. 3-6).
//
// Pure functions over small value types so every formula is unit-testable
// against hand-computed examples (including the paper's own worked example:
// delay 40 s with remaining deadline 10 s gives deadline_delay 5; the same
// delay with remaining deadline 20 s gives 3).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace librisk::core {

/// What an admission control knows about one job on a node when it
/// evaluates the node: how much work the scheduler believes remains and how
/// much wall-clock remains until the job's absolute deadline (negative when
/// the deadline has already passed).
struct RiskJobInput {
  double remaining_work = 0.0;      ///< reference-seconds, >= 0
  double remaining_deadline = 0.0;  ///< seconds; may be negative
  /// Observed execution rate (reference-seconds per second) for a job
  /// already running on the node; kNewJob for the job under admission,
  /// whose rate must be predicted from the node's spare capacity.
  double current_rate = kNewJob;

  static constexpr double kNewJob = -1.0;
};

struct RiskConfig {
  /// Deadline clamp shared with the share model (see ShareModelConfig).
  double deadline_clamp = 1.0;
  /// How completion times on the node are predicted (Algorithm 1, line 4):
  ///  - CurrentRate (default): residents finish their remaining work at the
  ///    rate they are *observed* to run at ("based on current workload"),
  ///    so a node polluted by an overrun job shows real, heterogeneous
  ///    delays; the job under admission is predicted at min(required share,
  ///    node spare capacity) — zero spare means an enormous predicted delay
  ///    and therefore sigma > 0 against any on-time resident.
  ///  - ProcessorSharing: equal-split time sharing (GridSim TimeShared
  ///    ablation, pairs with ExecutionMode::EqualShare).
  ///  - ProportionalShare: every job at its required share, scaled down
  ///    uniformly on overload. Note the degeneracy: a uniform squeeze
  ///    inflates every deadline_delay by the same factor, so sigma stays 0
  ///    on uniformly overloaded nodes — kept for the ablation study only.
  enum class Prediction { CurrentRate, ProcessorSharing, ProportionalShare };
  Prediction prediction = Prediction::CurrentRate;
  /// ProportionalShare prediction only: redistribute spare capacity
  /// (optimistic) instead of guaranteed shares (conservative).
  bool work_conserving_prediction = false;
  /// Numeric tolerance for the zero-risk test.
  double tolerance = 1e-9;
  /// Relaxation of the zero-risk rule: a node is suitable when
  /// sigma <= sigma_threshold (paper: exactly 0). Raising it trades
  /// deadline safety for acceptance; see bench/ablation_risk_threshold.
  double sigma_threshold = 0.0;
  /// Which test declares a node suitable:
  ///  - SigmaOnly (default): the literal Eq. 6 test, sigma == 0. Note its
  ///    consequence: a node carrying a *single* predicted-late job still has
  ///    sigma == 0, so a job whose (over)estimated share exceeds a whole
  ///    node can be admitted onto an otherwise-empty node — a salvage lane
  ///    where it runs at full speed and, because user estimates are usually
  ///    inflated, typically still meets its deadline. This is the mechanism
  ///    behind LibraRisk's reported gains on short-deadline jobs; Libra's
  ///    Eq. 2 test rejects those jobs outright.
  ///  - SigmaAndNoDelay: additionally require that no job has any predicted
  ///    delay (all deadline_delay == 1). Stricter, closes the salvage lane;
  ///    kept as an ablation.
  enum class Rule { SigmaAndNoDelay, SigmaOnly };
  Rule rule = Rule::SigmaOnly;
  /// How the batched kernel (assess_nodes) accumulates per-resident terms:
  ///  - Strict (default): one left-fold in resident order, the exact
  ///    operation sequence of the scalar assess_node — results (and hence
  ///    decisions and .lrt traces) are bit-identical to the oracles.
  ///  - Reassociated: multi-accumulator / SIMD-lane partial sums (and the
  ///    explicit AVX2 path when built with LIBRISK_RISK_SIMD). Changes the
  ///    floating-point grouping, so sums differ from Strict by at most the
  ///    classical reassociation bound |Δsum| <= n*eps*Σ|term| (eps =
  ///    2^-53); see docs/MODEL.md "SoA layout and the batched kernel" for
  ///    the induced sigma bound. Opt-in precisely because it is *not*
  ///    bit-identical: decisions can flip only when sigma sits within that
  ///    bound of sigma_threshold + tolerance.
  enum class Accumulation { Strict, Reassociated };
  Accumulation batch_accumulation = Accumulation::Strict;
};

/// Eq. 3 clamped at zero: a job completing before its deadline has no delay.
[[nodiscard]] inline double job_delay(double finish_time, double submit_time,
                                      double deadline) noexcept {
  return std::max(0.0, (finish_time - submit_time) - deadline);
}

/// Eq. 4: impact of a delay on the remaining deadline; >= 1, equal to 1 iff
/// the delay is zero. The remaining deadline is clamped below at
/// `deadline_clamp` so jobs at/past their deadline register large but finite
/// impact.
///
/// Inline (like the helpers below) so the executor's aggregate pass in
/// cluster/timeshared.cpp can share the one definition without linking
/// against librisk_core — bit-identity between the cached aggregates and the
/// scalar kernel rests on both sides evaluating these exact expressions.
[[nodiscard]] inline double deadline_delay_metric(double delay,
                                                  double remaining_deadline,
                                                  double deadline_clamp) noexcept {
  const double rd = std::max(remaining_deadline, deadline_clamp);
  return (std::max(delay, 0.0) + rd) / rd;
}

/// An effectively-starved job's predicted completion offset: far enough out
/// to dominate any deadline, small enough to stay numerically benign.
inline constexpr double kStarvedFinish = 1e15;

/// CurrentRate finish offset of a *resident* job (observed rate, Algorithm 1
/// line 4). Exactly the resident branch of the scalar assess_node loop.
[[nodiscard]] inline double resident_finish_current_rate(double remaining_work,
                                                         double rate) noexcept {
  if (remaining_work <= 0.0) return 0.0;
  const double finish = rate > 0.0 ? remaining_work / rate : kStarvedFinish;
  return std::min(finish, kStarvedFinish);
}

/// Predicted delay from a finish offset: past-deadline jobs believed
/// finished are already late by their overshoot.
[[nodiscard]] inline double delay_from_finish_offset(double remaining_work,
                                                     double remaining_deadline,
                                                     double finish_offset) noexcept {
  if (remaining_work > 0.0)
    return std::max(0.0, finish_offset - remaining_deadline);
  if (remaining_deadline < 0.0) return -remaining_deadline;
  return 0.0;
}

/// Eq. 6 from the in-order power sums, exactly as the scalar kernel computes
/// it: population stddev via sqrt(max(0, E[x^2] - E[x]^2)), 0 below two
/// samples.
[[nodiscard]] inline double sigma_from_sums(double dd_sum, double dd_sum_sq,
                                            std::size_t n) noexcept {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double m = dd_sum / dn;
  return std::sqrt(std::max(0.0, dd_sum_sq / dn - m * m));
}

/// Candidate-independent risk aggregates over one node's residents under the
/// CurrentRate prediction: the left-fold (resident start order) power sums
/// of Eq. 4's deadline_delay and Eq. 1's required shares. Because resident
/// finish predictions under CurrentRate do not depend on the job under
/// admission, an executor can fold these once per (node, instant) and the
/// batched kernel completes any candidate's assessment in O(1) by appending
/// the candidate's terms last — reproducing the scalar kernel's accumulation
/// order, hence its bits (docs/MODEL.md "SoA layout and the batched
/// kernel").
struct ResidentRiskAggregates {
  double share_sum = 0.0;    ///< Σ required_share, in resident order
  double dd_sum = 0.0;       ///< Σ dd_i (Eq. 4), in resident order
  double dd_sum_sq = 0.0;    ///< Σ dd_i^2, in resident order
  double dd_max = 0.0;       ///< left-fold max from 0.0 (dd >= 1 if any)
  /// Min over residents (any fold order; feeds only the conservative spread
  /// bound, which is not bit-constrained). +inf when there are no residents.
  double dd_min = std::numeric_limits<double>::infinity();
  bool computed = false;     ///< false when the producer skipped this part

  /// Folds one resident in, in start order, with the exact expressions of
  /// the scalar assess_node CurrentRate loop. `share` must already be
  /// required_share(remaining_work, remaining_deadline, clamp, speed) for
  /// the same clamp/speed the consumer's RiskConfig will use.
  void fold(double share, double remaining_work, double remaining_deadline,
            double rate, double deadline_clamp) noexcept {
    const double finish = resident_finish_current_rate(remaining_work, rate);
    const double delay =
        delay_from_finish_offset(remaining_work, remaining_deadline, finish);
    const double dd =
        deadline_delay_metric(delay, remaining_deadline, deadline_clamp);
    share_sum += share;
    dd_sum += dd;
    dd_sum_sq += dd * dd;
    dd_max = std::max(dd_max, dd);
    dd_min = std::min(dd_min, dd);
  }
};

/// The batch-level early-exit bound (conservative necessary condition for
/// suitability): a population of N values with spread S = max - min has
/// sigma >= S / sqrt(2N), and adding the admission candidate can only widen
/// the spread, so when the residents' spread alone forces
/// sigma > sigma_threshold + tolerance the node can be rejected without
/// evaluating the candidate. Shared by the kernel and the conservativeness
/// property test. `n_with_candidate` counts residents + 1. The comparison
/// carries a ~5e-10 relative slack so rounding in the exact test's σ can
/// never make the bound over-reject, and a degenerate (<= 0) threshold
/// disables the bound outright: there the exact σ may round to 0 on a
/// rounding-scale spread, which no finite slack covers.
[[nodiscard]] inline bool sigma_bound_rejects(double dd_max, double dd_min,
                                              std::size_t n_with_candidate,
                                              const RiskConfig& config) noexcept {
  const double threshold =
      std::max(0.0, config.sigma_threshold + config.tolerance);
  if (threshold <= 0.0) return false;  // degenerate rule; exact test decides
  const double spread = dd_max - dd_min;
  if (!(spread > 0.0)) return false;  // empty/uniform (or min still +inf)
  return spread * spread >
         threshold * threshold * (2.0 + 1e-9) *
             static_cast<double>(n_with_candidate);
}

/// Full assessment of one node (Algorithm 1, lines 2-6): predicted delay
/// and deadline_delay per job, plus Eq. 5-6 aggregates.
struct RiskAssessment {
  std::vector<double> predicted_delay;
  std::vector<double> deadline_delay;
  double total_share = 0.0;  ///< Eq. 2 over the same inputs
  double mu = 0.0;           ///< Eq. 5
  double sigma = 0.0;        ///< Eq. 6
  double max_deadline_delay = 0.0;

  [[nodiscard]] bool zero_risk(const RiskConfig& config) const noexcept;
};

/// Result of a workspace-based assessment. The spans alias the workspace
/// passed to assess_node and are invalidated by the next assessment with
/// (or resize of) that workspace — copy out anything that must persist.
struct RiskAssessmentView {
  std::span<const double> predicted_delay;
  std::span<const double> deadline_delay;
  double total_share = 0.0;  ///< Eq. 2 over the same inputs
  double mu = 0.0;           ///< Eq. 5
  double sigma = 0.0;        ///< Eq. 6
  double max_deadline_delay = 0.0;

  [[nodiscard]] bool zero_risk(const RiskConfig& config) const noexcept;
};

/// Reusable scratch memory for the non-allocating assess_node overload.
/// Buffers are grow-only: after the first few assessments at a given node
/// population, no assessment allocates. A workspace is cheap to hold per
/// scheduler; it is not thread-safe — one workspace per thread.
///
/// `inputs` is a caller-side staging buffer (clear + push the node's
/// residents and the admission candidate, then pass it as the jobs span);
/// the remaining buffers are owned by assess_node and aliased by the
/// returned RiskAssessmentView.
class RiskWorkspace {
 public:
  std::vector<RiskJobInput> inputs;

 private:
  std::vector<double> shares_;
  std::vector<double> predicted_delay_;
  std::vector<double> deadline_delay_;
  std::vector<double> finish_;
  std::vector<std::size_t> order_;

  friend RiskAssessmentView assess_node(std::span<const RiskJobInput>,
                                        const RiskConfig&, double, double,
                                        RiskWorkspace&);
};

/// Non-allocating assessment (the admission hot path): identical arithmetic
/// to the allocating overload — same operations in the same order, so
/// results are bit-identical — but all per-job storage lives in `workspace`.
[[nodiscard]] RiskAssessmentView assess_node(std::span<const RiskJobInput> jobs,
                                             const RiskConfig& config,
                                             double speed_factor,
                                             double available_capacity,
                                             RiskWorkspace& workspace);

/// One node of a batched assessment, as structure-of-arrays spans over
/// executor-owned storage (cluster::NodeStateView exposes exactly this
/// layout). Spans must be index-aligned and ordered by resident start time;
/// `remaining_work` carries whichever estimate kind (raw/current) the caller
/// admits against.
struct NodeRiskInput {
  std::span<const double> remaining_work;
  std::span<const double> remaining_deadline;
  std::span<const double> rate;
  double speed_factor = 1.0;
  double available_capacity = 1.0;
  /// Optional O(1) fast path: candidate-independent aggregates folded by the
  /// producer in resident order. Only pass when the producer's clamp/speed
  /// match `config` (RiskConfig::deadline_clamp equal to the executor's) and
  /// the prediction is CurrentRate with `remaining_work` the same estimate
  /// kind the aggregates were folded over; assess_nodes checks `computed`
  /// but cannot verify those preconditions. Null → per-resident loop.
  const ResidentRiskAggregates* aggregates = nullptr;
};

/// Per-node outcome of assess_nodes. Unlike RiskAssessmentView there are no
/// per-job arrays: the batch path exists for the admission scan, which only
/// consumes the Eq. 5-6 aggregates and the Eq. 2 fit key.
struct NodeRiskVerdict {
  bool suitable = false;
  /// The conservative spread bound rejected the node without evaluating the
  /// candidate; sigma/total_share/mu/max_deadline_delay are NOT computed
  /// (left at their sentinel values below). Only possible when
  /// AssessNodesOptions::allow_bound_skip is set.
  bool bound_skipped = false;
  bool aggregate_path = false;  ///< O(1) cached-aggregate evaluation used
  double sigma = -1.0;
  double total_share = -1.0;  ///< Eq. 2 fit key (residents + candidate)
  double mu = -1.0;
  double max_deadline_delay = -1.0;
};

struct AssessNodesOptions {
  /// Permit the spread bound to reject nodes without computing sigma.
  /// Decisions are unchanged (the bound is a proven necessary condition,
  /// tests/test_risk_batch.cpp holds it to that), but skipped nodes report
  /// no sigma — callers that must observe sigma for every scanned node
  /// (e.g. while emitting node_evaluated trace events) leave this off.
  bool allow_bound_skip = false;
};

/// Batched assessment of one admission candidate against many nodes — the
/// hot path behind the LibraRisk scan (docs/API.md "Batched risk
/// assessment"). Per node: the O(1) cached-aggregate path when
/// `aggregates` is supplied, otherwise a branch-light fused loop over the
/// SoA spans (CurrentRate), otherwise the scalar workspace kernel staged
/// through `workspace.inputs` (ProcessorSharing / ProportionalShare). Under
/// RiskConfig::Accumulation::Strict every path reproduces the scalar
/// assess_node bit-for-bit; Reassociated trades bits for vectorizable
/// partial sums within the documented bound. `verdicts` must have at least
/// `nodes.size()` entries.
void assess_nodes(std::span<const NodeRiskInput> nodes, double candidate_work,
                  double candidate_deadline, const RiskConfig& config,
                  RiskWorkspace& workspace, std::span<NodeRiskVerdict> verdicts,
                  const AssessNodesOptions& options = {});

/// Convenience wrapper over the workspace overload: allocates a fresh
/// RiskAssessment per call. Tests-only convenience — the non-test call
/// sites migrated to the workspace overload (hot paths) or assess_nodes
/// (batch scans); new code should do the same, this wrapper allocates three
/// vectors per call.
[[nodiscard]] RiskAssessment assess_node(std::span<const RiskJobInput> jobs,
                                         const RiskConfig& config,
                                         double speed_factor = 1.0,
                                         double available_capacity = 1.0);

/// The seed implementation (multi-pass, allocating), kept compiled as the
/// reference for the differential equivalence tests and benchmarks; do not
/// use in new code.
[[nodiscard]] RiskAssessment assess_node_legacy(std::span<const RiskJobInput> jobs,
                                                const RiskConfig& config,
                                                double speed_factor = 1.0,
                                                double available_capacity = 1.0);

/// Completion offsets (seconds from now) of jobs with the given remaining
/// works when a node of speed `speed_factor` splits capacity equally among
/// unfinished jobs (processor sharing). Returned in input order.
[[nodiscard]] std::vector<double> processor_sharing_finish_times(
    std::span<const double> works, double speed_factor);

/// In-place variant: writes the offsets into `finish` (resized to match)
/// using `order_scratch` for the rank sort; no allocation once both vectors
/// have grown to the node population.
void processor_sharing_finish_times_into(std::span<const double> works,
                                         double speed_factor,
                                         std::vector<std::size_t>& order_scratch,
                                         std::vector<double>& finish);

}  // namespace librisk::core
