// Overload taxonomy and graceful-degradation catalog (ROADMAP item 2,
// docs/OVERLOAD.md).
//
// Every admission policy in this repository answers pressure the same way
// the paper does: hard rejection. Production admission controls degrade
// instead — shed the expensive tail, relax the risk threshold a notch,
// defer to a salvage lane, downgrade QoS — and the three hard-reject sites
// that grew here independently (the scheduler's per-reason rejections, the
// gateway's certificate sheds, the federation router's infeasible-
// everywhere fallback) had no shared vocabulary for it.
//
// This header is that vocabulary: a closed catalog of degraded modes where
// each mode's *activation* is a pure function of (config, load signal) —
// `overload_action` — and each mode's *license* is bounded by
// forbidden-behavior flags checked at compile time and again at startup
// (`audit_catalog`). The flags are the machine-checkable contract: a mode
// may soften WHICH test rejects a job, but no mode may ever admit past the
// Eq. 2 capacity, touch an already-admitted job, admit a structurally
// infeasible job, make a nondeterministic decision, or drop a job without
// a rejection counter hearing about it.
//
// Determinism lemma (docs/OVERLOAD.md): because the load signal is derived
// exclusively from simulator-visible state (inflight shares, busy
// processors) and `overload_action` is pure, a degraded run is a
// deterministic function of (workload, seed, config) exactly like a
// HardReject run — same-seed runs produce byte-identical .lrt traces, and
// mode transitions are themselves trace events so degraded runs stay
// replayable and `trace diff`-able. With the catalog parked at HardReject
// (the default), every consult site reduces to `false` before touching any
// state, which is how the refactor stays byte-identical to pre-catalog
// builds (tests/test_overload.cpp pins both properties).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.hpp"
#include "trace/recorder.hpp"

namespace librisk::core {

/// The closed set of degraded modes. Values are stable — they appear in
/// trace events (ModeTransition payload) and OpenMetrics labels.
enum class DegradedMode : std::uint8_t {
  HardReject = 0,      ///< today's behavior: every overload is a rejection
  ShedTail = 1,        ///< under load, pre-reject jobs demanding a fat share
  RelaxSigma = 2,      ///< under load, retry sigma shortfalls with extra slack
  DeferToSalvage = 3,  ///< under load, park shortfall jobs and retry later
  DowngradeQoS = 4,    ///< under load, retry shortfalls with a relaxed deadline
};
inline constexpr int kDegradedModeCount = 5;

[[nodiscard]] std::string_view to_string(DegradedMode mode) noexcept;
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] DegradedMode parse_degraded_mode(std::string_view name);
[[nodiscard]] std::array<DegradedMode, kDegradedModeCount> all_degraded_modes();

/// Forbidden-behavior flags: each bit names something a mode may NEVER do.
/// The first five are universal — set on every catalog entry, enforced by
/// audit_catalog() — and are what makes a degraded mode safe to enable in
/// front of the paper's metrics. The last three distinguish the modes: a
/// mode that clears one of them is licensed to bend exactly that rule.
enum OverloadForbids : std::uint32_t {
  /// May never admit a job whose share would exceed the Eq. 2 capacity of
  /// any node it lands on (the paper's hard invariant; RelaxSigma re-tests
  /// include the total-share bound for exactly this reason).
  kForbidAdmitPastEq2 = 1u << 0,
  /// May never preempt, re-place, kill, or re-pace an already-admitted job.
  kForbidTouchAdmitted = 1u << 1,
  /// May never admit a structurally infeasible job (num_procs > cluster).
  kForbidStructuralAdmit = 1u << 2,
  /// Decision must be a pure function of simulator-visible state (no wall
  /// clock, no RNG outside the seeded workload) — the determinism lemma.
  kForbidNondeterminism = 1u << 3,
  /// Every job the mode turns away must land in a per-reason rejection
  /// counter (the sum invariants in tests/test_overload.cpp).
  kForbidDropWithoutAccount = 1u << 4,
  /// May never admit a job that failed the configured sigma test at its
  /// configured threshold. RelaxSigma clears this (that is its license).
  kForbidRelaxedRisk = 1u << 5,
  /// May never evaluate a job against any deadline other than the one it
  /// was submitted with. DowngradeQoS clears this.
  kForbidDeadlineRewrite = 1u << 6,
  /// Must decide at the arrival instant — no parked retries. DeferToSalvage
  /// clears this.
  kForbidDelayedDecision = 1u << 7,
};

/// The flags every mode must carry (audit-enforced).
inline constexpr std::uint32_t kUniversalForbidden =
    kForbidAdmitPastEq2 | kForbidTouchAdmitted | kForbidStructuralAdmit |
    kForbidNondeterminism | kForbidDropWithoutAccount;

/// All flag bits that exist (for audit: no entry may carry unknown bits).
inline constexpr std::uint32_t kAllForbidden =
    kUniversalForbidden | kForbidRelaxedRisk | kForbidDeadlineRewrite |
    kForbidDelayedDecision;

/// One catalog row: the mode, its wire name, what it may never do, and a
/// one-line summary (docs/OVERLOAD.md renders the same table).
struct ModeSpec {
  DegradedMode mode;
  std::string_view name;
  std::uint32_t forbidden;
  std::string_view summary;
};

/// The catalog itself. Indexed by static_cast<int>(mode) — audited below
/// and again at startup.
inline constexpr std::array<ModeSpec, kDegradedModeCount> kOverloadCatalog{{
    {DegradedMode::HardReject, "hard-reject", kAllForbidden,
     "reject every shortfall; the paper's behavior and the default"},
    {DegradedMode::ShedTail, "shed-tail",
     kUniversalForbidden | kForbidRelaxedRisk | kForbidDeadlineRewrite |
         kForbidDelayedDecision,
     "under load, pre-reject jobs whose per-node share exceeds tail_share"},
    {DegradedMode::RelaxSigma, "relax-sigma",
     kUniversalForbidden | kForbidDeadlineRewrite | kForbidDelayedDecision,
     "under load, re-scan sigma shortfalls with sigma slack relax_sigma"},
    {DegradedMode::DeferToSalvage, "defer-to-salvage",
     kUniversalForbidden | kForbidRelaxedRisk | kForbidDeadlineRewrite,
     "under load, park shortfall jobs defer_delay seconds and retry"},
    {DegradedMode::DowngradeQoS, "downgrade-qos",
     kUniversalForbidden | kForbidRelaxedRisk | kForbidDelayedDecision,
     "under load, re-test shortfalls with deadline x downgrade_factor"},
}};

/// Looks up the catalog row for a mode (bounds-checked).
[[nodiscard]] const ModeSpec& mode_spec(DegradedMode mode);

/// True when `mode` is licensed to bend the rule named by `flag` (i.e. the
/// flag is NOT in its forbidden set).
[[nodiscard]] constexpr bool mode_allows(DegradedMode mode,
                                         std::uint32_t flag) noexcept {
  return (kOverloadCatalog[static_cast<std::size_t>(mode)].forbidden & flag) ==
         0;
}

// Compile-time self-audit: the catalog is complete, ordered, and every
// entry carries the universal flags. audit_catalog() re-checks the same
// properties at startup (so a unity build or ODR surprise cannot silently
// ship a different table) plus the name-uniqueness check that needs loops
// over strings.
static_assert(kOverloadCatalog.size() == kDegradedModeCount);
static_assert([] {
  for (std::size_t i = 0; i < kOverloadCatalog.size(); ++i) {
    if (static_cast<std::size_t>(kOverloadCatalog[i].mode) != i) return false;
    if ((kOverloadCatalog[i].forbidden & kUniversalForbidden) !=
        kUniversalForbidden)
      return false;
    if ((kOverloadCatalog[i].forbidden & ~kAllForbidden) != 0) return false;
    if (kOverloadCatalog[i].name.empty() || kOverloadCatalog[i].summary.empty())
      return false;
  }
  return true;
}());
static_assert(mode_allows(DegradedMode::RelaxSigma, kForbidRelaxedRisk));
static_assert(!mode_allows(DegradedMode::HardReject, kForbidRelaxedRisk));
static_assert(mode_allows(DegradedMode::DowngradeQoS, kForbidDeadlineRewrite));
static_assert(mode_allows(DegradedMode::DeferToSalvage,
                          kForbidDelayedDecision));

/// Startup self-audit: throws std::logic_error naming the violated property
/// if the catalog is malformed. make_scheduler / the gateway / the
/// federation run it once per construction — cheap, and it turns a bad
/// catalog edit into an immediate failure instead of a silent misbehavior.
void audit_catalog();

/// Tuning knobs for the degraded modes. The catalog decides WHETHER to
/// degrade (mode + activation_load); these decide HOW FAR each mode bends.
struct OverloadConfig {
  DegradedMode mode = DegradedMode::HardReject;
  /// Utilization fraction (LoadSignal::utilization) at or above which the
  /// degraded mode engages. Below it every mode behaves like HardReject.
  double activation_load = 0.85;
  /// ShedTail: largest per-node share a job may demand while the mode is
  /// engaged (1.0 = a whole node).
  double tail_share = 0.5;
  /// RelaxSigma: additive slack on sigma_threshold while engaged.
  double relax_sigma = 0.25;
  /// DeferToSalvage: seconds to park a shortfall job before its retry.
  double defer_delay = 600.0;
  /// DeferToSalvage: retries per job before the final rejection.
  int max_deferrals = 1;
  /// DowngradeQoS: deadline multiplier (> 1) for the degraded re-test.
  double downgrade_factor = 1.5;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;
};

/// The load signal every consult site feeds the catalog: admitted-but-
/// unfinished demand against total capacity, both in the same units
/// (share-units for the Libra family and the gateway, processors for EDF,
/// speed-weighted share for federation shards). Derived exclusively from
/// simulator-visible state — that is what keeps degraded runs
/// deterministic.
struct LoadSignal {
  double inflight = 0.0;  ///< admitted-but-unfinished demand
  double capacity = 0.0;  ///< total capacity in the same units

  [[nodiscard]] double utilization() const noexcept {
    return capacity > 0.0 ? inflight / capacity : 0.0;
  }
};

/// What the catalog tells a consult site to do with the next shortfall.
enum class OverloadAction : std::uint8_t {
  Proceed,  ///< behave exactly like HardReject
  Degrade,  ///< the configured mode is engaged; apply its bend
};

/// The pure activation function: Degrade iff a non-HardReject mode is
/// configured AND the load signal is at/above the activation threshold.
/// No state, no clock, no RNG — the determinism lemma hangs off this.
[[nodiscard]] constexpr OverloadAction overload_action(
    const OverloadConfig& config, const LoadSignal& load) noexcept {
  return (config.mode != DegradedMode::HardReject &&
          load.utilization() >= config.activation_load)
             ? OverloadAction::Degrade
             : OverloadAction::Proceed;
}

/// Stateful wrapper a scheduler owns: evaluates the pure function, counts
/// engagements, and emits ModeTransition trace events on every flip so
/// degraded runs stay replayable. Under HardReject it never engages and
/// never emits — the byte-identity guarantee.
class OverloadGovernor {
 public:
  OverloadGovernor() = default;
  explicit OverloadGovernor(OverloadConfig config);

  /// Borrow the scheduler's recorder (null = no trace; emissions skipped).
  void attach(trace::Recorder* recorder) noexcept { trace_ = recorder; }

  /// Evaluates the catalog against `load`, records the transition if the
  /// engaged state flipped, and returns true when the degraded mode is
  /// engaged for this decision.
  bool evaluate(sim::SimTime now, const LoadSignal& load);

  [[nodiscard]] const OverloadConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool engaged() const noexcept { return engaged_; }
  /// Times the governor flipped from normal to degraded.
  [[nodiscard]] std::uint64_t activations() const noexcept {
    return activations_;
  }
  /// Shorthand: true when a non-HardReject mode is configured at all (the
  /// consult sites gate their extra bookkeeping on this so HardReject runs
  /// touch no new state).
  [[nodiscard]] bool enabled() const noexcept {
    return config_.mode != DegradedMode::HardReject;
  }

 private:
  OverloadConfig config_;
  trace::Recorder* trace_ = nullptr;
  bool engaged_ = false;
  std::uint64_t activations_ = 0;
};

}  // namespace librisk::core
