#include "core/qops.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace librisk::core {

QopsScheduler::QopsScheduler(sim::Simulator& simulator,
                             cluster::SpaceSharedExecutor& executor,
                             Collector& collector, QopsConfig config,
                             std::string name)
    : sim_(simulator),
      executor_(executor),
      collector_(collector),
      config_(config),
      name_(std::move(name)) {
  LIBRISK_CHECK(config_.slack_factor >= 1.0, "slack factor must be at least 1");
  executor_.set_completion_handler([this](const Job& job, sim::SimTime finish) {
    estimated_finish_.erase(job.id);
    collector_.record_completed(job, finish);
    dispatch();
  });
  executor_.set_kill_handler([this](const Job& job, sim::SimTime when) {
    estimated_finish_.erase(job.id);
    collector_.record_killed(job, when);
    dispatch();
  });
}

bool QopsScheduler::feasible_with(const Job& candidate) const {
  const sim::SimTime now = sim_.now();
  const double speed = executor_.cluster().max_speed_factor();

  // Node releases from running jobs, by estimated completion. An estimate
  // that already expired is treated as "any moment now".
  struct Release {
    sim::SimTime time;
    int procs;
  };
  std::vector<Release> releases;
  releases.reserve(estimated_finish_.size());
  for (const auto& [id, finish] : estimated_finish_)
    releases.push_back(
        Release{std::max(finish, now), collector_.record(id).num_procs});
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.time < b.time; });

  // Pending work in EDF order (the order the dispatcher will use).
  std::vector<const Job*> pending = queue_;
  pending.push_back(&candidate);
  std::sort(pending.begin(), pending.end(), [](const Job* a, const Job* b) {
    if (a->absolute_deadline() != b->absolute_deadline())
      return a->absolute_deadline() < b->absolute_deadline();
    return a->id < b->id;
  });

  // Forward-simulate the space-shared dispatch with estimates. Started
  // pending jobs are appended to the release list (kept sorted by a simple
  // insertion, sizes here are small).
  int free = executor_.free_count();
  sim::SimTime clock = now;
  std::size_t next_release = 0;
  for (const Job* job : pending) {
    while (free < job->num_procs) {
      if (next_release >= releases.size()) return false;  // can never start
      clock = std::max(clock, releases[next_release].time);
      free += releases[next_release].procs;
      ++next_release;
    }
    const sim::SimTime start = clock;
    const sim::SimTime finish = start + job->scheduler_estimate / speed;
    const double allowed =
        job->submit_time + config_.slack_factor * job->deadline;
    if (finish > allowed + sim::kTimeEpsilon) return false;
    free -= job->num_procs;
    Release r{finish, job->num_procs};
    const auto pos = std::upper_bound(
        releases.begin() + static_cast<std::ptrdiff_t>(next_release),
        releases.end(), r,
        [](const Release& a, const Release& b) { return a.time < b.time; });
    releases.insert(pos, r);
  }
  return true;
}

void QopsScheduler::on_job_submitted(const Job& job) {
  if (job.num_procs > executor_.cluster().size()) {
    collector_.record_rejected(job, sim_.now(), /*at_dispatch=*/false,
                               trace::RejectionReason::NoSuitableNode);
    if (trace_ != nullptr)
      trace_->job_rejected(sim_.now(), job.id,
                           trace::RejectionReason::NoSuitableNode, 0,
                           job.num_procs);
    return;
  }
  if (!feasible_with(job)) {
    collector_.record_rejected(job, sim_.now(), /*at_dispatch=*/false,
                               trace::RejectionReason::DeadlineInfeasible);
    if (trace_ != nullptr)
      trace_->job_rejected(sim_.now(), job.id,
                           trace::RejectionReason::DeadlineInfeasible, 0,
                           job.num_procs);
    return;
  }
  queue_.push_back(&job);
  dispatch();
}

void QopsScheduler::dispatch() {
  while (!queue_.empty()) {
    const auto head = std::min_element(
        queue_.begin(), queue_.end(), [](const Job* a, const Job* b) {
          if (a->absolute_deadline() != b->absolute_deadline())
            return a->absolute_deadline() < b->absolute_deadline();
          return a->id < b->id;
        });
    const Job* job = *head;
    if (executor_.free_count() < job->num_procs) return;

    std::vector<cluster::NodeId> nodes = executor_.take_free_nodes(job->num_procs);
    double slowest = sim::kTimeInfinity;
    for (const cluster::NodeId n : nodes)
      slowest = std::min(slowest, executor_.cluster().speed_factor(n));
    collector_.record_started(*job, sim_.now(), job->actual_runtime / slowest);
    estimated_finish_[job->id] =
        sim_.now() + job->scheduler_estimate / slowest;
    queue_.erase(head);
    executor_.start(*job, std::move(nodes));
  }
}

}  // namespace librisk::core
