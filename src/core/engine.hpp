// The long-lived online admission engine.
//
// Every driver before this one was a batch loop: materialize a full,
// submit-ordered job vector, pre-schedule all arrivals, run the simulator
// to drain. The paper's admission control is inherently online — one
// accept/reject decision per arriving job, evaluated at submit time
// (Eq. 1–6) — and real RMS front-ends deliver jobs incrementally. The
// AdmissionEngine inverts the batch shape into an explicit lifecycle:
//
//   AdmissionEngine engine(cluster, Policy::LibraRisk, options);
//   while (stream.next(job)) {
//     engine.advance_to(job.submit_time);   // bounded stepping
//     engine.submit(job);                   // one decision per arrival
//   }
//   engine.finish();                        // drain + seal telemetry
//
// Jobs may arrive one at a time, monotone in submit time; the engine copies
// each into its own slab and reclaims the slot the moment the job resolves
// (rejected, completed, or killed), so replay memory is bounded by the
// resident/pending set, not the trace length (live_jobs()/peak_live_jobs()
// expose the claim). Interleaving submissions with stepping is
// byte-identical — at the .lrt decision-trace level — to the batch driver:
// arrivals keep their submission order within the Arrival priority class,
// equal-time completions still run first by priority, and everything else
// is scheduled by the deterministic execution itself (see
// tests/test_engine_equivalence.cpp and docs/MODEL.md §"engine stepping").
//
// The batch entry points still exist — core::run_trace and exp::run_jobs
// are now thin loops over this class — and the engine is the seam later
// sharding work plugs into (N engines, one per cluster partition).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/factory.hpp"

namespace librisk::core {

class AdmissionEngine {
 public:
  /// Owning mode: builds the simulator, collector and policy stack, and
  /// attaches `options.hooks` to every component plus the engine's own
  /// driver-level emissions — the single attach point. The cluster is
  /// copied; the engine is self-contained and long-lived.
  AdmissionEngine(cluster::Cluster cluster, Policy policy,
                  const PolicyOptions& options = {});

  /// Borrowed mode (the run_trace compatibility path): drives caller-owned
  /// components. `hooks` must be the same ones already attached to the
  /// scheduler stack; the engine uses them only for its own emissions
  /// (JobSubmitted events, telemetry arm/finish/seal) and does NOT attach
  /// them to `scheduler` — a factory-built stack has done that already.
  AdmissionEngine(sim::Simulator& simulator, Scheduler& scheduler,
                  Collector& collector, const Hooks& hooks = {});

  AdmissionEngine(const AdmissionEngine&) = delete;
  AdmissionEngine& operator=(const AdmissionEngine&) = delete;
  ~AdmissionEngine();

  // ---- lifecycle ----

  /// Accepts one job: validates it, copies it into engine-owned storage and
  /// schedules its arrival (the admission decision fires when the clock
  /// reaches job.submit_time). Jobs must arrive monotone in submit time and
  /// not before now(). submit() never advances the clock — pair it with
  /// advance_to()/step_until() for bounded streaming, or submit everything
  /// and finish() for batch semantics.
  void submit(const workload::Job& job);

  /// Runs events strictly before `t` and reclaims resolved jobs. This is
  /// the streaming driver's step: advancing to the next arrival's submit
  /// time before submitting it preserves batch byte-identity (events *at*
  /// t must not fire before the arrival is scheduled — an equal-time
  /// Control event would otherwise overtake it).
  std::uint64_t advance_to(sim::SimTime t);

  /// Runs events with time <= t (inclusive) and reclaims resolved jobs.
  std::uint64_t step_until(sim::SimTime t);

  /// Runs until the event set is empty and reclaims resolved jobs.
  std::uint64_t drain();

  /// Ends the run: drains, takes the terminal telemetry sample, seals the
  /// telemetry hub, and checks every submitted job resolved. Idempotent;
  /// submit() afterwards is an error.
  void finish();

  // ---- incremental snapshots ----

  [[nodiscard]] sim::SimTime now() const noexcept;
  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept;

  [[nodiscard]] const Collector& collector() const noexcept { return collector_; }
  /// Summary of everything resolved so far (cheap enough mid-run; equals
  /// the end-of-run summary once finished). Utilization is filled in when
  /// the engine owns its stack.
  [[nodiscard]] metrics::RunSummary summary() const;

  /// Owning mode only (all-zero / 0.0 in borrowed mode, where the engine
  /// cannot see past the Scheduler interface).
  [[nodiscard]] AdmissionStats admission_stats() const;
  [[nodiscard]] cluster::KernelStats kernel_stats() const;
  [[nodiscard]] double busy_node_seconds() const;
  [[nodiscard]] int cluster_size() const noexcept { return cluster_size_; }

  // ---- job-storage accounting (the bounded-memory claim) ----

  [[nodiscard]] std::size_t jobs_submitted() const noexcept { return submitted_; }
  /// Job objects currently held by the engine (submitted, not yet
  /// resolved-and-reclaimed).
  [[nodiscard]] std::size_t live_jobs() const noexcept { return index_.size(); }
  /// High-water mark of live_jobs(): for a streaming replay this tracks the
  /// peak resident/pending set, not the trace length.
  [[nodiscard]] std::size_t peak_live_jobs() const noexcept { return peak_live_; }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  void reclaim();

  // Owning-mode storage (null in borrowed mode). Declaration order matters:
  // the stack borrows the simulator/collector and must die first.
  std::unique_ptr<cluster::Cluster> owned_cluster_;
  std::unique_ptr<sim::Simulator> owned_sim_;
  std::unique_ptr<Collector> owned_collector_;
  std::unique_ptr<SchedulerStack> stack_;

  sim::Simulator& sim_;
  Collector& collector_;
  Scheduler& scheduler_;
  Hooks hooks_;
  int cluster_size_ = 0;

  // Job slab: deque for pointer stability, free list for slot reuse, id
  // index for reclaim. Steady-state submissions allocate nothing once the
  // slab has grown to the peak resident set.
  std::deque<workload::Job> slab_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::int64_t, std::uint32_t> index_;
  /// Ids resolved inside the last stepping call, pending slot reclaim (the
  /// collector's observer fires mid-event, when the executor may still hold
  /// the Job pointer; slots are only recycled between stepping calls).
  std::vector<std::int64_t> resolved_backlog_;

  std::size_t submitted_ = 0;
  std::size_t peak_live_ = 0;
  sim::SimTime last_submit_ = 0.0;
  bool finished_ = false;
};

}  // namespace librisk::core
