// The long-lived online admission engine.
//
// Every driver before this one was a batch loop: materialize a full,
// submit-ordered job vector, pre-schedule all arrivals, run the simulator
// to drain. The paper's admission control is inherently online — one
// accept/reject decision per arriving job, evaluated at submit time
// (Eq. 1–6) — and real RMS front-ends deliver jobs incrementally. The
// AdmissionEngine inverts the batch shape into an explicit lifecycle:
//
//   auto engine = make_engine({.cluster = cluster, .policy = Policy::LibraRisk});
//   while (stream.next(job)) {
//     engine->advance_to(job.submit_time);      // bounded stepping
//     auto outcome = engine->submit(job);       // one decision per arrival
//     if (outcome.rejected()) log(outcome.reason);
//   }
//   engine->finish();                           // drain + seal telemetry
//
// submit() is *eager*: it schedules the arrival and steps the simulator
// through it (and through everything that precedes it in the deterministic
// event order — equal-time completions first), so the admission decision is
// known when submit() returns and comes back as a typed AdmissionOutcome.
// The stepping is exactly the prefix the batch driver would have run before
// that arrival, so interleaving submissions with stepping stays
// byte-identical — at the .lrt decision-trace level — to the batch driver
// (tests/test_engine_equivalence.cpp and docs/MODEL.md §"engine stepping").
// enqueue() is the lazy sibling: schedule-only, no stepping, no outcome —
// the batch drivers use it to keep the whole-trace-resident memory shape
// that bench/mem_streaming_replay measures.
//
// Jobs may arrive one at a time, monotone in submit time; the engine copies
// each into its own slab and reclaims the slot the moment the job resolves
// (rejected, completed, or killed), so replay memory is bounded by the
// resident/pending set, not the trace length (live_jobs()/peak_live_jobs()
// expose the claim).
//
// The batch entry points still exist — core::run_trace and exp::run_jobs
// are thin loops over this class — and the engine is the seam the
// concurrent gateway (core/gateway.hpp) drives from its single consumer
// thread: the engine itself is strictly single-threaded.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/factory.hpp"

namespace librisk::core {

/// Typed result of one eager admission decision (AdmissionEngine::submit).
/// What used to require diffing AdmissionStats counters around a submission
/// — or parsing the .lrt trace — is now returned in-band, per job.
struct AdmissionOutcome {
  enum class Verdict : std::uint8_t {
    Accepted,      ///< started execution at its arrival instant
    Queued,        ///< admitted to a wait queue; fate still pending
    Rejected,      ///< shed at submit or at dispatch within the arrival step
    /// Overload-catalog variants (core/overload.hpp); only produced when a
    /// degraded mode other than HardReject is configured.
    DegradedAdmit, ///< failed the normal test; a licensed degraded mode admitted it
    Deferred,      ///< parked by DeferToSalvage; a salvage retry is scheduled
  };

  std::int64_t job_id = -1;
  Verdict verdict = Verdict::Queued;
  /// Which admission test said no. None unless verdict == Rejected.
  trace::RejectionReason reason = trace::RejectionReason::None;
  /// First node the job was placed on; -1 when not accepted or when the
  /// policy does not report placement at admission (space-shared family).
  std::int32_t node = -1;
  /// Tentative sigma (Eq. 6) the admission test saw; -1 when no sigma test
  /// ran (non-ZeroRisk policies, or node == -1).
  double sigma = -1.0;
  /// Chosen-node admission margin (signed headroom of the decisive test,
  /// obs::NodeMargin convention); 0.0 when the policy computes none.
  double margin = 0.0;

  /// DegradedAdmit counts as accepted: the job IS running — every
  /// share-accounting guard upstream (gateway, federation) treats it like a
  /// normal admission, it just carries the degraded provenance.
  [[nodiscard]] bool accepted() const noexcept {
    return verdict == Verdict::Accepted || verdict == Verdict::DegradedAdmit;
  }
  [[nodiscard]] bool rejected() const noexcept { return verdict == Verdict::Rejected; }
  [[nodiscard]] bool deferred() const noexcept { return verdict == Verdict::Deferred; }
};

[[nodiscard]] const char* to_string(AdmissionOutcome::Verdict verdict) noexcept;

struct EngineConfig;

class AdmissionEngine {
 public:
  AdmissionEngine(const AdmissionEngine&) = delete;
  AdmissionEngine& operator=(const AdmissionEngine&) = delete;
  ~AdmissionEngine();

  // ---- lifecycle ----

  /// Accepts one job and decides it: validates, copies into engine-owned
  /// storage, schedules the arrival, then steps the simulator through the
  /// arrival event — running exactly the events that precede it in the
  /// deterministic total order first — and returns the decision. Jobs must
  /// arrive monotone in submit time and not before now(). The clock is at
  /// job.submit_time when this returns; an explicit advance_to() before
  /// submitting is allowed but no longer required. Deliberately not
  /// [[nodiscard]]: pre-outcome call sites that ignore the result remain
  /// correct, the decision is also in the collector.
  AdmissionOutcome submit(const workload::Job& job);

  /// Schedule-only sibling of submit(): same validation and storage, but
  /// never advances the clock and returns only the arrival's event id. The
  /// batch drivers (run_trace, the materialized leg of
  /// bench/mem_streaming_replay) use it to pre-schedule every arrival
  /// before running anything — the shape the seed driver had.
  sim::EventId enqueue(const workload::Job& job);

  /// Runs events strictly before `t` and reclaims resolved jobs. This is
  /// the streaming driver's step: advancing to the next arrival's submit
  /// time before submitting it preserves batch byte-identity (events *at*
  /// t must not fire before the arrival is scheduled — an equal-time
  /// Control event would otherwise overtake it).
  std::uint64_t advance_to(sim::SimTime t);

  /// Runs events with time <= t (inclusive) and reclaims resolved jobs.
  std::uint64_t step_until(sim::SimTime t);

  /// Runs until the event set is empty and reclaims resolved jobs.
  std::uint64_t drain();

  /// Ends the run: drains, takes the terminal telemetry sample, seals the
  /// telemetry hub, and checks every submitted job resolved. Idempotent;
  /// submit() afterwards is an error.
  void finish();

  // ---- incremental snapshots ----

  [[nodiscard]] sim::SimTime now() const noexcept;
  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept;

  [[nodiscard]] const Collector& collector() const noexcept { return collector_; }
  /// Mutable access for observer registration (the gateway's
  /// subtract-on-resolve hook); the engine remains the collector's owner
  /// or borrower exactly as before.
  [[nodiscard]] Collector& collector() noexcept { return collector_; }
  /// Summary of everything resolved so far (cheap enough mid-run; equals
  /// the end-of-run summary once finished). Utilization is filled in when
  /// the engine owns its stack.
  [[nodiscard]] metrics::RunSummary summary() const;

  /// Owning mode only (all-zero / 0.0 in borrowed mode, where the engine
  /// cannot see past the Scheduler interface).
  [[nodiscard]] AdmissionStats admission_stats() const;
  [[nodiscard]] cluster::KernelStats kernel_stats() const;
  [[nodiscard]] double busy_node_seconds() const;
  [[nodiscard]] int cluster_size() const noexcept { return cluster_size_; }

  // ---- job-storage accounting (the bounded-memory claim) ----

  [[nodiscard]] std::size_t jobs_submitted() const noexcept { return submitted_; }
  /// Job objects currently held by the engine (submitted, not yet
  /// resolved-and-reclaimed).
  [[nodiscard]] std::size_t live_jobs() const noexcept { return index_.size(); }
  /// High-water mark of live_jobs(): for a streaming replay this tracks the
  /// peak resident/pending set, not the trace length.
  [[nodiscard]] std::size_t peak_live_jobs() const noexcept { return peak_live_; }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  /// Owning mode: builds the simulator, collector and policy stack, and
  /// attaches `options.hooks` to every component plus the engine's own
  /// driver-level emissions — the single attach point. The cluster is
  /// copied; the engine is self-contained and long-lived.
  AdmissionEngine(cluster::Cluster cluster, Policy policy,
                  const PolicyOptions& options);

  /// Borrowed mode (the run_trace compatibility path): drives caller-owned
  /// components. `hooks` must be the same ones already attached to the
  /// scheduler stack; the engine uses them only for its own emissions
  /// (JobSubmitted events, telemetry arm/finish/seal) and does NOT attach
  /// them to `scheduler` — a factory-built stack has done that already.
  AdmissionEngine(sim::Simulator& simulator, Scheduler& scheduler,
                  Collector& collector, const Hooks& hooks);

  /// make_engine is the only way to construct an engine: it validates the
  /// exactly-one-mode contract before dispatching to a constructor.
  friend std::unique_ptr<AdmissionEngine> make_engine(EngineConfig config);

  void reclaim();
  /// Reads the decision the arrival step just produced for `job_id` out of
  /// the collector record (fate + reason) and the scheduler's last placement
  /// note (node + sigma, id-guarded).
  [[nodiscard]] AdmissionOutcome outcome_of(std::int64_t job_id) const;

  // Owning-mode storage (null in borrowed mode). Declaration order matters:
  // the stack borrows the simulator/collector and must die first.
  std::unique_ptr<cluster::Cluster> owned_cluster_;
  std::unique_ptr<sim::Simulator> owned_sim_;
  std::unique_ptr<Collector> owned_collector_;
  std::unique_ptr<SchedulerStack> stack_;

  sim::Simulator& sim_;
  Collector& collector_;
  Scheduler& scheduler_;
  Hooks hooks_;
  int cluster_size_ = 0;

  // Job slab: deque for pointer stability, free list for slot reuse, id
  // index for reclaim. Steady-state submissions allocate nothing once the
  // slab has grown to the peak resident set.
  std::deque<workload::Job> slab_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::int64_t, std::uint32_t> index_;
  /// Ids resolved inside the last stepping call, pending slot reclaim (the
  /// collector's observer fires mid-event, when the executor may still hold
  /// the Job pointer; slots are only recycled between stepping calls).
  std::vector<std::int64_t> resolved_backlog_;
  metrics::Collector::ObserverId observer_id_ = 0;

  std::size_t submitted_ = 0;
  std::size_t peak_live_ = 0;
  sim::SimTime last_submit_ = 0.0;
  bool finished_ = false;
};

/// One-struct construction for both engine modes. Exactly one of the two
/// mode sections must be filled in:
///   owning:   `cluster` set — the engine builds simulator + collector +
///             policy stack itself; `policy`/`options` apply, and
///             `options.hooks` is the single observation attach point.
///   borrowed: `simulator`/`scheduler`/`collector` all non-null — the
///             engine drives a caller-owned stack; `hooks` must be the
///             ones already attached to it.
/// This is the only way to build an engine — the mode-specific constructors
/// are private so every call site states its mode explicitly.
struct EngineConfig {
  // -- owning mode --
  std::optional<cluster::Cluster> cluster;
  Policy policy = Policy::LibraRisk;
  PolicyOptions options;

  // -- borrowed mode --
  sim::Simulator* simulator = nullptr;
  Scheduler* scheduler = nullptr;
  Collector* collector = nullptr;
  Hooks hooks;
};

/// Builds an engine from an EngineConfig, validating that the config names
/// exactly one mode. The heap indirection keeps the (immovable) engine easy
/// to hand around; the engine itself is identical to one built directly.
[[nodiscard]] std::unique_ptr<AdmissionEngine> make_engine(EngineConfig config);

}  // namespace librisk::core
