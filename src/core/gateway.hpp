// Concurrent admission gateway: a thread-safe multi-producer frontend for
// the single-threaded AdmissionEngine.
//
// N submitter threads call submit() concurrently. Each job passes through
// two stages:
//
//   1. Lock-free fast reject. A handful of pure reads decides whether the
//      job is *certifiably* hopeless — a certificate being a predicate,
//      derived from the policy's own admission test, that is monotone in
//      everything the engine's state can change, so "no now" implies "no
//      whenever the engine gets to it" (docs/CONCURRENCY.md states the
//      lemma; tests/test_gateway.cpp proves it differentially):
//        C1 (every policy)  num_procs > cluster size;
//        C2-share (Libra)   the job's share on the *fastest* node already
//                           exceeds a whole processor — no resident set can
//                           make Eq. 2 pass;
//        C2-deadline (EDF, EDF-backfill, QoPS)
//                           best-case runtime on the fastest node misses
//                           the (slack-scaled) deadline — the dispatch-time
//                           feasibility test only sees later `now`s.
//      Policies whose admission test is state-dependent in both directions
//      (LibraRisk's sigma-only salvage lane admits anything on an empty
//      node) get no C2 certificate: the conservative gateway never sheds a
//      job the exact path might admit.
//
//      In parallel the gateway maintains the sledge-style aggregate load
//      accumulator: a fixed-point sum of admitted-but-unresolved jobs'
//      `estimate/deadline` shares against the scaled cluster capacity —
//      add-on-admit on the drive thread, subtract-on-resolve through the
//      Collector's resolution observer. The accumulator is *not* a
//      certificate for this execution model (an overloaded instant says
//      nothing about the resident set at this job's nodes), so it sheds
//      only in the explicitly unsound Shedding::Aggressive mode and is
//      otherwise a lock-free load telemetry signal.
//
//   2. A bounded MPSC queue draining into the engine, whose clock a
//      dedicated drive thread advances. The queue bounds memory and
//      applies backpressure; the drive thread is the only thread that
//      touches the engine, the hooks, and the accumulator's write side.
//
// Determinism: with a single producer submitting a monotone stream, the
// drive thread replays exactly `advance_to + submit` per job — byte-
// identical at the .lrt level to `librisk-sim replay --stream`. With
// several producers, arrival *interleaving* at the queue is the only
// nondeterminism: the engine's decisions are a pure function of the queue
// order (submit times are clamped to the watermark so a late-pushed early
// job cannot violate engine monotonicity).
//
// Shed accounting vs. exactness: by default (audit_shed = true) a
// fast-rejected job is still enqueued, pre-decided, and replayed through
// the exact path — the decision trace and summary stay byte-identical to
// an ungated run, and every shed is audited against the engine's own
// verdict (stats().audit_violations counts disagreements: always 0 unless
// a certificate is wrong). audit_shed = false drops shed jobs at the
// gate — the throughput configuration bench/throughput_gateway measures.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/engine.hpp"
#include "obs/flight.hpp"
#include "obs/highwater.hpp"
#include "support/bounded_queue.hpp"

namespace librisk::core {

struct GatewayConfig {
  /// Engine recipe; owning mode (cluster set) is required — the gateway's
  /// drive thread must be the engine's only user.
  EngineConfig engine;
  /// Capacity of the producer→drive queue (backpressure bound).
  std::size_t queue_capacity = 1024;
  /// Keep replaying fast-rejected jobs through the exact path (byte-identity
  /// + self-audit). Disable only to measure gate throughput.
  bool audit_shed = true;
  enum class Shedding : std::uint8_t {
    /// Shed only on certificates (C1/C2): provably never sheds a job the
    /// exact path would admit.
    Conservative,
    /// Additionally shed when the aggregate accumulator is saturated.
    /// Documented unsound for this execution model — admission here is
    /// per-node, not aggregate — but bounds work under overload.
    Aggressive,
  };
  Shedding shedding = Shedding::Conservative;
  /// Fixed-point scale for the share accumulator (sledge-serverless uses
  /// the same power-of-two idiom): one processor-share = `granularity`.
  std::uint64_t granularity = std::uint64_t{1} << 20;
  /// Aggressive only: shed when in-flight share exceeds
  /// `headroom * total_speed_factor` processors.
  double aggregate_headroom = 1.0;
  /// Flight-recorder ring capacity (last N decisions with wall-clock
  /// timing, obs::FlightRecorder); 0 disables it entirely.
  std::size_t flight_capacity = 256;
  /// Shed-spike dump: when at least this many jobs are fast-shed within
  /// `shed_spike_window` wall seconds, the drive thread logs one flight-
  /// recorder dump (Warn level). 0 disables. The window bookkeeping is
  /// producer-side relaxed atomics — approximate by design, never blocking.
  std::uint64_t shed_spike_threshold = 0;
  double shed_spike_window = 1.0;  ///< wall seconds
};

/// What a producer learns synchronously. The admission *decision* is made
/// later on the drive thread; per-job verdicts live in the engine's
/// collector once the gateway is closed.
enum class SubmitStatus : std::uint8_t {
  Enqueued,      ///< handed to the drive thread
  FastRejected,  ///< shed at the gate (still replayed when audit_shed)
  Closed,        ///< gateway closed; job not taken
};

/// Monotone counters and watermarks, readable live from any thread.
struct GatewayStats {
  std::uint64_t submitted = 0;      ///< submit() calls that were not Closed
  std::uint64_t fast_rejected = 0;  ///< shed by the gate
  std::uint64_t enqueued = 0;       ///< pushed to the drive queue
  std::uint64_t decided = 0;        ///< engine decisions made so far
  /// Fast-shed jobs the exact path admitted — started or completed
  /// (audit_shed mode). A shed job the exact path merely *queues* is not a
  /// violation yet: the EDF family tests feasibility at dispatch, so its
  /// sheds resolve as dispatch-time rejections; the audit follows each
  /// queued shed to resolution. Any nonzero value falsifies a certificate.
  std::uint64_t audit_violations = 0;
  std::uint64_t queue_high_water = 0;     ///< peak drive-queue occupancy
  std::uint64_t share_scaled_now = 0;     ///< accumulator (granularity units)
  std::uint64_t share_scaled_peak = 0;    ///< its high-water mark
  /// `fast_rejected` attributed by certificate (sums to it):
  std::uint64_t shed_no_suitable_node = 0;  ///< C1
  std::uint64_t shed_share = 0;             ///< C2-share (Libra)
  std::uint64_t shed_deadline = 0;          ///< C2-deadline (EDF family, QoPS)
  std::uint64_t shed_aggregate = 0;         ///< C3 (Aggressive mode only)
  std::uint64_t shed_spikes = 0;   ///< spike-threshold crossings observed
  std::uint64_t flight_recorded = 0;  ///< decisions offered to the recorder
  /// Overload-catalog occupancy (core/overload.hpp): engine decisions that
  /// came back as degraded admissions / salvage deferrals. Both 0 under
  /// HardReject. A degraded admit is also counted in the engine's accepted
  /// totals — these attribute, they do not add.
  std::uint64_t degraded_admits = 0;
  std::uint64_t deferred = 0;
};

class AdmissionGateway {
 public:
  /// Builds the engine, derives the fast-reject certificates from the
  /// policy, registers the subtract-on-resolve observer and the gateway's
  /// telemetry (when hooks carry a hub), and starts the drive thread.
  explicit AdmissionGateway(GatewayConfig config);
  AdmissionGateway(const AdmissionGateway&) = delete;
  AdmissionGateway& operator=(const AdmissionGateway&) = delete;
  /// Closes (joining the drive thread) if close() was not called; any
  /// drive-thread error is swallowed here — call close() to receive it.
  ~AdmissionGateway();

  /// Thread-safe; callable from any number of producer threads. Blocks
  /// only when the drive queue is full (backpressure).
  SubmitStatus submit(const workload::Job& job);

  /// Stops intake, drains the queue, joins the drive thread, finishes the
  /// engine (terminal telemetry sample + all-resolved check) and rethrows
  /// any error the drive thread hit. Idempotent.
  void close();

  /// The fast-reject predicate by itself: the reason the gate would shed
  /// `job`, or nullopt if it would pass. Pure in Conservative mode; in
  /// Aggressive mode also reads the live accumulator. Exposed for the
  /// differential conservativeness tests.
  [[nodiscard]] std::optional<trace::RejectionReason> fast_reject_reason(
      const workload::Job& job) const noexcept;

  [[nodiscard]] GatewayStats stats() const;

  /// The wall-clock flight recorder (last `flight_capacity` decisions +
  /// queue-wait / decide-latency histograms). Snapshot-safe from any thread
  /// during the run; its histograms are merged into the telemetry registry
  /// (OpenMetrics export) at close().
  [[nodiscard]] const obs::FlightRecorder& flight() const noexcept {
    return flight_;
  }

  /// The underlying engine. During the run it belongs to the drive thread
  /// — only touch it after close(); results (summary, collector records,
  /// admission stats) are read through it.
  [[nodiscard]] AdmissionEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const AdmissionEngine& engine() const noexcept { return *engine_; }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  struct QueueItem {
    workload::Job job;
    /// Set when the gate shed this job and audit mode re-enqueued it: the
    /// drive thread checks the engine agrees.
    bool pre_shed = false;
    /// Wall clock at push, for the flight recorder's queue-wait histogram.
    std::chrono::steady_clock::time_point enqueued_at{};
  };

  /// Which fast-reject certificate fires for a job (None = passes the
  /// gate). The public fast_reject_reason() collapses this to the trace
  /// vocabulary, where C2-share and C3 are both ShareOverflow.
  enum class Certificate : std::uint8_t {
    None,
    NoNode,     ///< C1
    Share,      ///< C2-share
    Deadline,   ///< C2-deadline
    Aggregate,  ///< C3
  };
  [[nodiscard]] Certificate classify(const workload::Job& job) const noexcept;
  /// Producer-side windowed spike detector (relaxed atomics, approximate).
  void note_shed_spike() noexcept;

  /// Certificate parameters, derived once from policy + options; const
  /// after construction, so producer reads need no synchronisation.
  struct FastRejectModel {
    int cluster_size = 0;
    double max_speed = 1.0;
    bool share_test = false;  ///< C2-share (Libra/TotalShare)
    double deadline_clamp = 1.0;
    double share_capacity = 1.0;
    double share_tolerance = 1e-9;
    bool deadline_test = false;  ///< C2-deadline (EDF family, QoPS)
    double slack_factor = 1.0;
  };

  void drive();
  /// Fixed-point accumulator contribution of one job (saturating).
  [[nodiscard]] std::uint64_t scaled_share(const workload::Job& job) const noexcept;

  GatewayConfig config_;
  FastRejectModel model_;
  std::uint64_t share_budget_scaled_ = 0;  ///< Aggressive shed threshold
  std::unique_ptr<AdmissionEngine> engine_;
  support::BoundedQueue<QueueItem> queue_;

  // Accumulator: single writer (drive thread), lock-free readers.
  std::atomic<std::uint64_t> share_scaled_{0};
  obs::HighWater share_peak_;
  /// Drive-thread-only: exact contribution added per live job, so
  /// subtract-on-resolve removes precisely what add-on-admit added (no
  /// drift, no underflow).
  std::unordered_map<std::int64_t, std::uint64_t> contributions_;
  /// Drive-thread-only: pre-shed jobs the engine queued rather than decided
  /// at submit (EDF-family sheds reject at dispatch time); the resolution
  /// observer audits each one's final fate.
  std::unordered_set<std::int64_t> shed_pending_;
  metrics::Collector::ObserverId observer_id_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> fast_rejected_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> decided_{0};
  std::atomic<std::uint64_t> audit_violations_{0};
  // Per-certificate shed attribution (producer-side, relaxed).
  std::atomic<std::uint64_t> shed_no_node_{0};
  std::atomic<std::uint64_t> shed_share_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_aggregate_{0};
  // Overload-catalog outcome attribution (drive-thread writes, any reader).
  std::atomic<std::uint64_t> degraded_admits_{0};
  std::atomic<std::uint64_t> deferred_{0};

  /// Decision flight recorder; drive thread writes, any thread snapshots.
  obs::FlightRecorder flight_;
  /// Registry-owned histogram sinks the flight histograms merge into at
  /// close() (null without telemetry).
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* decide_hist_ = nullptr;
  bool flight_merged_ = false;

  // Shed-spike window (producer-side, approximate by design).
  std::atomic<std::uint64_t> spike_window_start_ns_{0};
  std::atomic<std::uint64_t> spike_count_{0};
  std::atomic<std::uint64_t> spike_events_{0};
  std::atomic<bool> spike_pending_{false};

  /// Drive-thread-only submit-time watermark: with several producers a job
  /// can reach the queue behind one with a later stamp; clamping to the
  /// watermark keeps the engine's monotonicity contract.
  sim::SimTime last_submit_ = 0.0;

  std::exception_ptr drive_error_;
  std::atomic<bool> closed_{false};
  bool join_done_ = false;
  std::thread drive_thread_;
};

}  // namespace librisk::core
