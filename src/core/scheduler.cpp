#include "core/scheduler.hpp"

#include "core/engine.hpp"

namespace librisk::core {

void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs,
               const Hooks& hooks) {
  workload::validate_trace(jobs);
  AdmissionEngine engine(simulator, scheduler, collector, hooks);
  for (const Job& job : jobs) engine.submit(job);
  engine.finish();
}

}  // namespace librisk::core
