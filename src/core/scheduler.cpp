#include "core/scheduler.hpp"

#include "support/check.hpp"

namespace librisk::core {

void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs,
               trace::Recorder* recorder, obs::Telemetry* telemetry) {
  workload::validate_trace(jobs);
  for (const Job& job : jobs) {
    simulator.at(job.submit_time, sim::EventPriority::Arrival,
                 [&collector, &scheduler, &job, &simulator, recorder] {
                   collector.record_submitted(job, simulator.now());
                   if (recorder != nullptr)
                     recorder->job_submitted(simulator.now(), job.id,
                                             job.num_procs, job.deadline,
                                             job.scheduler_estimate);
                   scheduler.on_job_submitted(job);
                 });
  }
  if (telemetry != nullptr) telemetry->arm(simulator);
  {
    obs::ScopedPhase run_phase(
        telemetry != nullptr ? &telemetry->profiler() : nullptr,
        obs::Phase::Run);
    simulator.run();
  }
  if (telemetry != nullptr) {
    telemetry->finish(simulator.now());
    // Pull metrics and samplers borrow the scheduler/executor/simulator,
    // which often die before the caller-owned hub does — freeze terminal
    // values now so the hub stays readable afterwards.
    telemetry->seal();
  }
  LIBRISK_CHECK(collector.all_resolved(),
                "simulation drained with unresolved jobs (scheduler "
                    << scheduler.name() << ")");
}

}  // namespace librisk::core
