#include "core/scheduler.hpp"

#include "core/engine.hpp"

namespace librisk::core {

void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs,
               const Hooks& hooks) {
  workload::validate_trace(jobs);
  EngineConfig config;
  config.simulator = &simulator;
  config.scheduler = &scheduler;
  config.collector = &collector;
  config.hooks = hooks;
  const std::unique_ptr<AdmissionEngine> engine = make_engine(std::move(config));
  // enqueue(), not submit(): the batch drive schedules every arrival before
  // running anything, which is the shape the seed driver had (and what the
  // whole-trace-resident memory baseline in bench/mem_streaming_replay
  // measures). Dispatch order — hence the .lrt trace — is identical either
  // way; see docs/MODEL.md §"engine stepping".
  for (const Job& job : jobs) engine->enqueue(job);
  engine->finish();
}

}  // namespace librisk::core
