#include "core/scheduler.hpp"

#include "support/check.hpp"

namespace librisk::core {

void run_trace(sim::Simulator& simulator, Scheduler& scheduler,
               Collector& collector, const std::vector<Job>& jobs,
               trace::Recorder* recorder) {
  workload::validate_trace(jobs);
  for (const Job& job : jobs) {
    simulator.at(job.submit_time, sim::EventPriority::Arrival,
                 [&collector, &scheduler, &job, &simulator, recorder] {
                   collector.record_submitted(job, simulator.now());
                   if (recorder != nullptr)
                     recorder->job_submitted(simulator.now(), job.id,
                                             job.num_procs, job.deadline,
                                             job.scheduler_estimate);
                   scheduler.on_job_submitted(job);
                 });
  }
  simulator.run();
  LIBRISK_CHECK(collector.all_resolved(),
                "simulation drained with unresolved jobs (scheduler "
                    << scheduler.name() << ")");
}

}  // namespace librisk::core
