#include "core/fcfs.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace librisk::core {

FcfsScheduler::FcfsScheduler(sim::Simulator& simulator,
                             cluster::SpaceSharedExecutor& executor,
                             Collector& collector, FcfsConfig config,
                             std::string name)
    : sim_(simulator),
      executor_(executor),
      collector_(collector),
      config_(config),
      name_(std::move(name)) {
  executor_.set_completion_handler([this](const Job& job, sim::SimTime finish) {
    estimated_finish_.erase(job.id);
    collector_.record_completed(job, finish);
    dispatch();
  });
  executor_.set_kill_handler([this](const Job& job, sim::SimTime when) {
    estimated_finish_.erase(job.id);
    collector_.record_killed(job, when);
    dispatch();
  });
}

bool FcfsScheduler::deadline_feasible(const Job& job) const {
  const sim::SimTime now = sim_.now();
  if (now > job.absolute_deadline()) return false;
  const double best_runtime =
      job.scheduler_estimate / executor_.cluster().max_speed_factor();
  return now + best_runtime <= job.absolute_deadline() + sim::kTimeEpsilon;
}

void FcfsScheduler::on_job_submitted(const Job& job) {
  if (job.num_procs > executor_.cluster().size()) {
    collector_.record_rejected(job, sim_.now(), /*at_dispatch=*/false,
                               trace::RejectionReason::NoSuitableNode);
    if (trace_ != nullptr)
      trace_->job_rejected(sim_.now(), job.id,
                           trace::RejectionReason::NoSuitableNode, 0,
                           job.num_procs);
    return;
  }
  queue_.push_back(&job);
  dispatch();
}

void FcfsScheduler::start_job(const Job& job) {
  std::vector<cluster::NodeId> nodes = executor_.take_free_nodes(job.num_procs);
  double slowest = sim::kTimeInfinity;
  for (const cluster::NodeId n : nodes)
    slowest = std::min(slowest, executor_.cluster().speed_factor(n));
  collector_.record_started(job, sim_.now(), job.actual_runtime / slowest);
  estimated_finish_[job.id] = sim_.now() + job.scheduler_estimate / slowest;
  executor_.start(job, std::move(nodes));
}

FcfsScheduler::Reservation FcfsScheduler::head_reservation(const Job& head) const {
  // Releases in estimated-finish order; estimates that already expired are
  // treated as "any moment now".
  const sim::SimTime now = sim_.now();
  struct Release {
    sim::SimTime time;
    int procs;
  };
  std::vector<Release> releases;
  releases.reserve(estimated_finish_.size());
  for (const auto& [id, finish] : estimated_finish_) {
    const auto& rec = collector_.record(id);
    releases.push_back(Release{std::max(finish, now), rec.num_procs});
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.time < b.time; });

  int available = executor_.free_count();
  Reservation res;
  res.shadow_time = now;
  for (const Release& r : releases) {
    if (available >= head.num_procs) break;
    available += r.procs;
    res.shadow_time = r.time;
  }
  LIBRISK_CHECK(available >= head.num_procs,
                "reservation impossible: releases never free enough nodes");
  res.extra_nodes = available - head.num_procs;
  return res;
}

void FcfsScheduler::dispatch() {
  for (;;) {
    if (queue_.empty()) return;

    // Resolve the head: reject if infeasible (optional), start if it fits.
    const Job* head = queue_.front();
    if (config_.deadline_admission && !deadline_feasible(*head)) {
      collector_.record_rejected(*head, sim_.now(), /*at_dispatch=*/true,
                                 trace::RejectionReason::DeadlineInfeasible);
      if (trace_ != nullptr)
        trace_->job_rejected(sim_.now(), head->id,
                             trace::RejectionReason::DeadlineInfeasible, 0,
                             head->num_procs);
      queue_.pop_front();
      continue;
    }
    if (executor_.free_count() >= head->num_procs) {
      queue_.pop_front();
      start_job(*head);
      continue;
    }
    if (!config_.backfilling) return;

    // EASY backfill: a later job may start now iff (by estimates) it either
    // finishes before the head's reservation or leaves the head's nodes
    // untouched.
    const Reservation res = head_reservation(*head);
    bool progressed = false;
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      const Job* job = *it;
      if (config_.deadline_admission && !deadline_feasible(*job)) {
        collector_.record_rejected(*job, sim_.now(), /*at_dispatch=*/true,
                                   trace::RejectionReason::DeadlineInfeasible);
        if (trace_ != nullptr)
          trace_->job_rejected(sim_.now(), job->id,
                               trace::RejectionReason::DeadlineInfeasible, 0,
                               job->num_procs);
        queue_.erase(it);
        progressed = true;
        break;
      }
      if (executor_.free_count() < job->num_procs) continue;
      const double best_runtime =
          job->scheduler_estimate / executor_.cluster().max_speed_factor();
      const bool fits_window =
          sim_.now() + best_runtime <= res.shadow_time + sim::kTimeEpsilon;
      const bool fits_extra = job->num_procs <= res.extra_nodes;
      if (fits_window || fits_extra) {
        queue_.erase(it);
        start_job(*job);
        progressed = true;
        break;
      }
    }
    if (!progressed) return;
  }
}

}  // namespace librisk::core
