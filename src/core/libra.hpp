// Libra and LibraRisk: deadline-based proportional-share admission controls
// (paper Sections 3.1 and 3.3).
//
// Both run jobs on the time-shared proportional-share executor and decide
// accept/reject at submission. They differ in two dials (paper Section 3.3):
//
//   admission test per node:
//     TotalShare (Libra, Eq. 2): the node is suitable iff the sum of
//       raw-estimate-based shares, including the new job, fits in the node's
//       capacity. Jobs that have overrun their estimate contribute *zero*
//       share — this is the "idealistic assumption of accurate runtime
//       estimates" the paper criticises.
//     ZeroRisk (LibraRisk, Eq. 4-6 / Algorithm 1): the node is suitable iff
//       the risk of deadline delay is zero when the new job is temporarily
//       added, evaluated against the scheduler's *current* knowledge
//       (including overrun re-estimates).
//
//   node selection among suitable nodes:
//     BestFit (Libra): least capacity left after acceptance — saturate
//       nodes to their maximum.
//     FirstFit (LibraRisk, Algorithm 1): zero-risk nodes in node order.
//     WorstFit: most capacity left first (load-levelling ablation).
#pragma once

#include <string>
#include <unordered_map>

#include "cluster/timeshared.hpp"
#include "core/overload.hpp"
#include "core/risk.hpp"
#include "core/scheduler.hpp"

namespace librisk::core {

struct LibraConfig {
  enum class Admission { TotalShare, ZeroRisk };
  enum class Selection { BestFit, FirstFit, WorstFit };

  Admission admission = Admission::TotalShare;
  Selection selection = Selection::BestFit;
  /// Share capacity of each node (1.0 = the whole processor).
  double capacity = 1.0;
  /// Which remaining-work estimate the admission test reads: the raw user
  /// estimate (Libra's Eq. 1) or the scheduler's current overrun-adjusted
  /// estimate. Libra defaults to Raw, LibraRisk to Current.
  cluster::TimeSharedExecutor::EstimateKind estimate_kind =
      cluster::TimeSharedExecutor::EstimateKind::Raw;
  /// Risk parameters (ZeroRisk admission only).
  RiskConfig risk;
  /// Numeric tolerance on the capacity test.
  double tolerance = 1e-9;
  /// Differential-testing escape hatch: route submissions through the seed
  /// implementation (full node scan, allocating risk assessment, full
  /// stable_sort selection) instead of the workspace/cached fast path. The
  /// two paths make bit-identical decisions — tests/test_admission_equivalence
  /// asserts it — so this exists only to keep that claim checkable.
  bool legacy_path = false;
  /// Graceful-degradation catalog entry (core/overload.hpp). HardReject —
  /// the default — reproduces the paper's behavior exactly; other modes
  /// bend the shortfall path while the load threshold is exceeded. Both
  /// submit paths consult the same helpers, and degraded re-scans always
  /// use the fast arithmetic (bit-identical to legacy per
  /// tests/test_admission_equivalence).
  OverloadConfig overload;

  /// The paper's Libra: total-share admission, best-fit, raw estimates.
  static LibraConfig libra();
  /// The paper's LibraRisk: zero-risk admission, node-order selection,
  /// overrun-aware estimates.
  static LibraConfig libra_risk();
};

/// Counters over the admission hot path, reset-free and monotonic; cheap
/// enough to maintain unconditionally. Queryable from the scheduler (and
/// surfaced by `librisk-sim run`, `examples/diagnose` and ScenarioResult).
struct AdmissionStats {
  std::uint64_t submissions = 0;      ///< jobs offered to the admission test
  std::uint64_t accepted = 0;
  std::uint64_t rejections = 0;
  std::uint64_t nodes_scanned = 0;    ///< nodes examined for suitability
  std::uint64_t assessments = 0;      ///< full share/risk evaluations run
  std::uint64_t empty_node_skips = 0; ///< ZeroRisk empty-node fast-path hits
  std::uint64_t early_exits = 0;      ///< FirstFit scans stopped before the last node
  /// Of `assessments`, those served by the batched core::assess_nodes kernel
  /// (ZeroRisk scans; the remainder went through the scalar per-node path).
  std::uint64_t batched_assessments = 0;
  /// Nodes rejected by the batch σ-spread bound without a full evaluation
  /// (untraced ZeroRisk scans only — tracing needs the exact σ, so traced
  /// runs evaluate every node and this stays 0). These nodes still count in
  /// `nodes_scanned` but not in `assessments`.
  std::uint64_t nodes_batch_skipped = 0;
  /// Rejections attributed by reason (sums to `rejections`):
  std::uint64_t rejected_share_overflow = 0;   ///< Eq. 2 total-share shortfall (Libra)
  std::uint64_t rejected_risk_sigma = 0;       ///< sigma-test shortfall (LibraRisk)
  std::uint64_t rejected_no_suitable_node = 0; ///< needs more nodes than the cluster has
  std::uint64_t rejected_deadline_infeasible = 0; ///< EDF dispatch-time deadline test
  /// Near-miss rejections, attributed by the decisive test: the job-level
  /// deficit (the k-th smallest failing-node shortfall, k = num_procs -
  /// suitable — i.e. the smallest improvement that would have admitted) was
  /// within 5% / 10% of the test's scale (share: node capacity; sigma:
  /// max(sigma_threshold, 1); deadline: the job's relative deadline). The
  /// 10% counters include the 5% ones. Exact when margins are observed
  /// (trace/explain attached); conservative — an undercount — when the
  /// batch spread bound skipped exact sigmas, same caveat as
  /// `nodes_batch_skipped`.
  std::uint64_t near_miss_share_5 = 0;
  std::uint64_t near_miss_share_10 = 0;
  std::uint64_t near_miss_sigma_5 = 0;
  std::uint64_t near_miss_sigma_10 = 0;
  std::uint64_t near_miss_deadline_5 = 0;   ///< EDF-family dispatch rejections
  std::uint64_t near_miss_deadline_10 = 0;
  /// Overload-catalog outcomes (core/overload.hpp); all 0 under HardReject.
  /// `degraded_admits` is a subset of `accepted` (the job IS running, it
  /// just got there through a licensed bend); `shed_tail` is a subset of
  /// `rejected_share_overflow` — the per-reason sums stay exact either way.
  std::uint64_t degraded_admits = 0;       ///< admissions via a degraded-mode bend
  std::uint64_t deferrals = 0;             ///< DeferToSalvage park events (retries, not jobs)
  std::uint64_t shed_tail = 0;             ///< ShedTail pre-rejections
  std::uint64_t overload_activations = 0;  ///< governor flips into degraded operation

  /// Derived views shared by every stats surface (CLI, diagnose, telemetry)
  /// so the arithmetic lives in exactly one place. All are 0 when the
  /// denominator is 0 (space-shared policies never run this scan).
  [[nodiscard]] double scans_per_submission() const noexcept {
    return submissions > 0 ? static_cast<double>(nodes_scanned) /
                                 static_cast<double>(submissions)
                           : 0.0;
  }
  [[nodiscard]] double accept_rate() const noexcept {
    return submissions > 0
               ? static_cast<double>(accepted) / static_cast<double>(submissions)
               : 0.0;
  }
  [[nodiscard]] std::uint64_t near_miss_5() const noexcept {
    return near_miss_share_5 + near_miss_sigma_5 + near_miss_deadline_5;
  }
  [[nodiscard]] std::uint64_t near_miss_10() const noexcept {
    return near_miss_share_10 + near_miss_sigma_10 + near_miss_deadline_10;
  }
};

class LibraScheduler final : public Scheduler {
 public:
  /// The executor's completion events feed the collector; the scheduler
  /// installs its own completion handler on `executor`.
  LibraScheduler(sim::Simulator& simulator, cluster::TimeSharedExecutor& executor,
                 Collector& collector, LibraConfig config, std::string name);

  void on_job_submitted(const Job& job) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  /// Decision introspection for tests: evaluates a node's suitability for a
  /// job right now without side effects. Returns the fit key used for
  /// selection via `fit` (total share after acceptance).
  [[nodiscard]] bool node_suitable(cluster::NodeId node, const Job& job,
                                   double& fit) const;

  [[nodiscard]] const LibraConfig& config() const noexcept { return config_; }
  /// Hot-path counters since construction (see AdmissionStats).
  [[nodiscard]] const AdmissionStats& admission_stats() const noexcept {
    return stats_;
  }

 protected:
  /// Registers admission counters as pull metrics, scan/response
  /// histograms, the cumulative "admission" series and the per-node
  /// "nodes" series (residents, shares, tentative sigma).
  void on_telemetry(obs::Telemetry& telemetry) override;

 private:
  struct Candidate {
    cluster::NodeId node;
    double fit;    // total share after acceptance; higher = fuller
    double sigma;  // sigma the suitability test saw (-1 for TotalShare)
  };

  [[nodiscard]] double new_job_share(const Job& job, cluster::NodeId node) const;
  /// The reason a failed per-node scan (or a shortfall rejection) carries:
  /// the admission test that said no.
  [[nodiscard]] trace::RejectionReason scan_reason() const noexcept;
  /// Workspace-based suitability (the hot path; no allocation steady-state).
  /// `sigma_out`, when non-null, receives the sigma the decision saw
  /// (-1 for the TotalShare test, which has no sigma). The submit paths
  /// always pass it — sigma is a free by-product of the assessment and
  /// feeds both the node-evaluated trace event and the admission outcome.
  [[nodiscard]] bool node_suitable_fast(cluster::NodeId node, const Job& job,
                                        double& fit,
                                        double* sigma_out = nullptr) const;
  /// Signed headroom of the decisive admission test for a scanned node
  /// (obs::NodeMargin convention): TotalShare: capacity - fit;
  /// ZeroRisk: sigma_threshold - sigma.
  [[nodiscard]] double node_margin(double fit, double sigma) const noexcept {
    return config_.admission == LibraConfig::Admission::TotalShare
               ? config_.capacity - fit
               : config_.risk.sigma_threshold - sigma;
  }
  /// Shortfall-rejection bookkeeping shared by both submit paths: rebuilds
  /// the failing-node deficits from scan_metric_, takes the k-th smallest
  /// (k = num_procs - suitable_count — the smallest improvement that would
  /// have admitted), feeds the near-miss counters, and returns the job
  /// margin (-deficit; 0.0 when unquantifiable). Reject path only, so the
  /// scan loops stay store-only.
  [[nodiscard]] double reject_job_margin(const Job& job, int suitable_count);
  /// Orders the first `count` candidates of suitable_ exactly as the legacy
  /// full stable_sort would, without touching the rest.
  void select_prefix(int count);
  void submit_fast(const Job& job);
  /// ZeroRisk candidate scan through core::assess_nodes over adaptive node
  /// chunks; fills suitable_ and maintains the same per-consumed-node
  /// counters and trace events as the scalar scan, in node order.
  void scan_zero_risk_batched(const Job& job, sim::SimTime now, bool tracing,
                              bool can_stop_early);

  // ---- overload-catalog consult sites (core/overload.hpp) ----
  // Every helper below is only reachable when a non-HardReject mode is
  // configured (overload_enabled_), so the default path stays byte-identical
  // to pre-catalog builds.

  /// The Libra-family load signal: admitted-but-unfinished share demand vs
  /// total share capacity (cluster size x per-node capacity).
  [[nodiscard]] LoadSignal load_signal() const noexcept {
    return LoadSignal{inflight_share_,
                      static_cast<double>(executor_.cluster().size()) *
                          config_.capacity};
  }
  /// Per-submission governor pulse + the ShedTail pre-check. Returns true
  /// when the job was shed (fully accounted as a rejection).
  [[nodiscard]] bool shed_or_pulse(const Job& job, sim::SimTime now);
  /// Shortfall consult: called when the normal scan came up short. Applies
  /// the engaged mode's bend (relaxed re-scan, QoS downgrade, or deferral);
  /// returns true when the job was admitted or parked, false to fall
  /// through to the normal reject path.
  [[nodiscard]] bool try_degraded(const Job& job, sim::SimTime now);
  /// Full-cluster re-scan with a (possibly) relaxed sigma threshold and a
  /// (possibly) rewritten deadline, with the Eq. 2 share cap enforced on
  /// every candidate (catalog flag kForbidAdmitPastEq2). Admits on success.
  [[nodiscard]] bool rescan_and_admit(const Job& job, sim::SimTime now,
                                      double sigma_threshold, double deadline,
                                      trace::RejectionReason bent);
  /// Admits the job over the first num_procs entries of suitable_ with the
  /// degraded provenance (stats, Decision mark, JobDegradedAdmit event).
  /// `run` is the job handed to the executor — the degraded copy for
  /// DowngradeQoS, `job` itself otherwise.
  void degraded_admit_prepared(const Job& job, const Job& run,
                               sim::SimTime now, trace::RejectionReason bent);
  /// DeferToSalvage: parks the job and schedules its retry.
  void defer_job(const Job& job, sim::SimTime now);
  /// Salvage-lane retry: re-runs the NORMAL test (DeferToSalvage may bend
  /// neither risk nor deadline); re-parks or finally rejects at_dispatch.
  void retry_deferred(std::int64_t job_id);
  /// Inflight-share bookkeeping feeding load_signal().
  void track_inflight(const Job& job,
                      const std::vector<cluster::NodeId>& nodes);
  void release_inflight(std::int64_t job_id);
  /// Completion/kill epilogue under an enabled catalog: releases the
  /// inflight contribution and, for a DowngradeQoS job, restores the
  /// original deadline before the collector judges lateness.
  void resolve_overload(const Job& job, sim::SimTime when, bool killed);

  // Seed implementation, kept for differential testing (LibraConfig::legacy_path).
  [[nodiscard]] RiskAssessment assess_with_job_legacy(cluster::NodeId node,
                                                      const Job& job) const;
  [[nodiscard]] bool node_suitable_legacy(cluster::NodeId node, const Job& job,
                                          double& fit,
                                          double* sigma_out = nullptr) const;
  void submit_legacy(const Job& job);

  sim::Simulator& sim_;
  cluster::TimeSharedExecutor& executor_;
  Collector& collector_;
  LibraConfig config_;
  std::string name_;
  mutable AdmissionStats stats_;
  /// Per-scheduler scratch for the admission scan (grow-only, reused every
  /// submission; mutable because node_suitable() is a const query).
  mutable RiskWorkspace workspace_;
  std::vector<Candidate> suitable_;
  /// Per-node decisive metric of the current scan, indexed by node: fit
  /// (TotalShare) or sigma (ZeroRisk; +inf for a bound-skipped node, whose
  /// shortfall is unquantifiable). One flat store per scanned node keeps
  /// the hot loop branch-free; a rejection — which always scans the whole
  /// cluster — rebuilds the failing-node deficits from it after the fact.
  std::vector<double> scan_metric_;
  /// Reject-path scratch for those rebuilt deficits (reused allocation).
  std::vector<double> fail_deficit_;
  /// Decided once at construction: whether the executor's cached
  /// ResidentRiskAggregates can stand in for the per-resident fold (ZeroRisk
  /// + CurrentRate + Current estimates + matching deadline clamps), and the
  /// minimal NodeStateParts the admission scan needs from node_state().
  bool use_aggregates_ = false;
  cluster::NodeStateParts scan_parts_ = cluster::kStateAll;
  /// Grow-only buffers for the batched ZeroRisk scan (submit_fast).
  struct BatchEntry {
    cluster::NodeId node;
    bool empty;
  };
  std::vector<NodeRiskInput> batch_inputs_;
  std::vector<NodeRiskVerdict> batch_verdicts_;
  std::vector<BatchEntry> batch_meta_;

  // ---- overload-catalog state (all idle under HardReject) ----
  /// mode != HardReject, decided once at construction; every consult site
  /// guards on it so the default path never touches the state below.
  bool overload_enabled_ = false;
  OverloadGovernor governor_;
  /// Fastest node speed, for the ShedTail required-share bound (a job's
  /// cheapest possible per-node share is on the fastest node).
  double max_speed_ = 1.0;
  /// Degraded re-scan scratch: rescan_and_admit builds candidates here so a
  /// failed bend leaves suitable_ (and the normal reject accounting that
  /// reads it) untouched; swapped into suitable_ on success only.
  std::vector<Candidate> rescan_suitable_;
  /// Admitted-but-unfinished share demand (sum over running jobs of their
  /// admission-time share on every chosen node); the load signal numerator.
  double inflight_share_ = 0.0;
  std::unordered_map<std::int64_t, double> inflight_contrib_;
  /// DowngradeQoS: the executor borrows Job pointers until completion, so
  /// the deadline-extended copy needs stable scheduler-owned storage. The
  /// completion/kill handler restores `original_deadline` before the
  /// collector judges lateness, and erases the entry last (its `const Job&`
  /// parameter aliases the map-owned copy).
  struct DowngradedJob {
    Job job;
    double original_deadline;
  };
  std::unordered_map<std::int64_t, DowngradedJob> downgraded_;
  /// DeferToSalvage parking lot. The engine slab keeps a parked job's
  /// storage alive while it is Pending, same contract EDF's queue relies on.
  struct Parked {
    const Job* job;
    int deferrals;
  };
  std::unordered_map<std::int64_t, Parked> parked_;

  /// Telemetry-registered sinks (null when telemetry is not attached; the
  /// registry owns the histograms).
  obs::Histogram* scan_nodes_hist_ = nullptr;
  obs::Histogram* response_hist_ = nullptr;

  /// Per-node sampler body: residents/shares/tentative sigma per node.
  void sample_nodes(obs::Series& series, sim::SimTime now) const;
};

}  // namespace librisk::core
