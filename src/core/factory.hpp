// Policy registry: builds a scheduler + executor pair by name, owning both.
// This is the top of the core API — examples and the experiment harness go
// through here.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/share_model.hpp"
#include "core/libra.hpp"
#include "core/overload.hpp"
#include "core/scheduler.hpp"

namespace librisk::core {

/// The admission-control policies this library ships.
enum class Policy {
  Edf,        ///< space-shared EDF with relaxed admission control (paper)
  EdfNoAC,    ///< EDF without admission control (paper Section 4 remark)
  Libra,      ///< proportional share + total-share test + best fit (paper)
  LibraRisk,  ///< proportional share + zero-risk test (paper contribution)
  Fcfs,       ///< FCFS without backfilling (extra baseline)
  Easy,       ///< FCFS with EASY backfilling (extra baseline)
  Qops,       ///< QoPS-style feasibility test at submission (related work [6])
  EdfBackfill,///< EDF + EASY-style backfilling (extension baseline)
};

[[nodiscard]] std::string_view to_string(Policy policy) noexcept;
[[nodiscard]] Policy parse_policy(std::string_view name);
/// The three policies the paper's figures compare, in the paper's order.
[[nodiscard]] std::vector<Policy> paper_policies();
[[nodiscard]] std::vector<Policy> all_policies();

/// Knobs that cut across policies.
struct PolicyOptions {
  /// Execution/share model for the time-shared executor (Libra family).
  cluster::ShareModelConfig share_model;
  /// Libra-family overrides; admission/selection/estimate fields are
  /// ignored (set from the policy), the rest apply.
  RiskConfig risk;
  /// Overrides the Libra-family node-selection strategy when set.
  std::optional<LibraConfig::Selection> selection_override;
  /// QoPS slack factor (>= 1; 1 = hard deadlines at admission).
  double qops_slack_factor = 1.0;
  /// Graceful-degradation catalog entry (core/overload.hpp). The default
  /// (HardReject) reproduces today's behavior exactly — byte-identical
  /// traces; any other mode bends the named shortfall sites while the
  /// configured load threshold is exceeded. Consulted by the Libra family
  /// and EDF; the FCFS/EASY/QoPS family has no shortfall site to bend and
  /// treats every mode as HardReject (docs/OVERLOAD.md, support matrix).
  OverloadConfig overload;
  /// Libra-family only: route admission through the seed (allocating)
  /// implementation instead of the workspace/cached fast path. Decisions
  /// are bit-identical either way; differential tests flip this.
  bool legacy_admission = false;
  /// Optional observation hooks (decision-audit recorder + live telemetry),
  /// attached as one value to both the scheduler and its executor — the
  /// single wiring point, so a stack can never end up with a recorder on
  /// one component and not the other. Borrowed; must outlive the stack.
  /// Null members (the default) emit nothing and perturb nothing.
  Hooks hooks;
};

/// A ready-to-run scheduling stack: the scheduler plus whichever executor
/// it drives, with lifetimes tied together.
class SchedulerStack {
 public:
  virtual ~SchedulerStack() = default;
  [[nodiscard]] virtual Scheduler& scheduler() noexcept = 0;
  /// Delivered busy node-seconds so far (for utilization accounting).
  [[nodiscard]] virtual double busy_node_seconds(sim::SimTime now) const = 0;
  /// Admission hot-path counters; all-zero for policies that do not run a
  /// per-node admission scan (the space-shared family).
  [[nodiscard]] virtual AdmissionStats admission_stats() const { return {}; }
  /// Execution-kernel effort counters; all-zero for policies that do not
  /// drive the time-shared executor (the space-shared family).
  [[nodiscard]] virtual cluster::KernelStats kernel_stats() const { return {}; }
};

[[nodiscard]] std::unique_ptr<SchedulerStack> make_scheduler(
    Policy policy, sim::Simulator& simulator, const cluster::Cluster& cluster,
    Collector& collector, const PolicyOptions& options = {});

}  // namespace librisk::core
