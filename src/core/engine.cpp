#include "core/engine.hpp"

#include <utility>

#include "support/check.hpp"

namespace librisk::core {

const char* to_string(AdmissionOutcome::Verdict verdict) noexcept {
  switch (verdict) {
    case AdmissionOutcome::Verdict::Accepted: return "accepted";
    case AdmissionOutcome::Verdict::Queued: return "queued";
    case AdmissionOutcome::Verdict::Rejected: return "rejected";
    case AdmissionOutcome::Verdict::DegradedAdmit: return "degraded_admit";
    case AdmissionOutcome::Verdict::Deferred: return "deferred";
  }
  return "?";
}

AdmissionEngine::AdmissionEngine(cluster::Cluster cluster, Policy policy,
                                 const PolicyOptions& options)
    : owned_cluster_(std::make_unique<cluster::Cluster>(std::move(cluster))),
      owned_sim_(std::make_unique<sim::Simulator>()),
      owned_collector_(std::make_unique<Collector>()),
      stack_(make_scheduler(policy, *owned_sim_, *owned_cluster_,
                            *owned_collector_, options)),
      sim_(*owned_sim_),
      collector_(*owned_collector_),
      scheduler_(stack_->scheduler()),
      hooks_(options.hooks),
      cluster_size_(owned_cluster_->size()) {
  observer_id_ = collector_.add_resolution_observer(
      [this](std::int64_t id) { resolved_backlog_.push_back(id); });
  if (hooks_.telemetry != nullptr) hooks_.telemetry->arm(sim_);
}

AdmissionEngine::AdmissionEngine(sim::Simulator& simulator, Scheduler& scheduler,
                                 Collector& collector, const Hooks& hooks)
    : sim_(simulator),
      collector_(collector),
      scheduler_(scheduler),
      hooks_(hooks) {
  observer_id_ = collector_.add_resolution_observer(
      [this](std::int64_t id) { resolved_backlog_.push_back(id); });
  if (hooks_.telemetry != nullptr) hooks_.telemetry->arm(sim_);
}

AdmissionEngine::~AdmissionEngine() {
  // The observer captures `this`; a borrowed collector outlives the engine.
  collector_.remove_resolution_observer(observer_id_);
}

std::unique_ptr<AdmissionEngine> make_engine(EngineConfig config) {
  const bool borrowed = config.simulator != nullptr || config.scheduler != nullptr ||
                        config.collector != nullptr;
  if (borrowed) {
    LIBRISK_CHECK(!config.cluster.has_value(),
                  "EngineConfig names both modes: cluster set and components borrowed");
    LIBRISK_CHECK(config.simulator != nullptr && config.scheduler != nullptr &&
                      config.collector != nullptr,
                  "borrowed-mode EngineConfig needs simulator, scheduler and "
                  "collector all set");
    // new over make_unique: the constructors are private (friend access).
    return std::unique_ptr<AdmissionEngine>(new AdmissionEngine(
        *config.simulator, *config.scheduler, *config.collector, config.hooks));
  }
  LIBRISK_CHECK(config.cluster.has_value(),
                "EngineConfig names no mode: set cluster (owning) or "
                "simulator+scheduler+collector (borrowed)");
  return std::unique_ptr<AdmissionEngine>(new AdmissionEngine(
      std::move(*config.cluster), config.policy, config.options));
}

sim::EventId AdmissionEngine::enqueue(const workload::Job& job) {
  LIBRISK_CHECK(!finished_, "submit after finish() on job " << job.id);
  job.validate();
  LIBRISK_CHECK(submitted_ == 0 || job.submit_time >= last_submit_,
                "job " << job.id << " submitted out of order: submit time "
                       << job.submit_time << " after a job at " << last_submit_);
  LIBRISK_CHECK(job.submit_time >= sim_.now() - sim::kTimeEpsilon,
                "job " << job.id << " submitted in the past: submit time "
                       << job.submit_time << ", engine clock " << sim_.now());

  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  slab_[slot] = job;
  const bool inserted = index_.emplace(job.id, slot).second;
  LIBRISK_CHECK(inserted, "duplicate job id " << job.id << " in stream");
  peak_live_ = std::max(peak_live_, index_.size());
  ++submitted_;
  last_submit_ = job.submit_time;

  const workload::Job* stored = &slab_[slot];
  return sim_.at(stored->submit_time, sim::EventPriority::Arrival, [this, stored] {
    collector_.record_submitted(*stored, sim_.now());
    if (hooks_.trace != nullptr)
      hooks_.trace->job_submitted(sim_.now(), stored->id, stored->num_procs,
                                  stored->deadline, stored->scheduler_estimate);
    scheduler_.on_job_submitted(*stored);
  });
}

AdmissionOutcome AdmissionEngine::submit(const workload::Job& job) {
  const sim::EventId arrival = enqueue(job);
  const std::int64_t id = job.id;
  {
    obs::ScopedPhase phase(
        hooks_.telemetry != nullptr ? &hooks_.telemetry->profiler() : nullptr,
        obs::Phase::Run);
    // Runs the batch prefix of this arrival — everything that precedes it
    // in the deterministic (time, priority, seq) total order, equal-time
    // completions included — then the arrival itself and nothing after, so
    // eager submission cannot reorder decisions relative to the batch
    // drive (docs/MODEL.md §"engine stepping").
    sim_.run_through(arrival);
  }
  reclaim();
  return outcome_of(id);
}

AdmissionOutcome AdmissionEngine::outcome_of(std::int64_t job_id) const {
  const metrics::JobRecord& r = collector_.record(job_id);
  AdmissionOutcome out;
  out.job_id = job_id;
  switch (r.fate) {
    case metrics::JobFate::RejectedAtSubmit:
    case metrics::JobFate::RejectedAtDispatch:
      out.verdict = AdmissionOutcome::Verdict::Rejected;
      out.reason = r.reject_reason;
      return out;
    case metrics::JobFate::Pending:
      out.verdict = r.started ? AdmissionOutcome::Verdict::Accepted
                              : AdmissionOutcome::Verdict::Queued;
      break;
    case metrics::JobFate::FulfilledInTime:
    case metrics::JobFate::CompletedLate:
    case metrics::JobFate::Killed:
      // Zero-runtime jobs can complete inside their own arrival step.
      out.verdict = AdmissionOutcome::Verdict::Accepted;
      break;
  }
  // The placement note is only trustworthy for the job just decided:
  // policies overwrite it per admission, and queueing policies never
  // write it at all — the id guard covers both. It also carries the
  // overload-catalog marks: a degraded admission upgrades Accepted to
  // DegradedAdmit, and a salvage-parked job (Pending, not started, no
  // verdict yet) reports as Deferred instead of Queued.
  const Scheduler::Decision& d = scheduler_.last_decision();
  if (d.job_id == job_id) {
    if (out.verdict == AdmissionOutcome::Verdict::Accepted) {
      out.node = d.node;
      out.sigma = d.sigma;
      out.margin = d.margin;
      if (d.degraded) out.verdict = AdmissionOutcome::Verdict::DegradedAdmit;
    } else if (out.verdict == AdmissionOutcome::Verdict::Queued && d.deferred) {
      out.verdict = AdmissionOutcome::Verdict::Deferred;
    }
  }
  return out;
}

std::uint64_t AdmissionEngine::advance_to(sim::SimTime t) {
  std::uint64_t n;
  {
    obs::ScopedPhase phase(
        hooks_.telemetry != nullptr ? &hooks_.telemetry->profiler() : nullptr,
        obs::Phase::Run);
    n = sim_.run_before(t);
  }
  reclaim();
  return n;
}

std::uint64_t AdmissionEngine::step_until(sim::SimTime t) {
  std::uint64_t n;
  {
    obs::ScopedPhase phase(
        hooks_.telemetry != nullptr ? &hooks_.telemetry->profiler() : nullptr,
        obs::Phase::Run);
    n = sim_.run_until(t);
  }
  reclaim();
  return n;
}

std::uint64_t AdmissionEngine::drain() {
  std::uint64_t n;
  {
    obs::ScopedPhase phase(
        hooks_.telemetry != nullptr ? &hooks_.telemetry->profiler() : nullptr,
        obs::Phase::Run);
    n = sim_.run();
  }
  reclaim();
  return n;
}

void AdmissionEngine::finish() {
  if (finished_) return;
  drain();
  if (hooks_.telemetry != nullptr) {
    hooks_.telemetry->finish(sim_.now());
    // Pull metrics and samplers borrow the scheduler/executor/simulator,
    // which often die before the caller-owned hub does — freeze terminal
    // values now so the hub stays readable afterwards.
    hooks_.telemetry->seal();
  }
  LIBRISK_CHECK(collector_.all_resolved(),
                "engine drained with unresolved jobs (scheduler "
                    << scheduler_.name() << ")");
  finished_ = true;
}

void AdmissionEngine::reclaim() {
  for (const std::int64_t id : resolved_backlog_) {
    const auto it = index_.find(id);
    LIBRISK_CHECK(it != index_.end(), "resolved job " << id << " not in slab");
    free_.push_back(it->second);
    index_.erase(it);
  }
  resolved_backlog_.clear();
}

sim::SimTime AdmissionEngine::now() const noexcept { return sim_.now(); }
bool AdmissionEngine::idle() const noexcept { return sim_.idle(); }
std::uint64_t AdmissionEngine::events_processed() const noexcept {
  return sim_.events_processed();
}

metrics::RunSummary AdmissionEngine::summary() const {
  metrics::RunSummary s = collector_.summarize();
  if (stack_ != nullptr && sim_.now() > 0.0 && cluster_size_ > 0) {
    s.utilization = stack_->busy_node_seconds(sim_.now()) /
                    (static_cast<double>(cluster_size_) * sim_.now());
  }
  return s;
}

AdmissionStats AdmissionEngine::admission_stats() const {
  return stack_ != nullptr ? stack_->admission_stats() : AdmissionStats{};
}

cluster::KernelStats AdmissionEngine::kernel_stats() const {
  return stack_ != nullptr ? stack_->kernel_stats() : cluster::KernelStats{};
}

double AdmissionEngine::busy_node_seconds() const {
  return stack_ != nullptr ? stack_->busy_node_seconds(sim_.now()) : 0.0;
}

}  // namespace librisk::core
