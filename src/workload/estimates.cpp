#include "workload/estimates.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace librisk::workload {

void UserEstimateConfig::validate() const {
  LIBRISK_CHECK(!modal_limits.empty(), "need at least one modal limit");
  LIBRISK_CHECK(std::is_sorted(modal_limits.begin(), modal_limits.end()),
                "modal limits must ascend");
  LIBRISK_CHECK(modal_limits.front() > 0.0, "modal limits must be positive");
  LIBRISK_CHECK(exact_fraction >= 0.0 && exact_fraction <= 1.0, "exact_fraction domain");
  LIBRISK_CHECK(underestimate_fraction >= 0.0 && underestimate_fraction <= 1.0,
                "underestimate_fraction domain");
  LIBRISK_CHECK(exact_fraction + underestimate_fraction <= 1.0,
                "exact + underestimate fractions exceed 1");
  LIBRISK_CHECK(max_underestimate_overrun > 1.0, "overrun factor must exceed 1");
  LIBRISK_CHECK(overestimate_median_factor >= 1.0, "over-estimate median below 1");
  LIBRISK_CHECK(overestimate_sigma >= 0.0, "negative sigma");
  LIBRISK_CHECK(user_bias_sigma >= 0.0, "negative user bias sigma");
}

namespace {

// Smallest modal limit >= x; if x exceeds every limit, round up to the next
// multiple of the largest limit (users of >18h jobs ask for whole extra
// slots).
double round_up_to_modal(double x, const std::vector<double>& limits) {
  const auto it = std::lower_bound(limits.begin(), limits.end(), x);
  if (it != limits.end()) return *it;
  const double top = limits.back();
  return std::ceil(x / top) * top;
}

}  // namespace

void assign_user_estimates(std::vector<Job>& jobs, const UserEstimateConfig& config,
                           rng::Stream& stream) {
  config.validate();
  // Draw each user's habitual over-estimation bias up front (in user-id
  // order, so the draw sequence is independent of job order).
  int max_user = 0;
  for (const Job& j : jobs) max_user = std::max(max_user, j.user_id);
  std::vector<double> user_bias(max_user + 1, 1.0);
  if (config.user_bias_sigma > 0.0) {
    for (double& b : user_bias)
      b = std::exp(stream.normal(0.0, config.user_bias_sigma));
  }

  for (Job& j : jobs) {
    LIBRISK_CHECK(j.actual_runtime > 0.0, "job " << j.id << " has no runtime yet");
    const double u = stream.uniform();
    if (u < config.underestimate_fraction) {
      // Under-estimate: the job will overrun its promise by a uniform factor.
      const double overrun =
          stream.uniform(1.05, config.max_underestimate_overrun);
      j.user_estimate = j.actual_runtime / overrun;
    } else if (u < config.underestimate_fraction + config.exact_fraction) {
      // Killed-at-limit spike: estimate equals runtime exactly.
      j.user_estimate = j.actual_runtime;
    } else {
      // Over-estimate: pad by a lognormal factor scaled by the user's
      // habitual bias, then round up to a modal limit the user would
      // actually have typed.
      const double bias = j.user_id >= 0 ? user_bias[j.user_id] : 1.0;
      const double mu = std::log(config.overestimate_median_factor * bias);
      const double factor =
          std::exp(stream.normal(mu, config.overestimate_sigma));
      const double padded = j.actual_runtime * std::max(1.0, factor);
      j.user_estimate = round_up_to_modal(padded, config.modal_limits);
    }
    j.scheduler_estimate = j.user_estimate;
  }
}

void apply_inaccuracy(std::vector<Job>& jobs, double inaccuracy_pct) {
  LIBRISK_CHECK(inaccuracy_pct >= 0.0 && inaccuracy_pct <= 100.0,
                "inaccuracy must be within [0, 100], got " << inaccuracy_pct);
  const double alpha = inaccuracy_pct / 100.0;
  for (Job& j : jobs) {
    j.scheduler_estimate =
        j.actual_runtime + alpha * (j.user_estimate - j.actual_runtime);
    // Guard against degenerate zero estimates when user_estimate underran
    // and alpha lands exactly on it.
    j.scheduler_estimate = std::max(j.scheduler_estimate, 1.0);
  }
}

double underestimated_fraction(const std::vector<Job>& jobs) noexcept {
  if (jobs.empty()) return 0.0;
  std::size_t n = 0;
  for (const Job& j : jobs)
    if (j.user_estimate < j.actual_runtime) ++n;
  return static_cast<double>(n) / static_cast<double>(jobs.size());
}

double mean_overestimate_factor(const std::vector<Job>& jobs) noexcept {
  if (jobs.empty()) return 0.0;
  double s = 0.0;
  for (const Job& j : jobs) s += j.user_estimate / j.actual_runtime;
  return s / static_cast<double>(jobs.size());
}

}  // namespace librisk::workload
