#include "workload/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/check.hpp"

namespace librisk::workload {

void PredictorConfig::validate() const {
  LIBRISK_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  LIBRISK_CHECK(min_user_history >= 0, "negative history threshold");
  LIBRISK_CHECK(correction_floor > 0.0 && correction_floor <= 1.0,
                "correction floor must be in (0, 1]");
  LIBRISK_CHECK(safety_margin >= 1.0, "safety margin must be at least 1");
}

OnlinePredictor::OnlinePredictor(PredictorConfig config) : config_(config) {
  config_.validate();
}

void OnlinePredictor::observe(const Job& job) {
  LIBRISK_CHECK(job.user_estimate > 0.0, "estimate required for feedback");
  const double ratio =
      std::clamp(job.actual_runtime / job.user_estimate, 0.0, 4.0);
  const auto update = [&](UserState& s) {
    s.ratio_ema = s.count == 0
                      ? ratio
                      : (1.0 - config_.alpha) * s.ratio_ema + config_.alpha * ratio;
    ++s.count;
  };
  update(global_);
  if (job.user_id >= 0) update(users_[job.user_id]);
  ++observed_;
}

double OnlinePredictor::correction_factor(const Job& job) const {
  const UserState* state = &global_;
  if (job.user_id >= 0) {
    const auto it = users_.find(job.user_id);
    if (it != users_.end() && it->second.count >= config_.min_user_history)
      state = &it->second;
  }
  if (state->count == 0) return 1.0;  // no history anywhere: trust the user
  const double corrected = state->ratio_ema * config_.safety_margin;
  return std::clamp(corrected, config_.correction_floor, 1.0);
}

double OnlinePredictor::predict(const Job& job) const {
  return std::max(1.0, job.user_estimate * correction_factor(job));
}

std::size_t apply_predictor_causally(std::vector<Job>& jobs,
                                     const PredictorConfig& config) {
  OnlinePredictor predictor(config);

  // Min-heap of (earliest possible completion, job index) pending feedback.
  using Pending = std::pair<double, std::size_t>;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending;

  std::size_t shrunk = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Feed back every job that could have completed by this submission.
    while (!pending.empty() && pending.top().first <= jobs[i].submit_time) {
      predictor.observe(jobs[pending.top().second]);
      pending.pop();
    }
    const double corrected = predictor.predict(jobs[i]);
    if (corrected < jobs[i].scheduler_estimate) {
      jobs[i].scheduler_estimate = corrected;
      ++shrunk;
    }
    pending.emplace(jobs[i].submit_time + jobs[i].actual_runtime, i);
  }
  return shrunk;
}

double mean_estimate_error(const std::vector<Job>& jobs) noexcept {
  if (jobs.empty()) return 0.0;
  double sum = 0.0;
  for (const Job& j : jobs)
    sum += std::abs(j.scheduler_estimate - j.actual_runtime) / j.actual_runtime;
  return sum / static_cast<double>(jobs.size());
}

}  // namespace librisk::workload
