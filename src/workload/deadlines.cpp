#include "workload/deadlines.hpp"

#include "support/check.hpp"

namespace librisk::workload {

void DeadlineConfig::validate() const {
  LIBRISK_CHECK(high_urgency_fraction >= 0.0 && high_urgency_fraction <= 1.0,
                "high_urgency_fraction domain");
  LIBRISK_CHECK(high_urgency_mean_factor >= 1.0,
                "mean deadline factor must be at least 1");
  LIBRISK_CHECK(high_low_ratio >= 1.0, "high:low ratio must be at least 1");
  LIBRISK_CHECK(stddev_fraction >= 0.0, "negative stddev fraction");
  LIBRISK_CHECK(min_factor >= 1.0, "min_factor below 1 would allow infeasible deadlines");
}

void assign_deadlines(std::vector<Job>& jobs, const DeadlineConfig& config,
                      rng::Stream& stream) {
  config.validate();
  // Upper truncation keeps the class means meaningful under truncation while
  // allowing the full intended spread.
  const auto draw_factor = [&](double mean) {
    const double sd = mean * config.stddev_fraction;
    return stream.truncated_normal(mean, sd, config.min_factor, mean + 4.0 * sd);
  };
  for (Job& j : jobs) {
    LIBRISK_CHECK(j.actual_runtime > 0.0, "job " << j.id << " has no runtime yet");
    const bool high = stream.bernoulli(config.high_urgency_fraction);
    j.urgency = high ? Urgency::High : Urgency::Low;
    const double mean = high ? config.high_urgency_mean_factor
                             : config.low_urgency_mean_factor();
    j.deadline = draw_factor(mean) * j.actual_runtime;
  }
}

double high_urgency_fraction(const std::vector<Job>& jobs) noexcept {
  if (jobs.empty()) return 0.0;
  std::size_t n = 0;
  for (const Job& j : jobs)
    if (j.urgency == Urgency::High) ++n;
  return static_cast<double>(n) / static_cast<double>(jobs.size());
}

double mean_deadline_factor(const std::vector<Job>& jobs, Urgency urgency) noexcept {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Job& j : jobs) {
    if (urgency != Urgency::Unspecified && j.urgency != urgency) continue;
    if (j.actual_runtime <= 0.0) continue;
    sum += j.deadline / j.actual_runtime;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace librisk::workload
