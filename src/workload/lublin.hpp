// Lublin–Feitelson-style rigid-job workload model (Lublin & Feitelson,
// JPDC 2003) — a second, independently shaped synthetic workload.
//
// The SDSC-SP2 generator in synthetic.hpp is calibrated to the paper's
// trace subset; this model is the scheduling literature's standard
// *parametric* generator, with structurally different distributions:
//  - node counts: serial jobs with fixed probability, then a two-stage
//    log-uniform with a bias towards powers of two;
//  - runtimes: a hyper-Gamma mixture whose mixing probability depends on
//    the job's node count (wider jobs run longer — a correlation the
//    lognormal model lacks);
//  - arrivals: exponential inter-arrivals modulated by a daily cycle
//    (weekday rush vs night trough).
//
// Constants below follow the published batch-partition parameters where the
// sources are unambiguous and are otherwise calibrated [cal]; everything is
// a config field, not a magic number. The robustness experiment
// (bench/robustness_lublin) reruns the paper's headline comparison on this
// model to show the conclusions do not hinge on the SDSC calibration.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "workload/job.hpp"

namespace librisk::workload {

struct LublinConfig {
  std::size_t job_count = 3000;

  // ---- arrivals ----
  /// Mean inter-arrival in seconds before the daily cycle is applied.
  double mean_interarrival = 2131.0;
  /// Peak-to-trough ratio of the daily arrival-rate cycle (1 = flat).
  double daily_peak_trough_ratio = 3.0;
  /// Hour of day (0-24) at which the arrival rate peaks.
  double peak_hour = 14.0;
  /// Global inter-arrival scale (the paper's arrival delay factor).
  double arrival_delay_factor = 1.0;

  // ---- node counts ----
  int max_procs = 128;
  /// Probability a job is serial (1 processor).
  double serial_prob = 0.24;
  /// Probability a non-serial request is rounded to a power of two.
  double pow2_prob = 0.75;
  /// Non-serial sizes are drawn log2-uniform from [low, split] with
  /// probability `low_range_prob`, else from [split, log2(max_procs)].
  double log2_low = 0.8;
  double log2_split_offset = 3.5;  ///< split = log2(max) - offset
  double low_range_prob = 0.86;

  // ---- runtimes (hyper-Gamma mixture) ----
  /// First (short-job) Gamma component: shape and scale, seconds.
  double gamma1_shape = 4.2;
  double gamma1_scale = 400.0;
  /// Second (long-job) Gamma component.
  double gamma2_shape = 8.0;
  double gamma2_scale = 4000.0;
  /// Mixing: P(long component) = clamp(p_a * log2(nodes) + p_b, 0.05, 0.95).
  double mix_a = 0.05;
  double mix_b = 0.25;
  double min_runtime = 10.0;
  double max_runtime = 64800.0;

  void validate() const;
};

/// Generates arrivals, runtimes and node counts (user ids assigned as in
/// the SDSC model; estimates/deadlines are left to the dedicated models).
[[nodiscard]] std::vector<Job> generate_lublin_trace(const LublinConfig& config,
                                                     rng::Stream& stream);

/// Fraction of serial jobs / power-of-two requests, for calibration tests.
[[nodiscard]] double serial_fraction(const std::vector<Job>& jobs) noexcept;
[[nodiscard]] double power_of_two_fraction(const std::vector<Job>& jobs) noexcept;

}  // namespace librisk::workload
