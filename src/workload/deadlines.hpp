// Deadline synthesis (paper Section 4).
//
// SWF traces carry no deadlines, so the paper assigns each job to one of two
// urgency classes and draws deadline = factor * runtime with the factor
// normally distributed within the class:
//   - high-urgency jobs (default 20% [cal]) get a *low* mean factor,
//   - low-urgency jobs get mean = low_mean * high_low_ratio (default 4 [cal]).
// Factors are truncated below at min_factor so a deadline is always a
// "higher factored value based on the real runtime" as the paper states.
#pragma once

#include <vector>

#include "support/rng.hpp"
#include "workload/job.hpp"

namespace librisk::workload {

struct DeadlineConfig {
  /// Fraction of jobs in the high-urgency (short-deadline) class.
  double high_urgency_fraction = 0.20;
  /// Mean deadline/runtime factor of the high-urgency class.
  double high_urgency_mean_factor = 2.0;
  /// Ratio of class means: low-urgency mean = high_urgency_mean * ratio.
  double high_low_ratio = 4.0;
  /// Std-dev as a fraction of the class mean (values "normally distributed
  /// within each class").
  double stddev_fraction = 0.25;
  /// Truncation floor for the factor (deadline strictly above runtime).
  double min_factor = 1.05;

  void validate() const;

  [[nodiscard]] double low_urgency_mean_factor() const noexcept {
    return high_urgency_mean_factor * high_low_ratio;
  }
};

/// Assigns urgency classes and deadlines to every job. The class sequence is
/// randomly interleaved across arrivals (paper: "the arrival sequence of
/// jobs from the high urgency and low urgency job classes is randomly
/// distributed"). Deterministic in `stream`.
void assign_deadlines(std::vector<Job>& jobs, const DeadlineConfig& config,
                      rng::Stream& stream);

/// Observed fraction of jobs in the high-urgency class.
[[nodiscard]] double high_urgency_fraction(const std::vector<Job>& jobs) noexcept;

/// Mean deadline/runtime factor over a class (Urgency::Unspecified = all).
[[nodiscard]] double mean_deadline_factor(const std::vector<Job>& jobs,
                                          Urgency urgency) noexcept;

}  // namespace librisk::workload
