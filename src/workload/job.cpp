#include "workload/job.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace librisk::workload {

const char* to_string(Urgency u) noexcept {
  switch (u) {
    case Urgency::High: return "high";
    case Urgency::Low: return "low";
    case Urgency::Unspecified: return "unspecified";
  }
  return "?";
}

void Job::validate() const {
  LIBRISK_CHECK(submit_time >= 0.0, "job " << id << ": negative submit time");
  LIBRISK_CHECK(actual_runtime > 0.0, "job " << id << ": non-positive runtime");
  LIBRISK_CHECK(user_estimate > 0.0, "job " << id << ": non-positive estimate");
  LIBRISK_CHECK(scheduler_estimate > 0.0,
                "job " << id << ": non-positive scheduler estimate");
  LIBRISK_CHECK(num_procs >= 1, "job " << id << ": needs at least one processor");
  LIBRISK_CHECK(deadline > 0.0, "job " << id << ": non-positive deadline");
}

void validate_trace(const std::vector<Job>& jobs) {
  SimTime last = 0.0;
  for (const Job& j : jobs) {
    j.validate();
    LIBRISK_CHECK(j.submit_time >= last,
                  "trace not sorted by submit time at job " << j.id);
    last = j.submit_time;
  }
}

void sort_by_submit(std::vector<Job>& jobs) {
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.id < b.id;
  });
}

void scale_interarrivals(std::vector<Job>& jobs, double factor) {
  InterarrivalScaler scaler(factor);
  for (Job& job : jobs) scaler.apply(job);
}

InterarrivalScaler::InterarrivalScaler(double factor) : factor_(factor) {
  LIBRISK_CHECK(factor > 0.0,
                "inter-arrival scale factor must be > 0, got " << factor);
}

void InterarrivalScaler::apply(Job& job) noexcept {
  if (!seen_first_) {
    seen_first_ = true;
    first_ = job.submit_time;
    return;  // the anchor maps to itself
  }
  job.submit_time = first_ + (job.submit_time - first_) * factor_;
}

}  // namespace librisk::workload
