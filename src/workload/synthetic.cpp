#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace librisk::workload {

void SdscSp2Config::validate() const {
  LIBRISK_CHECK(job_count > 0, "job_count must be positive");
  LIBRISK_CHECK(mean_interarrival > 0.0, "mean_interarrival must be positive");
  LIBRISK_CHECK(interarrival_cv >= 1.0, "interarrival_cv must be >= 1");
  LIBRISK_CHECK(arrival_delay_factor > 0.0, "arrival_delay_factor must be positive");
  LIBRISK_CHECK(mean_runtime > 0.0, "mean_runtime must be positive");
  LIBRISK_CHECK(runtime_cv > 0.0, "runtime_cv must be positive");
  LIBRISK_CHECK(min_runtime > 0.0 && min_runtime < max_runtime, "runtime bounds");
  LIBRISK_CHECK(max_procs >= 1, "max_procs must be >= 1");
  LIBRISK_CHECK(!power_weights.empty(), "power_weights must not be empty");
  const int largest_power = 1 << (power_weights.size() - 1);
  LIBRISK_CHECK(largest_power <= max_procs,
                "power_weights describe requests beyond max_procs");
  LIBRISK_CHECK(nonpower_fraction >= 0.0 && nonpower_fraction < 1.0,
                "nonpower_fraction domain");
  LIBRISK_CHECK(user_count >= 1, "need at least one user");
}

namespace {

int draw_procs(const SdscSp2Config& config, rng::Stream& stream) {
  if (stream.bernoulli(config.nonpower_fraction)) {
    // Non-power tail: log-uniform over [1, max], favouring small requests
    // the way real mixed workloads do.
    const double log_max = std::log2(static_cast<double>(config.max_procs));
    const double x = std::exp2(stream.uniform(0.0, log_max));
    return std::clamp(static_cast<int>(std::lround(x)), 1, config.max_procs);
  }
  const std::size_t idx = stream.weighted_index(config.power_weights);
  return std::min(1 << idx, config.max_procs);
}

double draw_runtime(const SdscSp2Config& config, rng::Stream& stream) {
  // Draw until inside [min, max]; the truncation barely shifts the mean for
  // the calibrated parameters, and a cap bounds the loop.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double r = stream.lognormal_mean_cv(config.mean_runtime, config.runtime_cv);
    if (r >= config.min_runtime && r <= config.max_runtime) return r;
  }
  return std::clamp(config.mean_runtime, config.min_runtime, config.max_runtime);
}

}  // namespace

std::vector<Job> generate_base_trace(const SdscSp2Config& config, rng::Stream& stream) {
  config.validate();
  // Skewed user activity: weight of user u proportional to 1/(u+1)
  // (Zipf-like, matching the heavy-user dominance of archive traces).
  std::vector<double> user_weights(config.user_count);
  for (int u = 0; u < config.user_count; ++u)
    user_weights[u] = 1.0 / static_cast<double>(u + 1);

  std::vector<Job> jobs;
  jobs.reserve(config.job_count);
  SimTime clock = 0.0;
  for (std::size_t i = 0; i < config.job_count; ++i) {
    Job job;
    job.id = static_cast<std::int64_t>(i) + 1;
    job.user_id = static_cast<int>(stream.weighted_index(user_weights));
    clock += config.arrival_delay_factor *
             stream.hyperexponential(config.mean_interarrival, config.interarrival_cv);
    job.submit_time = clock;
    job.actual_runtime = draw_runtime(config, stream);
    job.num_procs = draw_procs(config, stream);
    // Estimates and deadlines are assigned by their dedicated models; keep
    // the trace self-consistent in the meantime.
    job.user_estimate = job.actual_runtime;
    job.scheduler_estimate = job.actual_runtime;
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<Job> make_paper_workload(const PaperWorkloadConfig& config,
                                     std::uint64_t root_seed) {
  rng::Stream trace_stream("trace", root_seed);
  std::vector<Job> jobs = generate_base_trace(config.trace, trace_stream);

  rng::Stream estimate_stream("estimates", root_seed);
  assign_user_estimates(jobs, config.estimates, estimate_stream);

  rng::Stream deadline_stream("deadlines", root_seed);
  assign_deadlines(jobs, config.deadlines, deadline_stream);

  apply_inaccuracy(jobs, config.inaccuracy_pct);
  validate_trace(jobs);
  return jobs;
}

}  // namespace librisk::workload
