#include "workload/lublin.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace librisk::workload {

void LublinConfig::validate() const {
  LIBRISK_CHECK(job_count > 0, "job_count must be positive");
  LIBRISK_CHECK(mean_interarrival > 0.0, "mean_interarrival must be positive");
  LIBRISK_CHECK(daily_peak_trough_ratio >= 1.0, "peak/trough ratio below 1");
  LIBRISK_CHECK(peak_hour >= 0.0 && peak_hour < 24.0, "peak hour domain");
  LIBRISK_CHECK(arrival_delay_factor > 0.0, "arrival_delay_factor must be positive");
  LIBRISK_CHECK(max_procs >= 1, "max_procs must be positive");
  LIBRISK_CHECK(serial_prob >= 0.0 && serial_prob <= 1.0, "serial_prob domain");
  LIBRISK_CHECK(pow2_prob >= 0.0 && pow2_prob <= 1.0, "pow2_prob domain");
  LIBRISK_CHECK(low_range_prob >= 0.0 && low_range_prob <= 1.0,
                "low_range_prob domain");
  LIBRISK_CHECK(log2_low >= 0.0 && log2_low <= std::log2(max_procs),
                "log2_low out of range");
  LIBRISK_CHECK(gamma1_shape > 0.0 && gamma1_scale > 0.0, "gamma1 parameters");
  LIBRISK_CHECK(gamma2_shape > 0.0 && gamma2_scale > 0.0, "gamma2 parameters");
  LIBRISK_CHECK(min_runtime > 0.0 && min_runtime < max_runtime, "runtime bounds");
}

namespace {

// Arrival-rate multiplier at a given time of day: a raised cosine between
// trough (ratio^-1/2) and peak (ratio^1/2), so the mean rate stays ~1.
double daily_rate(const LublinConfig& config, double time_of_day_seconds) {
  if (config.daily_peak_trough_ratio == 1.0) return 1.0;
  const double hours = time_of_day_seconds / 3600.0;
  const double phase = 2.0 * M_PI * (hours - config.peak_hour) / 24.0;
  const double amplitude = std::sqrt(config.daily_peak_trough_ratio);
  // cos(phase)=1 at the peak hour: rate = amplitude; at the trough:
  // rate = 1/amplitude. Exponential interpolation keeps rates positive.
  return std::pow(amplitude, std::cos(phase));
}

int draw_nodes(const LublinConfig& config, rng::Stream& stream) {
  if (stream.bernoulli(config.serial_prob)) return 1;
  const double hi = std::log2(static_cast<double>(config.max_procs));
  const double split = std::max(config.log2_low, hi - config.log2_split_offset);
  const double log2_size = stream.bernoulli(config.low_range_prob)
                               ? stream.uniform(config.log2_low, split)
                               : stream.uniform(split, hi);
  int nodes;
  if (stream.bernoulli(config.pow2_prob)) {
    nodes = 1 << static_cast<int>(std::lround(log2_size));
  } else {
    nodes = static_cast<int>(std::lround(std::exp2(log2_size)));
  }
  return std::clamp(nodes, 1, config.max_procs);
}

double draw_runtime(const LublinConfig& config, int nodes, rng::Stream& stream) {
  const double p_long = std::clamp(
      config.mix_a * std::log2(static_cast<double>(std::max(nodes, 1))) + config.mix_b,
      0.05, 0.95);
  for (int attempt = 0; attempt < 64; ++attempt) {
    double r;
    if (stream.bernoulli(p_long)) {
      std::gamma_distribution<double> gamma(config.gamma2_shape, config.gamma2_scale);
      r = gamma(stream.engine());
    } else {
      std::gamma_distribution<double> gamma(config.gamma1_shape, config.gamma1_scale);
      r = gamma(stream.engine());
    }
    if (r >= config.min_runtime && r <= config.max_runtime) return r;
  }
  return std::clamp(config.gamma1_shape * config.gamma1_scale, config.min_runtime,
                    config.max_runtime);
}

}  // namespace

std::vector<Job> generate_lublin_trace(const LublinConfig& config,
                                       rng::Stream& stream) {
  config.validate();
  std::vector<Job> jobs;
  jobs.reserve(config.job_count);
  SimTime clock = 0.0;
  for (std::size_t i = 0; i < config.job_count; ++i) {
    // Thinning-free approximation: scale the exponential gap by the
    // instantaneous daily rate at the current clock.
    const double rate = daily_rate(config, std::fmod(clock, 86400.0));
    clock += config.arrival_delay_factor *
             stream.exponential(config.mean_interarrival / rate);

    Job job;
    job.id = static_cast<std::int64_t>(i) + 1;
    job.submit_time = clock;
    job.num_procs = draw_nodes(config, stream);
    job.actual_runtime = draw_runtime(config, job.num_procs, stream);
    job.user_id = static_cast<int>(stream.uniform_int(0, 63));
    job.user_estimate = job.actual_runtime;
    job.scheduler_estimate = job.actual_runtime;
    jobs.push_back(job);
  }
  return jobs;
}

double serial_fraction(const std::vector<Job>& jobs) noexcept {
  if (jobs.empty()) return 0.0;
  std::size_t n = 0;
  for (const Job& j : jobs)
    if (j.num_procs == 1) ++n;
  return static_cast<double>(n) / static_cast<double>(jobs.size());
}

double power_of_two_fraction(const std::vector<Job>& jobs) noexcept {
  if (jobs.empty()) return 0.0;
  std::size_t n = 0;
  for (const Job& j : jobs) {
    const unsigned v = static_cast<unsigned>(j.num_procs);
    if ((v & (v - 1)) == 0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(jobs.size());
}

}  // namespace librisk::workload
