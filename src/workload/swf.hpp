// Standard Workload Format (SWF) reader/writer.
//
// SWF is the Parallel Workloads Archive's 18-field line format; the paper's
// workload is the SDSC SP2 trace in this format. The parser maps the fields
// librisk uses (submit, run time, requested time = user estimate, requested
// processors) and preserves provenance fields. Deadlines are *not* part of
// SWF — the paper synthesises them (see workload/deadlines.hpp); our writer
// can optionally carry them in a librisk comment extension so synthetic
// traces round-trip exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "workload/job.hpp"

namespace librisk::workload::swf {

/// Thrown on malformed SWF input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ReadOptions {
  /// Drop jobs whose runtime or processor count is missing (-1) or zero —
  /// the usual cleaning step before simulation.
  bool skip_invalid = true;
  /// When an estimate is missing (-1), substitute the actual runtime
  /// (the archive's recommended fallback). If false, such jobs are dropped.
  bool estimate_fallback_to_runtime = true;
  /// Keep at most the *last* n jobs of the trace (0 = all). The paper uses
  /// the last 3000 jobs of SDSC SP2.
  std::size_t last_n = 0;
};

/// Parses an SWF stream. Comment lines (';') are ignored except for the
/// librisk deadline extension `;librisk-deadline: <id> <deadline> <urgency>`.
/// Jobs are returned in submit order with submit times rebased to 0.
[[nodiscard]] std::vector<Job> read(std::istream& in, const ReadOptions& opts = {});

/// Convenience: parses a file by path.
[[nodiscard]] std::vector<Job> read_file(const std::string& path,
                                         const ReadOptions& opts = {});

struct StreamOptions {
  /// Drop jobs whose runtime or processor count is missing (-1) or zero.
  bool skip_invalid = true;
  /// When an estimate is missing (-1), substitute the actual runtime.
  /// If false, such jobs are dropped.
  bool estimate_fallback_to_runtime = true;
  /// Rebase submit times so the first returned job arrives at t = 0
  /// (matching the batch reader). With require_monotone off a later job may
  /// end up with a negative submit time; that is the caller's problem.
  bool rebase_submit_times = true;
  /// Reject traces whose kept jobs are not submit-ordered. Streaming replay
  /// feeds an online engine that (correctly) refuses out-of-order arrivals,
  /// so the default fails fast at the parse with a line number instead of
  /// deep inside the simulation.
  bool require_monotone = true;
};

/// Line-at-a-time SWF reader: the streaming counterpart of read(). Holds
/// one Job and the not-yet-matched deadline notes — never the whole trace —
/// so replay memory is bounded by the simulation's resident set, not the
/// trace length. Unlike the batch reader it cannot sort or take a tail
/// subset (`last_n`); it expects a submit-ordered trace (see
/// StreamOptions::require_monotone). Deadline notes are matched and
/// discarded as their job lines arrive; write() interleaves each note
/// immediately before its job line so the pending-note map stays small.
class SwfStream {
 public:
  /// Streams from a caller-owned istream (must outlive the SwfStream).
  explicit SwfStream(std::istream& in, const StreamOptions& opts = {});
  /// Streams from a file; throws ParseError if it cannot be opened.
  explicit SwfStream(const std::string& path, const StreamOptions& opts = {});
  SwfStream(const SwfStream&) = delete;
  SwfStream& operator=(const SwfStream&) = delete;
  ~SwfStream();

  /// Parses forward to the next kept job; false at end of input.
  /// Throws ParseError (with the 1-based line number) on malformed input:
  /// truncated lines, non-numeric fields, or — when require_monotone —
  /// out-of-order submit times.
  [[nodiscard]] bool next(Job& job);

  /// 1-based number of the last line consumed (0 before the first next()).
  [[nodiscard]] int line_no() const noexcept { return line_no_; }
  [[nodiscard]] std::size_t jobs_returned() const noexcept { return returned_; }
  /// Jobs dropped by the cleaning rules (skip_invalid / estimate fallback).
  [[nodiscard]] std::size_t jobs_skipped() const noexcept { return skipped_; }
  /// Deadline notes read but not yet matched to a job line. Bounded (≤ 1)
  /// for traces written by write(); a legacy all-notes-in-header trace keeps
  /// them pending until their jobs arrive.
  [[nodiscard]] std::size_t pending_notes() const noexcept { return notes_.size(); }

 private:
  struct Note {
    double deadline = 0.0;
    Urgency urgency = Urgency::Unspecified;
  };

  std::unique_ptr<std::istream> owned_;  ///< set by the path constructor
  std::istream* in_;
  StreamOptions opts_;
  std::string line_;
  std::vector<std::string_view> tokens_;
  std::map<std::int64_t, Note> notes_;
  int line_no_ = 0;
  std::size_t returned_ = 0;
  std::size_t skipped_ = 0;
  double base_ = 0.0;             ///< first kept job's raw submit time
  double last_raw_submit_ = 0.0;  ///< monotonicity watermark (pre-rebase)
  std::int64_t last_id_ = -1;     ///< job that set the watermark…
  int last_line_ = 0;             ///< …and the line it came from
};

struct WriteOptions {
  /// Emit `;librisk-deadline:` comments so deadlines survive a round-trip.
  /// Each note is written immediately before its job's line, keeping the
  /// streaming reader's pending-note memory O(1).
  bool include_deadlines = true;
  /// Free-text header comment lines (each emitted as "; <line>").
  std::vector<std::string> header;
};

/// Writes jobs as SWF (18 fields, unknown fields as -1).
void write(std::ostream& out, const std::vector<Job>& jobs,
           const WriteOptions& opts = {});

/// Convenience: writes a file by path (throws on I/O failure).
void write_file(const std::string& path, const std::vector<Job>& jobs,
                const WriteOptions& opts = {});

}  // namespace librisk::workload::swf
