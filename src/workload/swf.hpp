// Standard Workload Format (SWF) reader/writer.
//
// SWF is the Parallel Workloads Archive's 18-field line format; the paper's
// workload is the SDSC SP2 trace in this format. The parser maps the fields
// librisk uses (submit, run time, requested time = user estimate, requested
// processors) and preserves provenance fields. Deadlines are *not* part of
// SWF — the paper synthesises them (see workload/deadlines.hpp); our writer
// can optionally carry them in a librisk comment extension so synthetic
// traces round-trip exactly.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "workload/job.hpp"

namespace librisk::workload::swf {

/// Thrown on malformed SWF input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ReadOptions {
  /// Drop jobs whose runtime or processor count is missing (-1) or zero —
  /// the usual cleaning step before simulation.
  bool skip_invalid = true;
  /// When an estimate is missing (-1), substitute the actual runtime
  /// (the archive's recommended fallback). If false, such jobs are dropped.
  bool estimate_fallback_to_runtime = true;
  /// Keep at most the *last* n jobs of the trace (0 = all). The paper uses
  /// the last 3000 jobs of SDSC SP2.
  std::size_t last_n = 0;
};

/// Parses an SWF stream. Comment lines (';') are ignored except for the
/// librisk deadline extension `;librisk-deadline: <id> <deadline> <urgency>`.
/// Jobs are returned in submit order with submit times rebased to 0.
[[nodiscard]] std::vector<Job> read(std::istream& in, const ReadOptions& opts = {});

/// Convenience: parses a file by path.
[[nodiscard]] std::vector<Job> read_file(const std::string& path,
                                         const ReadOptions& opts = {});

struct WriteOptions {
  /// Emit `;librisk-deadline:` comments so deadlines survive a round-trip.
  bool include_deadlines = true;
  /// Free-text header comment lines (each emitted as "; <line>").
  std::vector<std::string> header;
};

/// Writes jobs as SWF (18 fields, unknown fields as -1).
void write(std::ostream& out, const std::vector<Job>& jobs,
           const WriteOptions& opts = {});

/// Convenience: writes a file by path (throws on I/O failure).
void write_file(const std::string& path, const std::vector<Job>& jobs,
                const WriteOptions& opts = {});

}  // namespace librisk::workload::swf
