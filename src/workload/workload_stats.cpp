#include "workload/workload_stats.hpp"

#include <ostream>

#include "support/table.hpp"
#include "workload/deadlines.hpp"
#include "workload/estimates.hpp"

namespace librisk::workload {

double WorkloadStats::offered_utilization(int nodes) const noexcept {
  if (nodes <= 0 || span <= 0.0) return 0.0;
  return total_proc_seconds / (static_cast<double>(nodes) * span);
}

WorkloadStats compute_stats(const std::vector<Job>& jobs) {
  WorkloadStats out;
  out.job_count = jobs.size();
  if (jobs.empty()) return out;

  std::vector<double> inter, runtime, estimate, procs, factor;
  inter.reserve(jobs.size());
  runtime.reserve(jobs.size());
  estimate.reserve(jobs.size());
  procs.reserve(jobs.size());
  factor.reserve(jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    if (i > 0) inter.push_back(j.submit_time - jobs[i - 1].submit_time);
    runtime.push_back(j.actual_runtime);
    estimate.push_back(j.user_estimate);
    procs.push_back(static_cast<double>(j.num_procs));
    if (j.deadline > 0.0) factor.push_back(j.deadline_factor());
    out.total_proc_seconds += j.actual_runtime * j.num_procs;
  }

  out.interarrival = stats::summarize(inter);
  out.runtime = stats::summarize(runtime);
  out.user_estimate = stats::summarize(estimate);
  out.num_procs = stats::summarize(procs);
  out.deadline_factor = stats::summarize(factor);
  out.span = jobs.back().submit_time - jobs.front().submit_time;
  out.underestimated_fraction = underestimated_fraction(jobs);
  out.high_urgency_fraction = high_urgency_fraction(jobs);
  return out;
}

void print_stats(std::ostream& out, const WorkloadStats& s) {
  table::Table t({"metric", "mean", "stddev", "min", "max"});
  const auto row = [&](const char* name, const stats::Summary& sum, int dec = 1) {
    t.add_row({name, table::num(sum.mean, dec), table::num(sum.stddev, dec),
               table::num(sum.min, dec), table::num(sum.max, dec)});
  };
  row("inter-arrival (s)", s.interarrival);
  row("runtime (s)", s.runtime);
  row("user estimate (s)", s.user_estimate);
  row("processors", s.num_procs);
  row("deadline factor", s.deadline_factor, 2);
  out << "jobs: " << s.job_count << ", span: " << table::num(s.span / 86400.0, 1)
      << " days, under-estimated: " << table::pct(100.0 * s.underestimated_fraction)
      << "%, high-urgency: " << table::pct(100.0 * s.high_urgency_fraction) << "%\n"
      << t.str();
}

}  // namespace librisk::workload
