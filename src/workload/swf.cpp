#include "workload/swf.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace librisk::workload::swf {

namespace {

// SWF field indices (0-based) per the Parallel Workloads Archive definition.
enum Field : int {
  kJobNumber = 0,
  kSubmitTime = 1,
  kWaitTime = 2,
  kRunTime = 3,
  kUsedProcs = 4,
  kUsedCpuTime = 5,
  kUsedMemory = 6,
  kReqProcs = 7,
  kReqTime = 8,
  kReqMemory = 9,
  kStatus = 10,
  kUserId = 11,
  kGroupId = 12,
  kExecutable = 13,
  kQueue = 14,
  kPartition = 15,
  kPrecedingJob = 16,
  kThinkTime = 17,
};
constexpr int kFieldCount = 18;

double parse_number(std::string_view token, int line_no) {
  try {
    std::size_t pos = 0;
    const std::string s(token);
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    std::ostringstream os;
    os << "SWF line " << line_no << ": bad numeric field '" << token << "'";
    throw ParseError(os.str());
  }
}

// Parses the librisk comment extension:
//   ;librisk-deadline: <job-id> <deadline-seconds> <high|low|unspecified>
bool parse_deadline_note(std::string_view line, std::int64_t& id,
                         double& deadline, Urgency& urgency) {
  constexpr std::string_view prefix = ";librisk-deadline:";
  if (line.rfind(prefix, 0) != 0) return false;
  std::istringstream is{std::string(line.substr(prefix.size()))};
  std::string word;
  if (!(is >> id >> deadline >> word)) return false;
  if (word == "high") urgency = Urgency::High;
  else if (word == "low") urgency = Urgency::Low;
  else urgency = Urgency::Unspecified;
  return true;
}

// Strips the trailing CR of CRLF traces and leading whitespace.
std::string_view trimmed_view(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::string_view view = line;
  while (!view.empty() && (view.front() == ' ' || view.front() == '\t'))
    view.remove_prefix(1);
  return view;
}

void tokenize(std::string_view view, std::vector<std::string_view>& tokens) {
  tokens.clear();
  std::size_t pos = 0;
  while (pos < view.size()) {
    while (pos < view.size() && (view[pos] == ' ' || view[pos] == '\t')) ++pos;
    const std::size_t start = pos;
    while (pos < view.size() && view[pos] != ' ' && view[pos] != '\t') ++pos;
    if (pos > start) tokens.push_back(view.substr(start, pos - start));
  }
}

// Maps one tokenized data line onto the Job fields librisk uses. Throws
// ParseError on a short (truncated) line or a non-numeric field.
Job parse_job_fields(const std::vector<std::string_view>& tokens, int line_no) {
  if (static_cast<int>(tokens.size()) < kFieldCount) {
    std::ostringstream os;
    os << "SWF line " << line_no << ": expected " << kFieldCount
       << " whitespace-separated fields, got " << tokens.size()
       << " — truncated line or not an SWF trace?";
    throw ParseError(os.str());
  }
  Job job;
  job.id = static_cast<std::int64_t>(parse_number(tokens[kJobNumber], line_no));
  job.submit_time = parse_number(tokens[kSubmitTime], line_no);
  job.actual_runtime = parse_number(tokens[kRunTime], line_no);
  double procs = parse_number(tokens[kReqProcs], line_no);
  if (procs <= 0) procs = parse_number(tokens[kUsedProcs], line_no);
  job.num_procs = static_cast<int>(procs);
  job.user_estimate = parse_number(tokens[kReqTime], line_no);
  job.status = static_cast<int>(parse_number(tokens[kStatus], line_no));
  job.user_id = static_cast<int>(parse_number(tokens[kUserId], line_no));
  job.group_id = static_cast<int>(parse_number(tokens[kGroupId], line_no));
  job.queue = static_cast<int>(parse_number(tokens[kQueue], line_no));
  return job;
}

// Applies the archive's cleaning rules; returns false when the job should
// be dropped. Sets scheduler_estimate on kept jobs.
bool clean_job(Job& job, bool estimate_fallback_to_runtime, bool skip_invalid) {
  if (job.user_estimate <= 0.0) {
    if (estimate_fallback_to_runtime && job.actual_runtime > 0.0)
      job.user_estimate = job.actual_runtime;
    else if (skip_invalid)
      return false;
  }
  if ((job.actual_runtime <= 0.0 || job.num_procs <= 0) && skip_invalid)
    return false;
  job.scheduler_estimate = job.user_estimate;
  return true;
}

}  // namespace

std::vector<Job> read(std::istream& in, const ReadOptions& opts) {
  std::vector<Job> jobs;
  std::map<std::int64_t, std::pair<double, Urgency>> deadline_notes;
  std::string line;
  int line_no = 0;
  std::vector<std::string_view> tokens;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view view = trimmed_view(line);
    if (view.empty()) continue;
    if (view.front() == ';') {
      std::int64_t id = 0;
      double deadline = 0.0;
      Urgency urgency = Urgency::Unspecified;
      if (parse_deadline_note(view, id, deadline, urgency))
        deadline_notes[id] = {deadline, urgency};
      continue;
    }

    tokenize(view, tokens);
    if (tokens.empty()) continue;
    Job job = parse_job_fields(tokens, line_no);
    if (!clean_job(job, opts.estimate_fallback_to_runtime, opts.skip_invalid))
      continue;
    jobs.push_back(job);
  }

  // Attach deadline notes.
  for (Job& j : jobs) {
    const auto it = deadline_notes.find(j.id);
    if (it != deadline_notes.end()) {
      j.deadline = it->second.first;
      j.urgency = it->second.second;
    }
  }

  sort_by_submit(jobs);
  if (opts.last_n != 0 && jobs.size() > opts.last_n)
    jobs.erase(jobs.begin(), jobs.end() - static_cast<std::ptrdiff_t>(opts.last_n));

  // Rebase submit times so the subset starts at t = 0.
  if (!jobs.empty()) {
    const SimTime base = jobs.front().submit_time;
    for (Job& j : jobs) j.submit_time -= base;
  }
  return jobs;
}

std::vector<Job> read_file(const std::string& path, const ReadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open SWF file: " + path);
  return read(in, opts);
}

SwfStream::SwfStream(std::istream& in, const StreamOptions& opts)
    : in_(&in), opts_(opts) {}

SwfStream::SwfStream(const std::string& path, const StreamOptions& opts)
    : owned_(std::make_unique<std::ifstream>(path)), in_(owned_.get()),
      opts_(opts) {
  if (!*in_) throw ParseError("cannot open SWF file: " + path);
}

SwfStream::~SwfStream() = default;

bool SwfStream::next(Job& job) {
  while (std::getline(*in_, line_)) {
    ++line_no_;
    const std::string_view view = trimmed_view(line_);
    if (view.empty()) continue;
    if (view.front() == ';') {
      std::int64_t id = 0;
      Note note;
      if (parse_deadline_note(view, id, note.deadline, note.urgency))
        notes_[id] = note;
      continue;
    }

    tokenize(view, tokens_);
    if (tokens_.empty()) continue;
    Job parsed = parse_job_fields(tokens_, line_no_);
    if (!clean_job(parsed, opts_.estimate_fallback_to_runtime,
                   opts_.skip_invalid)) {
      ++skipped_;
      continue;
    }
    if (opts_.require_monotone && returned_ > 0 &&
        parsed.submit_time < last_raw_submit_) {
      // Name both offenders fully — job id, submit time and line for each
      // side of the inversion — so a bad trace can be fixed without a
      // second pass to find the earlier half of the pair.
      std::ostringstream os;
      os << "SWF line " << line_no_ << ": job " << parsed.id
         << " submitted at " << parsed.submit_time << ", before job "
         << last_id_ << " (line " << last_line_ << ") submitted at "
         << last_raw_submit_
         << " — streaming replay needs a submit-ordered trace; sort it first"
            " (the batch reader swf::read() sorts) or set"
            " StreamOptions::require_monotone = false";
      throw ParseError(os.str());
    }
    last_raw_submit_ = parsed.submit_time;
    last_id_ = parsed.id;
    last_line_ = line_no_;

    const auto it = notes_.find(parsed.id);
    if (it != notes_.end()) {
      parsed.deadline = it->second.deadline;
      parsed.urgency = it->second.urgency;
      notes_.erase(it);
    }
    if (opts_.rebase_submit_times) {
      if (returned_ == 0) base_ = parsed.submit_time;
      parsed.submit_time -= base_;
    }
    ++returned_;
    job = parsed;
    return true;
  }
  return false;
}

void write(std::ostream& out, const std::vector<Job>& jobs, const WriteOptions& opts) {
  for (const auto& line : opts.header) out << "; " << line << '\n';
  out << "; MaxJobs: " << jobs.size() << '\n';
  char buf[256];
  for (const Job& j : jobs) {
    // The note precedes its job line so a streaming reader holds at most
    // one unmatched note at a time.
    if (opts.include_deadlines && j.deadline > 0.0)
      out << ";librisk-deadline: " << j.id << ' ' << j.deadline << ' '
          << to_string(j.urgency) << '\n';
    std::snprintf(buf, sizeof buf,
                  "%lld %.0f -1 %.0f %d -1 -1 %d %.0f -1 %d %d %d -1 %d -1 -1 -1\n",
                  static_cast<long long>(j.id), j.submit_time, j.actual_runtime,
                  j.num_procs, j.num_procs, j.user_estimate, j.status, j.user_id,
                  j.group_id, j.queue);
    out << buf;
  }
}

void write_file(const std::string& path, const std::vector<Job>& jobs,
                const WriteOptions& opts) {
  std::ofstream out(path);
  LIBRISK_CHECK(static_cast<bool>(out), "cannot open for writing: " << path);
  write(out, jobs, opts);
  out.flush();
  LIBRISK_CHECK(static_cast<bool>(out), "write failed: " << path);
}

}  // namespace librisk::workload::swf
