#include "workload/partition.hpp"

#include "support/check.hpp"

namespace librisk::workload {

std::vector<std::vector<Job>> partition_by_assignment(
    const std::vector<Job>& jobs, const std::vector<int>& assignment,
    std::size_t groups) {
  LIBRISK_CHECK(assignment.size() == jobs.size(),
                "assignment covers " << assignment.size() << " jobs, trace has "
                                     << jobs.size());
  std::vector<std::vector<Job>> parts(groups);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const int g = assignment[i];
    LIBRISK_CHECK(g >= 0 && static_cast<std::size_t>(g) < groups,
                  "job " << jobs[i].id << " assigned to group " << g
                         << ", have " << groups);
    parts[static_cast<std::size_t>(g)].push_back(jobs[i]);
  }
  return parts;
}

}  // namespace librisk::workload
