// Trace splitting: divide one globally-ordered job trace into per-group
// sub-traces. The federation equivalence tests use this to prove routing
// composes — record which shard each job was routed to, split the trace by
// that assignment, and each sub-trace replayed on a standalone engine is
// byte-identical to what the shard saw inside the federation.
#pragma once

#include <vector>

#include "workload/job.hpp"

namespace librisk::workload {

/// Partitions `jobs` into `groups` sub-traces by `assignment[i]` (the group
/// of jobs[i]). Relative order is preserved, so sub-traces of a trace with
/// monotone submit times are themselves valid traces. Throws CheckError on
/// size mismatch or an assignment out of [0, groups).
[[nodiscard]] std::vector<std::vector<Job>> partition_by_assignment(
    const std::vector<Job>& jobs, const std::vector<int>& assignment,
    std::size_t groups);

}  // namespace librisk::workload
