// Online per-user runtime-estimate correction (Tsafrir et al. [17] style).
//
// Users over-estimate habitually; a system can observe each user's history
// of actual/estimate ratios and shrink future estimates accordingly. This
// module provides:
//  - OnlinePredictor: streaming per-user correction state (exponential
//    moving average of actual/estimate, with a global fallback for users
//    without history and a safety floor so corrections never promise more
//    than the user did... less, rather: never *extend* an estimate).
//  - apply_predictor_causally: rewrites scheduler_estimate across a trace,
//    feeding each completed job back in timestamp order. Feedback for job i
//    uses only jobs whose earliest possible completion (submit + actual
//    runtime) precedes i's submission — causal with respect to any
//    work-conserving schedule, i.e. an upper bound on what a deployed
//    predictor could know. The experiment this enables: would corrected
//    estimates close Libra's gap to LibraRisk? (bench/ablation_predictor)
#pragma once

#include <unordered_map>
#include <vector>

#include "workload/job.hpp"

namespace librisk::workload {

struct PredictorConfig {
  /// EMA weight of the newest observation (0 < alpha <= 1).
  double alpha = 0.3;
  /// Observations needed before a user's own EMA is trusted; below this the
  /// global EMA is used.
  int min_user_history = 3;
  /// Corrected estimate = estimate * clamp(ratio EMA, floor, 1.0) — the
  /// predictor only ever *shrinks* estimates (a correction above the user's
  /// own estimate would get jobs killed on a real kill-at-limit system).
  double correction_floor = 0.05;
  /// Safety margin multiplied onto the learned ratio (>= 1) so corrections
  /// stay conservative; 1.0 = aggressive.
  double safety_margin = 1.1;

  void validate() const;
};

class OnlinePredictor {
 public:
  explicit OnlinePredictor(PredictorConfig config = {});

  /// Feeds back a completed job's (estimate, actual) pair.
  void observe(const Job& job);

  /// Corrected scheduler estimate for a job about to be submitted.
  [[nodiscard]] double predict(const Job& job) const;

  /// The correction multiplier predict() would apply (diagnostics/tests).
  [[nodiscard]] double correction_factor(const Job& job) const;

  [[nodiscard]] std::size_t observations() const noexcept { return observed_; }

 private:
  struct UserState {
    double ratio_ema = 1.0;
    int count = 0;
  };

  PredictorConfig config_;
  std::unordered_map<int, UserState> users_;
  UserState global_;
  std::size_t observed_ = 0;
};

/// Rewrites scheduler_estimate across a submit-ordered trace using an
/// OnlinePredictor fed causally (see file comment). Returns the number of
/// jobs whose estimate was actually shrunk.
std::size_t apply_predictor_causally(std::vector<Job>& jobs,
                                     const PredictorConfig& config = {});

/// Mean absolute relative error |estimate - actual| / actual of the
/// scheduler-visible estimates — the accuracy measure predictors improve.
[[nodiscard]] double mean_estimate_error(const std::vector<Job>& jobs) noexcept;

}  // namespace librisk::workload
