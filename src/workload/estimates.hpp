// User runtime-estimate modelling.
//
// Two jobs here:
//  1. UserEstimateModel — synthesises the "actual runtime estimates from the
//     trace": modal (users round up to common queue limits), mostly
//     over-estimated, a spike at estimate == runtime (jobs killed at their
//     limit), and a minority of *under*-estimates. These are the properties
//     Mu'alem & Feitelson [9] and Tsafrir et al. [17] document for the SDSC
//     SP2 trace, and the ones the paper's admission controls are sensitive
//     to.
//  2. apply_inaccuracy — the paper's Section 5.5 knob: an inaccuracy of X%
//     sets the scheduler-visible estimate to
//     runtime + (X/100) * (user_estimate - runtime), so 0% means perfectly
//     accurate estimates and 100% means the trace's estimates.
#pragma once

#include <vector>

#include "support/rng.hpp"
#include "workload/job.hpp"

namespace librisk::workload {

struct UserEstimateConfig {
  /// Common user-picked runtime limits, in seconds, ascending.
  /// Default: 15 m, 30 m, 1 h, 2 h, 4 h, 8 h, 12 h, 18 h (SP2 queue maxima).
  std::vector<double> modal_limits =
      {900, 1800, 3600, 7200, 14400, 28800, 43200, 64800};
  /// Probability a job hits its estimate exactly (killed-at-limit spike;
  /// Mu'alem & Feitelson report a pronounced spike at estimate == runtime
  /// for the SDSC SP2 because jobs are killed at their limit).
  double exact_fraction = 0.15;
  /// Probability the user under-estimates (actual exceeds the estimate).
  /// Rare in the SDSC SP2 trace — the kill-at-limit policy truncates most
  /// overruns — but present as logging anomalies and grace-period runs.
  double underestimate_fraction = 0.05;
  /// Under-estimates draw actual/estimate from U(1.05, this]; i.e. the job
  /// runs up to this factor longer than promised.
  double max_underestimate_overrun = 1.4;
  /// Over-estimates round the padded runtime up to a modal limit after
  /// padding by a lognormal factor with this median and sigma — matches the
  /// long-tailed estimate/runtime ratios in the trace (median ~3-5).
  double overestimate_median_factor = 3.0;
  double overestimate_sigma = 0.8;
  /// Per-user habit: each user's over-estimation median is scaled by a
  /// lognormal bias with this sigma (0 disables). Real users are
  /// consistently cautious or consistently tight (Tsafrir et al. [17]),
  /// which is what makes per-user estimate predictors learnable.
  double user_bias_sigma = 0.5;

  void validate() const;
};

/// Assigns `user_estimate` to every job from its actual runtime. Resets
/// `scheduler_estimate` to the new user estimate. Deterministic in `stream`.
void assign_user_estimates(std::vector<Job>& jobs, const UserEstimateConfig& config,
                           rng::Stream& stream);

/// Sets every job's scheduler_estimate by interpolating between perfect
/// knowledge and the user estimate. `inaccuracy_pct` in [0, 100].
void apply_inaccuracy(std::vector<Job>& jobs, double inaccuracy_pct);

/// Fraction of jobs whose user estimate is below their actual runtime.
[[nodiscard]] double underestimated_fraction(const std::vector<Job>& jobs) noexcept;

/// Mean of estimate / runtime over the trace (the over-estimation factor).
[[nodiscard]] double mean_overestimate_factor(const std::vector<Job>& jobs) noexcept;

}  // namespace librisk::workload
