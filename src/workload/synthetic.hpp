// Synthetic SDSC-SP2-like trace generator.
//
// The paper simulates the last 3000 jobs of the SDSC SP2 trace
// (Apr 1998 - Apr 2000, v2.2). That file cannot ship with this repository,
// so SdscSp2Model generates a statistically matched stand-in calibrated to
// the subset statistics the paper reports:
//   mean inter-arrival 2131 s, mean runtime ~2.7 h, mean processors ~17,
//   128 single-CPU nodes. Real SWF traces drop in via workload/swf.hpp and
//   run through exactly the same pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "workload/deadlines.hpp"
#include "workload/estimates.hpp"
#include "workload/job.hpp"

namespace librisk::workload {

struct SdscSp2Config {
  /// Number of jobs to generate (paper: 3000).
  std::size_t job_count = 3000;
  /// Mean inter-arrival time in seconds before scaling (paper: 2131 s).
  double mean_interarrival = 2131.0;
  /// Coefficient of variation of inter-arrivals; supercomputer arrivals are
  /// burstier than Poisson (CV ~2.4 for SDSC SP2).
  double interarrival_cv = 2.4;
  /// Arrival delay factor (paper Section 4): simulated inter-arrival =
  /// factor * trace inter-arrival. Lower = heavier workload. Default 1.
  double arrival_delay_factor = 1.0;

  /// Mean of the *untruncated* lognormal runtime distribution; after
  /// truncation to [min_runtime, max_runtime] the realised mean is ~9720 s
  /// = 2.7 h, the paper's subset statistic.
  double mean_runtime = 13500.0;
  /// Coefficient of variation of the lognormal runtime distribution.
  double runtime_cv = 2.2;
  /// Shortest job the model emits (trace cleaning removes sub-10 s jobs).
  double min_runtime = 10.0;
  /// Queue maximum (SP2 long queue: 18 h).
  double max_runtime = 64800.0;

  /// Largest request the machine can hold (SDSC SP2: 128 nodes).
  int max_procs = 128;
  /// Number of distinct users submitting jobs; activity is skewed (a few
  /// heavy users dominate, as in real traces). Jobs carry user_id so
  /// estimate predictors have per-user history to learn from.
  int user_count = 64;
  /// Power-of-two request weights for 1, 2, 4, ..., 128 processors
  /// (calibrated to a mean request of ~17); a small non-power tail is mixed
  /// in with probability nonpower_fraction.
  std::vector<double> power_weights = {18, 13, 15, 19, 15, 11, 6.8, 2.2};
  double nonpower_fraction = 0.08;

  void validate() const;
};

/// Generates arrival times, runtimes and processor requests. Estimates and
/// deadlines are left to the dedicated models (see make_paper_workload).
[[nodiscard]] std::vector<Job> generate_base_trace(const SdscSp2Config& config,
                                                   rng::Stream& stream);

/// End-to-end workload used by the experiments: base trace + user estimates
/// + deadlines + inaccuracy interpolation, all derived from one root seed.
struct PaperWorkloadConfig {
  SdscSp2Config trace;
  UserEstimateConfig estimates;
  DeadlineConfig deadlines;
  /// Estimate inaccuracy in [0, 100]: 0 = accurate, 100 = trace estimates.
  double inaccuracy_pct = 100.0;
};

[[nodiscard]] std::vector<Job> make_paper_workload(const PaperWorkloadConfig& config,
                                                   std::uint64_t root_seed);

}  // namespace librisk::workload
