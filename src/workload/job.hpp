// The job model shared by every scheduler and executor.
//
// Runtimes are expressed in seconds at a reference node rating (the SDSC SP2
// SPEC rating by default); a node of rating R executes reference-seconds at
// R / R_ref per wall-clock second. A job's SLA is its relative deadline:
// it must complete within `deadline` seconds of submission to be useful
// (hard deadline, Section 3 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace librisk::workload {

using sim::SimTime;

/// Deadline-urgency class a job was generated into (Section 4 of the paper:
/// high-urgency jobs get low deadline/runtime factors).
enum class Urgency : std::uint8_t { Unspecified = 0, High = 1, Low = 2 };

[[nodiscard]] const char* to_string(Urgency u) noexcept;

struct Job {
  /// Trace-unique id (SWF job number for parsed traces).
  std::int64_t id = 0;
  /// Submission time, seconds since trace start.
  SimTime submit_time = 0.0;
  /// True runtime in reference-seconds (unknown to the scheduler).
  double actual_runtime = 0.0;
  /// The user-supplied runtime estimate from the trace, reference-seconds.
  double user_estimate = 0.0;
  /// The estimate the *scheduler* sees. Defaults to user_estimate; the
  /// inaccuracy model (Section 5.5) interpolates it between actual_runtime
  /// (0% inaccuracy) and user_estimate (100%).
  double scheduler_estimate = 0.0;
  /// Minimum number of processors (= nodes, one CPU each) required.
  int num_procs = 1;
  /// Relative hard deadline in seconds; absolute deadline is
  /// submit_time + deadline.
  double deadline = 0.0;
  /// Which urgency class generated the deadline.
  Urgency urgency = Urgency::Unspecified;
  /// SWF provenance fields (kept for round-tripping real traces).
  int user_id = -1;
  int group_id = -1;
  int queue = -1;
  int status = -1;

  [[nodiscard]] SimTime absolute_deadline() const noexcept {
    return submit_time + deadline;
  }

  /// deadline / runtime factor this job was assigned (>= 1 for feasible jobs).
  [[nodiscard]] double deadline_factor() const noexcept {
    return actual_runtime > 0.0 ? deadline / actual_runtime : 0.0;
  }

  /// Throws CheckError when a field is out of domain (called by every
  /// pipeline stage that hands jobs to a scheduler).
  void validate() const;
};

/// Validates a whole trace: per-job domains plus non-decreasing submit
/// times (schedulers rely on arrival order).
void validate_trace(const std::vector<Job>& jobs);

/// Sorts by (submit_time, id) — canonical arrival order.
void sort_by_submit(std::vector<Job>& jobs);

/// Scales every inter-arrival gap by `factor`, anchored at the first
/// arrival: submit' = first + (submit - first) * factor. Deadlines are
/// relative so they move with their job untouched. factor < 1 compresses
/// the trace (offered load / factor — the saturation sweep's knob), > 1
/// stretches it; 1 is the identity. Monotone-preserving for factor > 0.
void scale_interarrivals(std::vector<Job>& jobs, double factor);

/// Streaming form of scale_interarrivals for line-at-a-time replay: the
/// first job seen anchors the map, every later job is rescaled around it.
/// Feeding the same arrival sequence gives byte-identical submit times to
/// the batch helper.
class InterarrivalScaler {
 public:
  /// factor must be > 0 (checked).
  explicit InterarrivalScaler(double factor);

  void apply(Job& job) noexcept;

 private:
  double factor_;
  bool seen_first_ = false;
  SimTime first_ = 0.0;
};

}  // namespace librisk::workload
