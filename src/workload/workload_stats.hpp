// Summary statistics over a trace — used to verify that synthetic workloads
// match the paper's reported subset statistics, and by examples/reports.
#pragma once

#include <iosfwd>
#include <vector>

#include "support/stats.hpp"
#include "workload/job.hpp"

namespace librisk::workload {

struct WorkloadStats {
  std::size_t job_count = 0;
  stats::Summary interarrival;      ///< seconds between consecutive submits
  stats::Summary runtime;           ///< actual runtimes, reference-seconds
  stats::Summary user_estimate;     ///< user estimates, reference-seconds
  stats::Summary num_procs;         ///< processors requested
  stats::Summary deadline_factor;   ///< deadline / runtime
  double span = 0.0;                ///< last submit - first submit, seconds
  double underestimated_fraction = 0.0;
  double high_urgency_fraction = 0.0;
  /// Offered load against a cluster of `nodes` processors: total
  /// processor-seconds demanded / (nodes * span).
  [[nodiscard]] double offered_utilization(int nodes) const noexcept;
  double total_proc_seconds = 0.0;
};

[[nodiscard]] WorkloadStats compute_stats(const std::vector<Job>& jobs);

/// Human-readable one-block report.
void print_stats(std::ostream& out, const WorkloadStats& stats);

}  // namespace librisk::workload
