#include "exp/sweep.hpp"

#include <mutex>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace librisk::exp {

std::vector<SweepCell> run_sweep(const Scenario& base, const SweepConfig& config) {
  LIBRISK_CHECK(!config.axis.empty(), "sweep needs axis values");
  LIBRISK_CHECK(!config.policies.empty(), "sweep needs policies");
  LIBRISK_CHECK(!config.seeds.empty(), "sweep needs seeds");
  LIBRISK_CHECK(config.apply != nullptr, "sweep needs an apply function");

  std::vector<SweepCell> cells;
  cells.reserve(config.axis.size() * config.policies.size());
  for (const double x : config.axis) {
    for (const core::Policy policy : config.policies) {
      SweepCell cell;
      cell.x = x;
      cell.policy = policy;
      cell.fulfilled_pct_by_seed.assign(config.seeds.size(), 0.0);
      cell.avg_slowdown_by_seed.assign(config.seeds.size(), 0.0);
      cells.push_back(cell);
    }
  }

  struct Task {
    std::size_t cell_index;
    std::size_t seed_index;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  tasks.reserve(cells.size() * config.seeds.size());
  for (std::size_t c = 0; c < cells.size(); ++c)
    for (std::size_t k = 0; k < config.seeds.size(); ++k)
      tasks.push_back(Task{c, k, config.seeds[k]});

  std::mutex cells_mutex;
  support::ThreadPool pool(config.threads);
  support::parallel_for(pool, tasks.size(), [&](std::size_t i) {
    const Task& task = tasks[i];
    Scenario scenario = base;
    scenario.policy = cells[task.cell_index].policy;
    scenario.seed = task.seed;
    config.apply(scenario, cells[task.cell_index].x);
    const ScenarioResult result = run_scenario(scenario);

    const std::scoped_lock lock(cells_mutex);
    SweepCell& cell = cells[task.cell_index];
    cell.fulfilled_pct.add(result.summary.fulfilled_pct);
    cell.avg_slowdown.add(result.summary.avg_slowdown_fulfilled);
    cell.fulfilled_pct_by_seed[task.seed_index] = result.summary.fulfilled_pct;
    cell.avg_slowdown_by_seed[task.seed_index] = result.summary.avg_slowdown_fulfilled;
    cell.accepted.add(static_cast<double>(result.summary.accepted));
    cell.completed_late.add(static_cast<double>(result.summary.completed_late));
    cell.utilization.add(result.summary.utilization);
    cell.fulfilled_pct_high_urgency.add(result.summary.fulfilled_pct_high_urgency);
  });

  return cells;
}

}  // namespace librisk::exp
