#include "exp/scenario.hpp"

#include "core/scheduler.hpp"
#include "support/check.hpp"

namespace librisk::exp {

namespace {

cluster::Cluster build_cluster(const Scenario& scenario) {
  if (scenario.node_ratings.empty())
    return cluster::Cluster::homogeneous(scenario.nodes, scenario.rating);
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(scenario.node_ratings.size());
  for (int i = 0; i < static_cast<int>(scenario.node_ratings.size()); ++i)
    specs.push_back({i, scenario.node_ratings[i]});
  return cluster::Cluster(std::move(specs), scenario.rating);
}

}  // namespace

ScenarioResult run_jobs(const Scenario& scenario,
                        const std::vector<workload::Job>& jobs) {
  LIBRISK_CHECK(scenario.nodes > 0 || !scenario.node_ratings.empty(),
                "scenario needs nodes");
  LIBRISK_CHECK(scenario.warmup_fraction >= 0.0 && scenario.cooldown_fraction >= 0.0 &&
                    scenario.warmup_fraction + scenario.cooldown_fraction < 1.0,
                "measurement window fractions out of domain");
  const cluster::Cluster cluster = build_cluster(scenario);

  sim::Simulator simulator;
  metrics::Collector collector;
  const auto stack = core::make_scheduler(scenario.policy, simulator, cluster,
                                          collector, scenario.options);
  obs::Telemetry* telemetry = scenario.options.telemetry;
  core::run_trace(simulator, stack->scheduler(), collector, jobs,
                  scenario.options.trace, telemetry);

  metrics::Collector::MeasurementWindow window;
  if (!jobs.empty() &&
      (scenario.warmup_fraction > 0.0 || scenario.cooldown_fraction > 0.0)) {
    const sim::SimTime first = jobs.front().submit_time;
    const sim::SimTime span = jobs.back().submit_time - first;
    window.begin = first + scenario.warmup_fraction * span;
    window.end = first + (1.0 - scenario.cooldown_fraction) * span;
  }

  ScenarioResult result;
  {
    obs::ScopedPhase phase(
        telemetry != nullptr ? &telemetry->profiler() : nullptr,
        obs::Phase::Metrics);
    result.summary = collector.summarize(window);
  }
  result.events_processed = simulator.events_processed();
  result.admission = stack->admission_stats();
  result.kernel = stack->kernel_stats();
  result.outcomes.reserve(collector.records().size());
  for (const auto& [id, record] : collector.records()) {
    result.outcomes.push_back(JobOutcome{
        .id = id,
        .fate = record.fate,
        .delay = record.delay,
        .slowdown = record.started ? record.slowdown() : 0.0,
        .underestimated = record.job->user_estimate < record.job->actual_runtime,
        .urgency = record.job->urgency});
  }
  // Utilization over the whole simulated horizon (not the measurement
  // window): delivered busy node-seconds / total capacity.
  if (simulator.now() > 0.0) {
    result.summary.utilization =
        stack->busy_node_seconds(simulator.now()) /
        (static_cast<double>(cluster.size()) * simulator.now());
  }
  if (telemetry != nullptr) result.profile = telemetry->profiler().report();
  return result;
}

ScenarioResult run_scenario(const Scenario& scenario) {
  const std::vector<workload::Job> jobs =
      workload::make_paper_workload(scenario.workload, scenario.seed);
  return run_jobs(scenario, jobs);
}

}  // namespace librisk::exp
