#include "exp/scenario.hpp"

#include <unordered_map>

#include "core/engine.hpp"
#include "support/check.hpp"

namespace librisk::exp {

namespace {

cluster::Cluster build_cluster(const Scenario& scenario) {
  if (scenario.node_ratings.empty())
    return cluster::Cluster::homogeneous(scenario.nodes, scenario.rating);
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(scenario.node_ratings.size());
  for (int i = 0; i < static_cast<int>(scenario.node_ratings.size()); ++i)
    specs.push_back({i, scenario.node_ratings[i]});
  return cluster::Cluster(std::move(specs), scenario.rating);
}

}  // namespace

ScenarioResult run_jobs(const Scenario& scenario,
                        const std::vector<workload::Job>& jobs) {
  LIBRISK_CHECK(scenario.nodes > 0 || !scenario.node_ratings.empty(),
                "scenario needs nodes");
  LIBRISK_CHECK(scenario.warmup_fraction >= 0.0 && scenario.cooldown_fraction >= 0.0 &&
                    scenario.warmup_fraction + scenario.cooldown_fraction < 1.0,
                "measurement window fractions out of domain");

  core::EngineConfig config;
  config.cluster = build_cluster(scenario);
  config.policy = scenario.policy;
  config.options = scenario.options;
  const std::unique_ptr<core::AdmissionEngine> engine =
      core::make_engine(std::move(config));
  // Eager submission: each call returns the decision, which carries the
  // placement detail (node, tentative sigma) that the collector record
  // cannot — keep it until the outcomes are assembled below.
  std::unordered_map<std::int64_t, core::AdmissionOutcome> decisions;
  decisions.reserve(jobs.size());
  for (const workload::Job& job : jobs)
    decisions.emplace(job.id, engine->submit(job));
  engine->finish();

  metrics::Collector::MeasurementWindow window;
  if (!jobs.empty() &&
      (scenario.warmup_fraction > 0.0 || scenario.cooldown_fraction > 0.0)) {
    const sim::SimTime first = jobs.front().submit_time;
    const sim::SimTime span = jobs.back().submit_time - first;
    window.begin = first + scenario.warmup_fraction * span;
    window.end = first + (1.0 - scenario.cooldown_fraction) * span;
  }

  obs::Telemetry* telemetry = scenario.options.hooks.telemetry;
  ScenarioResult result;
  {
    obs::ScopedPhase phase(
        telemetry != nullptr ? &telemetry->profiler() : nullptr,
        obs::Phase::Metrics);
    result.summary = engine->collector().summarize(window);
  }
  result.events_processed = engine->events_processed();
  result.admission = engine->admission_stats();
  result.kernel = engine->kernel_stats();
  const auto& records = engine->collector().records();
  result.outcomes.reserve(records.size());
  for (const auto& [id, record] : records) {
    const core::AdmissionOutcome& decision = decisions.at(id);
    result.outcomes.push_back(JobOutcome{
        .id = id,
        .fate = record.fate,
        .verdict = decision.verdict,
        .delay = record.delay,
        .slowdown = record.started ? record.slowdown() : 0.0,
        .underestimated = record.underestimated,
        .urgency = record.urgency,
        .reason = record.reject_reason,
        .node = decision.node,
        .sigma = decision.sigma,
        .margin = decision.margin});
  }
  // Utilization over the whole simulated horizon (not the measurement
  // window): delivered busy node-seconds / total capacity.
  if (engine->now() > 0.0) {
    result.summary.utilization =
        engine->busy_node_seconds() /
        (static_cast<double>(engine->cluster_size()) * engine->now());
  }
  if (telemetry != nullptr) result.profile = telemetry->profiler().report();
  return result;
}

ScenarioResult run_scenario(const Scenario& scenario) {
  const std::vector<workload::Job> jobs =
      workload::make_paper_workload(scenario.workload, scenario.seed);
  return run_jobs(scenario, jobs);
}

}  // namespace librisk::exp
