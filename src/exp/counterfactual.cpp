#include "exp/counterfactual.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace librisk::exp {

ScenarioResult run_with_margins(Scenario scenario,
                                obs::ExplainRecorder& recorder) {
  scenario.options.hooks.explain = &recorder;
  return run_scenario(scenario);
}

CounterfactualSweep sweep_sigma_thresholds(
    const Scenario& base, const std::vector<double>& thresholds) {
  LIBRISK_CHECK(base.policy == core::Policy::LibraRisk,
                "the counterfactual sigma sweep needs LibraRisk (the policy "
                "whose admission test the threshold parameterises)");
  LIBRISK_CHECK(base.options.risk.rule == core::RiskConfig::Rule::SigmaOnly,
                "the stability-interval argument holds for the sigma-only "
                "rule; SigmaAndNoDelay fails nodes for threshold-independent "
                "reasons the recorded extremes cannot certify");
  const double tolerance = base.options.risk.tolerance;

  // One cached entry per simulation actually run: the extremes certify the
  // threshold interval on which its decisions — hence its summary — are
  // provably those of a fresh run.
  struct Segment {
    obs::SigmaExtremes extremes;
    metrics::RunSummary summary;
  };
  std::vector<Segment> segments;

  CounterfactualSweep sweep;
  sweep.points.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    CounterfactualPoint point;
    point.threshold = threshold;
    const auto covering =
        std::find_if(segments.begin(), segments.end(),
                     [&](const Segment& s) {
                       return s.extremes.covers(threshold, tolerance);
                     });
    if (covering != segments.end()) {
      point.replayed = false;
      point.summary = covering->summary;
      point.extremes = covering->extremes;
    } else {
      Scenario probe = base;
      probe.options.risk.sigma_threshold = threshold;
      // Extremes-only recording: capacity 0 retains no decision bodies, so
      // the sweep's memory cost is O(1) per segment.
      obs::ExplainRecorder recorder(
          obs::ExplainConfig{.capacity = 0, .keep_nodes = false});
      const ScenarioResult result = run_with_margins(probe, recorder);
      point.replayed = true;
      point.summary = result.summary;
      point.extremes = recorder.sigma_extremes();
      segments.push_back(Segment{point.extremes, point.summary});
      ++sweep.replays;
    }
    sweep.points.push_back(point);
  }
  return sweep;
}

}  // namespace librisk::exp
