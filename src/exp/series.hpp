// Figure-series formatting: turns sweep cells into the tables and CSV rows
// the paper's figures plot (one series per policy).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "support/csv.hpp"

namespace librisk::exp {

/// Which sweep measurement a printed series shows.
enum class Measure {
  FulfilledPct,        ///< paper metric (i)
  AvgSlowdown,         ///< paper metric (ii)
  Accepted,
  CompletedLate,
  Utilization,
  FulfilledPctHighUrgency,
};

[[nodiscard]] const char* to_string(Measure measure) noexcept;

/// Prints one sub-figure: rows = axis values, one column per policy, cell =
/// mean over seeds with the 95% CI half-width in parentheses.
void print_series(std::ostream& out, const std::string& title,
                  const std::string& x_label, const std::vector<SweepCell>& cells,
                  Measure measure);

/// Appends rows "<figure>,<x>,<policy>,<measure>,<mean>,<ci95>,<n>" for every
/// cell and the given measures. Writes a header when the writer is fresh.
void write_series_csv(csv::Writer& writer, const std::string& figure,
                      const std::vector<SweepCell>& cells,
                      const std::vector<Measure>& measures);

/// Convenience used by every figure binary: prints fulfilled% + slowdown
/// tables for a (sub-figure title, cells) pair and appends the CSV rows.
void emit_subfigure(std::ostream& out, csv::Writer& writer,
                    const std::string& figure_id, const std::string& title,
                    const std::string& x_label, const std::vector<SweepCell>& cells);

/// Prints a per-axis paired-significance line for fulfilled % between two
/// policies (same seeds = same job streams): mean difference, paired
/// p-value, bootstrap win rate. No-op when either policy is absent or only
/// one seed was run.
void print_significance(std::ostream& out, const std::vector<SweepCell>& cells,
                        core::Policy a, core::Policy b);

}  // namespace librisk::exp
