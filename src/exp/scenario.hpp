// One simulation run = one Scenario: workload knobs + cluster + policy.
// run_scenario() is the pure entry point the sweeps, tests and examples
// share — same seed, same parameters, same numbers, every time.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "core/factory.hpp"
#include "metrics/collector.hpp"
#include "trace/event.hpp"
#include "workload/synthetic.hpp"

namespace librisk::exp {

struct Scenario {
  /// Workload generation (trace, estimates, deadlines, inaccuracy).
  workload::PaperWorkloadConfig workload;
  /// Cluster shape (paper: 128 nodes at SPEC rating 168).
  int nodes = 128;
  double rating = 168.0;
  /// Heterogeneous override: per-node SPEC ratings (normalised to `rating`).
  /// When non-empty it defines the cluster and `nodes` is ignored.
  std::vector<double> node_ratings;
  /// Admission-control policy under test.
  core::Policy policy = core::Policy::LibraRisk;
  core::PolicyOptions options;
  /// Root seed; every random stream derives from it.
  std::uint64_t seed = 1;
  /// Steady-state methodology: fraction of the submission span excluded
  /// from the metrics at each end (jobs still run; they are just not
  /// measured). 0 = measure everything, the paper's convention.
  double warmup_fraction = 0.0;
  double cooldown_fraction = 0.0;
};

/// Per-job outcome kept alongside the aggregate summary, enabling
/// diagnosis (e.g. were the late jobs the under-estimated ones themselves,
/// or well-estimated victims squeezed by a co-located overrun?). The
/// decision fields (reason, node, sigma) come from the engine's per-job
/// AdmissionOutcome — run_jobs submits eagerly and keeps each verdict.
struct JobOutcome {
  std::int64_t id = 0;
  metrics::JobFate fate{};
  /// Submit-time verdict, overload variants included: DegradedAdmit marks a
  /// licensed degraded-mode admission, Deferred a salvage-lane park (the
  /// job's final word is still `fate`). Renderers must not fold these into
  /// plain accepted/rejected — they are the jobs the overload catalog
  /// exists to account for.
  core::AdmissionOutcome::Verdict verdict = core::AdmissionOutcome::Verdict::Queued;
  double delay = 0.0;
  double slowdown = 0.0;
  bool underestimated = false;  ///< user_estimate < actual_runtime
  workload::Urgency urgency{};
  /// Which admission test said no (None unless the fate is a rejection).
  trace::RejectionReason reason = trace::RejectionReason::None;
  /// First node an accepted job was placed on; -1 when rejected or when
  /// the policy does not report placement at admission.
  std::int32_t node = -1;
  /// Tentative sigma the admission test saw; -1 when no sigma test ran.
  double sigma = -1.0;
  /// Chosen-node admission margin for accepts (signed headroom of the
  /// decisive test); 0.0 when the policy computes none.
  double margin = 0.0;
};

struct ScenarioResult {
  metrics::RunSummary summary;
  std::vector<JobOutcome> outcomes;
  std::uint64_t events_processed = 0;
  /// Admission hot-path counters (all-zero for space-shared policies).
  core::AdmissionStats admission;
  /// Execution-kernel effort counters (all-zero for space-shared policies).
  cluster::KernelStats kernel;
  /// Wall-clock phase profile; empty() unless options.hooks.telemetry was set.
  obs::ProfileReport profile;
};

/// Generates the workload, runs the policy on it, returns the summary
/// (with utilization filled in).
[[nodiscard]] ScenarioResult run_scenario(const Scenario& scenario);

/// Same, but over a caller-provided job list (e.g. a parsed SWF trace).
/// Jobs must be validated and submit-ordered.
[[nodiscard]] ScenarioResult run_jobs(const Scenario& scenario,
                                      const std::vector<workload::Job>& jobs);

}  // namespace librisk::exp
