// Counterfactual sigma-threshold sweeps from recorded admission margins
// (docs/OBSERVABILITY.md "Counterfactual sweeps", EXPERIMENTS.md).
//
// The paper's risk knob (Fig. 6) is the sigma threshold of the zero-risk
// test. Sweeping it naively costs one full simulation per probed value.
// But the sigma-only test `sigma <= threshold + tolerance` is monotone in
// sigma, and a run recorded through an obs::ExplainRecorder knows the
// extremes of every sigma it tested (SigmaExtremes): the largest sigma that
// passed and the smallest that failed. For any probe threshold T' where
//
//   pass_max <= T' + tolerance   and   !(fail_min <= T' + tolerance)
//
// — evaluated with the engine's own floating-point expressions — every
// per-node verdict is provably unchanged, hence the whole deterministic
// decision trajectory and every summary metric are *identical*. Probes
// inside a certified interval reuse the recorded run's summary; probes
// outside it trigger one fresh run, whose own extremes certify a new
// interval. The sweep therefore costs one simulation per decision-regime
// segment rather than one per probe, and the reuse is exact, not
// approximate — tests/test_counterfactual.cpp checks every point against an
// independent rerun.
//
// Scope: the certification argument is specific to LibraRisk with the
// sigma-only rule (the paper's default salvage lane). Other policies or the
// SigmaAndNoDelay rule have threshold-independent failure modes the
// extremes cannot see; sweep_sigma_thresholds() refuses them.
#pragma once

#include <vector>

#include "exp/scenario.hpp"
#include "obs/explain.hpp"

namespace librisk::exp {

/// One probed threshold. `replayed` says whether this point cost a fresh
/// simulation or was certified identical to an earlier one.
struct CounterfactualPoint {
  double threshold = 0.0;
  bool replayed = false;
  metrics::RunSummary summary;
  /// The sigma extremes of the run that produced `summary` (its certified
  /// stability evidence).
  obs::SigmaExtremes extremes;
};

struct CounterfactualSweep {
  /// One per probe, in the caller's order.
  std::vector<CounterfactualPoint> points;
  /// Simulations actually run (1 <= replays <= points.size()).
  std::uint64_t replays = 0;
};

/// Runs the scenario with `recorder` attached through Hooks::explain (on a
/// copy — the caller's scenario is untouched). The recorder's extremes are
/// complete for the run; its retained decisions follow its own config.
[[nodiscard]] ScenarioResult run_with_margins(Scenario scenario,
                                              obs::ExplainRecorder& recorder);

/// Fulfilled/summary vs sigma threshold, reusing certified-identical runs
/// (see header comment). Requires policy == LibraRisk and
/// risk.rule == SigmaOnly; throws otherwise.
[[nodiscard]] CounterfactualSweep sweep_sigma_thresholds(
    const Scenario& base, const std::vector<double>& thresholds);

}  // namespace librisk::exp
