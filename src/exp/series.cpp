#include "exp/series.hpp"

#include <map>
#include <ostream>

#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/significance.hpp"
#include "support/table.hpp"

namespace librisk::exp {

const char* to_string(Measure measure) noexcept {
  switch (measure) {
    case Measure::FulfilledPct: return "fulfilled_pct";
    case Measure::AvgSlowdown: return "avg_slowdown";
    case Measure::Accepted: return "accepted";
    case Measure::CompletedLate: return "completed_late";
    case Measure::Utilization: return "utilization";
    case Measure::FulfilledPctHighUrgency: return "fulfilled_pct_high_urgency";
  }
  return "?";
}

namespace {

const stats::Accumulator& pick(const SweepCell& cell, Measure measure) {
  switch (measure) {
    case Measure::FulfilledPct: return cell.fulfilled_pct;
    case Measure::AvgSlowdown: return cell.avg_slowdown;
    case Measure::Accepted: return cell.accepted;
    case Measure::CompletedLate: return cell.completed_late;
    case Measure::Utilization: return cell.utilization;
    case Measure::FulfilledPctHighUrgency: return cell.fulfilled_pct_high_urgency;
  }
  LIBRISK_CHECK(false, "unhandled measure");
  return cell.fulfilled_pct;  // unreachable
}

// Groups cells by axis value preserving order; columns by policy order of
// first appearance.
struct Grid {
  std::vector<double> xs;
  std::vector<core::Policy> policies;
  std::map<std::pair<std::size_t, std::size_t>, const SweepCell*> at;  // (xi, pi)
};

Grid build_grid(const std::vector<SweepCell>& cells) {
  Grid g;
  for (const SweepCell& cell : cells) {
    std::size_t xi = g.xs.size();
    for (std::size_t i = 0; i < g.xs.size(); ++i)
      if (g.xs[i] == cell.x) { xi = i; break; }
    if (xi == g.xs.size()) g.xs.push_back(cell.x);
    std::size_t pi = g.policies.size();
    for (std::size_t i = 0; i < g.policies.size(); ++i)
      if (g.policies[i] == cell.policy) { pi = i; break; }
    if (pi == g.policies.size()) g.policies.push_back(cell.policy);
    g.at[{xi, pi}] = &cell;
  }
  return g;
}

std::string format_x(double x) {
  // Axis values are small round numbers; show a decimal only when needed.
  const double rounded = static_cast<double>(static_cast<long long>(x));
  return x == rounded ? table::num(x, 0) : table::num(x, 2);
}

}  // namespace

void print_series(std::ostream& out, const std::string& title,
                  const std::string& x_label, const std::vector<SweepCell>& cells,
                  Measure measure) {
  const Grid g = build_grid(cells);
  std::vector<std::string> header{x_label};
  for (const core::Policy p : g.policies)
    header.emplace_back(core::to_string(p));
  table::Table t(std::move(header));
  for (std::size_t xi = 0; xi < g.xs.size(); ++xi) {
    std::vector<std::string> row{format_x(g.xs[xi])};
    for (std::size_t pi = 0; pi < g.policies.size(); ++pi) {
      const auto it = g.at.find({xi, pi});
      if (it == g.at.end()) {
        row.emplace_back("-");
        continue;
      }
      const auto& acc = pick(*it->second, measure);
      row.push_back(table::num(acc.mean(), 2) + " ±" +
                    table::num(stats::ci95_halfwidth(acc), 2));
    }
    t.add_row(std::move(row));
  }
  out << title << '\n' << t.str() << '\n';
}

void write_series_csv(csv::Writer& writer, const std::string& figure,
                      const std::vector<SweepCell>& cells,
                      const std::vector<Measure>& measures) {
  if (writer.rows_written() == 0)
    writer.header({"figure", "x", "policy", "measure", "mean", "ci95", "seeds"});
  for (const SweepCell& cell : cells) {
    for (const Measure m : measures) {
      const auto& acc = pick(cell, m);
      writer.row({figure, csv::Writer::field(cell.x),
                  std::string(core::to_string(cell.policy)), to_string(m),
                  csv::Writer::field(acc.mean()),
                  csv::Writer::field(stats::ci95_halfwidth(acc)),
                  csv::Writer::field(acc.count())});
    }
  }
}

void print_significance(std::ostream& out, const std::vector<SweepCell>& cells,
                        core::Policy a, core::Policy b) {
  const Grid g = build_grid(cells);
  table::Table t({"x", "mean diff (pp)", "paired p", "bootstrap win"});
  bool any = false;
  for (std::size_t xi = 0; xi < g.xs.size(); ++xi) {
    const SweepCell* cell_a = nullptr;
    const SweepCell* cell_b = nullptr;
    for (std::size_t pi = 0; pi < g.policies.size(); ++pi) {
      const auto it = g.at.find({xi, pi});
      if (it == g.at.end()) continue;
      if (g.policies[pi] == a) cell_a = it->second;
      if (g.policies[pi] == b) cell_b = it->second;
    }
    if (cell_a == nullptr || cell_b == nullptr) continue;
    if (cell_a->fulfilled_pct_by_seed.size() < 2) continue;
    const stats::PairedComparison cmp = stats::compare_paired(
        cell_a->fulfilled_pct_by_seed, cell_b->fulfilled_pct_by_seed);
    any = true;
    t.add_row({format_x(g.xs[xi]), table::num(cmp.mean_difference, 2),
               cmp.p_value < 1e-4 ? std::string("<1e-4")
                                  : table::num(cmp.p_value, 4),
               table::num(cmp.bootstrap_win_rate, 3)});
  }
  if (any) {
    out << "paired significance, fulfilled %: " << core::to_string(a) << " - "
        << core::to_string(b) << '\n'
        << t.str() << '\n';
  }
}

void emit_subfigure(std::ostream& out, csv::Writer& writer,
                    const std::string& figure_id, const std::string& title,
                    const std::string& x_label, const std::vector<SweepCell>& cells) {
  print_series(out, title + " — jobs with deadlines fulfilled (%)", x_label, cells,
               Measure::FulfilledPct);
  print_series(out, title + " — average slowdown (fulfilled jobs)", x_label, cells,
               Measure::AvgSlowdown);
  write_series_csv(writer, figure_id, cells,
                   {Measure::FulfilledPct, Measure::AvgSlowdown, Measure::Accepted,
                    Measure::CompletedLate, Measure::Utilization});
}

}  // namespace librisk::exp
