// Parameter sweeps: the machinery behind every figure reproduction.
//
// A sweep varies one axis (arrival delay factor, deadline ratio, ...) over
// a set of policies, replicating each cell over several workload seeds and
// averaging. Cells run in parallel on a thread pool; each individual
// simulation remains single-threaded and deterministic, so the sweep output
// is independent of the thread count.
#pragma once

#include <functional>
#include <vector>

#include "exp/scenario.hpp"
#include "support/stats.hpp"

namespace librisk::exp {

struct SweepConfig {
  /// Axis values, in presentation order.
  std::vector<double> axis;
  /// Applies one axis value to a scenario (e.g. sets the delay factor).
  std::function<void(Scenario&, double)> apply;
  /// Policies to compare at every axis value.
  std::vector<core::Policy> policies;
  /// Seed replications per cell; results report the mean.
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
};

/// One (axis value, policy) cell aggregated over seeds.
struct SweepCell {
  double x = 0.0;
  core::Policy policy{};
  stats::Accumulator fulfilled_pct;
  stats::Accumulator avg_slowdown;
  stats::Accumulator accepted;
  stats::Accumulator completed_late;
  stats::Accumulator utilization;
  stats::Accumulator fulfilled_pct_high_urgency;
  /// Raw per-seed samples in SweepConfig::seeds order, so cells of
  /// different policies can be compared *paired* (same seed = same jobs).
  std::vector<double> fulfilled_pct_by_seed;
  std::vector<double> avg_slowdown_by_seed;
};

/// Runs |axis| x |policies| x |seeds| simulations. Cells are ordered
/// axis-major then policy (matching SweepConfig order).
[[nodiscard]] std::vector<SweepCell> run_sweep(const Scenario& base,
                                               const SweepConfig& config);

}  // namespace librisk::exp
