#include "support/csv.hpp"

#include <charconv>
#include <cstdio>

#include "support/check.hpp"

namespace librisk::csv {

std::string escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void Writer::header(std::span<const std::string> names) {
  LIBRISK_CHECK(!header_written_, "CSV header written twice");
  LIBRISK_CHECK(rows_ == 0, "CSV header after data rows");
  LIBRISK_CHECK(!names.empty(), "CSV header must not be empty");
  arity_ = names.size();
  header_written_ = true;
  write_line(names);
}

void Writer::header(std::initializer_list<std::string_view> names) {
  std::vector<std::string> v(names.begin(), names.end());
  header(std::span<const std::string>(v));
}

void Writer::row(std::span<const std::string> fields) {
  if (arity_ == 0) arity_ = fields.size();
  LIBRISK_CHECK(fields.size() == arity_,
                "CSV row arity " << fields.size() << " != " << arity_);
  ++rows_;
  write_line(fields);
}

void Writer::row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> v(fields.begin(), fields.end());
  row(std::span<const std::string>(v));
}

std::string Writer::field(double v) {
  // Shortest representation that still parses back to the same double.
  char buf[64];
  for (const int precision : {6, 12, 15, 17}) {
    const int n = std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(buf, buf + n, parsed);
    if (ec == std::errc{} && ptr == buf + n && parsed == v)
      return std::string(buf, static_cast<std::size_t>(n));
  }
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string Writer::field(std::size_t v) { return std::to_string(v); }
std::string Writer::field(long long v) { return std::to_string(v); }

void Writer::write_line(std::span<const std::string> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) (*out_) << ',';
    (*out_) << escape(fields[i]);
  }
  (*out_) << '\n';
}

}  // namespace librisk::csv
