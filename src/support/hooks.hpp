// The one attachment point for optional observation hooks.
//
// A decision-audit recorder (docs/TRACING.md) and a live-telemetry hub
// (docs/OBSERVABILITY.md) share the same ownership model: borrowed by the
// scheduler stack for the duration of a run, null by default, and free when
// absent. Before this struct existed each component exposed a separate
// setter pair and every driver wired them independently — which made it
// possible to attach a recorder to the scheduler but not its executor.
// Hooks travel as one value (PolicyOptions::hooks is the single attach
// point; core::AdmissionEngine fans it out), so a partially-wired stack can
// no longer be expressed.
//
// Thread affinity: hook implementations are single-threaded and are only
// ever called from the thread driving the simulator they observe. In a
// concurrent front-end (core::AdmissionGateway) that is the gateway's drive
// thread — producers never touch hooks, so recorders and telemetry need no
// locking (docs/CONCURRENCY.md).
//
// This header only forward-declares the hook types so layers below
// trace/obs can carry a Hooks value without inheriting their dependencies.
#pragma once

namespace librisk::trace {
class Recorder;
}
namespace librisk::obs {
class Telemetry;
class ExplainRecorder;
}

namespace librisk {

struct Hooks {
  /// Decision-audit event recorder; null emits nothing and perturbs nothing.
  trace::Recorder* trace = nullptr;
  /// Live metrics/series/profiling hub; null costs one branch per hook site.
  obs::Telemetry* telemetry = nullptr;
  /// Decision-provenance recorder (per-submission margin records,
  /// docs/OBSERVABILITY.md); null costs one branch per submission. Like
  /// tracing, attaching forces exact sigma evaluation (no batch spread-bound
  /// skips) — effort counters change, decisions never do.
  obs::ExplainRecorder* explain = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return trace != nullptr || telemetry != nullptr || explain != nullptr;
  }
};

}  // namespace librisk
