// Bounded multi-producer queue with blocking push/pop, used as the handoff
// between the gateway's submitter threads and its single drive thread.
//
// A mutex + two condition variables over a fixed ring. Deliberately not
// lock-free: the lock-free stage of the gateway is the fast-reject
// accumulator, which runs *before* a job reaches this queue — by the time a
// job is enqueued it has survived the cheap shed test, and the bound is
// doing its real work (backpressure on producers so an engine running
// slower than the submit rate cannot grow memory without limit). Under
// contention a short critical section (copy one element, bump an index)
// keeps the queue far from being the bottleneck; bench/throughput_gateway
// measures the whole pipeline.
//
// close() wakes everyone: producers get `false` from push (the run is
// over), the consumer drains what is left and then gets `false` from pop.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace librisk::support {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : ring_(capacity) {
    LIBRISK_CHECK(capacity > 0, "queue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (and drops `value`) iff the queue was
  /// closed — the element is NOT enqueued then.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return size_ < ring_.size() || closed_; });
    if (closed_) return false;
    ring_[(head_ + size_) % ring_.size()] = std::move(value);
    ++size_;
    high_water_ = std::max(high_water_, size_);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns false iff the queue is closed AND drained —
  /// elements pushed before close() are always delivered.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;  // closed and drained
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Ends the stream: all blocked and future pushes fail, pops drain the
  /// remainder then fail. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }
  /// Peak occupancy since construction (backpressure diagnostics).
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace librisk::support
