// Runtime invariant checking for librisk.
//
// LIBRISK_CHECK(cond, msg) throws librisk::CheckError when `cond` is false.
// Checks are always on: the library is a simulator whose value is the
// trustworthiness of its numbers, and the checks are cheap relative to the
// event-processing they guard.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace librisk {

/// Thrown when a LIBRISK_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "LIBRISK_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

// Builds the failure message lazily so the happy path never allocates.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace librisk

#define LIBRISK_CHECK(cond, ...)                                             \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::librisk::detail::check_failed(                                       \
          #cond, __FILE__, __LINE__,                                         \
          (::librisk::detail::CheckMessage{} << "" __VA_ARGS__).str());      \
    }                                                                        \
  } while (false)
