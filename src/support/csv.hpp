// Minimal CSV emission (RFC 4180 quoting) for experiment results.
#pragma once

#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace librisk::csv {

/// Quotes a single CSV field if it contains a comma, quote or newline.
[[nodiscard]] std::string escape(std::string_view field);

/// Row-at-a-time CSV writer over any ostream. The header is written by the
/// first call to `header`; subsequent rows must have the same arity.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(&out) {}

  /// Writes the header row; must be called at most once, before any row.
  void header(std::span<const std::string> names);
  void header(std::initializer_list<std::string_view> names);

  /// Writes one data row of pre-formatted fields.
  void row(std::span<const std::string> fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  [[nodiscard]] static std::string field(double v);
  [[nodiscard]] static std::string field(std::size_t v);
  [[nodiscard]] static std::string field(long long v);
  [[nodiscard]] static std::string field(std::string_view v) { return std::string(v); }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_line(std::span<const std::string> fields);

  std::ostream* out_;
  std::size_t arity_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

}  // namespace librisk::csv
