// Leveled logging to stderr. Simulation hot paths log at Debug, which is
// filtered by a branch on an atomic level — cheap enough to leave in.
#pragma once

#include <sstream>
#include <string_view>

namespace librisk::log {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped. Default: Warn, so
/// library code is silent in tests and benches unless something is wrong.
void set_level(Level level) noexcept;
[[nodiscard]] Level level() noexcept;
[[nodiscard]] bool enabled(Level level) noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off" (throws otherwise).
[[nodiscard]] Level parse_level(std::string_view name);

/// Emits one line: "[level] message". Thread-safe.
void write(Level level, std::string_view message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace librisk::log

#define LIBRISK_LOG(lvl)                              \
  if (!::librisk::log::enabled(::librisk::log::Level::lvl)) { \
  } else                                              \
    ::librisk::log::detail::LineBuilder(::librisk::log::Level::lvl)
