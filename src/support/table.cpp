#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace librisk::table {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LIBRISK_CHECK(!header_.empty(), "table needs at least one column");
  align_.assign(header_.size(), Align::Right);
  align_[0] = Align::Left;
}

void Table::set_align(std::size_t column, Align align) {
  LIBRISK_CHECK(column < align_.size(), "column " << column << " out of range");
  align_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  LIBRISK_CHECK(cells.size() == header_.size(),
                "row arity " << cells.size() << " != " << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  const auto emit_cell = [&](const std::string& text, std::size_t c) {
    const auto pad = width[c] - text.size();
    if (align_[c] == Align::Right) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      emit_cell(row[c], c);
    }
    os << '\n';
  };
  const auto emit_rule = [&] {
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) emit_rule();
    else emit_row(row);
  }
  return os.str();
}

std::string num(double v, int decimals) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string pct(double v) { return num(v, 1); }

}  // namespace librisk::table
