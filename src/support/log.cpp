#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <string>

namespace librisk::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::Warn)};
std::mutex g_write_mutex;

constexpr std::string_view name_of(Level level) {
  switch (level) {
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_level(Level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >= g_level.load(std::memory_order_relaxed);
}

Level parse_level(std::string_view name) {
  for (const Level l : {Level::Debug, Level::Info, Level::Warn, Level::Error, Level::Off})
    if (name == name_of(l)) return l;
  throw std::invalid_argument("unknown log level: " + std::string(name));
}

void write(Level lvl, std::string_view message) {
  if (!enabled(lvl)) return;
  const std::scoped_lock lock(g_write_mutex);
  std::cerr << '[' << name_of(lvl) << "] " << message << '\n';
}

}  // namespace librisk::log
