#include "support/rng.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace librisk::rng {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// splitmix64 finalizer: spreads related (root, purpose, index) triples into
// well-separated engine seeds.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::string_view purpose,
                          std::uint64_t index) noexcept {
  return mix(mix(root ^ fnv1a(purpose)) + index);
}

double Stream::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Stream::uniform(double lo, double hi) {
  LIBRISK_CHECK(lo <= hi, "uniform bounds inverted: " << lo << " > " << hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Stream::uniform_int(std::int64_t lo, std::int64_t hi) {
  LIBRISK_CHECK(lo <= hi, "uniform_int bounds inverted");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Stream::bernoulli(double p) {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

double Stream::exponential(double mean) {
  LIBRISK_CHECK(mean > 0.0, "exponential mean must be positive, got " << mean);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Stream::normal(double mean, double sd) {
  LIBRISK_CHECK(sd >= 0.0, "normal sd must be non-negative");
  if (sd == 0.0) return mean;
  return std::normal_distribution<double>(mean, sd)(engine_);
}

double Stream::truncated_normal(double mean, double sd, double lo, double hi) {
  LIBRISK_CHECK(lo <= hi, "truncated_normal bounds inverted");
  if (sd == 0.0) return std::clamp(mean, lo, hi);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, sd);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

double Stream::lognormal_mean_cv(double mean, double cv) {
  LIBRISK_CHECK(mean > 0.0, "lognormal mean must be positive");
  LIBRISK_CHECK(cv > 0.0, "lognormal cv must be positive");
  // If X ~ LogNormal(mu, sigma): E[X] = exp(mu + sigma^2/2),
  // CV[X]^2 = exp(sigma^2) - 1. Invert for (mu, sigma).
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(engine_);
}

double Stream::hyperexponential(double mean, double cv) {
  LIBRISK_CHECK(mean > 0.0, "hyperexponential mean must be positive");
  LIBRISK_CHECK(cv >= 1.0, "hyperexponential requires cv >= 1, got " << cv);
  if (cv == 1.0) return exponential(mean);
  // Balanced-means two-phase H2: phase probabilities p and 1-p with
  // p = (1 + sqrt((c2-1)/(c2+1))) / 2, rates chosen so each phase
  // contributes half the mean (Allen, "Probability, Statistics and
  // Queueing Theory", §5).
  const double c2 = cv * cv;
  const double p = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
  const double mean1 = mean / (2.0 * p);
  const double mean2 = mean / (2.0 * (1.0 - p));
  return bernoulli(p) ? exponential(mean1) : exponential(mean2);
}

std::size_t Stream::weighted_index(std::span<const double> weights) {
  LIBRISK_CHECK(!weights.empty(), "weighted_index needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    LIBRISK_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  LIBRISK_CHECK(total > 0.0, "weights must not all be zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

}  // namespace librisk::rng
