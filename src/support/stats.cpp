#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace librisk::stats {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance_population() const noexcept {
  return n_ < 2 ? 0.0 : std::max(0.0, m2_ / static_cast<double>(n_));
}

double Accumulator::variance_sample() const noexcept {
  return n_ < 2 ? 0.0 : std::max(0.0, m2_ / static_cast<double>(n_ - 1));
}

double Accumulator::stddev_population() const noexcept {
  return std::sqrt(variance_population());
}

double Accumulator::stddev_sample() const noexcept {
  return std::sqrt(variance_sample());
}

Summary summarize(std::span<const double> values) noexcept {
  Accumulator acc;
  for (const double v : values) acc.add(v);
  return Summary{.count = acc.count(),
                 .mean = acc.mean(),
                 .stddev = acc.stddev_sample(),
                 .min = acc.empty() ? 0.0 : acc.min(),
                 .max = acc.empty() ? 0.0 : acc.max()};
}

double percentile(std::span<const double> values, double q) {
  LIBRISK_CHECK(q >= 0.0 && q <= 100.0, "percentile q out of range: " << q);
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (const double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev_population_eq6(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  double s = 0.0;
  double s2 = 0.0;
  for (const double v : values) {
    s += v;
    s2 += v * v;
  }
  const double n = static_cast<double>(values.size());
  const double m = s / n;
  return std::sqrt(std::max(0.0, s2 / n - m * m));
}

double ci95_halfwidth(const Accumulator& acc) noexcept {
  if (acc.count() < 2) return 0.0;
  return 1.96 * acc.stddev_sample() / std::sqrt(static_cast<double>(acc.count()));
}

}  // namespace librisk::stats
