#include "support/cli.hpp"

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace librisk::cli {

namespace {

template <typename T>
T parse_value(const std::string& name, const std::string& text);

template <>
std::string parse_value<std::string>(const std::string&, const std::string& text) {
  return text;
}

template <>
int parse_value<int>(const std::string& name, const std::string& text) {
  int v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ParseError("--" + name + ": expected integer, got '" + text + "'");
  return v;
}

template <>
std::uint64_t parse_value<std::uint64_t>(const std::string& name, const std::string& text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ParseError("--" + name + ": expected unsigned integer, got '" + text + "'");
  return v;
}

template <>
double parse_value<double>(const std::string& name, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw ParseError("--" + name + ": expected number, got '" + text + "'");
  }
}

template <>
bool parse_value<bool>(const std::string& name, const std::string& text) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  throw ParseError("--" + name + ": expected bool, got '" + text + "'");
}

template <typename T>
std::string show(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v.empty() ? "\"\"" : v;
  } else if constexpr (std::is_same_v<T, bool>) {
    return v ? "true" : "false";
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}

struct OptionEntry {
  std::string name;
  std::string help;
  std::string default_text;
  bool is_bool = false;
  // Consumes the textual value and stores it in the typed Option.
  std::function<void(const std::string&)> assign;
};

}  // namespace

struct Parser::Impl {
  std::string program;
  std::string description;
  std::vector<OptionEntry> entries;
  // Typed options are heap-allocated so references returned by add() remain
  // stable as more options are declared.
  std::vector<std::shared_ptr<void>> storage;

  OptionEntry* find(const std::string& name) {
    for (auto& e : entries)
      if (e.name == name) return &e;
    return nullptr;
  }
};

Parser::Parser(std::string program, std::string description)
    : impl_(std::make_unique<Impl>()) {
  impl_->program = std::move(program);
  impl_->description = std::move(description);
}

Parser::~Parser() = default;

template <typename T>
Option<T>& Parser::add(std::string name, std::string help, T default_value) {
  LIBRISK_CHECK(!name.empty(), "option name must not be empty");
  LIBRISK_CHECK(impl_->find(name) == nullptr, "duplicate option --" << name);
  auto opt = std::make_shared<Option<T>>();
  opt->name = name;
  opt->help = help;
  opt->value = std::move(default_value);
  impl_->storage.push_back(opt);
  OptionEntry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.default_text = show(opt->value);
  entry.is_bool = std::is_same_v<T, bool>;
  entry.assign = [opt](const std::string& text) {
    opt->value = parse_value<T>(opt->name, text);
    opt->set = true;
  };
  impl_->entries.push_back(std::move(entry));
  return *opt;
}

template Option<int>& Parser::add<int>(std::string, std::string, int);
template Option<double>& Parser::add<double>(std::string, std::string, double);
template Option<bool>& Parser::add<bool>(std::string, std::string, bool);
template Option<std::string>& Parser::add<std::string>(std::string, std::string, std::string);
template Option<std::uint64_t>& Parser::add<std::uint64_t>(std::string, std::string, std::uint64_t);

void Parser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

void Parser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0)
      throw ParseError("unexpected positional argument '" + arg + "'");
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    OptionEntry* entry = impl_->find(name);
    if (entry == nullptr) throw ParseError("unknown option --" + name);
    if (!have_value) {
      if (entry->is_bool) {
        value = "true";  // bare --flag enables a bool
      } else {
        if (i + 1 >= args.size())
          throw ParseError("--" + name + " requires a value");
        value = args[++i];
      }
    }
    entry->assign(value);
  }
}

std::string Parser::usage() const {
  std::ostringstream os;
  os << impl_->program << " — " << impl_->description << "\n\nOptions:\n";
  for (const auto& e : impl_->entries) {
    os << "  --" << e.name;
    if (!e.is_bool) os << "=<value>";
    os << "\n      " << e.help << " (default: " << e.default_text << ")\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace librisk::cli
