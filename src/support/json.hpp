// Minimal strict JSON parser (RFC 8259 subset) — no external dependencies.
//
// Exists so `librisk-sim --config experiment.json` can describe whole
// experiments in files. Deliberately small: parses into an immutable value
// tree; no serialisation-to-JSON beyond what the tool needs, no comments,
// no trailing commas. Errors carry line/column.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace librisk::json {

/// Thrown on malformed input, with position information in what().
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Type { Null, Bool, Number, String, Array, Object };

class Value;
using Array = std::vector<Value>;
/// std::map keeps key order deterministic for tests and dumps.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : type_(Type::Null) {}
  explicit Value(bool b) : type_(Type::Bool), bool_(b) {}
  explicit Value(double n) : type_(Type::Number), number_(n) {}
  explicit Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
  explicit Value(Array elements)
      : type_(Type::Array), array_(std::make_shared<Array>(std::move(elements))) {}
  explicit Value(Object members)
      : type_(Type::Object), object_(std::make_shared<Object>(std::move(members))) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }

  /// Typed accessors; throw ParseError naming the expected type on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number, additionally requiring an integral value within int range.
  [[nodiscard]] int as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; returns nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Typed member access with defaults (the config-reading workhorses).
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] int int_or(const std::string& key, int fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;

  /// Compact single-line JSON rendering (diagnostics and tests).
  [[nodiscard]] std::string dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Append-mode streaming writer for JSON Lines output: one compact object
/// per line, written field by field straight to the stream — nothing is
/// built in memory, so a sink can emit millions of lines at O(1) space.
/// Doubles use shortest-round-trip formatting (std::to_chars): a value
/// parsed back with parse() compares bit-equal to what was written.
///
///   json::LineWriter w(os);
///   w.begin().field("t", 1.5).field("kind", "job_admitted").end();
class LineWriter {
 public:
  explicit LineWriter(std::ostream& os) : os_(&os) {}

  /// Opens a new object (one per output line).
  LineWriter& begin();
  LineWriter& field(std::string_view key, std::string_view value);
  LineWriter& field(std::string_view key, const char* value);
  LineWriter& field(std::string_view key, double value);
  LineWriter& field(std::string_view key, std::int64_t value);
  LineWriter& field(std::string_view key, std::uint64_t value);
  LineWriter& field(std::string_view key, int value);
  LineWriter& field(std::string_view key, bool value);
  /// Closes the object and writes the trailing newline.
  void end();

 private:
  void sep(std::string_view key);
  std::ostream* os_;
  bool first_ = true;
};

/// Parses a complete JSON document (one value, optionally surrounded by
/// whitespace; trailing garbage is an error).
[[nodiscard]] Value parse(std::string_view text);

/// Parses the contents of a file.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace librisk::json
