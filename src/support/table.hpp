// Aligned plain-text tables for bench/report output — the harnesses print
// each paper figure as one of these.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace librisk::table {

/// Column alignment inside a Table.
enum class Align { Left, Right };

/// Builds an aligned monospace table. Cells are preformatted strings; use
/// `num` to format doubles consistently.
class Table {
 public:
  /// Declares the header row (fixes the column count).
  explicit Table(std::vector<std::string> header);

  /// Per-column alignment; defaults to Right for every column but the first.
  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with 2-space column gaps and a rule under the header.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Formats a double with fixed decimals (the figure harness default).
[[nodiscard]] std::string num(double v, int decimals = 2);

/// Formats a percentage (already in 0..100) with one decimal, e.g. "63.4".
[[nodiscard]] std::string pct(double v);

}  // namespace librisk::table
