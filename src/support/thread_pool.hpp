// Fixed-size worker pool used by the experiment sweep runner: each
// (scenario, seed) simulation is independent, so sweeps parallelise
// embarrassingly across hardware threads while each simulation itself
// stays single-threaded and deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace librisk::support {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task surface from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) on a pool, blocking until all complete.
/// The first exception (by index) is rethrown after all tasks finish.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace librisk::support
