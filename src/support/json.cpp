#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace librisk::json {

namespace {

[[noreturn]] void type_error(const char* expected, Type got) {
  const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw ParseError(std::string("expected ") + expected + ", value is " +
                   names[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

int Value::as_int() const {
  const double n = as_number();
  if (n != std::floor(n) || n < -2147483648.0 || n > 2147483647.0)
    throw ParseError("expected integer, got " + std::to_string(n));
  return static_cast<int>(n);
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return *array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return *object_;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

int Value::int_or(const std::string& key, int fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_int();
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

std::string Value::dump() const {
  std::ostringstream os;
  switch (type_) {
    case Type::Null: os << "null"; break;
    case Type::Bool: os << (bool_ ? "true" : "false"); break;
    case Type::Number: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.12g", number_);
      os << buf;
      break;
    }
    case Type::String: {
      os << '"';
      for (const char c : string_) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default: os << c;
        }
      }
      os << '"';
      break;
    }
    case Type::Array: {
      os << '[';
      bool first = true;
      for (const Value& v : *array_) {
        if (!first) os << ',';
        first = false;
        os << v.dump();
      }
      os << ']';
      break;
    }
    case Type::Object: {
      os << '{';
      bool first = true;
      for (const auto& [key, v] : *object_) {
        if (!first) os << ',';
        first = false;
        os << Value(key).dump() << ':' << v.dump();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    skip_whitespace();
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "JSON error at line " << line << ", column " << column << ": " << message;
    throw ParseError(os.str());
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_whitespace() {
    while (!at_end() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                         text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }
  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return Value(parse_number());
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Value parse_object() {
    expect('{');
    Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      Value v = parse_value();
      if (object.contains(key)) fail("duplicate object key \"" + key + "\"");
      object.emplace(std::move(key), std::move(v));
      skip_whitespace();
      const char c = take();
      if (c == '}') return Value(std::move(object));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') return Value(std::move(array));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += 10 + h - 'a';
            else if (h >= 'A' && h <= 'F') code += 10 + h - 'A';
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // configs are ASCII in practice; reject rather than mangle).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (at_end()) fail("truncated number");
    if (peek() == '0') {
      ++pos_;
    } else {
      if (peek() < '1' || peek() > '9') fail("invalid number");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!at_end() && text_[pos_] == '.') {
      ++pos_;
      if (at_end() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("digits required after decimal point");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (at_end() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("digits required in exponent");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

LineWriter& LineWriter::begin() {
  *os_ << '{';
  first_ = true;
  return *this;
}

void LineWriter::sep(std::string_view key) {
  if (!first_) *os_ << ',';
  first_ = false;
  write_escaped(*os_, key);
  *os_ << ':';
}

LineWriter& LineWriter::field(std::string_view key, std::string_view value) {
  sep(key);
  write_escaped(*os_, value);
  return *this;
}

LineWriter& LineWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

LineWriter& LineWriter::field(std::string_view key, double value) {
  sep(key);
  // Shortest round-trip form; integral values print without a decimal point
  // and parse back bit-equal either way.
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  *os_ << std::string_view(buf, ec == std::errc() ? static_cast<std::size_t>(end - buf) : 0);
  return *this;
}

LineWriter& LineWriter::field(std::string_view key, std::int64_t value) {
  sep(key);
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  *os_ << std::string_view(buf, ec == std::errc() ? static_cast<std::size_t>(end - buf) : 0);
  return *this;
}

LineWriter& LineWriter::field(std::string_view key, std::uint64_t value) {
  sep(key);
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  *os_ << std::string_view(buf, ec == std::errc() ? static_cast<std::size_t>(end - buf) : 0);
  return *this;
}

LineWriter& LineWriter::field(std::string_view key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

LineWriter& LineWriter::field(std::string_view key, bool value) {
  sep(key);
  *os_ << (value ? "true" : "false");
  return *this;
}

void LineWriter::end() { *os_ << "}\n"; }

Value parse(std::string_view text) { return Parser(text).run(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace librisk::json
