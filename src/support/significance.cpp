#include "support/significance.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace librisk::stats {

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

PairedComparison compare_paired(std::span<const double> a,
                                std::span<const double> b,
                                int bootstrap_resamples, std::uint64_t seed) {
  LIBRISK_CHECK(a.size() == b.size(), "paired samples must have equal length");
  LIBRISK_CHECK(bootstrap_resamples >= 0, "negative resample count");
  PairedComparison out;
  out.pairs = a.size();
  if (a.empty()) return out;

  Accumulator diff;
  for (std::size_t i = 0; i < a.size(); ++i) diff.add(a[i] - b[i]);
  out.mean_difference = diff.mean();
  out.stddev_difference = diff.stddev_sample();

  if (a.size() >= 2 && out.stddev_difference > 0.0) {
    out.t_statistic = out.mean_difference /
                      (out.stddev_difference / std::sqrt(static_cast<double>(a.size())));
    out.p_value = 2.0 * (1.0 - normal_cdf(std::abs(out.t_statistic)));
  } else if (a.size() >= 2 && out.mean_difference != 0.0) {
    // Constant nonzero difference across every seed: as significant as the
    // data can say.
    out.t_statistic = out.mean_difference > 0.0 ? 1e9 : -1e9;
    out.p_value = 0.0;
  }

  if (bootstrap_resamples > 0) {
    rng::Stream stream("bootstrap", seed);
    int wins = 0;
    const auto n = static_cast<std::int64_t>(a.size());
    for (int r = 0; r < bootstrap_resamples; ++r) {
      double resampled = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(stream.uniform_int(0, n - 1));
        resampled += a[idx] - b[idx];
      }
      if (resampled > 0.0) ++wins;
    }
    out.bootstrap_win_rate = static_cast<double>(wins) / bootstrap_resamples;
  }
  return out;
}

}  // namespace librisk::stats
