// Streaming and batch statistics used by the risk metric, the metrics
// collector and the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace librisk::stats {

/// Numerically stable streaming accumulator (Welford) for mean/variance,
/// plus min/max. Default-constructed state is "no samples".
class Accumulator {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance (divides by n); 0 when fewer than 2 samples.
  [[nodiscard]] double variance_population() const noexcept;
  /// Sample variance (divides by n-1); 0 when fewer than 2 samples.
  [[nodiscard]] double variance_sample() const noexcept;
  /// Population standard deviation.
  [[nodiscard]] double stddev_population() const noexcept;
  /// Sample standard deviation.
  [[nodiscard]] double stddev_sample() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return n_ == 0 ? 0.0 : mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Immutable summary of a sample set (what reports carry around).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev
  double min = 0.0;
  double max = 0.0;
};

/// Summarises a span of values in one pass.
[[nodiscard]] Summary summarize(std::span<const double> values) noexcept;

/// Linear-interpolation percentile, q in [0, 100]. Sorts a copy; 0 when empty.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Mean of a span; 0 when empty.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Population standard deviation of a span computed exactly as the paper's
/// Eq. 6 does: sqrt(mean(x^2) - mean(x)^2), clamped at 0 against rounding.
[[nodiscard]] double stddev_population_eq6(std::span<const double> values) noexcept;

/// 95% confidence half-width of the mean assuming normality (1.96 * sem);
/// 0 when fewer than 2 samples.
[[nodiscard]] double ci95_halfwidth(const Accumulator& acc) noexcept;

}  // namespace librisk::stats
