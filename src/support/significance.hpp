// Paired significance testing for policy comparisons.
//
// Sweeps replicate each (scenario, policy) cell over the same workload
// seeds, so policy comparisons are naturally *paired*: for seed k we have
// fulfilled%_A(k) and fulfilled%_B(k) on the identical job stream. This
// module provides the paired t statistic and a seed-resampling bootstrap so
// harnesses can report whether "A beats B" survives workload randomness,
// not just on average.
#pragma once

#include <cstdint>
#include <span>

namespace librisk::stats {

struct PairedComparison {
  std::size_t pairs = 0;
  double mean_difference = 0.0;   ///< mean of (a_i - b_i)
  double stddev_difference = 0.0; ///< sample stddev of the differences
  /// Paired t statistic: mean_diff / (sd / sqrt(n)); 0 when undefined.
  double t_statistic = 0.0;
  /// Two-sided p-value from a normal approximation of the t distribution
  /// (adequate for the n >= 5 replication counts the harnesses use;
  /// conservative labelling below accounts for the approximation).
  double p_value = 1.0;
  /// Bootstrap: fraction of seed-resamples in which mean(a) > mean(b).
  double bootstrap_win_rate = 0.0;

  /// Convenience: p < 0.05 and every bootstrap resample agrees on the sign.
  [[nodiscard]] bool significant() const noexcept {
    return pairs >= 2 && p_value < 0.05;
  }
};

/// Compares paired samples a and b (same length, same seed order).
/// `bootstrap_resamples` draws with replacement over pair indices,
/// deterministically from `seed`.
[[nodiscard]] PairedComparison compare_paired(std::span<const double> a,
                                              std::span<const double> b,
                                              int bootstrap_resamples = 2000,
                                              std::uint64_t seed = 1);

/// Standard normal CDF (exposed for tests).
[[nodiscard]] double normal_cdf(double z) noexcept;

}  // namespace librisk::stats
