// Deterministic random-number streams.
//
// All randomness in librisk flows through named Streams derived from a root
// seed: Stream("workload", root) and Stream("deadlines", root) are
// independent, and a simulation run is a pure function of (root seed,
// parameters). This is what makes sweeps replayable and results citable.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

namespace librisk::rng {

/// Stable 64-bit FNV-1a hash, used to derive per-purpose stream seeds from a
/// root seed and a purpose name.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

/// Mixes a root seed with a purpose name (and optional index) into an
/// independent stream seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, std::string_view purpose,
                                        std::uint64_t index = 0) noexcept;

/// A named deterministic random stream with the distributions the workload
/// models need. Thin wrapper over std::mt19937_64; cheap to copy.
class Stream {
 public:
  /// Stream with an explicit raw seed.
  explicit Stream(std::uint64_t seed) : engine_(seed) {}

  /// Stream derived from a root seed and a purpose name, e.g.
  /// `Stream("interarrival", root_seed)`.
  Stream(std::string_view purpose, std::uint64_t root_seed, std::uint64_t index = 0)
      : engine_(derive_seed(root_seed, purpose, index)) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);
  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);
  /// Normal(mean, sd).
  [[nodiscard]] double normal(double mean, double sd);
  /// Normal truncated to [lo, hi] by resampling (falls back to clamping
  /// after 64 attempts so pathological bounds cannot hang a simulation).
  [[nodiscard]] double truncated_normal(double mean, double sd, double lo, double hi);
  /// Lognormal parameterised by the *target* mean and coefficient of
  /// variation of the resulting distribution (not of the underlying normal).
  [[nodiscard]] double lognormal_mean_cv(double mean, double cv);
  /// Two-phase hyper-exponential with the given overall mean and
  /// coefficient of variation cv >= 1 (balanced-means parameterisation).
  [[nodiscard]] double hyperexponential(double mean, double cv);
  /// Index drawn from unnormalised non-negative weights (at least one > 0).
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

  /// Underlying engine, for std::shuffle and custom distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Fisher-Yates shuffle driven by a Stream (avoids std::shuffle's
/// implementation-defined draws so results are stable across stdlibs).
template <typename T>
void shuffle(std::vector<T>& v, Stream& stream) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(stream.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace librisk::rng
