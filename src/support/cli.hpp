// Small typed command-line parser for the bench harnesses and examples.
//
//   cli::Parser p("fig1_workload", "Reproduces Figure 1");
//   auto& seeds = p.add<int>("seeds", "number of RNG replications", 5);
//   auto& out   = p.add<std::string>("out", "CSV output path", "fig1.csv");
//   p.parse(argc, argv);            // exits(0) on --help, throws on errors
//   run(seeds.value, out.value);
//
// Accepted spellings: --name=value, --name value, and --flag for bools.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace librisk::cli {

/// Thrown on malformed or unknown arguments.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A declared option holding its current (default or parsed) value.
template <typename T>
struct Option {
  std::string name;
  std::string help;
  T value{};
  bool set = false;  ///< true when the user supplied the option
};

class Parser {
 public:
  Parser(std::string program, std::string description);
  ~Parser();
  Parser(const Parser&) = delete;
  Parser& operator=(const Parser&) = delete;

  /// Declares an option; the returned reference stays valid for the life of
  /// the parser. T in {int, double, bool, std::string, std::uint64_t}.
  template <typename T>
  Option<T>& add(std::string name, std::string help, T default_value = T{});

  /// Parses argv. Prints usage and std::exit(0) on --help/-h.
  void parse(int argc, const char* const* argv);
  /// Parses a pre-split argument list (no program name), for tests.
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] std::string usage() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace librisk::cli
