#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a checked-in baseline.

Usage:
    bench_diff.py --baseline BENCH_admission.json --fresh fresh.json \
                  [--threshold 25] [--metric real_time]

Matches benchmarks by name. A benchmark regresses when its fresh time
exceeds the baseline by more than --threshold percent; any regression makes
the script exit 1 with a per-benchmark report. Benchmarks present on only
one side are reported but never fail the run (renames and new benchmarks
are routine; deleting a baseline entry is a review decision, not a CI one).

Baselines are the repo's BENCH_*.json files. Those store either a plain
google-benchmark run or an aggregates-only run (repetitions with
*_mean/_median/_stddev rows); for aggregate baselines the _median row is
compared, since the median is the stable statistic across noisy CI hosts.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str, metric: str) -> dict[str, float]:
    """Benchmark name -> metric value, preferring _median aggregate rows."""
    with open(path) as f:
        doc = json.load(f)
    # The checked-in baselines keep benchmark arrays under varying top-level
    # keys ("benchmarks" for a raw google-benchmark dump; "micro_admission",
    # "micro_admission_endtoend", "results", ... for the curated merges), so
    # accept every top-level list whose entries look like benchmark rows.
    rows = []
    for value in doc.values():
        if isinstance(value, list):
            rows.extend(r for r in value
                        if isinstance(r, dict) and "name" in r)
    values: dict[str, float] = {}
    medians: dict[str, float] = {}
    for row in rows:
        name = row.get("name", "")
        if metric not in row:
            continue
        value = float(row[metric])
        if row.get("aggregate_name") == "median" or name.endswith("_median"):
            medians[name.removesuffix("_median")] = value
        elif "aggregate_name" not in row and not name.endswith(
            ("_mean", "_median", "_stddev", "_cv")
        ):
            values[name] = value
    # Median aggregates shadow raw rows of the same name: an aggregates-only
    # baseline compares against a plain fresh run (and vice versa).
    values.update(medians)
    return values


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="allowed regression in percent (default 25)")
    parser.add_argument("--metric", default="real_time",
                        help="benchmark field to compare (default real_time)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline, args.metric)
    fresh = load_benchmarks(args.fresh, args.metric)
    if not baseline:
        print(f"error: no '{args.metric}' benchmarks in {args.baseline}")
        return 2
    if not fresh:
        print(f"error: no '{args.metric}' benchmarks in {args.fresh}")
        return 2

    regressions = []
    compared = 0
    for name in sorted(baseline):
        if name not in fresh:
            print(f"  baseline-only (skipped): {name}")
            continue
        compared += 1
        base, now = baseline[name], fresh[name]
        delta_pct = 100.0 * (now - base) / base if base > 0 else 0.0
        flag = " REGRESSION" if delta_pct > args.threshold else ""
        print(f"  {name}: {base:.1f} -> {now:.1f} {args.metric} "
              f"({delta_pct:+.1f}%){flag}")
        if delta_pct > args.threshold:
            regressions.append((name, delta_pct))
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  fresh-only (skipped): {name}")

    if compared == 0:
        print("error: no benchmark names in common — wrong baseline file?")
        return 2
    if regressions:
        print(f"\n{len(regressions)} of {compared} benchmarks regressed "
              f"more than {args.threshold:.0f}%:")
        for name, delta_pct in regressions:
            print(f"  {name}: {delta_pct:+.1f}%")
        return 1
    print(f"\nall {compared} compared benchmarks within "
          f"{args.threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
