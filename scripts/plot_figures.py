#!/usr/bin/env python3
"""Plot the paper's figures from the bench harnesses' CSV output.

The bench binaries (fig1_workload ... fig4_inaccuracy) each write a CSV with
columns  figure,x,policy,measure,mean,ci95,seeds.  This script turns those
into the paper's 2x2 figure layout (fulfilled % and average slowdown, per
estimate regime) as PNG files.

Usage:
    ./build/bench/fig1_workload --out fig1.csv
    python3 scripts/plot_figures.py fig1.csv            # -> fig1.png
    python3 scripts/plot_figures.py fig*.csv --outdir plots/

Only needs matplotlib; falls back to a readable error if it is missing.
"""

import argparse
import collections
import csv
import os
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - environment dependent
    sys.exit("matplotlib is required: pip install matplotlib")

MEASURES = {
    "fulfilled_pct": "jobs with deadlines fulfilled (%)",
    "avg_slowdown": "average slowdown (fulfilled jobs)",
}

POLICY_STYLE = {
    "EDF": dict(marker="o", linestyle="-"),
    "Libra": dict(marker="s", linestyle="--"),
    "LibraRisk": dict(marker="^", linestyle="-"),
    "EDF-NoAC": dict(marker="x", linestyle=":"),
    "EDF-BF": dict(marker="v", linestyle="-."),
    "FCFS": dict(marker="d", linestyle=":"),
    "EASY": dict(marker="*", linestyle="--"),
    "QoPS": dict(marker="P", linestyle="-."),
}


def load(path):
    """Returns {(figure, measure): {policy: [(x, mean, ci), ...]}}."""
    panels = collections.defaultdict(lambda: collections.defaultdict(list))
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            measure = row["measure"]
            if measure not in MEASURES:
                continue
            key = (row["figure"], measure)
            panels[key][row["policy"]].append(
                (float(row["x"]), float(row["mean"]), float(row["ci95"]))
            )
    return panels


def plot_file(path, outdir):
    panels = load(path)
    if not panels:
        print(f"{path}: no plottable series, skipped")
        return
    names = sorted({fig for fig, _ in panels})
    rows = len(names)
    fig, axes = plt.subplots(rows, 2, figsize=(11, 3.4 * rows), squeeze=False)
    for r, figure_id in enumerate(names):
        for c, measure in enumerate(MEASURES):
            ax = axes[r][c]
            series = panels.get((figure_id, measure), {})
            for policy, points in series.items():
                points.sort()
                xs = [p[0] for p in points]
                means = [p[1] for p in points]
                cis = [p[2] for p in points]
                style = POLICY_STYLE.get(policy, {})
                ax.errorbar(xs, means, yerr=cis, label=policy, capsize=2, **style)
            ax.set_title(f"{figure_id} — {MEASURES[measure]}", fontsize=9)
            ax.grid(True, alpha=0.3)
            if measure == "fulfilled_pct":
                ax.set_ylim(0, 100)
            ax.legend(fontsize=7)
    fig.tight_layout()
    base = os.path.splitext(os.path.basename(path))[0]
    out = os.path.join(outdir, base + ".png")
    fig.savefig(out, dpi=140)
    plt.close(fig)
    print(f"{path} -> {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="CSV files written by bench/fig*")
    parser.add_argument("--outdir", default=".", help="directory for PNGs")
    args = parser.parse_args()
    os.makedirs(args.outdir, exist_ok=True)
    for path in args.csvs:
        plot_file(path, args.outdir)


if __name__ == "__main__":
    main()
