// Service-provider scenario: two customer classes with different SLAs.
//
// The motivation in the paper's introduction: a cluster sells service to
// urgent (short-deadline) and batch (long-deadline) customers and must
// decide which jobs to admit. This example runs one day-in-the-life style
// comparison and reports per-class SLA attainment — the numbers a provider
// would put in a service report — plus the decision trace for a handful of
// jobs so the admission logic is visible.
//
//   $ service_provider --urgent 0.4 --inaccuracy 100
#include <iostream>

#include "exp/scenario.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;

  cli::Parser parser("service_provider",
                     "Per-SLA-class reporting for urgent vs batch customers");
  auto& jobs_opt = parser.add<int>("jobs", "number of jobs", 3000);
  auto& urgent_opt = parser.add<double>("urgent", "fraction of urgent-class jobs", 0.30);
  auto& inaccuracy_opt = parser.add<double>("inaccuracy", "estimate inaccuracy %", 100.0);
  auto& seed_opt = parser.add<std::uint64_t>("seed", "workload seed", 1);
  parser.parse(argc, argv);

  exp::Scenario base;
  base.workload.trace.job_count = static_cast<std::size_t>(jobs_opt.value);
  base.workload.inaccuracy_pct = inaccuracy_opt.value;
  base.workload.deadlines.high_urgency_fraction = urgent_opt.value;
  base.seed = seed_opt.value;

  std::cout << "SLA report — " << 100.0 * urgent_opt.value
            << "% urgent customers, " << inaccuracy_opt.value
            << "% estimate inaccuracy\n\n";

  table::Table report({"policy", "urgent SLA %", "batch SLA %", "overall %",
                       "accepted", "broken promises"});
  for (const core::Policy policy : core::paper_policies()) {
    exp::Scenario scenario = base;
    scenario.policy = policy;
    const exp::ScenarioResult r = exp::run_scenario(scenario);
    report.add_row({std::string(core::to_string(policy)),
                    table::pct(r.summary.fulfilled_pct_high_urgency),
                    table::pct(r.summary.fulfilled_pct_low_urgency),
                    table::pct(r.summary.fulfilled_pct),
                    std::to_string(r.summary.accepted),
                    std::to_string(r.summary.completed_late)});
  }
  std::cout << report.str() << '\n';

  // Show the first few admission decisions LibraRisk makes, so the API's
  // decision surface is visible, not just aggregates.
  exp::Scenario scenario = base;
  scenario.policy = core::Policy::LibraRisk;
  const exp::ScenarioResult detail = exp::run_scenario(scenario);
  table::Table decisions({"job", "class", "outcome", "delay (s)", "slowdown"});
  int shown = 0;
  for (const exp::JobOutcome& o : detail.outcomes) {
    if (shown >= 12) break;
    decisions.add_row({std::to_string(o.id), workload::to_string(o.urgency),
                       metrics::to_string(o.fate), table::num(o.delay, 0),
                       o.slowdown > 0 ? table::num(o.slowdown) : "-"});
    ++shown;
  }
  std::cout << "first decisions under LibraRisk:\n" << decisions.str()
            << "\n'broken promises' counts accepted jobs that still missed their\n"
               "deadline — the risk the paper's admission control manages.\n";
  return 0;
}
