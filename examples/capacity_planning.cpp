// Capacity planning: how many nodes does a service provider need to honour
// a target fraction of SLAs under a given workload?
//
// Sweeps the cluster size for each admission-control policy and reports the
// smallest cluster that reaches the target deadline-fulfilment percentage —
// the "what-if" question a provider adopting LibraRisk actually asks.
//
//   $ capacity_planning --target 80 --jobs 2000
#include <iostream>

#include "exp/scenario.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;

  cli::Parser parser("capacity_planning",
                     "Smallest cluster meeting a deadline-fulfilment target per policy");
  auto& jobs_opt = parser.add<int>("jobs", "number of jobs", 2000);
  auto& target_opt = parser.add<double>("target", "target fulfilled %", 80.0);
  auto& seed_opt = parser.add<std::uint64_t>("seed", "workload seed", 1);
  auto& inaccuracy_opt = parser.add<double>("inaccuracy", "estimate inaccuracy %", 100.0);
  auto& seeds_opt = parser.add<int>("seeds", "replications per point", 3);
  parser.parse(argc, argv);

  const std::vector<int> sizes{32, 48, 64, 96, 128, 160, 192, 256};

  std::cout << "Smallest SDSC-SP2-like cluster reaching " << target_opt.value
            << "% of jobs fulfilled (" << inaccuracy_opt.value
            << "% estimate inaccuracy, " << jobs_opt.value << " jobs, mean of "
            << seeds_opt.value << " seeds):\n\n";

  table::Table sweep_table({"nodes", "EDF", "Libra", "LibraRisk"});
  std::map<core::Policy, int> first_size_meeting_target;

  for (const int nodes : sizes) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (const core::Policy policy : core::paper_policies()) {
      stats::Accumulator fulfilled;
      for (int s = 0; s < seeds_opt.value; ++s) {
        exp::Scenario scenario;
        scenario.workload.trace.job_count = static_cast<std::size_t>(jobs_opt.value);
        scenario.workload.inaccuracy_pct = inaccuracy_opt.value;
        scenario.nodes = nodes;
        scenario.policy = policy;
        scenario.seed = seed_opt.value + static_cast<std::uint64_t>(s);
        fulfilled.add(exp::run_scenario(scenario).summary.fulfilled_pct);
      }
      row.push_back(table::pct(fulfilled.mean()));
      if (fulfilled.mean() >= target_opt.value &&
          !first_size_meeting_target.contains(policy)) {
        first_size_meeting_target[policy] = nodes;
      }
    }
    sweep_table.add_row(std::move(row));
  }
  std::cout << sweep_table.str() << '\n';

  table::Table answer({"policy", "nodes needed"});
  for (const core::Policy policy : core::paper_policies()) {
    const auto it = first_size_meeting_target.find(policy);
    answer.add_row({std::string(core::to_string(policy)),
                    it == first_size_meeting_target.end()
                        ? std::string("> ") + std::to_string(sizes.back())
                        : std::to_string(it->second)});
  }
  std::cout << answer.str()
            << "\nA risk-aware admission control buys real hardware headroom when\n"
               "user estimates are inaccurate: the same SLA target needs fewer nodes.\n";
  return 0;
}
