// Quickstart: generate the paper's workload, run the three admission
// controls on the SDSC SP2 cluster model, and print a comparison — the
// "does LibraRisk manage inaccurate estimates better?" question in one run.
//
//   $ quickstart                      # trace estimates (100% inaccuracy)
//   $ quickstart --inaccuracy 0       # perfectly accurate estimates
//   $ quickstart --jobs 1000 --seed 7
#include <iostream>

#include "exp/scenario.hpp"
#include "metrics/report.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workload/workload_stats.hpp"

int main(int argc, char** argv) {
  using namespace librisk;

  cli::Parser parser("quickstart",
                     "Compare EDF, Libra and LibraRisk on a synthetic SDSC SP2 workload");
  auto& jobs_opt = parser.add<int>("jobs", "number of jobs", 3000);
  auto& seed_opt = parser.add<std::uint64_t>("seed", "workload seed", 1);
  auto& inaccuracy_opt =
      parser.add<double>("inaccuracy", "estimate inaccuracy % (0=accurate, 100=trace)", 100.0);
  auto& hu_opt = parser.add<double>("high-urgency", "fraction of high-urgency jobs", 0.20);
  parser.parse(argc, argv);

  exp::Scenario scenario;
  scenario.workload.trace.job_count = static_cast<std::size_t>(jobs_opt.value);
  scenario.workload.inaccuracy_pct = inaccuracy_opt.value;
  scenario.workload.deadlines.high_urgency_fraction = hu_opt.value;
  scenario.seed = seed_opt.value;

  // Show what the workload looks like before scheduling it.
  const auto jobs = workload::make_paper_workload(scenario.workload, scenario.seed);
  const auto stats = workload::compute_stats(jobs);
  std::cout << "Synthetic SDSC SP2 workload (seed " << scenario.seed << ", "
            << inaccuracy_opt.value << "% estimate inaccuracy):\n";
  workload::print_stats(std::cout, stats);
  std::cout << "offered utilization on " << scenario.nodes
            << " nodes: " << table::pct(100.0 * stats.offered_utilization(scenario.nodes))
            << "%\n\n";

  std::vector<metrics::LabelledSummary> results;
  for (const core::Policy policy : core::paper_policies()) {
    scenario.policy = policy;
    const exp::ScenarioResult result = exp::run_jobs(scenario, jobs);
    results.push_back({std::string(core::to_string(policy)), result.summary});
  }
  metrics::print_comparison(std::cout, results);
  return 0;
}
