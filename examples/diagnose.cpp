// Diagnosis: where do deadline violations come from under each policy?
//
// Breaks late and rejected jobs down by whether the user under-estimated
// the runtime (a self-inflicted overrun nothing can save under strict
// pacing) or estimated honestly (a victim of co-located overruns /
// queueing). This is the tool that shows *why* LibraRisk beats Libra — the
// victims column — rather than just that it does.
//
//   $ diagnose --inaccuracy 100 --work-conserving
#include <iostream>

#include "core/overload.hpp"
#include "exp/scenario.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;

  cli::Parser parser("diagnose", "Late/rejected-job breakdown per policy");
  auto& jobs_opt = parser.add<int>("jobs", "number of jobs", 3000);
  auto& seed_opt = parser.add<std::uint64_t>("seed", "workload seed", 1);
  auto& inaccuracy_opt = parser.add<double>("inaccuracy", "estimate inaccuracy %", 100.0);
  auto& wc_opt = parser.add<bool>("work-conserving",
                                  "redistribute spare node capacity", true);
  auto& equal_opt = parser.add<bool>("equal-share",
                                     "equal-share execution instead of proportional pacing", false);
  auto& hu_opt = parser.add<double>("high-urgency", "high-urgency fraction", 0.20);
  auto& overload_opt = parser.add<std::string>(
      "overload-mode",
      "graceful-degradation mode: hard-reject | shed-tail | relax-sigma | "
      "defer-to-salvage | downgrade-qos",
      "hard-reject");
  auto& load_scale_opt = parser.add<double>(
      "load-scale", "inter-arrival gap factor (< 1 raises offered load)", 1.0);
  parser.parse(argc, argv);

  exp::Scenario base;
  base.workload.trace.job_count = static_cast<std::size_t>(jobs_opt.value);
  base.workload.inaccuracy_pct = inaccuracy_opt.value;
  base.workload.deadlines.high_urgency_fraction = hu_opt.value;
  base.options.share_model.work_conserving = wc_opt.set ? wc_opt.value : true;
  base.options.share_model.mode = equal_opt.value
                                      ? cluster::ExecutionMode::EqualShare
                                      : cluster::ExecutionMode::ProportionalPacing;
  if (equal_opt.value)
    base.options.risk.prediction = core::RiskConfig::Prediction::ProcessorSharing;
  base.options.overload.mode = core::parse_degraded_mode(overload_opt.value);
  base.seed = seed_opt.value;
  if (load_scale_opt.value != 1.0)
    base.workload.trace.arrival_delay_factor *= load_scale_opt.value;

  table::Table t({"policy", "fulfilled %", "slowdown", "rejected", "rej(share)",
                  "rej(sigma)", "rej(deadline)", "rej(no-node)", "degraded",
                  "deferred", "near5%",
                  "near10%", "late(under-est)", "late(victims)",
                  "ful(under-est)", "doomable", "scans/job", "skips", "batched",
                  "bound-skip", "recomp/settle", "kern-skip%"});
  for (const core::Policy policy : core::all_policies()) {
    exp::Scenario scenario = base;
    scenario.policy = policy;
    const exp::ScenarioResult r = exp::run_scenario(scenario);

    std::size_t late_under = 0, late_victim = 0, ful_under = 0, under_total = 0;
    std::size_t rejected = 0;
    // The overload variants are their own columns — a DegradedAdmit is not
    // a plain accept (it rode a licensed bend) and a Deferred is not a
    // reject (its fate resolved later); folding either would misattribute
    // exactly the jobs this breakdown exists to explain.
    std::size_t degraded = 0, deferred = 0;
    // Rejection attribution from the per-job outcome reasons (the typed
    // AdmissionOutcome surface) instead of diffing AdmissionStats counters
    // — which also attributes the space-shared policies' rejections, a
    // column the Libra-only counters could never fill.
    std::size_t rej_share = 0, rej_sigma = 0, rej_deadline = 0, rej_node = 0;
    for (const exp::JobOutcome& o : r.outcomes) {
      if (o.underestimated) ++under_total;
      if (o.verdict == core::AdmissionOutcome::Verdict::DegradedAdmit)
        ++degraded;
      else if (o.verdict == core::AdmissionOutcome::Verdict::Deferred)
        ++deferred;
      switch (o.fate) {
        case metrics::JobFate::RejectedAtSubmit:
        case metrics::JobFate::RejectedAtDispatch:
          ++rejected;
          switch (o.reason) {
            case trace::RejectionReason::ShareOverflow: ++rej_share; break;
            case trace::RejectionReason::RiskSigma: ++rej_sigma; break;
            case trace::RejectionReason::DeadlineInfeasible: ++rej_deadline; break;
            case trace::RejectionReason::NoSuitableNode: ++rej_node; break;
            case trace::RejectionReason::None: break;
          }
          break;
        case metrics::JobFate::CompletedLate:
          (o.underestimated ? late_under : late_victim) += 1;
          break;
        case metrics::JobFate::FulfilledInTime:
          if (o.underestimated) ++ful_under;
          break;
        default:
          break;
      }
    }
    // Admission/kernel effort via the shared derived-stat helpers (zero for
    // space-shared policies, which use neither the Libra admission scan nor
    // the time-shared executor).
    const core::AdmissionStats& adm = r.admission;
    const cluster::KernelStats& kern = r.kernel;
    t.add_row({std::string(core::to_string(policy)),
               table::pct(r.summary.fulfilled_pct),
               table::num(r.summary.avg_slowdown_fulfilled),
               std::to_string(rejected),
               std::to_string(rej_share),
               std::to_string(rej_sigma),
               std::to_string(rej_deadline),
               std::to_string(rej_node),
               std::to_string(degraded),
               std::to_string(deferred),
               // Near-miss rejections: within 5%/10% of flipping the
               // decisive test (conservative undercount when the batch
               // spread bound skipped exact sigmas).
               std::to_string(adm.near_miss_5()),
               std::to_string(adm.near_miss_10()),
               std::to_string(late_under),
               std::to_string(late_victim), std::to_string(ful_under),
               std::to_string(under_total),
               table::num(adm.scans_per_submission()),
               std::to_string(adm.empty_node_skips),
               std::to_string(adm.batched_assessments),
               std::to_string(adm.nodes_batch_skipped),
               table::num(kern.recomputes_per_settle()),
               table::num(kern.skip_pct(), 1)});
  }
  std::cout << "inaccuracy " << inaccuracy_opt.value << "%, work-conserving "
            << (wc_opt.value ? "on" : "off") << ":\n"
            << t.str();
  return 0;
}
