// Gantt: visualize node allocation under two admission controls.
//
// Runs a small workload on a small cluster with the execution-timeline
// recorder attached and prints an ASCII Gantt chart per policy — the
// fastest way to *see* best-fit saturation (Libra) versus zero-risk
// placement with salvage lanes (LibraRisk).
//
//   $ gantt --jobs 40 --nodes 8 --inaccuracy 100
#include <iostream>

#include "cluster/timeshared.hpp"
#include "core/libra.hpp"
#include "core/scheduler.hpp"
#include "metrics/report.hpp"
#include "support/cli.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace librisk;

  cli::Parser parser("gantt", "ASCII Gantt chart of node allocation per policy");
  auto& jobs_opt = parser.add<int>("jobs", "number of jobs", 40);
  auto& nodes_opt = parser.add<int>("nodes", "cluster size", 8);
  auto& seed_opt = parser.add<std::uint64_t>("seed", "workload seed", 1);
  auto& inaccuracy_opt = parser.add<double>("inaccuracy", "estimate inaccuracy %", 100.0);
  auto& width_opt = parser.add<int>("width", "chart width in columns", 100);
  parser.parse(argc, argv);

  workload::PaperWorkloadConfig config;
  config.trace.job_count = static_cast<std::size_t>(jobs_opt.value);
  // Scale arrivals to the small cluster so the chart shows real contention.
  config.trace.arrival_delay_factor =
      static_cast<double>(nodes_opt.value) / 128.0;
  config.inaccuracy_pct = inaccuracy_opt.value;
  const auto jobs = workload::make_paper_workload(config, seed_opt.value);
  const auto cluster = cluster::Cluster::homogeneous(nodes_opt.value, 168.0);

  for (const bool risk : {false, true}) {
    sim::Simulator simulator;
    metrics::Collector collector;
    cluster::TimelineRecorder timeline;
    cluster::TimeSharedExecutor executor(simulator, cluster);
    executor.set_timeline_recorder(&timeline);
    core::LibraScheduler scheduler(
        simulator, executor, collector,
        risk ? core::LibraConfig::libra_risk() : core::LibraConfig::libra(),
        risk ? "LibraRisk" : "Libra");
    core::run_trace(simulator, scheduler, collector, jobs);

    const auto summary = collector.summarize();
    std::cout << "== " << scheduler.name() << " — fulfilled "
              << summary.fulfilled << '/' << summary.submitted << ", late "
              << summary.completed_late << " ==\n"
              << timeline.render_gantt(nodes_opt.value, width_opt.value)
              << '\n';
  }
  std::cout << "legend: '.' idle, one symbol per job (id mod 62), '#' = several"
               " jobs time-sharing the node/bucket\n";
  return 0;
}
