// Trace replay: run the admission controls on a real SWF trace file.
//
// Feed it any Parallel Workloads Archive trace (e.g. SDSC-SP2-1998-4.2-cln.swf):
//
//   $ trace_replay --trace SDSC-SP2-1998-4.2-cln.swf --last 3000
//
// Deadlines are not part of SWF, so they are synthesised exactly as the
// paper does (urgency classes + normally distributed deadline/runtime
// factors) unless the file carries librisk-deadline extension comments.
// Without --trace, the example writes a synthetic SDSC-SP2-like trace to
// disk first and replays that file — demonstrating the full SWF round trip.
#include <iostream>

#include "exp/scenario.hpp"
#include "metrics/report.hpp"
#include "support/cli.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload_stats.hpp"

int main(int argc, char** argv) {
  using namespace librisk;

  cli::Parser parser("trace_replay", "Replay an SWF trace through the admission controls");
  auto& trace_opt = parser.add<std::string>("trace", "SWF file (empty: generate one)", "");
  auto& last_opt = parser.add<int>("last", "keep only the last N jobs (0 = all)", 3000);
  auto& nodes_opt = parser.add<int>("nodes", "cluster size", 128);
  auto& rating_opt = parser.add<double>("rating", "node SPEC rating", 168.0);
  auto& seed_opt = parser.add<std::uint64_t>("seed", "seed for synthesised deadlines", 1);
  auto& inaccuracy_opt =
      parser.add<double>("inaccuracy", "estimate inaccuracy % (100 = trace estimates)", 100.0);
  parser.parse(argc, argv);

  std::string path = trace_opt.value;
  if (path.empty()) {
    // No trace supplied: fabricate a synthetic SDSC-SP2-like one on disk so
    // the example still demonstrates the file-based flow.
    path = "synthetic_sdsc_sp2.swf";
    workload::PaperWorkloadConfig config;
    config.trace.job_count = static_cast<std::size_t>(
        last_opt.value > 0 ? last_opt.value : 3000);
    const auto jobs = workload::make_paper_workload(config, seed_opt.value);
    workload::swf::write_file(path, jobs,
                              {.include_deadlines = false,
                               .header = {"synthetic SDSC SP2 stand-in (librisk)"}});
    std::cout << "no --trace given; wrote " << path << " (" << jobs.size()
              << " jobs) and replaying it\n\n";
  }

  workload::swf::ReadOptions read_opts;
  read_opts.last_n = last_opt.value > 0 ? static_cast<std::size_t>(last_opt.value) : 0;
  auto jobs = workload::swf::read_file(path, read_opts);
  if (jobs.empty()) {
    std::cerr << "trace contains no usable jobs\n";
    return 1;
  }

  // Synthesise deadlines for jobs that do not carry them.
  bool missing_deadlines = false;
  for (const auto& j : jobs) missing_deadlines |= j.deadline <= 0.0;
  if (missing_deadlines) {
    workload::DeadlineConfig deadline_config;
    rng::Stream stream("deadlines", seed_opt.value);
    workload::assign_deadlines(jobs, deadline_config, stream);
    std::cout << "deadlines synthesised (20% high urgency, ratio 4, seed "
              << seed_opt.value << ")\n";
  }
  workload::apply_inaccuracy(jobs, inaccuracy_opt.value);
  workload::validate_trace(jobs);

  workload::print_stats(std::cout, workload::compute_stats(jobs));
  std::cout << '\n';

  exp::Scenario scenario;
  scenario.nodes = nodes_opt.value;
  scenario.rating = rating_opt.value;
  std::vector<metrics::LabelledSummary> results;
  for (const core::Policy policy : core::all_policies()) {
    scenario.policy = policy;
    const exp::ScenarioResult result = exp::run_jobs(scenario, jobs);
    results.push_back({std::string(core::to_string(policy)), result.summary});
  }
  metrics::print_comparison(std::cout, results);
  return 0;
}
