// Ablation A6 (extension): kill-at-limit execution.
//
// Real kill-at-limit systems terminate a job the instant its requested time
// elapses — the policy that shaped the SDSC SP2 trace itself. Killing
// removes the overrun cascades LibraRisk guards against, but turns every
// user under-estimate into a lost job for *everyone*. This harness compares
// all three paper policies with the kill switch on and off, under trace
// estimates.
#include "fig_common.hpp"

#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "ablation_kill",
      "Kill-at-limit vs run-to-completion execution (trace estimates)",
      "ablation_kill.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"kill_at_estimate", "policy", "fulfilled_pct", "killed",
                 "late", "avg_slowdown"});

  std::cout << "== A6: kill-at-limit execution ablation ==\n\n";
  table::Table t({"execution", "policy", "fulfilled %", "killed", "late",
                  "avg slowdown"});
  for (const bool kill : {false, true}) {
    const char* label = kill ? "kill at estimate" : "run to completion";
    for (const core::Policy policy : core::paper_policies()) {
      stats::Accumulator fulfilled, killed, late, slowdown;
      for (int seed = 1; seed <= options.seeds; ++seed) {
        exp::Scenario s = bench::paper_base_scenario(options);
        s.policy = policy;
        s.seed = static_cast<std::uint64_t>(seed);
        s.options.share_model.kill_at_estimate = kill;
        const exp::ScenarioResult r = exp::run_scenario(s);
        fulfilled.add(r.summary.fulfilled_pct);
        killed.add(static_cast<double>(r.summary.killed));
        late.add(static_cast<double>(r.summary.completed_late));
        slowdown.add(r.summary.avg_slowdown_fulfilled);
      }
      t.add_row({label, std::string(core::to_string(policy)),
                 table::pct(fulfilled.mean()), table::num(killed.mean(), 0),
                 table::num(late.mean(), 0), table::num(slowdown.mean())});
      writer.row({kill ? "true" : "false", std::string(core::to_string(policy)),
                  csv::Writer::field(fulfilled.mean()),
                  csv::Writer::field(killed.mean()), csv::Writer::field(late.mean()),
                  csv::Writer::field(slowdown.mean())});
    }
    t.add_rule();
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
