// Gateway throughput: sustained admission decisions per second through the
// concurrent frontend, swept over 1..16+ producer threads.
//
// Two mixes, bracketing the pipeline:
//
//   gate  — every job is certifiably hopeless (Libra C2-share: the share on
//           the fastest node already exceeds a whole processor), and
//           audit_shed is off, so each submit() resolves entirely at the
//           lock-free fast-reject stage: predicate + two relaxed counter
//           bumps, no queue, no engine. This is the headline number the
//           gateway's design targets (>= 1e6 decisions/sec).
//   mixed — half the jobs shed at the gate, half pass through the bounded
//           queue into the single-threaded engine and a real simulation.
//           The engine serialises this mix, so it measures the whole
//           pipeline under backpressure, not the gate.
//
// The mixed mix runs twice: once under Libra (C2-share certificate sheds
// the hopeless half) and once under LibraRisk ("mixed-risk"; the sigma-only
// salvage lane admits any share on an empty node, so no C2 certificate
// exists and the shed half is C1-impossible instead — more processors than
// the cluster). The mixed-risk rows drive the batched sigma-risk admission
// scan end to end behind the queue.
//
// Results go to BENCH_gateway.json (--out overrides); EXPERIMENTS.md
// "Concurrent admission gateway" carries the narrative. --quick shrinks the
// job counts ~20x for the bench-smoke ctest label.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/gateway.hpp"
#include "support/cli.hpp"

namespace {

using namespace librisk;

struct MixResult {
  std::string mix;
  int threads = 0;
  std::uint64_t jobs = 0;
  double seconds = 0.0;
  double decisions_per_sec = 0.0;
  std::uint64_t fast_rejected = 0;
  std::uint64_t engine_decided = 0;
  std::uint64_t queue_high_water = 0;
};

/// A job the Libra C2-share certificate sheds: share on a unit-speed node
/// is estimate/deadline = 50 processors.
workload::Job hopeless_job() {
  workload::Job job;
  job.actual_runtime = 100.0;
  job.user_estimate = 100.0;
  job.scheduler_estimate = 100.0;
  job.deadline = 2.0;
  job.num_procs = 1;
  return job;
}

/// A job Libra admits easily: share 100/250 = 0.4 of one node.
workload::Job easy_job() {
  workload::Job job;
  job.actual_runtime = 100.0;
  job.user_estimate = 100.0;
  job.scheduler_estimate = 100.0;
  job.deadline = 250.0;
  job.num_procs = 1;
  return job;
}

/// A job the C1 certificate sheds on every policy: wider than the cluster.
/// LibraRisk's salvage lane voids the C2-share certificate, so this is the
/// only sound gate-shed shape for the mixed-risk rows.
workload::Job impossible_job() {
  workload::Job job = hopeless_job();
  job.deadline = 250.0;
  job.num_procs = 4096;
  return job;
}

core::GatewayConfig bench_config(core::Policy policy) {
  core::GatewayConfig config;
  config.engine.cluster = cluster::Cluster::homogeneous(128, 168.0);
  config.engine.policy = policy;
  config.audit_shed = false;  // drop at the gate: measure the gate itself
  config.queue_capacity = 4096;
  return config;
}

/// Each producer submits `jobs_per_thread` jobs; ids are globally unique
/// and submit times monotone per producer (the drive thread's watermark
/// clamp handles the interleaving). `shed_every` = 1 sheds everything
/// (gate mix); 2 sheds every other job (mixed).
MixResult run_mix(const std::string& mix, int threads,
                  std::uint64_t jobs_per_thread, int shed_every,
                  core::Policy policy, const workload::Job& shed_proto) {
  core::AdmissionGateway gateway(bench_config(policy));

  // Per-producer arrival spacing stretches with the thread count so the
  // *global* arrival rate (one job per sim-second) and horizon are the same
  // in every row — otherwise more threads would mean shorter, denser
  // simulated traces and the mixed rows would not be comparable.
  const double spacing = static_cast<double>(threads);
  const auto produce = [&gateway, jobs_per_thread, shed_every, spacing,
                        &shed_proto](int lane) {
    workload::Job shed = shed_proto;
    workload::Job pass = easy_job();
    for (std::uint64_t i = 0; i < jobs_per_thread; ++i) {
      const bool is_shed = shed_every == 1 || i % 2 == 0;
      workload::Job& job = is_shed ? shed : pass;
      job.id = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(lane) * jobs_per_thread + i + 1);
      job.submit_time = static_cast<double>(i) * spacing;
      gateway.submit(job);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(threads));
  for (int lane = 0; lane < threads; ++lane) producers.emplace_back(produce, lane);
  for (std::thread& thread : producers) thread.join();
  gateway.close();  // mixed: decisions are not done until the queue drains
  const auto stop = std::chrono::steady_clock::now();

  const core::GatewayStats stats = gateway.stats();
  MixResult r;
  r.mix = mix;
  r.threads = threads;
  r.jobs = static_cast<std::uint64_t>(threads) * jobs_per_thread;
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.decisions_per_sec = static_cast<double>(r.jobs) / r.seconds;
  r.fast_rejected = stats.fast_rejected;
  r.engine_decided = stats.decided;
  r.queue_high_water = stats.queue_high_water;
  return r;
}

void write_json(const std::string& path, const std::vector<MixResult>& results) {
  std::ofstream os(path);
  os << "{\n"
     << " \"note\": \"Regenerated by build/bench/throughput_gateway; see "
        "EXPERIMENTS.md 'Concurrent admission gateway' for the narrative. "
        "gate = 100% fast-reject in drop mode (the lock-free stage alone); "
        "mixed = 50% shed, rest through the queue + engine; mixed-risk = "
        "the same 50/50 split under LibraRisk (C1 sheds, batched sigma-risk "
        "scan behind the queue).\",\n"
     << " \"context\": {\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"policy\": \"Libra (gate, mixed); LibraRisk (mixed-risk)\",\n"
     << "  \"cluster\": \"homogeneous 128 x 168\",\n"
     << "  \"queue_capacity\": 4096\n"
     << " },\n"
     << " \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    os << "  {\"mix\": \"" << r.mix << "\", \"threads\": " << r.threads
       << ", \"jobs\": " << r.jobs << ", \"seconds\": " << r.seconds
       << ", \"decisions_per_sec\": " << r.decisions_per_sec
       << ", \"fast_rejected\": " << r.fast_rejected
       << ", \"engine_decided\": " << r.engine_decided
       << ", \"queue_high_water\": " << r.queue_high_water << "}"
       << (i + 1 < results.size() ? "," : "") << '\n';
  }
  os << " ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  cli::Parser parser("throughput_gateway",
                     "Gateway decisions/sec over 1..16 producer threads");
  auto& quick_opt = parser.add<bool>("quick", "smoke mode: ~20x fewer jobs", false);
  auto& out_opt = parser.add<std::string>("out", "JSON output path",
                                          "BENCH_gateway.json");
  parser.parse(argc, argv);

  const std::uint64_t gate_jobs = quick_opt.value ? 50'000 : 1'000'000;
  const std::uint64_t mixed_jobs = quick_opt.value ? 2'000 : 20'000;
  const int thread_counts[] = {1, 2, 4, 8, 16};

  std::vector<MixResult> results;
  std::cout << "mix    threads       jobs   seconds   decisions/sec\n";
  for (const int threads : thread_counts) {
    // Fixed total work per row: scaling shows up as falling seconds.
    using Row = std::tuple<const char*, std::uint64_t, int, core::Policy,
                           workload::Job>;
    for (const auto& [mix, total, shed_every, policy, shed_proto] :
         {Row{"gate", gate_jobs, 1, core::Policy::Libra, hopeless_job()},
          Row{"mixed", mixed_jobs, 2, core::Policy::Libra, hopeless_job()},
          Row{"mixed-risk", mixed_jobs, 2, core::Policy::LibraRisk,
              impossible_job()}}) {
      const std::uint64_t per_thread =
          total / static_cast<std::uint64_t>(threads);
      MixResult r = run_mix(mix, threads, per_thread, shed_every, policy,
                            shed_proto);
      const std::size_t width = std::string(mix).size();
      std::cout << mix << std::string(width < 11 ? 11 - width : 1, ' ')
                << "  " << threads << "  " << r.jobs << "  " << r.seconds
                << "  " << static_cast<std::uint64_t>(r.decisions_per_sec)
                << '\n';
      results.push_back(std::move(r));
    }
  }
  write_json(out_opt.value, results);
  std::cout << "written to " << out_opt.value << '\n';
  return 0;
}
