// Microbenchmark M4: whole-trace admission throughput, fast path vs the
// preserved seed path (PolicyOptions::legacy_admission), as the cluster
// grows. Admission is O(nodes) per submission, so this is where the
// workspace + NodeStateView cache + selection early-exit pay off — the
// paper's 128-node cluster is the small end.
//
// One iteration = a full SDSC SP2 simulation (workload generation
// included); counters come from AdmissionStats so the two variants can be
// confirmed to do identical decision work.
#include <benchmark/benchmark.h>

#include "exp/scenario.hpp"

namespace {

using namespace librisk;

void run_admission(benchmark::State& state, core::Policy policy, bool legacy) {
  exp::Scenario scenario;
  scenario.workload.trace.job_count = 3000;
  scenario.nodes = static_cast<int>(state.range(0));
  scenario.policy = policy;
  scenario.options.legacy_admission = legacy;
  std::uint64_t seed = 1;
  std::uint64_t accepted = 0;
  std::uint64_t nodes_scanned = 0;
  for (auto _ : state) {
    scenario.seed = seed++;
    const exp::ScenarioResult result = exp::run_scenario(scenario);
    accepted += result.admission.accepted;
    nodes_scanned += result.admission.nodes_scanned;
    benchmark::DoNotOptimize(result.summary.fulfilled_pct);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * scenario.workload.trace.job_count));
  state.counters["accepted"] =
      benchmark::Counter(static_cast<double>(accepted) /
                         static_cast<double>(state.iterations()));
  state.counters["nodes_scanned"] =
      benchmark::Counter(static_cast<double>(nodes_scanned) /
                         static_cast<double>(state.iterations()));
}

void BM_AdmissionEndToEnd_LibraRisk(benchmark::State& state) {
  run_admission(state, core::Policy::LibraRisk, false);
}
void BM_AdmissionEndToEnd_LibraRiskLegacy(benchmark::State& state) {
  run_admission(state, core::Policy::LibraRisk, true);
}
void BM_AdmissionEndToEnd_Libra(benchmark::State& state) {
  run_admission(state, core::Policy::Libra, false);
}
void BM_AdmissionEndToEnd_LibraLegacy(benchmark::State& state) {
  run_admission(state, core::Policy::Libra, true);
}

BENCHMARK(BM_AdmissionEndToEnd_LibraRisk)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdmissionEndToEnd_LibraRiskLegacy)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdmissionEndToEnd_Libra)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdmissionEndToEnd_LibraLegacy)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
