// Figure 3: impact of varying the proportion of high-urgency jobs.
//
// Paper's observed shape:
//  - fulfilled % falls for EDF and Libra as high-urgency jobs increase
//    (short deadlines are hard to honour);
//  - LibraRisk *holds or improves*, roughly doubling its advantage over
//    Libra between 20% and 80% high-urgency (trace estimates);
//  - average slowdown falls slightly with more high-urgency jobs.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "fig3_urgency",
      "Reproduces Figure 3 (varying % of high-urgency jobs)",
      "fig3_urgency.csv");

  const exp::Scenario base = bench::paper_base_scenario(options);
  const exp::SweepConfig sweep = bench::paper_sweep(
      options, {0, 20, 40, 60, 80, 100}, [](exp::Scenario& s, double x) {
        s.workload.deadlines.high_urgency_fraction = x / 100.0;
      });

  bench::run_figure(options, base, sweep, "fig3",
                    "impact of varying high urgency jobs", "% of high urgency jobs");
  return 0;
}
