// Peak-RSS comparison: materialized vs. streaming SWF replay
// (EXPERIMENTS.md §"Streaming replay memory").
//
// The PR 5 inversion claims that `librisk-sim replay --stream` holds job
// objects proportional to the simulation's *resident set*, not the trace
// length. This harness prices that claim in bytes: it writes a large
// synthetic trace to disk, then replays it twice through the online
// AdmissionEngine — once materialized (batch read, every arrival submitted
// up front, the seed run_trace drive) and once streaming (SwfStream,
// advance-then-submit) — and reports each replay's peak resident set size.
//
// Peak RSS is a process-wide high-water mark, so each measurement runs in
// a fresh child process (fork + exec of this binary with --mode) and is
// read from getrusage(RUSAGE_SELF) there; the parent only generates the
// trace, checks both replays resolved jobs identically, and prints/writes
// the table. Linux-specific, like the rest of the bench directory's
// assumptions about the host.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "support/cli.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

namespace librisk::bench {
namespace {

constexpr double kRating = 168.0;

/// Child-side measurement: replay `trace` in the requested mode, then emit
/// one machine-readable RESULT line. Runs in its own process so ru_maxrss
/// reflects exactly one replay.
int run_child(const std::string& mode, const std::string& trace, int nodes) {
  core::EngineConfig config;
  config.cluster = cluster::Cluster::homogeneous(nodes, kRating);
  const std::unique_ptr<core::AdmissionEngine> engine =
      core::make_engine(std::move(config));
  if (mode == "materialized") {
    // enqueue(), not submit(): this leg measures the whole-trace-resident
    // batch shape, which eager submission would deflate.
    const std::vector<workload::Job> jobs = workload::swf::read_file(trace);
    for (const workload::Job& job : jobs) engine->enqueue(job);
  } else {
    workload::swf::SwfStream stream(trace);
    workload::Job job;
    while (stream.next(job)) {
      engine->advance_to(job.submit_time);
      engine->submit(job);
    }
  }
  engine->finish();

  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    std::cerr << "getrusage failed\n";
    return 1;
  }
  const metrics::RunSummary summary = engine->summary();
  std::cout << "RESULT mode=" << mode << " maxrss_kib=" << usage.ru_maxrss
            << " submitted=" << summary.submitted
            << " fulfilled=" << summary.fulfilled
            << " completed_late=" << summary.completed_late
            << " killed=" << summary.killed
            << " rejected=" << summary.rejected_at_submit
            << " peak_live=" << engine->peak_live_jobs() << "\n";
  return 0;
}

struct ChildResult {
  long maxrss_kib = 0;
  std::size_t submitted = 0;
  std::size_t fulfilled = 0;
  std::size_t completed_late = 0;
  std::size_t killed = 0;
  std::size_t rejected = 0;
  std::size_t peak_live = 0;
};

/// Forks and execs this binary in --mode `mode`, parses its RESULT line.
ChildResult spawn_measurement(const std::string& mode, const std::string& trace,
                              int nodes) {
  std::array<int, 2> pipe_fds{};
  if (pipe(pipe_fds.data()) != 0) throw std::runtime_error("pipe() failed");

  char self[4096];
  const ssize_t len = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (len <= 0) throw std::runtime_error("readlink(/proc/self/exe) failed");
  self[len] = '\0';

  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork() failed");
  if (pid == 0) {
    close(pipe_fds[0]);
    dup2(pipe_fds[1], STDOUT_FILENO);
    close(pipe_fds[1]);
    const std::string nodes_arg = std::to_string(nodes);
    const char* argv[] = {self,           "--mode",  mode.c_str(),
                          "--trace",      trace.c_str(), "--nodes",
                          nodes_arg.c_str(), nullptr};
    execv(self, const_cast<char* const*>(argv));
    std::perror("execv");
    _exit(127);
  }

  close(pipe_fds[1]);
  std::string output;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(pipe_fds[0], buf, sizeof(buf))) > 0)
    output.append(buf, static_cast<std::size_t>(n));
  close(pipe_fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
    throw std::runtime_error("child replay (--mode " + mode +
                             ") failed: " + output);

  std::map<std::string, std::string> kv;
  std::istringstream is(output);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  ChildResult r;
  r.maxrss_kib = std::stol(kv.at("maxrss_kib"));
  r.submitted = std::stoul(kv.at("submitted"));
  r.fulfilled = std::stoul(kv.at("fulfilled"));
  r.completed_late = std::stoul(kv.at("completed_late"));
  r.killed = std::stoul(kv.at("killed"));
  r.rejected = std::stoul(kv.at("rejected"));
  r.peak_live = std::stoul(kv.at("peak_live"));
  return r;
}

int run_parent(int jobs, int nodes, const std::string& out_csv) {
  std::cout << "mem_streaming_replay: " << jobs << " synthetic jobs, " << nodes
            << "-node cluster, policy LibraRisk\n";

  workload::PaperWorkloadConfig config;
  config.trace.job_count = static_cast<std::size_t>(jobs);
  const std::vector<workload::Job> trace_jobs =
      workload::make_paper_workload(config, 1);

  const std::string trace_path = "mem_streaming_replay.tmp.swf";
  workload::swf::write_file(trace_path, trace_jobs,
                            {true, {"mem_streaming_replay synthetic trace"}});

  const ChildResult materialized =
      spawn_measurement("materialized", trace_path, nodes);
  const ChildResult streaming = spawn_measurement("streaming", trace_path, nodes);
  std::remove(trace_path.c_str());

  // The comparison is only meaningful if both replays did identical work.
  if (materialized.submitted != streaming.submitted ||
      materialized.fulfilled != streaming.fulfilled ||
      materialized.completed_late != streaming.completed_late ||
      materialized.killed != streaming.killed ||
      materialized.rejected != streaming.rejected) {
    std::cerr << "FATAL: materialized and streaming replays diverged\n";
    return 1;
  }

  const double ratio =
      streaming.maxrss_kib > 0
          ? static_cast<double>(materialized.maxrss_kib) /
                static_cast<double>(streaming.maxrss_kib)
          : 0.0;
  std::cout << "\n  mode          peak RSS (KiB)   peak resident job objects\n";
  std::cout << "  materialized  " << materialized.maxrss_kib << "            "
            << materialized.peak_live << " (= trace length)\n";
  std::cout << "  streaming     " << streaming.maxrss_kib << "            "
            << streaming.peak_live << "\n";
  std::cout << "\n  materialized / streaming RSS: " << ratio << "x\n";
  std::cout << "  (both replays: " << streaming.submitted << " submitted, "
            << streaming.fulfilled << " fulfilled, " << streaming.killed
            << " killed — identical)\n";

  std::ofstream csv(out_csv);
  csv << "figure,x,policy,measure,mean,ci95,seeds\n";
  csv << "mem_streaming_replay," << jobs << ",LibraRisk,maxrss_kib_materialized,"
      << materialized.maxrss_kib << ",0,1\n";
  csv << "mem_streaming_replay," << jobs << ",LibraRisk,maxrss_kib_streaming,"
      << streaming.maxrss_kib << ",0,1\n";
  csv << "mem_streaming_replay," << jobs << ",LibraRisk,peak_live_materialized,"
      << materialized.peak_live << ",0,1\n";
  csv << "mem_streaming_replay," << jobs << ",LibraRisk,peak_live_streaming,"
      << streaming.peak_live << ",0,1\n";
  std::cout << "\nwrote " << out_csv << "\n";
  return 0;
}

}  // namespace
}  // namespace librisk::bench

int main(int argc, char** argv) {
  using namespace librisk;
  cli::Parser parser("mem_streaming_replay",
                     "Peak-RSS of streaming vs. materialized SWF replay");
  auto& jobs = parser.add<int>("jobs", "synthetic trace length", 200000);
  auto& nodes = parser.add<int>("nodes", "cluster size", 128);
  auto& out = parser.add<std::string>("out", "CSV output path",
                                      "mem_streaming_replay.csv");
  auto& quick = parser.add<bool>("quick", "small trace (smoke run)", false);
  auto& mode = parser.add<std::string>(
      "mode", "internal: child measurement mode (materialized|streaming)", "");
  auto& trace = parser.add<std::string>("trace", "internal: child trace path", "");
  parser.parse(argc, argv);

  try {
    if (!mode.value.empty())
      return bench::run_child(mode.value, trace.value, nodes.value);
    return bench::run_parent(quick.value ? 20000 : jobs.value, nodes.value,
                             out.value);
  } catch (const std::exception& e) {
    std::cerr << "mem_streaming_replay: " << e.what() << "\n";
    return 1;
  }
}
