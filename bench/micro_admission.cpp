// Microbenchmark M2: admission-control decision cost.
//
// LibraRisk evaluates every node per submission (Algorithm 1 is O(m * n_j));
// this measures the per-decision cost of the share test and the risk
// assessment at realistic node populations.
#include <benchmark/benchmark.h>

#include "core/risk.hpp"
#include "cluster/share_model.hpp"
#include "support/rng.hpp"

namespace {

using namespace librisk;

std::vector<core::RiskJobInput> make_inputs(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  std::vector<core::RiskJobInput> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::RiskJobInput in;
    in.remaining_work = stream.uniform(100.0, 50000.0);
    in.remaining_deadline = stream.uniform(200.0, 100000.0);
    in.current_rate = stream.uniform(0.05, 1.0);
    inputs.push_back(in);
  }
  if (!inputs.empty()) inputs.back().current_rate = core::RiskJobInput::kNewJob;
  return inputs;
}

// Allocating baseline: a cold workspace per call reproduces the retired
// convenience overload's cost profile (fresh result vectors every
// assessment) without keeping a call site for it outside the tests.
void BM_RiskAssessNode(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  for (auto _ : state) {
    core::RiskWorkspace workspace;
    const core::RiskAssessmentView a =
        core::assess_node(inputs, config, 1.0, 0.3, workspace);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNode)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// The hot path the scheduler actually takes: one long-lived workspace,
// zero allocations per assessment.
void BM_RiskAssessNodeWorkspace(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  core::RiskWorkspace workspace;
  for (auto _ : state) {
    const core::RiskAssessmentView a =
        core::assess_node(inputs, config, 1.0, 0.3, workspace);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeWorkspace)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// The seed implementation (multi-pass, one heap-allocated vector per pass),
// kept compiled as the differential-testing reference — and as the baseline
// the workspace variant is measured against.
void BM_RiskAssessNodeLegacy(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  for (auto _ : state) {
    const core::RiskAssessment a =
        core::assess_node_legacy(inputs, config, 1.0, 0.3);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeLegacy)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_RiskAssessNodeProcessorSharing(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  core::RiskConfig config;
  config.prediction = core::RiskConfig::Prediction::ProcessorSharing;
  for (auto _ : state) {
    core::RiskWorkspace workspace;  // cold per call, like the old overload
    const core::RiskAssessmentView a =
        core::assess_node(inputs, config, 1.0, 0.3, workspace);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeProcessorSharing)->Arg(8)->Arg(128);

void BM_RiskAssessNodeProcessorSharingWorkspace(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  core::RiskConfig config;
  config.prediction = core::RiskConfig::Prediction::ProcessorSharing;
  core::RiskWorkspace workspace;
  for (auto _ : state) {
    const core::RiskAssessmentView a =
        core::assess_node(inputs, config, 1.0, 0.3, workspace);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeProcessorSharingWorkspace)->Arg(8)->Arg(128);

// SoA population for the batched kernel: the same jobs make_inputs draws,
// split into resident columns plus the admission candidate (the kNewJob
// entry), the way the executor's node cache now hands them over.
struct SoaPopulation {
  std::vector<double> work;
  std::vector<double> deadline;
  std::vector<double> rate;
  double cand_work = 0.0;
  double cand_deadline = 0.0;

  [[nodiscard]] core::NodeRiskInput node(double available_capacity) const {
    core::NodeRiskInput in;
    in.remaining_work = work;
    in.remaining_deadline = deadline;
    in.rate = rate;
    in.available_capacity = available_capacity;
    return in;
  }
};

SoaPopulation make_soa(std::size_t n, std::uint64_t seed) {
  const auto inputs = make_inputs(n, seed);
  SoaPopulation p;
  for (std::size_t i = 0; i + 1 < inputs.size(); ++i) {
    p.work.push_back(inputs[i].remaining_work);
    p.deadline.push_back(inputs[i].remaining_deadline);
    p.rate.push_back(inputs[i].current_rate);
  }
  if (!inputs.empty()) {
    p.cand_work = inputs.back().remaining_work;
    p.cand_deadline = inputs.back().remaining_deadline;
  }
  return p;
}

// The batched SoA kernel, strict (bit-identical) accumulation, one node per
// call — head-to-head with BM_RiskAssessNodeWorkspace on the same jobs.
void BM_RiskAssessNodesBatched(benchmark::State& state) {
  const SoaPopulation p = make_soa(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  core::RiskWorkspace workspace;
  const core::NodeRiskInput node = p.node(0.3);
  core::NodeRiskVerdict verdict;
  for (auto _ : state) {
    core::assess_nodes({&node, 1}, p.cand_work, p.cand_deadline, config,
                       workspace, {&verdict, 1});
    benchmark::DoNotOptimize(verdict.sigma);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (p.work.size() + 1)));
}
BENCHMARK(BM_RiskAssessNodesBatched)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// Reassociated (4-lane / SIMD when compiled in) accumulation — the opt-in
// bit-changing mode, same jobs.
void BM_RiskAssessNodesReassociated(benchmark::State& state) {
  const SoaPopulation p = make_soa(static_cast<std::size_t>(state.range(0)), 7);
  core::RiskConfig config;
  config.batch_accumulation = core::RiskConfig::Accumulation::Reassociated;
  core::RiskWorkspace workspace;
  const core::NodeRiskInput node = p.node(0.3);
  core::NodeRiskVerdict verdict;
  for (auto _ : state) {
    core::assess_nodes({&node, 1}, p.cand_work, p.cand_deadline, config,
                       workspace, {&verdict, 1});
    benchmark::DoNotOptimize(verdict.sigma);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (p.work.size() + 1)));
}
BENCHMARK(BM_RiskAssessNodesReassociated)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// The scheduler's steady-state path: the executor's epoch cache has already
// folded the residents into power sums, so the per-node assessment is O(1)
// in the population — only the candidate's terms are appended.
void BM_RiskAssessNodesAggregates(benchmark::State& state) {
  const SoaPopulation p = make_soa(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  core::RiskWorkspace workspace;
  core::ResidentRiskAggregates agg;
  for (std::size_t i = 0; i < p.work.size(); ++i) {
    const double share = cluster::required_share(p.work[i], p.deadline[i],
                                                 config.deadline_clamp, 1.0);
    agg.fold(share, p.work[i], p.deadline[i], p.rate[i],
             config.deadline_clamp);
  }
  agg.computed = true;
  core::NodeRiskInput node = p.node(0.3);
  node.aggregates = &agg;
  core::NodeRiskVerdict verdict;
  for (auto _ : state) {
    core::assess_nodes({&node, 1}, p.cand_work, p.cand_deadline, config,
                       workspace, {&verdict, 1});
    benchmark::DoNotOptimize(verdict.sigma);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (p.work.size() + 1)));
}
BENCHMARK(BM_RiskAssessNodesAggregates)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// Aggregates path including the fold itself (what one cache rebuild plus
// one assessment costs): bounds how much of the O(1) win the epoch cache's
// amortization is responsible for.
void BM_RiskAssessNodesAggregatesWithFold(benchmark::State& state) {
  const SoaPopulation p = make_soa(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  core::RiskWorkspace workspace;
  core::NodeRiskInput node = p.node(0.3);
  core::NodeRiskVerdict verdict;
  for (auto _ : state) {
    core::ResidentRiskAggregates agg;
    for (std::size_t i = 0; i < p.work.size(); ++i) {
      const double share = cluster::required_share(p.work[i], p.deadline[i],
                                                   config.deadline_clamp, 1.0);
      agg.fold(share, p.work[i], p.deadline[i], p.rate[i],
               config.deadline_clamp);
    }
    agg.computed = true;
    node.aggregates = &agg;
    core::assess_nodes({&node, 1}, p.cand_work, p.cand_deadline, config,
                       workspace, {&verdict, 1});
    benchmark::DoNotOptimize(verdict.sigma);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (p.work.size() + 1)));
}
BENCHMARK(BM_RiskAssessNodesAggregatesWithFold)->Arg(8)->Arg(128);

void BM_TotalShare(benchmark::State& state) {
  rng::Stream stream(11);
  std::vector<double> shares(static_cast<std::size_t>(state.range(0)));
  for (auto& s : shares) s = stream.uniform(0.0, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::total_share(shares));
  }
}
BENCHMARK(BM_TotalShare)->Arg(8)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
