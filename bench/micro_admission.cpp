// Microbenchmark M2: admission-control decision cost.
//
// LibraRisk evaluates every node per submission (Algorithm 1 is O(m * n_j));
// this measures the per-decision cost of the share test and the risk
// assessment at realistic node populations.
#include <benchmark/benchmark.h>

#include "core/risk.hpp"
#include "cluster/share_model.hpp"
#include "support/rng.hpp"

namespace {

using namespace librisk;

std::vector<core::RiskJobInput> make_inputs(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  std::vector<core::RiskJobInput> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::RiskJobInput in;
    in.remaining_work = stream.uniform(100.0, 50000.0);
    in.remaining_deadline = stream.uniform(200.0, 100000.0);
    in.current_rate = stream.uniform(0.05, 1.0);
    inputs.push_back(in);
  }
  if (!inputs.empty()) inputs.back().current_rate = core::RiskJobInput::kNewJob;
  return inputs;
}

void BM_RiskAssessNode(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  for (auto _ : state) {
    const core::RiskAssessment a = core::assess_node(inputs, config, 1.0, 0.3);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNode)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// The hot path the scheduler actually takes: one long-lived workspace,
// zero allocations per assessment.
void BM_RiskAssessNodeWorkspace(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  core::RiskWorkspace workspace;
  for (auto _ : state) {
    const core::RiskAssessmentView a =
        core::assess_node(inputs, config, 1.0, 0.3, workspace);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeWorkspace)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// The seed implementation (multi-pass, one heap-allocated vector per pass),
// kept compiled as the differential-testing reference — and as the baseline
// the workspace variant is measured against.
void BM_RiskAssessNodeLegacy(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  const core::RiskConfig config;
  for (auto _ : state) {
    const core::RiskAssessment a =
        core::assess_node_legacy(inputs, config, 1.0, 0.3);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeLegacy)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_RiskAssessNodeProcessorSharing(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  core::RiskConfig config;
  config.prediction = core::RiskConfig::Prediction::ProcessorSharing;
  for (auto _ : state) {
    const core::RiskAssessment a = core::assess_node(inputs, config, 1.0, 0.3);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeProcessorSharing)->Arg(8)->Arg(128);

void BM_RiskAssessNodeProcessorSharingWorkspace(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)), 7);
  core::RiskConfig config;
  config.prediction = core::RiskConfig::Prediction::ProcessorSharing;
  core::RiskWorkspace workspace;
  for (auto _ : state) {
    const core::RiskAssessmentView a =
        core::assess_node(inputs, config, 1.0, 0.3, workspace);
    benchmark::DoNotOptimize(a.sigma);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * inputs.size()));
}
BENCHMARK(BM_RiskAssessNodeProcessorSharingWorkspace)->Arg(8)->Arg(128);

void BM_TotalShare(benchmark::State& state) {
  rng::Stream stream(11);
  std::vector<double> shares(static_cast<std::size_t>(state.range(0)));
  for (auto& s : shares) s = stream.uniform(0.0, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::total_share(shares));
  }
}
BENCHMARK(BM_TotalShare)->Arg(8)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
