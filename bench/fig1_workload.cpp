// Figure 1: impact of varying workload.
//
// The arrival delay factor scales the trace's inter-arrival times; a lower
// factor means a heavier workload. Paper's observed shape:
//  - fulfilled % rises (and slowdown falls) as the factor grows;
//  - EDF leads under heavy load (factor < ~0.3) thanks to its queue's
//    reselection advantage, then falls behind Libra/LibraRisk;
//  - with trace estimates LibraRisk fulfils the most jobs for factor > ~0.5
//    and achieves lower slowdown than Libra.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "fig1_workload", "Reproduces Figure 1 (varying workload)",
      "fig1_workload.csv");

  const exp::Scenario base = bench::paper_base_scenario(options);
  const exp::SweepConfig sweep = bench::paper_sweep(
      options, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
      [](exp::Scenario& s, double x) {
        s.workload.trace.arrival_delay_factor = x;
      });

  bench::run_figure(options, base, sweep, "fig1", "impact of varying workload",
                    "arrival delay factor");
  return 0;
}
