// Microbenchmark M5: execution-kernel throughput, incremental dirty-set
// kernel vs the retained whole-resident-set recompute
// (ShareModelConfig::legacy_kernel). Both kernels make bit-identical
// decisions (tests/test_kernel_equivalence.cpp); this measures the work
// they spend making them.
//
//   - Residents scaling: R singleton-resident jobs draining one completion
//     at a time. The legacy kernel recomputes all R tasks per settle
//     (O(R^2) drain); the incremental kernel touches only the completing
//     node's residents (O(R log R) drain).
//   - Whole trace: full SDSC SP2 simulations as the cluster grows, the
//     headline end-to-end number (one iteration = one simulation,
//     workload generation included).
//   - Alloc audit: this TU overrides global operator new/delete to count
//     heap allocations; the steady-state leg reports allocations per
//     settle, which must be zero once the executor workspaces have grown.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "cluster/timeshared.hpp"
#include "exp/scenario.hpp"
#include "sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// The replacement operator new above is malloc-backed, so freeing in the
// matching operator delete is correct; GCC cannot see the pairing.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace librisk;

/// R jobs, one per node, accurate estimates, far deadlines: rates are the
/// isolation-lemma constant 1.0 and every settle is a single completion.
std::vector<workload::Job> singleton_jobs(int residents) {
  std::vector<workload::Job> jobs(static_cast<std::size_t>(residents));
  for (int i = 0; i < residents; ++i) {
    workload::Job& job = jobs[static_cast<std::size_t>(i)];
    job.id = i + 1;
    job.actual_runtime = 1000.0 + 0.5 * static_cast<double>(i);
    job.user_estimate = job.actual_runtime;
    job.scheduler_estimate = job.actual_runtime;
    job.deadline = 1e9;
    job.num_procs = 1;
  }
  return jobs;
}

void run_residents(benchmark::State& state, bool legacy) {
  const int residents = static_cast<int>(state.range(0));
  const std::vector<workload::Job> jobs = singleton_jobs(residents);
  cluster::ShareModelConfig config;
  config.work_conserving = true;
  config.legacy_kernel = legacy;
  const auto cl = cluster::Cluster::homogeneous(residents, 1.0);
  std::uint64_t recomputed = 0;
  std::uint64_t settles = 0;
  for (auto _ : state) {
    sim::Simulator simulator;
    cluster::TimeSharedExecutor executor(simulator, cl, config);
    std::uint64_t completions = 0;
    executor.set_completion_handler(
        [&completions](const workload::Job&, sim::SimTime) { ++completions; });
    for (int i = 0; i < residents; ++i)
      executor.start(jobs[static_cast<std::size_t>(i)], {i});
    simulator.run();
    benchmark::DoNotOptimize(completions);
    recomputed += executor.kernel_stats().tasks_recomputed;
    settles += executor.kernel_stats().settles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          residents);
  state.counters["recomp_per_settle"] = benchmark::Counter(
      settles > 0 ? static_cast<double>(recomputed) / static_cast<double>(settles)
                  : 0.0);
}

void BM_KernelResidentsScaling(benchmark::State& state) {
  run_residents(state, /*legacy=*/false);
}
void BM_KernelResidentsScalingLegacy(benchmark::State& state) {
  run_residents(state, /*legacy=*/true);
}
BENCHMARK(BM_KernelResidentsScaling)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelResidentsScalingLegacy)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

/// Steady-state allocation audit: after the first half of the drain has
/// grown every workspace (event slab, boundary heap, dirty/demand
/// scratch), the second half must run entirely allocation-free. Timing is
/// incidental here; the counter is the result.
void BM_KernelSteadyStateAllocPerSettle(benchmark::State& state) {
  const int residents = static_cast<int>(state.range(0));
  const std::vector<workload::Job> jobs = singleton_jobs(residents);
  cluster::ShareModelConfig config;
  config.work_conserving = true;
  const auto cl = cluster::Cluster::homogeneous(residents, 1.0);
  double allocs_per_settle = 0.0;
  for (auto _ : state) {
    sim::Simulator simulator;
    cluster::TimeSharedExecutor executor(simulator, cl, config);
    std::uint64_t completions = 0;
    executor.set_completion_handler(
        [&completions](const workload::Job&, sim::SimTime) { ++completions; });
    for (int i = 0; i < residents; ++i)
      executor.start(jobs[static_cast<std::size_t>(i)], {i});
    // Warm up: drain the first half of the completions.
    simulator.run_until(1000.0 + 0.25 * static_cast<double>(residents));
    const std::uint64_t settles_before = executor.kernel_stats().settles;
    const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
    simulator.run();
    const std::uint64_t settles =
        executor.kernel_stats().settles - settles_before;
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    allocs_per_settle = settles > 0 ? static_cast<double>(allocs) /
                                          static_cast<double>(settles)
                                    : 0.0;
    benchmark::DoNotOptimize(completions);
  }
  state.counters["allocs_per_settle"] = benchmark::Counter(allocs_per_settle);
}
BENCHMARK(BM_KernelSteadyStateAllocPerSettle)->Arg(64)->Arg(512);

void run_whole_trace(benchmark::State& state, core::Policy policy,
                     bool legacy) {
  exp::Scenario scenario;
  scenario.workload.trace.job_count = 3000;
  scenario.nodes = static_cast<int>(state.range(0));
  scenario.policy = policy;
  scenario.options.share_model.legacy_kernel = legacy;
  std::uint64_t seed = 1;
  std::uint64_t settles = 0;
  std::uint64_t recomputed = 0;
  std::uint64_t skipped = 0;
  for (auto _ : state) {
    scenario.seed = seed++;
    const exp::ScenarioResult result = exp::run_scenario(scenario);
    settles += result.kernel.settles;
    recomputed += result.kernel.tasks_recomputed;
    skipped += result.kernel.tasks_skipped;
    benchmark::DoNotOptimize(result.summary.fulfilled_pct);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * scenario.workload.trace.job_count));
  state.counters["recomp_per_settle"] = benchmark::Counter(
      settles > 0 ? static_cast<double>(recomputed) / static_cast<double>(settles)
                  : 0.0);
  const std::uint64_t touched = recomputed + skipped;
  state.counters["skip_pct"] = benchmark::Counter(
      touched > 0 ? 100.0 * static_cast<double>(skipped) /
                        static_cast<double>(touched)
                  : 0.0);
}

void BM_KernelWholeTrace_LibraRisk(benchmark::State& state) {
  run_whole_trace(state, core::Policy::LibraRisk, /*legacy=*/false);
}
void BM_KernelWholeTrace_LibraRiskLegacy(benchmark::State& state) {
  run_whole_trace(state, core::Policy::LibraRisk, /*legacy=*/true);
}
void BM_KernelWholeTrace_Libra(benchmark::State& state) {
  run_whole_trace(state, core::Policy::Libra, /*legacy=*/false);
}
void BM_KernelWholeTrace_LibraLegacy(benchmark::State& state) {
  run_whole_trace(state, core::Policy::Libra, /*legacy=*/true);
}
BENCHMARK(BM_KernelWholeTrace_LibraRisk)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelWholeTrace_LibraRiskLegacy)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelWholeTrace_Libra)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelWholeTrace_LibraLegacy)
    ->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
