// Ablation A4 (extension): can an online estimate predictor substitute for
// risk-aware admission control?
//
// Tsafrir-style per-user correction shrinks the trace's inflated estimates
// before the schedulers see them. If inaccuracy were the whole story,
// corrected estimates should lift Libra to LibraRisk's level. The harness
// reports estimate error and fulfilment with and without correction —
// showing how much of the gap prediction closes and how much only the risk
// test recovers.
#include "fig_common.hpp"

#include "support/table.hpp"
#include "workload/predictor.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "ablation_predictor",
      "Estimate-prediction vs risk-aware admission control (trace estimates)",
      "ablation_predictor.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"estimates", "policy", "fulfilled_pct", "avg_slowdown",
                 "mean_estimate_error"});

  std::cout << "== A4: online estimate prediction vs risk-aware admission ==\n\n";
  table::Table t({"estimates", "policy", "fulfilled %", "avg slowdown",
                  "estimate error"});

  struct Variant {
    const char* label;
    bool corrected;
    double safety_margin;
  };
  const std::vector<Variant> variants = {
      {"raw user estimates", false, 1.0},
      {"predictor (conservative, 2x margin)", true, 2.0},
      {"predictor (aggressive, 1.1x margin)", true, 1.1},
  };

  for (const Variant& v : variants) {
    for (const core::Policy policy : core::paper_policies()) {
      stats::Accumulator fulfilled, slowdown, error;
      for (int seed = 1; seed <= options.seeds; ++seed) {
        exp::Scenario s = bench::paper_base_scenario(options);
        s.policy = policy;
        s.seed = static_cast<std::uint64_t>(seed);
        auto jobs = workload::make_paper_workload(s.workload, s.seed);
        if (v.corrected) {
          workload::PredictorConfig config;
          config.safety_margin = v.safety_margin;
          (void)workload::apply_predictor_causally(jobs, config);
        }
        error.add(workload::mean_estimate_error(jobs));
        const exp::ScenarioResult r = exp::run_jobs(s, jobs);
        fulfilled.add(r.summary.fulfilled_pct);
        slowdown.add(r.summary.avg_slowdown_fulfilled);
      }
      t.add_row({v.label, std::string(core::to_string(policy)),
                 table::pct(fulfilled.mean()), table::num(slowdown.mean()),
                 table::num(error.mean())});
      writer.row({v.label, std::string(core::to_string(policy)),
                  csv::Writer::field(fulfilled.mean()),
                  csv::Writer::field(slowdown.mean()),
                  csv::Writer::field(error.mean())});
    }
    t.add_rule();
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
