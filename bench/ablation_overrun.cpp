// Ablation A3a: overrun re-estimation and under-estimate prevalence.
//
// When a job exhausts its estimate, the scheduler re-estimates the
// remaining work as bump_fraction * original estimate (DESIGN.md §3.2).
// This harness sweeps (a) the bump fraction and (b) the fraction of
// under-estimating users, under trace estimates, showing how sensitive each
// admission control is to the overrun model — the phenomenon the risk
// metric exists to manage.
#include "fig_common.hpp"

#include "support/table.hpp"

namespace {

using namespace librisk;

void sweep_axis(const bench::FigureOptions& options, csv::Writer& writer,
                const std::string& axis_name, const std::vector<double>& axis,
                const std::function<void(exp::Scenario&, double)>& apply) {
  std::cout << "-- sweep: " << axis_name << " --\n";
  table::Table t({axis_name, "policy", "fulfilled %", "avg slowdown", "late"});
  for (const double x : axis) {
    for (const core::Policy policy : core::paper_policies()) {
      stats::Accumulator fulfilled, slowdown, late;
      for (int seed = 1; seed <= options.seeds; ++seed) {
        exp::Scenario s = bench::paper_base_scenario(options);
        s.policy = policy;
        s.seed = static_cast<std::uint64_t>(seed);
        apply(s, x);
        const exp::ScenarioResult r = exp::run_scenario(s);
        fulfilled.add(r.summary.fulfilled_pct);
        slowdown.add(r.summary.avg_slowdown_fulfilled);
        late.add(static_cast<double>(r.summary.completed_late));
      }
      t.add_row({table::num(x, 2), std::string(core::to_string(policy)),
                 table::pct(fulfilled.mean()), table::num(slowdown.mean()),
                 table::num(late.mean(), 1)});
      writer.row({axis_name, csv::Writer::field(x),
                  std::string(core::to_string(policy)),
                  csv::Writer::field(fulfilled.mean()),
                  csv::Writer::field(slowdown.mean()),
                  csv::Writer::field(late.mean())});
    }
  }
  std::cout << t.str() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "ablation_overrun",
      "Sensitivity to the overrun re-estimation model (trace estimates)",
      "ablation_overrun.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"axis", "x", "policy", "fulfilled_pct", "avg_slowdown", "late"});

  std::cout << "== A3a: overrun model sensitivity ==\n\n";
  sweep_axis(options, writer, "bump_fraction", {0.02, 0.05, 0.10, 0.25, 0.50},
             [](exp::Scenario& s, double x) {
               s.options.share_model.overrun_bump_fraction = x;
             });
  sweep_axis(options, writer, "underestimate_fraction", {0.0, 0.05, 0.10, 0.20},
             [](exp::Scenario& s, double x) {
               s.workload.estimates.underestimate_fraction = x;
             });
  std::cout << "series written to " << options.out_csv << "\n";
  return 0;
}
