// Extension table: Computation-at-Risk tail comparison per policy.
//
// The paper's metrics are means; CaR (Kleban & Clearwater, the lineage of
// the paper's deadline-delay metric) asks about the tail: what response
// time / slowdown are the unluckiest 5% of completed jobs exposed to under
// each admission control?
#include "fig_common.hpp"

#include "core/scheduler.hpp"
#include "metrics/car.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "car_tails",
      "Computation-at-Risk (95%) per policy, trace estimates", "car_tails.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"policy", "measure", "car95", "tail_mean", "mean", "max"});

  std::cout << "== Computation-at-Risk (95th percentile), trace estimates ==\n\n";
  table::Table t({"policy", "measure", "CaR(95%)", "tail mean", "mean", "max"});
  for (const core::Policy policy : core::all_policies()) {
    for (const metrics::CarMeasure measure :
         {metrics::CarMeasure::ResponseTime, metrics::CarMeasure::Slowdown}) {
      stats::Accumulator car, tail, mean, max_acc;
      for (int seed = 1; seed <= options.seeds; ++seed) {
        exp::Scenario s = bench::paper_base_scenario(options);
        s.policy = policy;
        s.seed = static_cast<std::uint64_t>(seed);
        const auto jobs = workload::make_paper_workload(s.workload, s.seed);
        const auto cluster = cluster::Cluster::homogeneous(s.nodes, s.rating);
        sim::Simulator simulator;
        metrics::Collector collector;
        const auto stack =
            core::make_scheduler(s.policy, simulator, cluster, collector, s.options);
        core::run_trace(simulator, stack->scheduler(), collector, jobs);
        const metrics::CarReport report =
            metrics::computation_at_risk(collector, measure, 95.0);
        car.add(report.at_risk);
        tail.add(report.tail_mean);
        mean.add(report.mean);
        max_acc.add(report.max);
      }
      const bool seconds = measure == metrics::CarMeasure::ResponseTime;
      const int decimals = seconds ? 0 : 2;
      t.add_row({std::string(core::to_string(policy)),
                 std::string(metrics::to_string(measure)),
                 table::num(car.mean(), decimals), table::num(tail.mean(), decimals),
                 table::num(mean.mean(), decimals), table::num(max_acc.mean(), decimals)});
      writer.row({std::string(core::to_string(policy)),
                  std::string(metrics::to_string(measure)),
                  csv::Writer::field(car.mean()), csv::Writer::field(tail.mean()),
                  csv::Writer::field(mean.mean()), csv::Writer::field(max_acc.mean())});
    }
    t.add_rule();
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
