// Shared scaffolding for the figure-reproduction harnesses (bench/fig*).
//
// Every figure in the paper is a 2x2 grid: {deadlines fulfilled %, average
// slowdown} x {accurate estimates, actual trace estimates}. Each harness
// sweeps one axis, runs the paper's three policies over several workload
// seeds per point, prints the four sub-figures as tables and writes every
// series to a CSV next to the binary.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/series.hpp"
#include "exp/sweep.hpp"
#include "support/cli.hpp"

namespace librisk::bench {

struct FigureOptions {
  int jobs = 3000;
  int seeds = 5;
  int threads = 0;
  std::string out_csv;
  bool quick = false;  ///< 1 seed, trimmed axis — for smoke runs
};

/// Declares the common flags and parses argv. `default_csv` names the
/// output file, e.g. "fig1_workload.csv".
inline FigureOptions parse_figure_options(int argc, char** argv,
                                          const std::string& program,
                                          const std::string& description,
                                          const std::string& default_csv) {
  cli::Parser parser(program, description);
  auto& jobs = parser.add<int>("jobs", "jobs per simulation", 3000);
  auto& seeds = parser.add<int>("seeds", "workload seeds per cell", 5);
  auto& threads = parser.add<int>("threads", "worker threads (0 = all cores)", 0);
  auto& out = parser.add<std::string>("out", "CSV output path", default_csv);
  auto& quick = parser.add<bool>("quick", "1 seed, reduced axis (smoke run)", false);
  parser.parse(argc, argv);
  FigureOptions o;
  o.jobs = jobs.value;
  o.seeds = quick.value ? 1 : seeds.value;
  o.threads = threads.value;
  o.out_csv = out.value;
  o.quick = quick.value;
  return o;
}

/// The paper's default scenario (DESIGN.md §3.3): 128-node SDSC SP2, 20%
/// high-urgency jobs, deadline high:low ratio 4, arrival delay factor 1.
inline exp::Scenario paper_base_scenario(const FigureOptions& options) {
  exp::Scenario s;
  s.workload.trace.job_count = static_cast<std::size_t>(options.jobs);
  return s;
}

inline exp::SweepConfig paper_sweep(const FigureOptions& options,
                                    std::vector<double> axis,
                                    std::function<void(exp::Scenario&, double)> apply) {
  exp::SweepConfig cfg;
  cfg.axis = std::move(axis);
  if (options.quick && cfg.axis.size() > 3) {
    const std::vector<double> trimmed{cfg.axis.front(),
                                      cfg.axis[cfg.axis.size() / 2],
                                      cfg.axis.back()};
    cfg.axis = trimmed;
  }
  cfg.apply = std::move(apply);
  cfg.policies = core::paper_policies();
  cfg.seeds.clear();
  for (int i = 0; i < options.seeds; ++i) cfg.seeds.push_back(i + 1);
  cfg.threads = static_cast<std::size_t>(options.threads);
  return cfg;
}

/// Runs a sweep under both estimate regimes and emits the figure's four
/// sub-tables (a/b = fulfilled, c/d = slowdown in the paper's layout).
inline void run_figure(const FigureOptions& options, const exp::Scenario& base,
                       const exp::SweepConfig& sweep, const std::string& figure_id,
                       const std::string& figure_title, const std::string& x_label) {
  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);

  std::cout << "== " << figure_id << ": " << figure_title << " ==\n"
            << "(" << sweep.seeds.size() << " seed(s) per cell, " << options.jobs
            << " jobs, mean ± 95% CI)\n\n";

  struct Regime {
    const char* tag;
    const char* label;
    double inaccuracy;
  };
  for (const Regime regime : {Regime{"accurate", "accurate runtime estimates", 0.0},
                              Regime{"trace", "actual runtime estimates from trace", 100.0}}) {
    exp::Scenario scenario = base;
    scenario.workload.inaccuracy_pct = regime.inaccuracy;
    const std::vector<exp::SweepCell> cells = exp::run_sweep(scenario, sweep);
    exp::emit_subfigure(std::cout, writer, figure_id + "/" + regime.tag,
                        std::string(regime.label), x_label, cells);
    exp::print_significance(std::cout, cells, core::Policy::LibraRisk,
                            core::Policy::Libra);
  }
  std::cout << "series written to " << options.out_csv << "\n";
}

}  // namespace librisk::bench
