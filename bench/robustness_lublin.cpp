// Robustness R1: the headline comparison on a structurally different
// workload model.
//
// Reruns Figure 1's key columns with the Lublin–Feitelson-style generator
// (hyper-Gamma runtimes correlated with node counts, daily arrival cycle,
// serial-job mass) instead of the SDSC-calibrated lognormal model. If the
// paper's conclusion — LibraRisk >> Libra under inaccurate estimates,
// parity under accurate ones — survives the swap, it is not an artifact of
// the trace calibration.
#include "fig_common.hpp"

#include "support/table.hpp"
#include "workload/lublin.hpp"

namespace {

using namespace librisk;

std::vector<workload::Job> make_lublin_workload(const workload::LublinConfig& trace,
                                                double inaccuracy_pct,
                                                std::uint64_t seed) {
  rng::Stream trace_stream("lublin-trace", seed);
  auto jobs = workload::generate_lublin_trace(trace, trace_stream);
  workload::UserEstimateConfig estimates;
  rng::Stream est_stream("estimates", seed);
  workload::assign_user_estimates(jobs, estimates, est_stream);
  workload::DeadlineConfig deadlines;
  rng::Stream dl_stream("deadlines", seed);
  workload::assign_deadlines(jobs, deadlines, dl_stream);
  workload::apply_inaccuracy(jobs, inaccuracy_pct);
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "robustness_lublin",
      "Headline comparison on the Lublin-Feitelson workload model",
      "robustness_lublin.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"inaccuracy", "policy", "fulfilled_pct", "avg_slowdown"});

  std::cout << "== R1: Lublin-Feitelson workload robustness check ==\n\n";
  table::Table t({"estimates", "policy", "fulfilled %", "avg slowdown"});
  for (const double inaccuracy : {0.0, 100.0}) {
    const char* label = inaccuracy == 0.0 ? "accurate" : "trace";
    for (const core::Policy policy : core::paper_policies()) {
      stats::Accumulator fulfilled, slowdown;
      for (int seed = 1; seed <= options.seeds; ++seed) {
        workload::LublinConfig trace;
        trace.job_count = static_cast<std::size_t>(options.jobs);
        const auto jobs = make_lublin_workload(trace, inaccuracy,
                                               static_cast<std::uint64_t>(seed));
        exp::Scenario s;
        s.policy = policy;
        const exp::ScenarioResult r = exp::run_jobs(s, jobs);
        fulfilled.add(r.summary.fulfilled_pct);
        slowdown.add(r.summary.avg_slowdown_fulfilled);
      }
      t.add_row({label, std::string(core::to_string(policy)),
                 table::pct(fulfilled.mean()), table::num(slowdown.mean())});
      writer.row({csv::Writer::field(inaccuracy),
                  std::string(core::to_string(policy)),
                  csv::Writer::field(fulfilled.mean()),
                  csv::Writer::field(slowdown.mean())});
    }
    t.add_rule();
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
