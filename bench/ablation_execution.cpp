// Ablation A3b: execution model and risk-prediction model.
//
// DESIGN.md §3.2 commits to work-conserving proportional pacing with the
// current-rate risk prediction. This harness compares that default against
// the alternatives considered (strict pacing; GridSim-style equal sharing
// with processor-sharing prediction; the literal proportional-share
// prediction whose uniform squeeze blinds Eq. 6) so the modelling decision
// stays inspectable.
#include "fig_common.hpp"

#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "ablation_execution",
      "Execution-model / prediction-model ablation (trace estimates)",
      "ablation_execution.csv");

  struct Variant {
    const char* label;
    cluster::ExecutionMode mode;
    bool work_conserving;
    core::RiskConfig::Prediction prediction;
  };
  const std::vector<Variant> variants = {
      {"pacing+WC / current-rate (default)", cluster::ExecutionMode::ProportionalPacing,
       true, core::RiskConfig::Prediction::CurrentRate},
      {"pacing strict / current-rate", cluster::ExecutionMode::ProportionalPacing,
       false, core::RiskConfig::Prediction::CurrentRate},
      {"equal-share / processor-sharing", cluster::ExecutionMode::EqualShare,
       true, core::RiskConfig::Prediction::ProcessorSharing},
      {"pacing+WC / proportional (degenerate)", cluster::ExecutionMode::ProportionalPacing,
       true, core::RiskConfig::Prediction::ProportionalShare},
  };

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"variant", "policy", "inaccuracy", "fulfilled_pct", "avg_slowdown"});

  std::cout << "== A3b: execution/prediction model ablation ==\n\n";
  table::Table t({"variant", "policy", "inacc %", "fulfilled %", "avg slowdown"});
  for (const Variant& v : variants) {
    for (const double inaccuracy : {0.0, 100.0}) {
      for (const core::Policy policy : {core::Policy::Libra, core::Policy::LibraRisk}) {
        stats::Accumulator fulfilled, slowdown;
        for (int seed = 1; seed <= options.seeds; ++seed) {
          exp::Scenario s = bench::paper_base_scenario(options);
          s.policy = policy;
          s.seed = static_cast<std::uint64_t>(seed);
          s.workload.inaccuracy_pct = inaccuracy;
          s.options.share_model.mode = v.mode;
          s.options.share_model.work_conserving = v.work_conserving;
          s.options.risk.prediction = v.prediction;
          const exp::ScenarioResult r = exp::run_scenario(s);
          fulfilled.add(r.summary.fulfilled_pct);
          slowdown.add(r.summary.avg_slowdown_fulfilled);
        }
        t.add_row({v.label, std::string(core::to_string(policy)),
                   table::num(inaccuracy, 0), table::pct(fulfilled.mean()),
                   table::num(slowdown.mean())});
        writer.row({v.label, std::string(core::to_string(policy)),
                    csv::Writer::field(inaccuracy),
                    csv::Writer::field(fulfilled.mean()),
                    csv::Writer::field(slowdown.mean())});
      }
    }
    t.add_rule();
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
