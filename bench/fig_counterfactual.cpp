// Counterfactual sigma-threshold sweep vs brute-force reruns.
//
// exp::sweep_sigma_thresholds recomputes the paper's risk-knob curve
// (Fig. 6 axis; our ablation_risk_threshold) from recorded sigma extremes:
// probes whose threshold falls inside a certified stability interval reuse
// an earlier run's summary instead of simulating again. This harness does
// both — the certified sweep and an independent full rerun at every
// threshold — and checks the summaries are *identical* (not approximately:
// the certification argument is exact, docs/OBSERVABILITY.md
// "Counterfactual sweeps"). The payoff column is `replays`: how many
// simulations the certified sweep actually ran for the whole curve.
#include "fig_common.hpp"

#include "exp/counterfactual.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "fig_counterfactual",
      "Certified sigma-threshold sweep vs independent reruns (LibraRisk)",
      "fig_counterfactual.csv");

  // The paper-scale probes (≤ 50) each flip some comparison — sigma is
  // dense there, so each costs a simulation. The upper tail is a single
  // decision regime: past the last sigma the 2000-run still rejects there
  // is a wide empty gap in the sigma population, so 5000 and 10000 certify
  // from the 2000-run's extremes and cost nothing.
  std::vector<double> thresholds{0.0, 0.1,  0.25, 0.5,    1.0,    2.0,
                                 10.0, 20.0, 50.0, 2000.0, 5000.0, 10000.0};
  if (options.quick) thresholds = {0.0, 0.5, 10.0};

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"sigma_threshold", "fulfilled_pct", "accepted", "late",
                 "avg_slowdown", "sigma_pass_max", "sigma_fail_min",
                 "replayed", "oracle_match"});

  std::cout << "== counterfactual: certified sigma sweep vs reruns "
               "(LibraRisk, trace estimates) ==\n\n";

  exp::Scenario base = bench::paper_base_scenario(options);
  base.policy = core::Policy::LibraRisk;
  base.workload.inaccuracy_pct = 100.0;
  base.seed = 1;

  const exp::CounterfactualSweep sweep =
      exp::sweep_sigma_thresholds(base, thresholds);

  table::Table t({"sigma threshold", "fulfilled %", "accepted", "late",
                  "avg slowdown", "pass max", "fail min", "replayed",
                  "oracle match"});
  std::size_t mismatches = 0;
  for (const exp::CounterfactualPoint& point : sweep.points) {
    // Brute-force oracle: a fresh simulation at this threshold, no
    // provenance attached. The certified summary must match it exactly.
    exp::Scenario oracle = base;
    oracle.options.risk.sigma_threshold = point.threshold;
    const metrics::RunSummary truth = exp::run_scenario(oracle).summary;
    const metrics::RunSummary& got = point.summary;
    const bool match = got.fulfilled_pct == truth.fulfilled_pct &&
                       got.accepted == truth.accepted &&
                       got.completed_late == truth.completed_late &&
                       got.avg_slowdown_fulfilled == truth.avg_slowdown_fulfilled &&
                       got.rejected_at_submit == truth.rejected_at_submit &&
                       got.makespan == truth.makespan;
    if (!match) ++mismatches;
    t.add_row({table::num(point.threshold, 2), table::pct(got.fulfilled_pct),
               std::to_string(got.accepted),
               std::to_string(got.completed_late),
               table::num(got.avg_slowdown_fulfilled),
               table::num(point.extremes.pass_max, 3),
               table::num(point.extremes.fail_min, 3),
               point.replayed ? "yes" : "no", match ? "exact" : "MISMATCH"});
    writer.row({csv::Writer::field(point.threshold),
                csv::Writer::field(got.fulfilled_pct),
                csv::Writer::field(static_cast<double>(got.accepted)),
                csv::Writer::field(static_cast<double>(got.completed_late)),
                csv::Writer::field(got.avg_slowdown_fulfilled),
                csv::Writer::field(point.extremes.pass_max),
                csv::Writer::field(point.extremes.fail_min),
                csv::Writer::field(point.replayed ? 1.0 : 0.0),
                csv::Writer::field(match ? 1.0 : 0.0)});
  }
  std::cout << t.str() << "\n"
            << sweep.replays << " simulation(s) for "
            << sweep.points.size() << " probed thresholds ("
            << sweep.points.size() - sweep.replays
            << " certified-identical reuses); oracle mismatches: "
            << mismatches << "\nseries written to " << options.out_csv << "\n";
  return mismatches == 0 ? 0 : 1;
}
