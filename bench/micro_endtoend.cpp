// Microbenchmark M3: end-to-end simulation throughput per policy.
//
// One iteration = a full 3000-job SDSC SP2 simulation (workload generation
// included). This is the unit of work every sweep cell costs.
#include <benchmark/benchmark.h>

#include "exp/scenario.hpp"

namespace {

using namespace librisk;

void run_policy(benchmark::State& state, core::Policy policy) {
  exp::Scenario scenario;
  scenario.workload.trace.job_count = 3000;
  scenario.policy = policy;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenario.seed = seed++;
    const exp::ScenarioResult result = exp::run_scenario(scenario);
    benchmark::DoNotOptimize(result.summary.fulfilled_pct);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * scenario.workload.trace.job_count));
}

void BM_EndToEnd_EDF(benchmark::State& state) { run_policy(state, core::Policy::Edf); }
void BM_EndToEnd_Libra(benchmark::State& state) { run_policy(state, core::Policy::Libra); }
void BM_EndToEnd_LibraRisk(benchmark::State& state) {
  run_policy(state, core::Policy::LibraRisk);
}
void BM_EndToEnd_EASY(benchmark::State& state) { run_policy(state, core::Policy::Easy); }

BENCHMARK(BM_EndToEnd_EDF)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEnd_Libra)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEnd_LibraRisk)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEnd_EASY)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
