// Ablation A1: EDF variants — with/without admission control, and with
// EASY-style backfilling (extension).
//
// Paper Section 4: "we find that EDF without job admission control performs
// much worse as compared to EDF with job admission control, especially when
// deadlines of jobs are short." This harness quantifies that remark across
// the workload sweep — without admission control every infeasible job runs
// anyway, blocking processors that feasible jobs needed — and adds EDF-BF
// to show how much of plain EDF's loss is head-of-line fragmentation.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "ablation_edf_noac",
      "EDF admission control on/off across workload intensities",
      "ablation_edf_noac.csv");

  const exp::Scenario base = bench::paper_base_scenario(options);
  exp::SweepConfig sweep = bench::paper_sweep(
      options, {0.1, 0.3, 0.5, 0.7, 1.0}, [](exp::Scenario& s, double x) {
        s.workload.trace.arrival_delay_factor = x;
      });
  sweep.policies = {core::Policy::Edf, core::Policy::EdfNoAC,
                    core::Policy::EdfBackfill};

  bench::run_figure(options, base, sweep, "A1",
                    "EDF variants: admission control and backfilling",
                    "arrival delay factor");
  return 0;
}
