// Figure 4: impact of varying inaccurate runtime estimates.
//
// The inaccuracy knob interpolates scheduler-visible estimates between the
// real runtimes (0%) and the trace's user estimates (100%); the figure
// compares 20% and 80% high-urgency mixes. Paper's observed shape:
//  - fulfilled % falls as inaccuracy grows, for every policy;
//  - LibraRisk stays on top and keeps a similar fulfilled count at 80%
//    high-urgency as at 20%, while EDF and Libra drop;
//  - Libra/LibraRisk slowdown falls with inaccuracy; EDF stays flat.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "fig4_inaccuracy",
      "Reproduces Figure 4 (varying inaccurate runtime estimates)",
      "fig4_inaccuracy.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  std::cout << "== fig4: impact of varying inaccurate runtime estimates ==\n"
            << "(" << options.seeds << " seed(s) per cell, " << options.jobs
            << " jobs, mean ± 95% CI)\n\n";

  for (const double high_urgency_pct : {20.0, 80.0}) {
    exp::Scenario base = bench::paper_base_scenario(options);
    base.workload.deadlines.high_urgency_fraction = high_urgency_pct / 100.0;
    const exp::SweepConfig sweep = bench::paper_sweep(
        options, {0, 20, 40, 60, 80, 100}, [](exp::Scenario& s, double x) {
          s.workload.inaccuracy_pct = x;
        });
    const std::vector<exp::SweepCell> cells = exp::run_sweep(base, sweep);
    const std::string label =
        std::to_string(static_cast<int>(high_urgency_pct)) + "% of high urgency jobs";
    exp::emit_subfigure(std::cout, writer,
                        "fig4/hu" + std::to_string(static_cast<int>(high_urgency_pct)),
                        label, "% of inaccuracy", cells);
  }
  std::cout << "series written to " << options.out_csv << "\n";
  return 0;
}
