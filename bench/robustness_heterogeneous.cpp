// Robustness R2: the headline comparison on a heterogeneous cluster.
//
// Replaces the homogeneous 128x168 SDSC SP2 with a mixed machine (half the
// nodes at rating 168, half at 336 — same aggregate capacity as 192
// reference nodes). The share formula normalises estimates per node speed
// (paper Section 3), so the Risk-over-Libra conclusion should survive
// heterogeneity.
#include "fig_common.hpp"

#include "core/scheduler.hpp"
#include "support/table.hpp"

namespace {

using namespace librisk;

cluster::Cluster mixed_cluster(int nodes) {
  std::vector<cluster::NodeSpec> specs;
  for (int i = 0; i < nodes; ++i)
    specs.push_back({i, i % 2 == 0 ? 168.0 : 336.0});
  return cluster::Cluster(std::move(specs), 168.0);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "robustness_heterogeneous",
      "Headline comparison on a mixed-rating cluster", "robustness_heterogeneous.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"inaccuracy", "policy", "fulfilled_pct", "avg_slowdown"});

  const cluster::Cluster cluster = mixed_cluster(128);

  std::cout << "== R2: heterogeneous cluster (64x168 + 64x336) ==\n\n";
  table::Table t({"estimates", "policy", "fulfilled %", "avg slowdown"});
  for (const double inaccuracy : {0.0, 100.0}) {
    const char* label = inaccuracy == 0.0 ? "accurate" : "trace";
    for (const core::Policy policy : core::paper_policies()) {
      stats::Accumulator fulfilled, slowdown;
      for (int seed = 1; seed <= options.seeds; ++seed) {
        exp::Scenario s = bench::paper_base_scenario(options);
        s.workload.inaccuracy_pct = inaccuracy;
        const auto jobs =
            workload::make_paper_workload(s.workload, static_cast<std::uint64_t>(seed));
        sim::Simulator simulator;
        metrics::Collector collector;
        const auto stack =
            core::make_scheduler(policy, simulator, cluster, collector, s.options);
        core::run_trace(simulator, stack->scheduler(), collector, jobs);
        const auto summary = collector.summarize();
        fulfilled.add(summary.fulfilled_pct);
        slowdown.add(summary.avg_slowdown_fulfilled);
      }
      t.add_row({label, std::string(core::to_string(policy)),
                 table::pct(fulfilled.mean()), table::num(slowdown.mean())});
      writer.row({csv::Writer::field(inaccuracy),
                  std::string(core::to_string(policy)),
                  csv::Writer::field(fulfilled.mean()),
                  csv::Writer::field(slowdown.mean())});
    }
    t.add_rule();
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
