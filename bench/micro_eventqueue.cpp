// Microbenchmark M1: DES kernel throughput (event queue and simulator).
#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace {

using namespace librisk;

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Stream stream(42);
  std::vector<double> times(n);
  for (auto& t : times) t = stream.uniform(0.0, 1e6);
  for (auto _ : state) {
    sim::EventQueue queue;
    std::uint64_t fired = 0;
    for (const double t : times)
      (void)queue.schedule(t, sim::EventPriority::Internal, [&fired] { ++fired; });
    while (!queue.empty()) queue.pop().handler();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueScheduleDrain)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Half the scheduled events are cancelled before firing — the executor's
  // reschedule-one-boundary pattern.
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Stream stream(42);
  std::vector<double> times(n);
  for (auto& t : times) t = stream.uniform(0.0, 1e6);
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    std::uint64_t fired = 0;
    for (const double t : times)
      ids.push_back(queue.schedule(t, sim::EventPriority::Internal, [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; i += 2) (void)queue.cancel(ids[i]);
    while (!queue.empty()) queue.pop().handler();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(16384);

void BM_EventQueueRescheduleChurn(benchmark::State& state) {
  // The incremental kernel's steady state: one boundary event repeatedly
  // cancelled and rescheduled against a large stable background set. With
  // in-place heap erase and slot recycling this is two sifts and zero
  // allocations per cycle; a tombstoning queue degrades with every cancel.
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Stream stream(42);
  sim::EventQueue queue;
  for (std::size_t i = 0; i < n; ++i)
    (void)queue.schedule(stream.uniform(1e6, 2e6), sim::EventPriority::Internal, [] {});
  sim::EventId pending =
      queue.schedule(5e5, sim::EventPriority::Completion, [] {});
  for (auto _ : state) {
    (void)queue.cancel(pending);
    pending = queue.schedule(stream.uniform(0.0, 1e6),
                             sim::EventPriority::Completion, [] {});
    benchmark::DoNotOptimize(pending);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["slots"] =
      benchmark::Counter(static_cast<double>(queue.slot_capacity()));
}
BENCHMARK(BM_EventQueueRescheduleChurn)->Arg(1024)->Arg(16384);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  // A chain of events each scheduling the next — the latency-critical path.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0)
        simulator.after(1.0, sim::EventPriority::Internal, tick);
    };
    simulator.after(1.0, sim::EventPriority::Internal, tick);
    simulator.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SimulatorSelfScheduling)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
