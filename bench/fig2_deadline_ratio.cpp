// Figure 2: impact of varying deadline high:low ratio.
//
// The ratio scales the mean deadline factor of *low-urgency* jobs relative
// to high-urgency jobs; a higher ratio means low-urgency jobs get looser
// deadlines. Paper's observed shape:
//  - more jobs fulfilled as the ratio grows (deadlines loosen);
//  - slowdown rises with the ratio (longer-deadline jobs are accepted and
//    paced over longer spans); EDF's slowdown only marginally increases;
//  - with trace estimates LibraRisk beats Libra most at low ratios.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "fig2_deadline_ratio",
      "Reproduces Figure 2 (varying deadline high:low ratio)",
      "fig2_deadline_ratio.csv");

  const exp::Scenario base = bench::paper_base_scenario(options);
  const exp::SweepConfig sweep = bench::paper_sweep(
      options, {1, 2, 4, 6, 8, 10}, [](exp::Scenario& s, double x) {
        s.workload.deadlines.high_low_ratio = x;
      });

  bench::run_figure(options, base, sweep, "fig2",
                    "impact of varying deadline high:low ratio",
                    "deadline high:low ratio");
  return 0;
}
