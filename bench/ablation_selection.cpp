// Ablation A2: node-selection strategy within the Libra family.
//
// The paper fixes Libra to best-fit ("nodes are saturated to their
// maximum") and LibraRisk to node-order selection over zero-risk nodes.
// This harness isolates the selection dial: each Libra-family policy runs
// with best-fit, first-fit and worst-fit under trace estimates, showing how
// much of LibraRisk's margin comes from the risk test itself rather than
// from selection order.
#include "fig_common.hpp"

#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "ablation_selection",
      "Best-fit vs first-fit vs worst-fit node selection",
      "ablation_selection.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"policy", "selection", "seed", "fulfilled_pct", "avg_slowdown"});

  struct Row {
    const char* label;
    core::LibraConfig::Selection selection;
  };
  const std::vector<Row> selections = {
      {"BestFit", core::LibraConfig::Selection::BestFit},
      {"FirstFit", core::LibraConfig::Selection::FirstFit},
      {"WorstFit", core::LibraConfig::Selection::WorstFit},
  };

  std::cout << "== A2: node-selection ablation (trace estimates, defaults) ==\n\n";
  table::Table t({"policy", "selection", "fulfilled %", "avg slowdown"});
  for (const core::Policy policy : {core::Policy::Libra, core::Policy::LibraRisk}) {
    for (const Row& row : selections) {
      stats::Accumulator fulfilled, slowdown;
      for (int seed = 1; seed <= options.seeds; ++seed) {
        exp::Scenario s = bench::paper_base_scenario(options);
        s.policy = policy;
        s.seed = static_cast<std::uint64_t>(seed);
        s.options.selection_override = row.selection;
        const exp::ScenarioResult r = exp::run_scenario(s);
        fulfilled.add(r.summary.fulfilled_pct);
        slowdown.add(r.summary.avg_slowdown_fulfilled);
        writer.row({std::string(core::to_string(policy)), row.label,
                    csv::Writer::field(static_cast<std::size_t>(seed)),
                    csv::Writer::field(r.summary.fulfilled_pct),
                    csv::Writer::field(r.summary.avg_slowdown_fulfilled)});
      }
      t.add_row({std::string(core::to_string(policy)), row.label,
                 table::pct(fulfilled.mean()), table::num(slowdown.mean())});
    }
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
