// Microbenchmark M6: live telemetry overhead (docs/OBSERVABILITY.md).
//
// One iteration = a full SDSC SP2 LibraRisk simulation (3000 jobs), the
// same workload as micro_trace's /128 case so rows are directly comparable
// to BENCH_trace.json. The acceptance bar is NullTelemetry <= 2% over
// NoTelemetry: an attached hub with no periodic sampling must cost one
// predicted branch per hook site (ScopedPhase null checks are gone — the
// profiler pointer is set — so this row also prices the steady_clock reads
// around admission and settle). The Sampling row adds a 600 s sim-time
// metronome driving the admission/nodes/kernel/cluster samplers.
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>

#include "exp/scenario.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace librisk;

enum class Mode { NoTelemetry, NullTelemetry, Sampling };

void run_observed(benchmark::State& state, Mode mode) {
  exp::Scenario scenario;
  scenario.workload.trace.job_count = 3000;
  scenario.nodes = static_cast<int>(state.range(0));
  scenario.policy = core::Policy::LibraRisk;
  std::uint64_t seed = 1;
  std::uint64_t accepted = 0;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    scenario.seed = seed++;
    obs::TelemetryConfig config;
    if (mode == Mode::Sampling) config.sample_period = 600.0;
    obs::Telemetry telemetry(config);
    scenario.options.hooks.telemetry = mode == Mode::NoTelemetry ? nullptr : &telemetry;
    const exp::ScenarioResult result = exp::run_scenario(scenario);
    accepted += result.admission.accepted;
    samples += telemetry.samples();
    benchmark::DoNotOptimize(result.summary.fulfilled_pct);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * scenario.workload.trace.job_count));
  state.counters["accepted"] =
      benchmark::Counter(static_cast<double>(accepted) /
                         static_cast<double>(state.iterations()));
  state.counters["samples"] =
      benchmark::Counter(static_cast<double>(samples) /
                         static_cast<double>(state.iterations()));
}

void BM_ObsEndToEnd_NoTelemetry(benchmark::State& state) {
  run_observed(state, Mode::NoTelemetry);
}
void BM_ObsEndToEnd_NullTelemetry(benchmark::State& state) {
  run_observed(state, Mode::NullTelemetry);
}
void BM_ObsEndToEnd_Sampling(benchmark::State& state) {
  run_observed(state, Mode::Sampling);
}

BENCHMARK(BM_ObsEndToEnd_NoTelemetry)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObsEndToEnd_NullTelemetry)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObsEndToEnd_Sampling)->Arg(128)->Unit(benchmark::kMillisecond);

/// Isolated record cost: one bucket increment per call, no allocation.
/// Values are pre-generated so the loop prices record(), not the RNG.
void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> exponent(-6.0, 6.0);
  std::vector<double> values(4096);
  for (double& v : values) v = std::pow(10.0, exponent(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    histogram.record(values[i]);
    i = (i + 1) & (values.size() - 1);
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_HistogramRecord);

/// Quantile over a fully-populated histogram (the render-time cost).
void BM_HistogramQuantile(benchmark::State& state) {
  obs::Histogram histogram;
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> exponent(-6.0, 6.0);
  for (int i = 0; i < 100000; ++i)
    histogram.record(std::pow(10.0, exponent(rng)));
  double q = 0.0;
  for (auto _ : state) {
    q += histogram.quantile(99.0);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_HistogramQuantile);

}  // namespace

BENCHMARK_MAIN();
