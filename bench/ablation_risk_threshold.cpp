// Ablation A5 (extension): relaxing the zero-risk rule.
//
// The paper requires sigma_j == 0 exactly. This harness sweeps a sigma
// threshold: a node is suitable when its risk of deadline delay does not
// exceed the threshold. The curve shows why the paper's strict rule is the
// right default — acceptance rises with the threshold but broken promises
// rise faster, and fulfilled % peaks at (or very near) zero.
#include "fig_common.hpp"

#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace librisk;
  const bench::FigureOptions options = bench::parse_figure_options(
      argc, argv, "ablation_risk_threshold",
      "LibraRisk acceptance/fulfilment vs sigma threshold (trace estimates)",
      "ablation_risk_threshold.csv");

  std::ofstream csv_file(options.out_csv);
  csv::Writer writer(csv_file);
  writer.header({"sigma_threshold", "fulfilled_pct", "accepted", "late",
                 "avg_slowdown"});

  std::cout << "== A5: sigma-threshold relaxation (LibraRisk, trace estimates) ==\n\n";
  table::Table t({"sigma threshold", "fulfilled %", "accepted", "late",
                  "avg slowdown"});
  for (const double threshold : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 10.0}) {
    stats::Accumulator fulfilled, accepted, late, slowdown;
    for (int seed = 1; seed <= options.seeds; ++seed) {
      exp::Scenario s = bench::paper_base_scenario(options);
      s.policy = core::Policy::LibraRisk;
      s.seed = static_cast<std::uint64_t>(seed);
      s.options.risk.sigma_threshold = threshold;
      const exp::ScenarioResult r = exp::run_scenario(s);
      fulfilled.add(r.summary.fulfilled_pct);
      accepted.add(static_cast<double>(r.summary.accepted));
      late.add(static_cast<double>(r.summary.completed_late));
      slowdown.add(r.summary.avg_slowdown_fulfilled);
    }
    t.add_row({table::num(threshold, 2), table::pct(fulfilled.mean()),
               table::num(accepted.mean(), 0), table::num(late.mean(), 0),
               table::num(slowdown.mean())});
    writer.row({csv::Writer::field(threshold), csv::Writer::field(fulfilled.mean()),
                csv::Writer::field(accepted.mean()), csv::Writer::field(late.mean()),
                csv::Writer::field(slowdown.mean())});
  }
  std::cout << t.str() << "\nseries written to " << options.out_csv << "\n";
  return 0;
}
