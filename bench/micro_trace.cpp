// Microbenchmark M5: decision-audit trace overhead (docs/TRACING.md).
//
// One iteration = a full SDSC SP2 LibraRisk simulation (3000 jobs), the
// same workload as micro_admission_endtoend's /128 case so the NullSink
// and no-recorder rows are directly comparable to BENCH_admission.json.
// The acceptance bar is NullSink <= 2% over no recorder: a detached or
// NullSink-backed recorder must cost one predicted branch per emit site
// and nothing else. The JSONL and binary rows price actually capturing
// ~200k events per run (sinks write to a discarding stream, so this is
// serialisation cost, not disk).
#include <benchmark/benchmark.h>

#include <memory>
#include <ostream>
#include <streambuf>

#include "exp/scenario.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace {

using namespace librisk;

/// Swallows bytes: measures serialisation without filesystem noise.
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

enum class Mode { NoRecorder, NullSink, Jsonl, Binary };

void run_traced(benchmark::State& state, Mode mode) {
  exp::Scenario scenario;
  scenario.workload.trace.job_count = 3000;
  scenario.nodes = static_cast<int>(state.range(0));
  scenario.policy = core::Policy::LibraRisk;
  std::uint64_t seed = 1;
  std::uint64_t accepted = 0;
  NullBuffer buffer;
  std::ostream devnull(&buffer);
  for (auto _ : state) {
    scenario.seed = seed++;
    trace::NullSink null_sink;
    std::unique_ptr<trace::Sink> sink;
    trace::Recorder recorder;
    switch (mode) {
      case Mode::NoRecorder:
        break;
      case Mode::NullSink:
        recorder.attach(null_sink);
        break;
      case Mode::Jsonl:
        sink = std::make_unique<trace::JsonlSink>(
            devnull, trace::TraceMeta{"LibraRisk", scenario.seed});
        recorder.attach(*sink);
        break;
      case Mode::Binary:
        sink = std::make_unique<trace::BinarySink>(
            devnull, trace::TraceMeta{"LibraRisk", scenario.seed});
        recorder.attach(*sink);
        break;
    }
    scenario.options.hooks.trace = mode == Mode::NoRecorder ? nullptr : &recorder;
    const exp::ScenarioResult result = exp::run_scenario(scenario);
    if (sink) sink->close();
    accepted += result.admission.accepted;
    benchmark::DoNotOptimize(result.summary.fulfilled_pct);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * scenario.workload.trace.job_count));
  state.counters["accepted"] =
      benchmark::Counter(static_cast<double>(accepted) /
                         static_cast<double>(state.iterations()));
}

void BM_TraceEndToEnd_NoRecorder(benchmark::State& state) {
  run_traced(state, Mode::NoRecorder);
}
void BM_TraceEndToEnd_NullSink(benchmark::State& state) {
  run_traced(state, Mode::NullSink);
}
void BM_TraceEndToEnd_Jsonl(benchmark::State& state) {
  run_traced(state, Mode::Jsonl);
}
void BM_TraceEndToEnd_Binary(benchmark::State& state) {
  run_traced(state, Mode::Binary);
}

BENCHMARK(BM_TraceEndToEnd_NoRecorder)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceEndToEnd_NullSink)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceEndToEnd_Jsonl)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceEndToEnd_Binary)->Arg(128)->Unit(benchmark::kMillisecond);

/// Per-event serialisation cost, isolated from the simulation.
void run_sink_write(benchmark::State& state, bool binary) {
  NullBuffer buffer;
  std::ostream devnull(&buffer);
  std::unique_ptr<trace::Sink> sink;
  if (binary)
    sink = std::make_unique<trace::BinarySink>(devnull,
                                               trace::TraceMeta{"bench", 1});
  else
    sink = std::make_unique<trace::JsonlSink>(devnull,
                                              trace::TraceMeta{"bench", 1});
  trace::Event event{.time = 12345.6789,
                     .job = 42,
                     .a = 0.123456789,
                     .b = 0.987654321,
                     .kind = trace::EventKind::NodeEvaluated,
                     .reason = trace::RejectionReason::RiskSigma,
                     .node = 17};
  for (auto _ : state) {
    event.time += 1.0;
    sink->write(event);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SinkWrite_Jsonl(benchmark::State& state) { run_sink_write(state, false); }
void BM_SinkWrite_Binary(benchmark::State& state) { run_sink_write(state, true); }

BENCHMARK(BM_SinkWrite_Jsonl);
BENCHMARK(BM_SinkWrite_Binary);

}  // namespace

BENCHMARK_MAIN();
