// Shared builders for the test suite.
#pragma once

#include <vector>

#include "workload/job.hpp"

namespace librisk::testing {

/// Fluent Job builder with sane defaults: 1 processor, accurate estimate,
/// deadline = 2x runtime, submitted at t = 0.
class JobBuilder {
 public:
  explicit JobBuilder(std::int64_t id) { job_.id = id; set_runtime(100.0); }

  JobBuilder& submit(double t) {
    job_.submit_time = t;
    return *this;
  }
  /// Sets runtime and, unless overridden later, estimate = runtime and
  /// deadline = 2x runtime.
  JobBuilder& set_runtime(double r) {
    job_.actual_runtime = r;
    if (!estimate_set_) {
      job_.user_estimate = r;
      job_.scheduler_estimate = r;
    }
    if (!deadline_set_) job_.deadline = 2.0 * r;
    return *this;
  }
  JobBuilder& estimate(double e) {
    estimate_set_ = true;
    job_.user_estimate = e;
    job_.scheduler_estimate = e;
    return *this;
  }
  JobBuilder& deadline(double d) {
    deadline_set_ = true;
    job_.deadline = d;
    return *this;
  }
  JobBuilder& procs(int n) {
    job_.num_procs = n;
    return *this;
  }
  JobBuilder& urgency(workload::Urgency u) {
    job_.urgency = u;
    return *this;
  }

  [[nodiscard]] workload::Job build() const { return job_; }
  operator workload::Job() const { return job_; }  // NOLINT(google-explicit-constructor)

 private:
  workload::Job job_;
  bool estimate_set_ = false;
  bool deadline_set_ = false;
};

inline workload::Job make_job(std::int64_t id, double submit, double runtime,
                              double deadline, int procs = 1) {
  return JobBuilder(id).submit(submit).set_runtime(runtime).deadline(deadline)
      .procs(procs)
      .build();
}

}  // namespace librisk::testing
