#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "workload/workload_stats.hpp"

namespace librisk::workload {
namespace {

SdscSp2Config small_config() {
  SdscSp2Config c;
  c.job_count = 2000;
  return c;
}

TEST(SdscSp2Config, ValidatesDomains) {
  SdscSp2Config c = small_config();
  EXPECT_NO_THROW(c.validate());
  c.job_count = 0;
  EXPECT_THROW(c.validate(), CheckError);
  c = small_config();
  c.arrival_delay_factor = 0.0;
  EXPECT_THROW(c.validate(), CheckError);
  c = small_config();
  c.power_weights.assign(9, 1.0);  // 2^8 = 256 > 128 nodes
  EXPECT_THROW(c.validate(), CheckError);
  c = small_config();
  c.min_runtime = c.max_runtime;
  EXPECT_THROW(c.validate(), CheckError);
}

TEST(GenerateBaseTrace, ProducesValidSortedJobs) {
  rng::Stream stream("trace", 1);
  const auto jobs = generate_base_trace(small_config(), stream);
  ASSERT_EQ(jobs.size(), 2000u);
  // Deadlines are assigned by a later pipeline stage; everything else must
  // already be in domain and submit-ordered.
  double last_submit = 0.0;
  for (const Job& j : jobs) {
    EXPECT_GE(j.submit_time, last_submit);
    last_submit = j.submit_time;
    EXPECT_GE(j.num_procs, 1);
    EXPECT_LE(j.num_procs, 128);
    EXPECT_GE(j.actual_runtime, 10.0);
    EXPECT_LE(j.actual_runtime, 64800.0);
    EXPECT_GT(j.user_estimate, 0.0);
  }
}

TEST(GenerateBaseTrace, MatchesPaperSubsetStatistics) {
  rng::Stream stream("trace", 7);
  SdscSp2Config c;
  c.job_count = 20000;  // large sample to pin the means
  const auto jobs = generate_base_trace(c, stream);
  const WorkloadStats stats = compute_stats(jobs);
  // Paper-reported subset statistics: mean inter-arrival 2131 s, mean
  // runtime ~9720 s (2.7 h), mean 17 processors. Generator tolerances are
  // deliberately loose — the *shape* is what matters.
  EXPECT_NEAR(stats.interarrival.mean, 2131.0, 2131.0 * 0.10);
  EXPECT_NEAR(stats.runtime.mean, 9720.0, 9720.0 * 0.12);
  EXPECT_NEAR(stats.num_procs.mean, 17.0, 3.5);
  // Offered utilization in the heavy-workload regime the paper models.
  EXPECT_GT(stats.offered_utilization(128), 0.40);
  EXPECT_LT(stats.offered_utilization(128), 0.85);
}

TEST(GenerateBaseTrace, ArrivalDelayFactorScalesLoad) {
  SdscSp2Config c = small_config();
  rng::Stream s1("trace", 3);
  const auto base = generate_base_trace(c, s1);
  c.arrival_delay_factor = 0.5;
  rng::Stream s2("trace", 3);
  const auto heavy = generate_base_trace(c, s2);
  // Same seed, same draws — arrivals compress by exactly the factor.
  ASSERT_EQ(base.size(), heavy.size());
  EXPECT_NEAR(heavy.back().submit_time, 0.5 * base.back().submit_time, 1e-6);
}

TEST(GenerateBaseTrace, DeterministicInSeed) {
  rng::Stream a("trace", 9), b("trace", 9), c("trace", 10);
  const auto jobs_a = generate_base_trace(small_config(), a);
  const auto jobs_b = generate_base_trace(small_config(), b);
  const auto jobs_c = generate_base_trace(small_config(), c);
  ASSERT_EQ(jobs_a.size(), jobs_b.size());
  for (std::size_t i = 0; i < jobs_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs_a[i].submit_time, jobs_b[i].submit_time);
    EXPECT_DOUBLE_EQ(jobs_a[i].actual_runtime, jobs_b[i].actual_runtime);
    EXPECT_EQ(jobs_a[i].num_procs, jobs_b[i].num_procs);
  }
  bool any_difference = false;
  for (std::size_t i = 0; i < jobs_a.size(); ++i)
    any_difference |= jobs_a[i].actual_runtime != jobs_c[i].actual_runtime;
  EXPECT_TRUE(any_difference);
}

TEST(MakePaperWorkload, EndToEndPipeline) {
  PaperWorkloadConfig config;
  config.trace.job_count = 1500;
  config.inaccuracy_pct = 100.0;
  const auto jobs = make_paper_workload(config, 5);
  ASSERT_EQ(jobs.size(), 1500u);
  validate_trace(jobs);
  for (const Job& j : jobs) {
    EXPECT_GT(j.deadline, j.actual_runtime);  // deadlines always feasible
    EXPECT_NE(j.urgency, Urgency::Unspecified);
    EXPECT_DOUBLE_EQ(j.scheduler_estimate, std::max(j.user_estimate, 1.0));
  }
}

TEST(MakePaperWorkload, InaccuracyZeroMeansAccurateEstimates) {
  PaperWorkloadConfig config;
  config.trace.job_count = 500;
  config.inaccuracy_pct = 0.0;
  const auto jobs = make_paper_workload(config, 5);
  for (const Job& j : jobs)
    EXPECT_DOUBLE_EQ(j.scheduler_estimate, std::max(j.actual_runtime, 1.0));
}

TEST(MakePaperWorkload, SeedsChangeOnlyRandomness) {
  PaperWorkloadConfig config;
  config.trace.job_count = 300;
  const auto a = make_paper_workload(config, 1);
  const auto b = make_paper_workload(config, 1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].deadline, b[i].deadline);
    EXPECT_DOUBLE_EQ(a[i].user_estimate, b[i].user_estimate);
  }
}

}  // namespace
}  // namespace librisk::workload
