#include "cluster/timeshared.hpp"

#include <gtest/gtest.h>

#include <map>

#include "helpers.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace librisk::cluster {
namespace {

using librisk::testing::JobBuilder;

struct Fixture {
  explicit Fixture(int nodes = 4, ShareModelConfig config = {})
      : cluster(Cluster::homogeneous(nodes, 1.0)),
        executor(simulator, cluster, config) {
    executor.set_completion_handler(
        [this](const Job& job, sim::SimTime t) { completions[job.id] = t; });
    executor.set_overrun_handler(
        [this](const Job& job, int bumps) { overruns[job.id] = bumps; });
  }
  sim::Simulator simulator;
  Cluster cluster;
  TimeSharedExecutor executor;
  std::map<std::int64_t, sim::SimTime> completions;
  std::map<std::int64_t, int> overruns;
};

ShareModelConfig strict_pacing() {
  ShareModelConfig c;
  c.mode = ExecutionMode::ProportionalPacing;
  c.work_conserving = false;
  return c;
}

TEST(TimeShared, SingleJobStrictPacingFinishesAtDeadline) {
  Fixture f(1, strict_pacing());
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.executor.start(job, {0});
  f.simulator.run();
  // share = 100/400 = 0.25; the actual work of 100 at rate 0.25 takes 400 s.
  ASSERT_TRUE(f.completions.contains(1));
  EXPECT_NEAR(f.completions[1], 400.0, 1e-6);
}

TEST(TimeShared, SingleJobWorkConservingRunsFullSpeed) {
  ShareModelConfig c;
  c.work_conserving = true;
  Fixture f(1, c);
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.executor.start(job, {0});
  f.simulator.run();
  EXPECT_NEAR(f.completions[1], 100.0, 1e-6);
}

TEST(TimeShared, EqualShareSplitsEvenly) {
  ShareModelConfig c;
  c.mode = ExecutionMode::EqualShare;
  Fixture f(1, c);
  const Job a = JobBuilder(1).set_runtime(100.0).deadline(1000.0).build();
  const Job b = JobBuilder(2).set_runtime(100.0).deadline(1000.0).build();
  f.executor.start(a, {0});
  f.executor.start(b, {0});
  f.simulator.run();
  // Both at rate 1/2 until both finish at t=200.
  EXPECT_NEAR(f.completions[1], 200.0, 1e-6);
  EXPECT_NEAR(f.completions[2], 200.0, 1e-6);
}

TEST(TimeShared, EqualShareShortJobReleasesCapacity) {
  ShareModelConfig c;
  c.mode = ExecutionMode::EqualShare;
  Fixture f(1, c);
  const Job small = JobBuilder(1).set_runtime(50.0).deadline(1000.0).build();
  const Job large = JobBuilder(2).set_runtime(200.0).deadline(1000.0).build();
  f.executor.start(small, {0});
  f.executor.start(large, {0});
  f.simulator.run();
  // Processor sharing: small finishes at 100; large at 100 + 150 = 250.
  EXPECT_NEAR(f.completions[1], 100.0, 1e-6);
  EXPECT_NEAR(f.completions[2], 250.0, 1e-6);
}

TEST(TimeShared, OverloadedNodeSqueezesProportionally) {
  Fixture f(1, strict_pacing());
  // Two jobs each demanding 0.75 => scaled to 0.5 each.
  const Job a = JobBuilder(1).set_runtime(75.0).deadline(100.0).build();
  const Job b = JobBuilder(2).set_runtime(75.0).deadline(100.0).build();
  f.executor.start(a, {0});
  f.executor.start(b, {0});
  f.simulator.run();
  // Both paced at 0.5: 75 work takes 150 s — past the 100 s deadline.
  EXPECT_NEAR(f.completions[1], 150.0, 1e-4);
  EXPECT_NEAR(f.completions[2], 150.0, 1e-4);
}

TEST(TimeShared, GangJobRunsAtMinimumRate) {
  Fixture f(2, strict_pacing());
  // Node 1 is loaded with a greedy job; the gang job must progress at the
  // squeezed rate on node 1 even though node 0 is free.
  const Job hog = JobBuilder(1).set_runtime(100.0).deadline(100.0).build();  // share 1
  f.executor.start(hog, {1});
  const Job gang = JobBuilder(2).set_runtime(50.0).deadline(100.0).procs(2).build();
  f.executor.start(gang, {0, 1});
  f.simulator.run();
  // On node 1: demands 1.0 and 0.5 -> gang gets (0.5/1.5) = 1/3 there, so
  // its lockstep rate is 1/3, not the 0.5 node 0 could give.
  ASSERT_TRUE(f.completions.contains(2));
  EXPECT_GT(f.completions[2], 50.0 / 0.5 - 1e-6);
}

TEST(TimeShared, OverrunBumpsEstimate) {
  Fixture f(1, strict_pacing());
  // User estimate 50, actual 100: the job exhausts its estimate and the
  // scheduler re-estimates (+10% of the original estimate per bump).
  const Job job =
      JobBuilder(1).estimate(50.0).set_runtime(100.0).deadline(200.0).build();
  f.executor.start(job, {0});
  f.simulator.run();
  ASSERT_TRUE(f.completions.contains(1));
  ASSERT_TRUE(f.overruns.contains(1));
  // 50 work remains after the estimate; bumps of 5 each => 10 bumps.
  EXPECT_EQ(f.overruns[1], 10);
  EXPECT_TRUE(f.executor.node_jobs(0).empty());
}

TEST(TimeShared, ViewExposesBeliefVsReality) {
  Fixture f(1, strict_pacing());
  const Job job =
      JobBuilder(1).estimate(50.0).set_runtime(100.0).deadline(400.0).build();
  f.executor.start(job, {0});
  // Run until the estimate is exhausted (paced at 50/400 = 0.125 => t=400).
  f.simulator.run_until(401.0);
  f.executor.sync();
  const TaskView v = f.executor.view(1);
  EXPECT_GT(v.overrun_bumps, 0);
  // Libra's raw belief: nothing remains. Reality: the bump keeps it alive.
  EXPECT_DOUBLE_EQ(v.remaining_estimate_raw(), 0.0);
  EXPECT_GT(v.remaining_estimate_current(), 0.0);
  EXPECT_LT(v.remaining_deadline(f.simulator.now()), 1.0);
}

TEST(TimeShared, NodeTotalShareRawVsCurrent) {
  Fixture f(1, strict_pacing());
  const Job job =
      JobBuilder(1).estimate(50.0).set_runtime(100.0).deadline(400.0).build();
  f.executor.start(job, {0});
  f.simulator.run_until(401.0);
  f.executor.sync();
  const double raw = f.executor.node_total_share(0, TimeSharedExecutor::EstimateKind::Raw);
  const double current =
      f.executor.node_total_share(0, TimeSharedExecutor::EstimateKind::Current);
  EXPECT_NEAR(raw, 0.0, 1e-9);  // Libra believes the node is free
  EXPECT_GT(current, 1.0);      // reality: an overrun job at its deadline
}

TEST(TimeShared, AvailableCapacityTracksDemands) {
  Fixture f(1, strict_pacing());
  EXPECT_DOUBLE_EQ(f.executor.node_available_capacity(0), 1.0);
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.executor.start(job, {0});
  EXPECT_NEAR(f.executor.node_available_capacity(0), 0.75, 1e-9);
}

TEST(TimeShared, StartValidation) {
  Fixture f(2);
  const Job job = JobBuilder(1).set_runtime(10.0).deadline(20.0).procs(2).build();
  EXPECT_THROW(f.executor.start(job, {0}), CheckError);        // wrong count
  EXPECT_THROW(f.executor.start(job, {0, 0}), CheckError);     // duplicate node
  EXPECT_THROW(f.executor.start(job, {0, 5}), CheckError);     // out of range
  f.executor.start(job, {0, 1});
  EXPECT_THROW(f.executor.start(job, {0, 1}), CheckError);     // already running
}

TEST(TimeShared, CompletionRemovesFromNodeLists) {
  Fixture f(2);
  const Job job = JobBuilder(1).set_runtime(10.0).deadline(100.0).procs(2).build();
  f.executor.start(job, {0, 1});
  EXPECT_EQ(f.executor.node_jobs(0).size(), 1u);
  EXPECT_EQ(f.executor.node_jobs(1).size(), 1u);
  EXPECT_TRUE(f.executor.is_running(1));
  f.simulator.run();
  EXPECT_FALSE(f.executor.is_running(1));
  EXPECT_TRUE(f.executor.node_jobs(0).empty());
  EXPECT_TRUE(f.executor.node_jobs(1).empty());
  EXPECT_EQ(f.executor.running_count(), 0u);
}

TEST(TimeShared, DeliveredWorkAccounting) {
  Fixture f(2);
  const Job job = JobBuilder(1).set_runtime(10.0).deadline(100.0).procs(2).build();
  f.executor.start(job, {0, 1});
  f.simulator.run();
  // 10 reference-seconds of work on each of 2 nodes.
  EXPECT_NEAR(f.executor.delivered_node_seconds(), 20.0, 1e-6);
}

TEST(TimeShared, InvariantsHoldDuringRandomizedLoad) {
  Fixture f(4);
  rng::Stream stream(5);
  std::vector<Job> jobs;
  jobs.reserve(50);
  for (int i = 0; i < 50; ++i) {
    jobs.push_back(JobBuilder(i + 1)
                       .set_runtime(stream.uniform(10.0, 500.0))
                       .deadline(stream.uniform(600.0, 5000.0))
                       .build());
  }
  for (int i = 0; i < 50; ++i) {
    f.simulator.run_until(static_cast<double>(i) * 20.0);
    f.executor.start(jobs[i], {i % 4});
    f.executor.check_invariants();
  }
  f.simulator.run();
  f.executor.check_invariants();
  EXPECT_EQ(f.completions.size(), 50u);
}

// --- NodeStateView / epoch cache -----------------------------------------

// The cached aggregates must agree exactly with the per-call accessors they
// replace (which now read through the cache themselves, so cross-check
// against hand-computed values too).
TEST(TimeShared, NodeStateAggregatesMatchAccessors) {
  Fixture f(2, strict_pacing());
  const NodeStateView& empty = f.executor.node_state(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.total_share_raw, 0.0);
  EXPECT_DOUBLE_EQ(empty.total_share_current, 0.0);
  EXPECT_DOUBLE_EQ(empty.available_capacity, 1.0);
  EXPECT_EQ(empty.min_remaining_deadline, sim::kTimeInfinity);

  const Job a = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  const Job b = JobBuilder(2).set_runtime(50.0).deadline(1000.0).build();
  f.executor.start(a, {0});
  f.executor.start(b, {0});
  const NodeStateView& s = f.executor.node_state(0);
  ASSERT_EQ(s.count(), 2u);
  EXPECT_EQ(s.jobs[0]->id, 1);
  EXPECT_EQ(s.jobs[1]->id, 2);
  EXPECT_DOUBLE_EQ(s.total_share_raw,
                   f.executor.node_total_share(
                       0, TimeSharedExecutor::EstimateKind::Raw));
  EXPECT_DOUBLE_EQ(s.total_share_current,
                   f.executor.node_total_share(
                       0, TimeSharedExecutor::EstimateKind::Current));
  EXPECT_DOUBLE_EQ(s.available_capacity,
                   f.executor.node_available_capacity(0));
  // shares: 100/400 + 50/1000 = 0.25 + 0.05
  EXPECT_NEAR(s.total_share_raw, 0.30, 1e-12);
  EXPECT_DOUBLE_EQ(s.min_remaining_deadline, 400.0);
  // Untouched node unaffected.
  EXPECT_TRUE(f.executor.node_state(1).empty());
}

// Aggregates are time-dependent: after work advances, a re-query at the new
// now must reflect reduced remaining work and deadlines.
TEST(TimeShared, NodeStateRefreshesAfterTimeAdvances) {
  Fixture f(1, strict_pacing());
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.executor.start(job, {0});
  const double share_before = f.executor.node_state(0).total_share_raw;
  // run_until only advances the clock to dispatched events, so plant one.
  f.simulator.at(200.0, sim::EventPriority::Control, [] {});
  f.simulator.run_until(200.0);
  f.executor.sync();
  const NodeStateView& s = f.executor.node_state(0);
  // Believed remaining 50 over remaining deadline 200: share unchanged at
  // 0.25 for strict pacing, but remaining_* fields must have moved.
  EXPECT_NEAR(s.remaining_raw[0], 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.remaining_deadline[0], 200.0);
  EXPECT_NEAR(s.total_share_raw, share_before, 1e-12);
  EXPECT_DOUBLE_EQ(s.min_remaining_deadline, 200.0);
}

// The epoch bumps on every mutation that can invalidate a view (start,
// completion, overrun) and stays put across no-op syncs.
TEST(TimeShared, StateEpochInvalidation) {
  ShareModelConfig c;
  c.mode = ExecutionMode::EqualShare;
  Fixture f(1, c);
  const std::uint64_t e0 = f.executor.state_epoch();
  f.executor.sync();  // nothing running, nothing advanced
  EXPECT_EQ(f.executor.state_epoch(), e0);

  // Overrun: estimate 50, actual 100 => bump fires at t=50.
  const Job job =
      JobBuilder(1).set_runtime(100.0).estimate(50.0).deadline(1000.0).build();
  f.executor.start(job, {0});
  const std::uint64_t e1 = f.executor.state_epoch();
  EXPECT_GT(e1, e0);
  (void)f.executor.node_state(0);  // prime the cache
  f.executor.sync();               // same instant: no work advanced
  EXPECT_EQ(f.executor.state_epoch(), e1);

  f.simulator.run_until(60.0);  // past the overrun bump at t=50
  const std::uint64_t e2 = f.executor.state_epoch();
  EXPECT_GT(e2, e1);
  EXPECT_EQ(f.overruns.count(1), 1u);

  f.simulator.run();  // completion
  EXPECT_GT(f.executor.state_epoch(), e2);
  EXPECT_TRUE(f.executor.node_state(0).empty());
  EXPECT_TRUE(f.completions.contains(1));
}

// An empty node's view is time-independent: it must stay valid (and cheap)
// across time advances with no epoch churn.
TEST(TimeShared, EmptyNodeViewStableAcrossTime) {
  Fixture f(2);
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.executor.start(job, {0});
  const std::uint64_t e = f.executor.state_epoch();
  const NodeStateView& idle = f.executor.node_state(1);
  EXPECT_TRUE(idle.empty());
  f.simulator.at(10.0, sim::EventPriority::Control, [] {});
  f.simulator.run_until(10.0);
  f.executor.sync();  // work advanced on node 0 => epoch bumps
  EXPECT_GT(f.executor.state_epoch(), e);
  const NodeStateView& idle2 = f.executor.node_state(1);
  EXPECT_TRUE(idle2.empty());
  EXPECT_EQ(idle2.min_remaining_deadline, sim::kTimeInfinity);
  f.executor.check_invariants();
}

TEST(TimeShared, HeterogeneousNodeSpeedsScaleRates) {
  sim::Simulator simulator;
  const Cluster cluster({{0, 2.0}}, 1.0);  // node twice the reference speed
  ShareModelConfig config;
  config.work_conserving = true;
  TimeSharedExecutor executor(simulator, cluster, config);
  std::map<std::int64_t, sim::SimTime> done;
  executor.set_completion_handler(
      [&](const Job& job, sim::SimTime t) { done[job.id] = t; });
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  executor.start(job, {0});
  simulator.run();
  EXPECT_NEAR(done[1], 50.0, 1e-6);  // full speed at factor 2
}

}  // namespace
}  // namespace librisk::cluster
