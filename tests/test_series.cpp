#include "exp/series.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace librisk::exp {
namespace {

std::vector<SweepCell> sample_cells() {
  std::vector<SweepCell> cells;
  for (const double x : {0.5, 1.0}) {
    for (const core::Policy p : {core::Policy::Edf, core::Policy::LibraRisk}) {
      SweepCell cell;
      cell.x = x;
      cell.policy = p;
      for (int seed = 0; seed < 3; ++seed) {
        cell.fulfilled_pct.add(50.0 + x * 10.0 + seed);
        cell.avg_slowdown.add(2.0 + seed * 0.1);
        cell.accepted.add(100.0);
        cell.completed_late.add(5.0);
        cell.utilization.add(0.5);
        cell.fulfilled_pct_high_urgency.add(40.0);
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(PrintSeries, TableHasAxisRowsAndPolicyColumns) {
  std::ostringstream out;
  print_series(out, "title", "factor", sample_cells(), Measure::FulfilledPct);
  const std::string text = out.str();
  EXPECT_NE(text.find("title"), std::string::npos);
  EXPECT_NE(text.find("factor"), std::string::npos);
  EXPECT_NE(text.find("EDF"), std::string::npos);
  EXPECT_NE(text.find("LibraRisk"), std::string::npos);
  EXPECT_NE(text.find("0.50"), std::string::npos);
  EXPECT_NE(text.find("1"), std::string::npos);
  // mean of {56, 57, 58} = 57.00 at x=0.5 plus a CI.
  EXPECT_NE(text.find("56.00 ±"), std::string::npos);
}

TEST(PrintSeries, MissingCellRendersDash) {
  auto cells = sample_cells();
  cells.pop_back();  // drop (1.0, LibraRisk)
  std::ostringstream out;
  print_series(out, "t", "x", cells, Measure::FulfilledPct);
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(WriteSeriesCsv, OneRowPerCellPerMeasure) {
  std::ostringstream out;
  csv::Writer writer(out);
  write_series_csv(writer, "figX", sample_cells(),
                   {Measure::FulfilledPct, Measure::AvgSlowdown});
  // header + 4 cells x 2 measures.
  EXPECT_EQ(writer.rows_written(), 8u);
  const std::string text = out.str();
  EXPECT_NE(text.find("figure,x,policy,measure,mean,ci95,seeds"), std::string::npos);
  EXPECT_NE(text.find("figX,0.5,EDF,fulfilled_pct"), std::string::npos);
  EXPECT_NE(text.find("avg_slowdown"), std::string::npos);
}

TEST(WriteSeriesCsv, HeaderWrittenOnlyOnce) {
  std::ostringstream out;
  csv::Writer writer(out);
  write_series_csv(writer, "a", sample_cells(), {Measure::FulfilledPct});
  write_series_csv(writer, "b", sample_cells(), {Measure::FulfilledPct});
  std::size_t headers = 0;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line))
    if (line.rfind("figure,", 0) == 0) ++headers;
  EXPECT_EQ(headers, 1u);
}

TEST(EmitSubfigure, PrintsBothPaperMetrics) {
  std::ostringstream text_out, csv_out;
  csv::Writer writer(csv_out);
  emit_subfigure(text_out, writer, "fig9/test", "some regime", "x-axis",
                 sample_cells());
  const std::string text = text_out.str();
  EXPECT_NE(text.find("jobs with deadlines fulfilled"), std::string::npos);
  EXPECT_NE(text.find("average slowdown"), std::string::npos);
  EXPECT_GT(writer.rows_written(), 0u);
}

TEST(PrintSignificance, EmitsPairedTablePerAxisPoint) {
  auto cells = sample_cells();
  // Give the policies distinct, strongly separated per-seed samples.
  for (SweepCell& cell : cells) {
    const double base = cell.policy == core::Policy::LibraRisk ? 80.0 : 60.0;
    cell.fulfilled_pct_by_seed = {base, base + 1.0, base - 1.0};
  }
  std::ostringstream out;
  print_significance(out, cells, core::Policy::LibraRisk, core::Policy::Edf);
  const std::string text = out.str();
  EXPECT_NE(text.find("paired significance"), std::string::npos);
  EXPECT_NE(text.find("LibraRisk - EDF"), std::string::npos);
  EXPECT_NE(text.find("20.00"), std::string::npos);  // mean difference
  EXPECT_NE(text.find("<1e-4"), std::string::npos);
}

TEST(PrintSignificance, SilentWithoutEnoughSeedsOrPolicies) {
  auto cells = sample_cells();
  for (SweepCell& cell : cells) cell.fulfilled_pct_by_seed = {50.0};  // 1 seed
  std::ostringstream out;
  print_significance(out, cells, core::Policy::LibraRisk, core::Policy::Edf);
  EXPECT_TRUE(out.str().empty());
  print_significance(out, cells, core::Policy::LibraRisk, core::Policy::Fcfs);
  EXPECT_TRUE(out.str().empty());  // FCFS absent from the cells
}

TEST(MeasureNames, Stable) {
  EXPECT_STREQ(to_string(Measure::FulfilledPct), "fulfilled_pct");
  EXPECT_STREQ(to_string(Measure::AvgSlowdown), "avg_slowdown");
  EXPECT_STREQ(to_string(Measure::Accepted), "accepted");
  EXPECT_STREQ(to_string(Measure::CompletedLate), "completed_late");
  EXPECT_STREQ(to_string(Measure::Utilization), "utilization");
}

}  // namespace
}  // namespace librisk::exp
