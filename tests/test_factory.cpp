#include "core/factory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/scheduler.hpp"
#include "helpers.hpp"
#include "support/rng.hpp"

namespace librisk::core {
namespace {

TEST(PolicyNames, RoundTrip) {
  for (const Policy p : all_policies()) {
    EXPECT_EQ(parse_policy(to_string(p)), p);
  }
  EXPECT_THROW((void)parse_policy("NotAPolicy"), std::invalid_argument);
}

TEST(PolicyNames, PaperPoliciesInPaperOrder) {
  const auto papers = paper_policies();
  ASSERT_EQ(papers.size(), 3u);
  EXPECT_EQ(papers[0], Policy::Edf);
  EXPECT_EQ(papers[1], Policy::Libra);
  EXPECT_EQ(papers[2], Policy::LibraRisk);
}

TEST(MakeScheduler, BuildsEveryPolicy) {
  for (const Policy p : all_policies()) {
    sim::Simulator simulator;
    const auto cluster = cluster::Cluster::homogeneous(4, 1.0);
    metrics::Collector collector;
    const auto stack = make_scheduler(p, simulator, cluster, collector);
    ASSERT_NE(stack, nullptr);
    EXPECT_EQ(stack->scheduler().name(), to_string(p));
    EXPECT_DOUBLE_EQ(stack->busy_node_seconds(0.0), 0.0);
  }
}

TEST(MakeScheduler, EveryPolicyRunsASmallTrace) {
  rng::Stream stream(31);
  std::vector<workload::Job> jobs;
  jobs.reserve(30);
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(librisk::testing::JobBuilder(i + 1)
                       .submit(static_cast<double>(i) * 30.0)
                       .set_runtime(stream.uniform(10.0, 200.0))
                       .deadline(stream.uniform(400.0, 2000.0))
                       .procs(static_cast<int>(stream.uniform_int(1, 3)))
                       .build());
  }
  for (const Policy p : all_policies()) {
    sim::Simulator simulator;
    const auto cluster = cluster::Cluster::homogeneous(4, 1.0);
    metrics::Collector collector;
    const auto stack = make_scheduler(p, simulator, cluster, collector);
    run_trace(simulator, stack->scheduler(), collector, jobs);
    EXPECT_TRUE(collector.all_resolved()) << to_string(p);
    EXPECT_GT(stack->busy_node_seconds(simulator.now()), 0.0) << to_string(p);
  }
}

TEST(MakeScheduler, SelectionOverrideApplies) {
  sim::Simulator simulator;
  const auto cluster = cluster::Cluster::homogeneous(2, 1.0);
  metrics::Collector collector;
  PolicyOptions options;
  options.selection_override = LibraConfig::Selection::WorstFit;
  const auto stack =
      make_scheduler(Policy::Libra, simulator, cluster, collector, options);
  auto& scheduler = dynamic_cast<LibraScheduler&>(stack->scheduler());
  EXPECT_EQ(scheduler.config().selection, LibraConfig::Selection::WorstFit);
  // Policy-defining fields are not overridable through options.
  EXPECT_EQ(scheduler.config().admission, LibraConfig::Admission::TotalShare);
}

TEST(MakeScheduler, RiskKnobsPropagate) {
  sim::Simulator simulator;
  const auto cluster = cluster::Cluster::homogeneous(2, 1.0);
  metrics::Collector collector;
  PolicyOptions options;
  options.share_model.deadline_clamp = 5.0;
  options.risk.rule = RiskConfig::Rule::SigmaAndNoDelay;
  options.risk.prediction = RiskConfig::Prediction::ProcessorSharing;
  const auto stack =
      make_scheduler(Policy::LibraRisk, simulator, cluster, collector, options);
  const auto& scheduler = dynamic_cast<LibraScheduler&>(stack->scheduler());
  EXPECT_DOUBLE_EQ(scheduler.config().risk.deadline_clamp, 5.0);
  EXPECT_EQ(scheduler.config().risk.rule, RiskConfig::Rule::SigmaAndNoDelay);
  EXPECT_EQ(scheduler.config().risk.prediction,
            RiskConfig::Prediction::ProcessorSharing);
}

}  // namespace
}  // namespace librisk::core
