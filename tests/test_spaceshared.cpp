#include "cluster/spaceshared.hpp"

#include <gtest/gtest.h>

#include <map>

#include "helpers.hpp"
#include "support/check.hpp"

namespace librisk::cluster {
namespace {

using librisk::testing::JobBuilder;
using workload::Job;

struct Fixture {
  explicit Fixture(int nodes = 4)
      : cluster(Cluster::homogeneous(nodes, 1.0)), executor(simulator, cluster) {
    executor.set_completion_handler(
        [this](const Job& job, sim::SimTime t) { completions[job.id] = t; });
  }
  sim::Simulator simulator;
  Cluster cluster;
  SpaceSharedExecutor executor;
  std::map<std::int64_t, sim::SimTime> completions;
};

TEST(SpaceShared, RunsAtFullSpeed) {
  Fixture f;
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(500.0).build();
  f.executor.start(job, {0});
  EXPECT_EQ(f.executor.free_count(), 3);
  f.simulator.run();
  EXPECT_NEAR(f.completions[1], 100.0, 1e-9);
  EXPECT_EQ(f.executor.free_count(), 4);
}

TEST(SpaceShared, NodesHeldExclusively) {
  Fixture f;
  const Job a = JobBuilder(1).set_runtime(100.0).deadline(500.0).procs(2).build();
  f.executor.start(a, {0, 1});
  EXPECT_FALSE(f.executor.is_free(0));
  EXPECT_FALSE(f.executor.is_free(1));
  EXPECT_TRUE(f.executor.is_free(2));
  const Job b = JobBuilder(2).set_runtime(10.0).deadline(100.0).build();
  EXPECT_THROW(f.executor.start(b, {0}), CheckError);  // node busy
}

TEST(SpaceShared, TakeFreeNodesReturnsLowestIds) {
  Fixture f;
  const Job a = JobBuilder(1).set_runtime(100.0).deadline(500.0).build();
  f.executor.start(a, {1});
  const auto nodes = f.executor.take_free_nodes(2);
  EXPECT_EQ(nodes, (std::vector<NodeId>{0, 2}));
  EXPECT_THROW((void)f.executor.take_free_nodes(4), CheckError);
  EXPECT_TRUE(f.executor.take_free_nodes(0).empty());
}

TEST(SpaceShared, GangRunsAtSlowestNode) {
  sim::Simulator simulator;
  const Cluster cluster({{0, 2.0}, {1, 1.0}}, 1.0);
  SpaceSharedExecutor executor(simulator, cluster);
  std::map<std::int64_t, sim::SimTime> done;
  executor.set_completion_handler(
      [&](const Job& job, sim::SimTime t) { done[job.id] = t; });
  const Job job = JobBuilder(1).set_runtime(100.0).deadline(500.0).procs(2).build();
  executor.start(job, {0, 1});
  simulator.run();
  EXPECT_NEAR(done[1], 100.0, 1e-9);  // limited by the rating-1 node
}

TEST(SpaceShared, SequentialReuseOfNodes) {
  Fixture f(1);
  const Job a = JobBuilder(1).set_runtime(50.0).deadline(500.0).build();
  f.executor.start(a, {0});
  f.simulator.run();
  const Job b = JobBuilder(2).set_runtime(30.0).deadline(500.0).build();
  f.executor.start(b, {0});
  f.simulator.run();
  EXPECT_NEAR(f.completions[1], 50.0, 1e-9);
  EXPECT_NEAR(f.completions[2], 80.0, 1e-9);
}

TEST(SpaceShared, BusyNodeSecondsAccounting) {
  Fixture f(2);
  const Job a = JobBuilder(1).set_runtime(100.0).deadline(500.0).procs(2).build();
  f.executor.start(a, {0, 1});
  EXPECT_NEAR(f.executor.busy_node_seconds(50.0), 100.0, 1e-9);  // mid-flight
  f.simulator.run();
  EXPECT_NEAR(f.executor.busy_node_seconds(f.simulator.now()), 200.0, 1e-9);
}

TEST(SpaceShared, ValidatesStart) {
  Fixture f(2);
  const Job job = JobBuilder(1).set_runtime(10.0).deadline(50.0).procs(2).build();
  EXPECT_THROW(f.executor.start(job, {0}), CheckError);
  EXPECT_THROW(f.executor.start(job, {0, 7}), CheckError);
  f.executor.start(job, {0, 1});
  EXPECT_TRUE(f.executor.is_running(1));
  EXPECT_THROW(f.executor.start(job, {0, 1}), CheckError);
}

TEST(SpaceShared, IsFreeBoundsChecked) {
  Fixture f(2);
  EXPECT_THROW((void)f.executor.is_free(-1), CheckError);
  EXPECT_THROW((void)f.executor.is_free(2), CheckError);
}

}  // namespace
}  // namespace librisk::cluster
