// Edge-case sweep across modules: inputs real deployments produce that the
// per-module suites do not otherwise reach.
#include <gtest/gtest.h>

#include <sstream>

#include "core/factory.hpp"
#include "core/edf.hpp"
#include "core/libra.hpp"
#include "core/qops.hpp"
#include "core/risk.hpp"
#include "cluster/timeshared.hpp"
#include "cluster/spaceshared.hpp"
#include "exp/scenario.hpp"
#include "helpers.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "workload/predictor.hpp"
#include "workload/swf.hpp"
#include "workload/workload_stats.hpp"

namespace librisk {
namespace {

using librisk::testing::JobBuilder;
using librisk::testing::make_job;

// ---------------------------------------------------------------------------
// SWF parser robustness: garbage lines must throw ParseError, never crash or
// silently misparse.
// ---------------------------------------------------------------------------

TEST(SwfRobustness, RandomGarbageNeverCrashes) {
  rng::Stream stream(91);
  const std::string alphabet = "0123456789 -.;ab\tXY\"\\";
  for (int trial = 0; trial < 300; ++trial) {
    std::string line;
    const int len = static_cast<int>(stream.uniform_int(0, 80));
    for (int i = 0; i < len; ++i)
      line.push_back(alphabet[stream.uniform_int(0, alphabet.size() - 1)]);
    line.push_back('\n');
    std::istringstream in(line);
    try {
      const auto jobs = workload::swf::read(in);
      for (const auto& j : jobs) j.validate();  // anything parsed is valid
    } catch (const workload::swf::ParseError&) {
      // fine: rejected with a diagnostic
    }
  }
}

TEST(SwfRobustness, DeadlineNoteForUnknownJobIgnored) {
  std::istringstream in(
      ";librisk-deadline: 999 1234 high\n"
      "1 0 0 60 1 -1 -1 1 60 -1 1 0 0 -1 0 -1 -1 -1\n");
  const auto jobs = workload::swf::read(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].deadline, 0.0);  // note referenced a missing job
}

TEST(SwfRobustness, MalformedDeadlineNoteIgnored) {
  std::istringstream in(
      ";librisk-deadline: not-a-number\n"
      "1 0 0 60 1 -1 -1 1 60 -1 1 0 0 -1 0 -1 -1 -1\n");
  EXPECT_EQ(workload::swf::read(in).size(), 1u);
}

TEST(SwfRobustness, UsedProcsFallbackWhenRequestMissing) {
  // Requested processors -1, used processors 8: the parser falls back.
  std::istringstream in("1 0 0 60 8 -1 -1 -1 60 -1 1 0 0 -1 0 -1 -1 -1\n");
  const auto jobs = workload::swf::read(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].num_procs, 8);
}

// ---------------------------------------------------------------------------
// Job validation rejects NaN smuggled through arithmetic.
// ---------------------------------------------------------------------------

TEST(JobValidation, NanFieldsRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  workload::Job j = make_job(1, 0.0, 10.0, 20.0);
  j.submit_time = nan;
  EXPECT_THROW(j.validate(), CheckError);
  j = make_job(1, 0.0, 10.0, 20.0);
  j.deadline = nan;
  EXPECT_THROW(j.validate(), CheckError);
  j = make_job(1, 0.0, 10.0, 20.0);
  j.actual_runtime = nan;
  EXPECT_THROW(j.validate(), CheckError);
}

// ---------------------------------------------------------------------------
// Factory plumbing not covered elsewhere.
// ---------------------------------------------------------------------------

TEST(FactoryEdge, QopsSlackFactorPlumbs) {
  sim::Simulator simulator;
  const auto cluster = cluster::Cluster::homogeneous(2, 1.0);
  metrics::Collector collector;
  core::PolicyOptions options;
  options.qops_slack_factor = 1.75;
  const auto stack =
      core::make_scheduler(core::Policy::Qops, simulator, cluster, collector, options);
  const auto& scheduler = dynamic_cast<core::QopsScheduler&>(stack->scheduler());
  EXPECT_DOUBLE_EQ(scheduler.config().slack_factor, 1.75);
}

TEST(FactoryEdge, EdfBackfillNameRoundTrips) {
  EXPECT_EQ(core::parse_policy("EDF-BF"), core::Policy::EdfBackfill);
  EXPECT_EQ(core::to_string(core::Policy::EdfBackfill), "EDF-BF");
}

// ---------------------------------------------------------------------------
// Scheduler corner cases.
// ---------------------------------------------------------------------------

TEST(SchedulerEdge, SingleNodeClusterWorksForEveryPolicy) {
  for (const core::Policy policy : core::all_policies()) {
    exp::Scenario s;
    s.workload.trace.job_count = 60;
    s.nodes = 1;
    s.policy = policy;
    // Single-proc jobs only: force max_procs to 1 so nothing is oversized.
    s.workload.trace.max_procs = 1;
    s.workload.trace.power_weights = {1.0};
    const exp::ScenarioResult r = exp::run_scenario(s);
    EXPECT_EQ(r.summary.submitted, 60u) << core::to_string(policy);
  }
}

TEST(SchedulerEdge, SimultaneousArrivalsResolveDeterministically) {
  // 20 jobs all submitted at t=0: arrival order falls back to schedule
  // order, which run_trace fixes as trace order.
  std::vector<workload::Job> jobs;
  for (int i = 0; i < 20; ++i)
    jobs.push_back(JobBuilder(i + 1).submit(0.0).set_runtime(30.0).deadline(5000.0).build());
  for (const core::Policy policy : {core::Policy::Edf, core::Policy::Libra}) {
    sim::Simulator simulator;
    const auto cluster = cluster::Cluster::homogeneous(4, 1.0);
    metrics::Collector collector;
    const auto stack = core::make_scheduler(policy, simulator, cluster, collector);
    core::run_trace(simulator, stack->scheduler(), collector, jobs);
    EXPECT_TRUE(collector.all_resolved()) << core::to_string(policy);
  }
}

TEST(SchedulerEdge, ZeroLoadAndFullAcceptance) {
  // One tiny job on a big cluster: everything fulfils, utilization tiny.
  exp::Scenario s;
  s.workload.trace.job_count = 1;
  s.nodes = 128;
  s.policy = core::Policy::LibraRisk;
  const exp::ScenarioResult r = exp::run_scenario(s);
  EXPECT_EQ(r.summary.fulfilled, 1u);
  EXPECT_DOUBLE_EQ(r.summary.fulfilled_pct, 100.0);
}

// ---------------------------------------------------------------------------
// Risk-rule and estimate-kind interactions not covered elsewhere.
// ---------------------------------------------------------------------------

TEST(RiskRuleEdge, SigmaThresholdAdmitsMildDispersion) {
  core::RiskConfig config;
  const std::vector<core::RiskJobInput> jobs{
      {200.0, 100.0, 0.5},                   // late resident: dd = 4
      {50.0, 100.0, 0.5},                    // on time: dd = 1
  };
  const auto a = core::assess_node(jobs, config, 1.0, 0.0);
  ASSERT_DOUBLE_EQ(a.sigma, 1.5);
  EXPECT_FALSE(a.zero_risk(config));  // strict rule
  config.sigma_threshold = 2.0;
  EXPECT_TRUE(a.zero_risk(config));   // relaxed rule admits sigma 1.5
  config.sigma_threshold = 1.0;
  EXPECT_FALSE(a.zero_risk(config));
}

TEST(LibraEdge, CurrentEstimateKindSeesOverruns) {
  // A hybrid config: Libra's total-share test but reading overrun-adjusted
  // estimates. Unlike paper-Libra it must see the overrun job's demand.
  sim::Simulator simulator;
  const auto cl = cluster::Cluster::homogeneous(1, 1.0);
  cluster::TimeSharedExecutor executor(simulator, cl);
  metrics::Collector collector;
  core::LibraConfig config = core::LibraConfig::libra();
  config.estimate_kind = cluster::TimeSharedExecutor::EstimateKind::Current;
  core::LibraScheduler scheduler(simulator, executor, collector, config,
                                 "Libra-current");

  const workload::Job sneaky =
      JobBuilder(1).estimate(50.0).set_runtime(200.0).deadline(60.0).build();
  collector.record_submitted(sneaky, 0.0);
  scheduler.on_job_submitted(sneaky);
  simulator.run_until(70.0);  // estimate exhausted, deadline blown
  executor.sync();
  ASSERT_TRUE(executor.is_running(1));

  double fit = 0.0;
  const workload::Job newcomer =
      JobBuilder(2).submit(70.0).set_runtime(5.0).deadline(100.0).build();
  // Current-estimate share of the overrun job is huge (deadline-clamped):
  // the hybrid rejects where raw-estimate Libra would accept.
  EXPECT_FALSE(scheduler.node_suitable(0, newcomer, fit));
  EXPECT_GT(fit, 1.0);
}

TEST(EdfEdge, FeasibilityUsesFastestNodeOnMixedClusters) {
  // est 150 / deadline 100 is infeasible at speed 1 but feasible at 2.
  std::vector<cluster::NodeSpec> specs{{0, 168.0}, {1, 336.0}};
  const cluster::Cluster mixed(std::move(specs), 168.0);
  sim::Simulator simulator;
  metrics::Collector collector;
  cluster::SpaceSharedExecutor executor(simulator, mixed);
  core::EdfScheduler scheduler(simulator, executor, collector, {});
  const workload::Job job =
      JobBuilder(1).estimate(150.0).set_runtime(150.0).deadline(100.0).build();
  collector.record_submitted(job, 0.0);
  scheduler.on_job_submitted(job);
  // EDF's admission is optimistic (fastest node), so the job is accepted;
  // whether it lands on the fast node is up to take_free_nodes.
  EXPECT_TRUE(executor.is_running(1));
}

TEST(CollectorEdge, WindowedSummaryCountsKilledJobs) {
  const workload::Job early = make_job(1, 10.0, 50.0, 500.0);
  const workload::Job inside = make_job(2, 100.0, 50.0, 500.0);
  metrics::Collector c;
  for (const auto* j : {&early, &inside}) c.record_submitted(*j, j->submit_time);
  c.record_started(early, 10.0, 50.0);
  c.record_killed(early, 40.0);
  c.record_started(inside, 100.0, 50.0);
  c.record_killed(inside, 130.0);
  const auto windowed =
      c.summarize(metrics::Collector::MeasurementWindow{.begin = 50.0, .end = 1e9});
  EXPECT_EQ(windowed.submitted, 1u);
  EXPECT_EQ(windowed.killed, 1u);
}

TEST(PredictorEdge, ObservationRatioClamped) {
  // A pathological 100x overrun must not poison the EMA beyond the clamp.
  workload::PredictorConfig config;
  config.safety_margin = 1.0;
  config.min_user_history = 1;
  workload::OnlinePredictor p(config);
  workload::Job j = make_job(1, 0.0, 1000.0, 10000.0);
  j.user_id = 1;
  j.user_estimate = 10.0;  // ratio actual/estimate = 100, clamped to 4
  p.observe(j);
  workload::Job next = make_job(2, 0.0, 1000.0, 10000.0);
  next.user_id = 1;
  // Clamped ratio 4 then clamped correction factor at 1.0 (never inflate).
  EXPECT_DOUBLE_EQ(p.correction_factor(next), 1.0);
}

TEST(SimulatorEdge, ControlPriorityRunsLast) {
  sim::Simulator simulator;
  std::vector<int> order;
  (void)simulator.at(1.0, sim::EventPriority::Control, [&] { order.push_back(3); });
  (void)simulator.at(1.0, sim::EventPriority::Arrival, [&] { order.push_back(2); });
  (void)simulator.at(1.0, sim::EventPriority::Completion, [&] { order.push_back(1); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Workload stats degenerate input.
// ---------------------------------------------------------------------------

TEST(WorkloadStatsEdge, SingleJobHasNoInterarrival) {
  const std::vector<workload::Job> jobs{make_job(1, 5.0, 10.0, 20.0)};
  const auto stats = workload::compute_stats(jobs);
  EXPECT_EQ(stats.interarrival.count, 0u);
  EXPECT_DOUBLE_EQ(stats.span, 0.0);
  EXPECT_DOUBLE_EQ(stats.offered_utilization(16), 0.0);  // zero span
}

}  // namespace
}  // namespace librisk
