#include "core/edf.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace librisk::core {
namespace {

using librisk::testing::JobBuilder;

struct Fixture {
  explicit Fixture(int nodes, EdfConfig config = EdfConfig{})
      : cluster(cluster::Cluster::homogeneous(nodes, 1.0)),
        executor(simulator, cluster),
        scheduler(simulator, executor, collector, config) {}

  void submit(const workload::Job& job) {
    collector.record_submitted(job, simulator.now());
    scheduler.on_job_submitted(job);
  }

  sim::Simulator simulator;
  cluster::Cluster cluster;
  cluster::SpaceSharedExecutor executor;
  metrics::Collector collector;
  EdfScheduler scheduler;
};

TEST(Edf, RunsImmediatelyWhenNodesFree) {
  Fixture f(2);
  const workload::Job job = JobBuilder(1).set_runtime(100.0).deadline(300.0).build();
  f.submit(job);
  EXPECT_TRUE(f.executor.is_running(1));
  f.simulator.run();
  EXPECT_EQ(f.collector.record(1).fate, metrics::JobFate::FulfilledInTime);
  EXPECT_NEAR(f.collector.record(1).finish_time, 100.0, 1e-9);
}

TEST(Edf, QueuesWhenBusyAndRunsEarliestDeadlineFirst) {
  Fixture f(1);
  const workload::Job running = JobBuilder(1).set_runtime(100.0).deadline(300.0).build();
  f.submit(running);
  // Two queued jobs; the later-submitted one has the earlier deadline.
  const workload::Job loose = JobBuilder(2).set_runtime(10.0).deadline(5000.0).build();
  const workload::Job tight = JobBuilder(3).set_runtime(10.0).deadline(200.0).build();
  f.submit(loose);
  f.submit(tight);
  EXPECT_EQ(f.scheduler.queue_length(), 2u);
  f.simulator.run();
  // tight (deadline 200) must start before loose (deadline 5000).
  EXPECT_LT(f.collector.record(3).start_time, f.collector.record(2).start_time);
  EXPECT_EQ(f.collector.record(3).fate, metrics::JobFate::FulfilledInTime);
  EXPECT_EQ(f.collector.record(2).fate, metrics::JobFate::FulfilledInTime);
}

TEST(Edf, RelaxedAdmissionRejectsOnlyAtSelection) {
  Fixture f(1);
  const workload::Job running = JobBuilder(1).set_runtime(100.0).deadline(300.0).build();
  f.submit(running);
  // This job's deadline can only be met if it starts within 10 s — but the
  // node is busy for 100 s. It is NOT rejected at submission...
  const workload::Job doomed = JobBuilder(2).set_runtime(90.0).deadline(100.0).build();
  f.submit(doomed);
  EXPECT_EQ(f.collector.record(2).fate, metrics::JobFate::Pending);
  EXPECT_EQ(f.scheduler.queue_length(), 1u);
  // ...only when selected for execution at t=100.
  f.simulator.run();
  EXPECT_EQ(f.collector.record(2).fate, metrics::JobFate::RejectedAtDispatch);
}

TEST(Edf, WaitingHeadCanBeDisplacedByEarlierDeadline) {
  Fixture f(2);
  // Occupy one node; the 2-node head job must wait.
  const workload::Job occupant = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.submit(occupant);
  const workload::Job head =
      JobBuilder(2).set_runtime(10.0).deadline(300.0).procs(2).build();
  f.submit(head);
  EXPECT_FALSE(f.executor.is_running(2));
  // A later arrival with an earlier deadline fits on the free node and runs
  // first — the paper's "reselection during the waiting phase".
  const workload::Job urgent = JobBuilder(3).set_runtime(10.0).deadline(50.0).build();
  f.submit(urgent);
  EXPECT_TRUE(f.executor.is_running(3));
  f.simulator.run();
  EXPECT_EQ(f.collector.record(2).fate, metrics::JobFate::FulfilledInTime);
}

TEST(Edf, HeadOfLineBlocksSmallerLaterDeadlineJobs) {
  Fixture f(2);
  const workload::Job occupant = JobBuilder(1).set_runtime(100.0).deadline(220.0).build();
  f.submit(occupant);
  const workload::Job head =
      JobBuilder(2).set_runtime(10.0).deadline(300.0).procs(2).build();
  f.submit(head);
  // Fits on the free node but has a *later* deadline than the head: EDF is
  // non-backfilling, so it must wait behind the head.
  const workload::Job blocked = JobBuilder(3).set_runtime(10.0).deadline(5000.0).build();
  f.submit(blocked);
  EXPECT_FALSE(f.executor.is_running(3));
  f.simulator.run();
  EXPECT_GE(f.collector.record(3).start_time, f.collector.record(2).start_time);
}

TEST(Edf, RejectsExpiredDeadlineAtSelection) {
  Fixture f(1);
  const workload::Job running = JobBuilder(1).set_runtime(500.0).deadline(1500.0).build();
  f.submit(running);
  const workload::Job expired = JobBuilder(2).set_runtime(10.0).deadline(100.0).build();
  f.submit(expired);
  f.simulator.run();
  EXPECT_EQ(f.collector.record(2).fate, metrics::JobFate::RejectedAtDispatch);
}

TEST(Edf, OversizedRequestRejectedAtSubmit) {
  Fixture f(2);
  const workload::Job job =
      JobBuilder(1).set_runtime(10.0).deadline(100.0).procs(3).build();
  f.submit(job);
  EXPECT_EQ(f.collector.record(1).fate, metrics::JobFate::RejectedAtSubmit);
}

TEST(Edf, UsesEstimateNotActualForAdmission) {
  Fixture f(1);
  // Estimate says the deadline is impossible; actual runtime would fit.
  const workload::Job job =
      JobBuilder(1).estimate(500.0).set_runtime(50.0).deadline(100.0).build();
  f.submit(job);
  f.simulator.run();
  EXPECT_EQ(f.collector.record(1).fate, metrics::JobFate::RejectedAtDispatch);
}

TEST(EdfNoAC, RunsEverythingEvenLate) {
  Fixture f(1, EdfConfig{.admission_control = false, .overload = {}});
  const workload::Job a = JobBuilder(1).set_runtime(100.0).deadline(150.0).build();
  const workload::Job b = JobBuilder(2).set_runtime(100.0).deadline(150.0).build();
  f.submit(a);
  f.submit(b);
  f.simulator.run();
  EXPECT_EQ(f.collector.record(1).fate, metrics::JobFate::FulfilledInTime);
  EXPECT_EQ(f.collector.record(2).fate, metrics::JobFate::CompletedLate);
  EXPECT_NEAR(f.collector.record(2).finish_time, 200.0, 1e-9);
}

TEST(EdfBackfill, FillsTheShadowWindow) {
  Fixture f(2, EdfConfig{.admission_control = true, .backfilling = true, .overload = {}});
  const workload::Job occupant = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.submit(occupant);
  const workload::Job head =
      JobBuilder(2).set_runtime(10.0).deadline(300.0).procs(2).build();
  f.submit(head);
  // Later deadline, but finishes (by estimate) before the head could start:
  // plain EDF would block it; EDF-BF backfills it.
  const workload::Job filler = JobBuilder(3).set_runtime(50.0).deadline(5000.0).build();
  f.submit(filler);
  EXPECT_TRUE(f.executor.is_running(3));
  f.simulator.run();
  EXPECT_NEAR(f.collector.record(2).start_time, 100.0, 1e-9);  // head on time
  EXPECT_EQ(f.collector.record(2).fate, metrics::JobFate::FulfilledInTime);
}

TEST(EdfBackfill, RefusesBackfillThatWouldDelayHead) {
  Fixture f(2, EdfConfig{.admission_control = true, .backfilling = true, .overload = {}});
  const workload::Job occupant = JobBuilder(1).set_runtime(100.0).deadline(400.0).build();
  f.submit(occupant);
  const workload::Job head =
      JobBuilder(2).set_runtime(10.0).deadline(300.0).procs(2).build();
  f.submit(head);
  const workload::Job toolong = JobBuilder(3).set_runtime(150.0).deadline(5000.0).build();
  f.submit(toolong);
  EXPECT_FALSE(f.executor.is_running(3));
  f.simulator.run();
  EXPECT_NEAR(f.collector.record(2).start_time, 100.0, 1e-9);
}

TEST(EdfBackfill, BackfillsInDeadlineOrder) {
  Fixture f(3, EdfConfig{.admission_control = true, .backfilling = true, .overload = {}});
  // Occupy all three nodes: nothing can backfill yet.
  const workload::Job wide =
      JobBuilder(1).set_runtime(100.0).deadline(400.0).procs(2).build();
  const workload::Job brief = JobBuilder(2).set_runtime(30.0).deadline(400.0).build();
  f.submit(wide);
  f.submit(brief);
  const workload::Job head =
      JobBuilder(3).set_runtime(10.0).deadline(300.0).procs(3).build();
  f.submit(head);
  // Two eligible fillers queue behind the head while every node is busy.
  const workload::Job later = JobBuilder(4).set_runtime(40.0).deadline(9000.0).build();
  const workload::Job sooner = JobBuilder(5).set_runtime(40.0).deadline(800.0).build();
  f.submit(later);
  f.submit(sooner);
  EXPECT_FALSE(f.executor.is_running(4));
  EXPECT_FALSE(f.executor.is_running(5));
  // At t=30 one node frees; the earlier-deadline filler must win the slot
  // (it finishes at 70, inside the head's t=100 reservation).
  f.simulator.run_until(31.0);
  EXPECT_TRUE(f.executor.is_running(5));
  EXPECT_FALSE(f.executor.is_running(4));
  f.simulator.run();
  EXPECT_EQ(f.collector.record(3).fate, metrics::JobFate::FulfilledInTime);
}

TEST(EdfBackfill, SkipsInfeasibleCandidatesWithoutRejectingThem) {
  Fixture f(2, EdfConfig{.admission_control = true, .backfilling = true, .overload = {}});
  // Shadow time 600 (occupant's estimate) is *later* than the head's
  // deadline, which opens the window for a candidate that fits the window
  // by estimate (580 <= 600) yet cannot meet its own deadline (580 > 560).
  const workload::Job occupant = JobBuilder(1).set_runtime(600.0).deadline(2000.0).build();
  f.submit(occupant);
  const workload::Job head =
      JobBuilder(2).set_runtime(100.0).deadline(550.0).procs(2).build();
  f.submit(head);
  const workload::Job hopeless =
      JobBuilder(3).estimate(580.0).set_runtime(100.0).deadline(560.0).build();
  f.submit(hopeless);
  // Backfilling must skip it rather than start or reject it here; it is
  // only rejected when *selected* as the head later.
  EXPECT_FALSE(f.executor.is_running(3));
  EXPECT_EQ(f.collector.record(3).fate, metrics::JobFate::Pending);
  f.simulator.run();
  EXPECT_EQ(f.collector.record(3).fate, metrics::JobFate::RejectedAtDispatch);
}

TEST(Edf, TieBreaksOnJobIdForEqualDeadlines) {
  Fixture f(1);
  const workload::Job running = JobBuilder(1).set_runtime(50.0).deadline(1000.0).build();
  f.submit(running);
  const workload::Job second =
      JobBuilder(3).submit(0.0).set_runtime(10.0).deadline(500.0).build();
  const workload::Job first =
      JobBuilder(2).submit(0.0).set_runtime(10.0).deadline(500.0).build();
  f.submit(second);
  f.submit(first);
  f.simulator.run();
  EXPECT_LT(f.collector.record(2).start_time, f.collector.record(3).start_time);
}

}  // namespace
}  // namespace librisk::core
