#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"

namespace librisk::csv {
namespace {

TEST(Escape, PlainFieldUnchanged) {
  EXPECT_EQ(escape("hello"), "hello");
  EXPECT_EQ(escape(""), "");
}

TEST(Escape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(escape("a,b"), "\"a,b\"");
  EXPECT_EQ(escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Writer, HeaderAndRows) {
  std::ostringstream out;
  Writer w(out);
  w.header({"a", "b"});
  w.row({"1", "2"});
  w.row({"x,y", "z"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n\"x,y\",z\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Writer, RowsWithoutHeaderFixArity) {
  std::ostringstream out;
  Writer w(out);
  w.row({"1", "2", "3"});
  EXPECT_THROW(w.row({"only", "two"}), CheckError);
}

TEST(Writer, ArityMismatchThrows) {
  std::ostringstream out;
  Writer w(out);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"just one"}), CheckError);
}

TEST(Writer, DoubleHeaderThrows) {
  std::ostringstream out;
  Writer w(out);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), CheckError);
}

TEST(Writer, EmptyHeaderThrows) {
  std::ostringstream out;
  Writer w(out);
  EXPECT_THROW(w.header(std::initializer_list<std::string_view>{}), CheckError);
}

TEST(Writer, DoubleFieldRoundTrips) {
  EXPECT_EQ(Writer::field(1.5), "1.5");
  EXPECT_EQ(Writer::field(0.0), "0");
  const std::string s = Writer::field(2131.000244140625);
  EXPECT_EQ(std::stod(s), 2131.000244140625);
}

TEST(Writer, IntegerFields) {
  EXPECT_EQ(Writer::field(std::size_t{42}), "42");
  EXPECT_EQ(Writer::field(-7LL), "-7");
}

}  // namespace
}  // namespace librisk::csv
