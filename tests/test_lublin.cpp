#include "workload/lublin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "workload/deadlines.hpp"
#include "workload/estimates.hpp"
#include "workload/workload_stats.hpp"

namespace librisk::workload {
namespace {

LublinConfig big_config() {
  LublinConfig c;
  c.job_count = 20000;
  return c;
}

TEST(LublinConfig, Validation) {
  LublinConfig c;
  EXPECT_NO_THROW(c.validate());
  c.serial_prob = 1.5;
  EXPECT_THROW(c.validate(), CheckError);
  c = LublinConfig{};
  c.daily_peak_trough_ratio = 0.5;
  EXPECT_THROW(c.validate(), CheckError);
  c = LublinConfig{};
  c.gamma1_scale = 0.0;
  EXPECT_THROW(c.validate(), CheckError);
  c = LublinConfig{};
  c.peak_hour = 24.0;
  EXPECT_THROW(c.validate(), CheckError);
}

TEST(Lublin, ProducesSortedValidJobs) {
  rng::Stream stream("lublin", 1);
  LublinConfig c;
  c.job_count = 3000;
  const auto jobs = generate_lublin_trace(c, stream);
  ASSERT_EQ(jobs.size(), 3000u);
  double last = 0.0;
  for (const Job& j : jobs) {
    EXPECT_GE(j.submit_time, last);
    last = j.submit_time;
    EXPECT_GE(j.num_procs, 1);
    EXPECT_LE(j.num_procs, c.max_procs);
    EXPECT_GE(j.actual_runtime, c.min_runtime);
    EXPECT_LE(j.actual_runtime, c.max_runtime);
    EXPECT_GE(j.user_id, 0);
  }
}

TEST(Lublin, SerialAndPowerOfTwoFractions) {
  rng::Stream stream("lublin", 2);
  const auto jobs = generate_lublin_trace(big_config(), stream);
  // Serial probability is direct; power-of-two covers serial jobs, the
  // rounded non-serial draws, and log-uniform values that land on powers.
  EXPECT_NEAR(serial_fraction(jobs), 0.24, 0.02);
  EXPECT_GT(power_of_two_fraction(jobs), 0.7);
}

TEST(Lublin, WiderJobsRunLonger) {
  // The hyper-Gamma mixing ties runtime to node count — the structural
  // property the lognormal SDSC model lacks.
  rng::Stream stream("lublin", 3);
  const auto jobs = generate_lublin_trace(big_config(), stream);
  stats::Accumulator narrow, wide;
  for (const Job& j : jobs)
    (j.num_procs <= 4 ? narrow : wide).add(j.actual_runtime);
  ASSERT_GT(narrow.count(), 100u);
  ASSERT_GT(wide.count(), 100u);
  EXPECT_GT(wide.mean(), 1.3 * narrow.mean());
}

TEST(Lublin, DailyCycleModulatesArrivals) {
  // Hourly arrival counts around the peak hour must exceed the trough's.
  rng::Stream stream("lublin", 4);
  LublinConfig c = big_config();
  c.job_count = 50000;
  const auto jobs = generate_lublin_trace(c, stream);
  std::vector<double> hourly(24, 0.0);
  for (const Job& j : jobs)
    hourly[static_cast<int>(std::fmod(j.submit_time, 86400.0) / 3600.0)] += 1.0;
  const double peak = hourly[static_cast<int>(c.peak_hour)];
  const double trough = hourly[(static_cast<int>(c.peak_hour) + 12) % 24];
  EXPECT_GT(peak, 1.5 * trough);
}

TEST(Lublin, FlatCycleWhenRatioIsOne) {
  rng::Stream stream("lublin", 5);
  LublinConfig c = big_config();
  c.daily_peak_trough_ratio = 1.0;
  const auto jobs = generate_lublin_trace(c, stream);
  const auto stats = compute_stats(jobs);
  EXPECT_NEAR(stats.interarrival.mean, c.mean_interarrival,
              0.05 * c.mean_interarrival);
}

TEST(Lublin, ArrivalDelayFactorScales) {
  LublinConfig c;
  c.job_count = 5000;
  rng::Stream s1("lublin", 6);
  const auto base = generate_lublin_trace(c, s1);
  c.arrival_delay_factor = 0.5;
  rng::Stream s2("lublin", 6);
  const auto heavy = generate_lublin_trace(c, s2);
  EXPECT_NEAR(heavy.back().submit_time / base.back().submit_time, 0.5, 0.05);
}

TEST(Lublin, Deterministic) {
  LublinConfig c;
  c.job_count = 500;
  rng::Stream a("lublin", 7), b("lublin", 7);
  const auto ja = generate_lublin_trace(c, a);
  const auto jb = generate_lublin_trace(c, b);
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_DOUBLE_EQ(ja[i].submit_time, jb[i].submit_time);
    EXPECT_DOUBLE_EQ(ja[i].actual_runtime, jb[i].actual_runtime);
    EXPECT_EQ(ja[i].num_procs, jb[i].num_procs);
  }
}

TEST(Lublin, FeedsThePaperPipeline) {
  // The Lublin trace must compose with the estimate/deadline models just
  // like the SDSC generator's output does.
  rng::Stream stream("lublin", 8);
  LublinConfig c;
  c.job_count = 1000;
  auto jobs = generate_lublin_trace(c, stream);

  UserEstimateConfig estimates;
  rng::Stream est_stream("estimates", 8);
  assign_user_estimates(jobs, estimates, est_stream);
  DeadlineConfig deadlines;
  rng::Stream dl_stream("deadlines", 8);
  assign_deadlines(jobs, deadlines, dl_stream);
  apply_inaccuracy(jobs, 100.0);
  EXPECT_NO_THROW(validate_trace(jobs));
}

}  // namespace
}  // namespace librisk::workload
