#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"

namespace librisk::workload::swf {
namespace {

// One well-formed SWF line: job 1, submit 100, wait 5, runtime 3600,
// 16 used procs, estimate 7200, 16 requested procs, status 1, uid 3.
constexpr const char* kLine1 =
    "1 100 5 3600 16 -1 -1 16 7200 -1 1 3 4 -1 2 -1 -1 -1\n";
constexpr const char* kLine2 =
    "2 200 0 1800 8 -1 -1 8 1800 -1 0 3 4 -1 1 -1 -1 -1\n";

TEST(SwfRead, ParsesFields) {
  std::istringstream in(std::string("; comment line\n") + kLine1);
  const auto jobs = read(in);
  ASSERT_EQ(jobs.size(), 1u);
  const Job& j = jobs[0];
  EXPECT_EQ(j.id, 1);
  EXPECT_DOUBLE_EQ(j.submit_time, 0.0);  // rebased to zero
  EXPECT_DOUBLE_EQ(j.actual_runtime, 3600.0);
  EXPECT_DOUBLE_EQ(j.user_estimate, 7200.0);
  EXPECT_DOUBLE_EQ(j.scheduler_estimate, 7200.0);
  EXPECT_EQ(j.num_procs, 16);
  EXPECT_EQ(j.status, 1);
  EXPECT_EQ(j.user_id, 3);
  EXPECT_EQ(j.group_id, 4);
  EXPECT_EQ(j.queue, 2);
}

TEST(SwfRead, RebasesSubmitTimes) {
  std::istringstream in(std::string(kLine1) + kLine2);
  const auto jobs = read(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].submit_time, 100.0);
}

TEST(SwfRead, SkipsInvalidJobsByDefault) {
  std::istringstream in(
      "1 100 5 -1 16 -1 -1 16 7200 -1 1 3 4 -1 2 -1 -1 -1\n"  // no runtime
      "2 200 0 1800 -1 -1 -1 -1 1800 -1 0 3 4 -1 1 -1 -1 -1\n"  // no procs
      + std::string(kLine2));
  const auto jobs = read(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, 2);
}

TEST(SwfRead, MissingEstimateFallsBackToRuntime) {
  std::istringstream in(
      "1 100 5 3600 16 -1 -1 16 -1 -1 1 3 4 -1 2 -1 -1 -1\n");
  const auto jobs = read(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].user_estimate, 3600.0);
}

TEST(SwfRead, MissingEstimateDroppedWhenFallbackDisabled) {
  std::istringstream in(
      "1 100 5 3600 16 -1 -1 16 -1 -1 1 3 4 -1 2 -1 -1 -1\n");
  ReadOptions opts;
  opts.estimate_fallback_to_runtime = false;
  EXPECT_TRUE(read(in, opts).empty());
}

TEST(SwfRead, LastNKeepsTail) {
  std::ostringstream trace;
  for (int i = 1; i <= 10; ++i)
    trace << i << ' ' << i * 100 << " 0 60 1 -1 -1 1 60 -1 1 0 0 -1 0 -1 -1 -1\n";
  std::istringstream in(trace.str());
  ReadOptions opts;
  opts.last_n = 3;
  const auto jobs = read(in, opts);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].id, 8);
  EXPECT_EQ(jobs[2].id, 10);
  EXPECT_DOUBLE_EQ(jobs[0].submit_time, 0.0);  // rebased to the subset start
}

TEST(SwfRead, MalformedLineThrows) {
  std::istringstream short_line("1 2 3\n");
  EXPECT_THROW((void)read(short_line), ParseError);
  std::istringstream bad_number(
      "1 abc 5 3600 16 -1 -1 16 7200 -1 1 3 4 -1 2 -1 -1 -1\n");
  EXPECT_THROW((void)read(bad_number), ParseError);
}

TEST(SwfRead, HandlesCrLfAndWhitespace) {
  std::istringstream in("  \t\n1 100 5 3600 16 -1 -1 16 7200 -1 1 3 4 -1 2 -1 -1 -1\r\n");
  EXPECT_EQ(read(in).size(), 1u);
}

TEST(SwfRead, MissingFileThrows) {
  EXPECT_THROW((void)read_file("/nonexistent/trace.swf"), ParseError);
}

TEST(SwfRoundTrip, PreservesJobsAndDeadlines) {
  std::vector<Job> jobs;
  for (int i = 1; i <= 5; ++i) {
    Job j = librisk::testing::make_job(i, i * 50.0, 600.0 + i, 1800.0 + i, i);
    j.urgency = i % 2 == 0 ? Urgency::High : Urgency::Low;
    j.status = 1;
    jobs.push_back(j);
  }
  std::ostringstream out;
  write(out, jobs, WriteOptions{.include_deadlines = true, .header = {"test trace"}});

  std::istringstream in(out.str());
  const auto parsed = read(in);
  ASSERT_EQ(parsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parsed[i].id, jobs[i].id);
    EXPECT_DOUBLE_EQ(parsed[i].submit_time, jobs[i].submit_time - jobs[0].submit_time);
    EXPECT_DOUBLE_EQ(parsed[i].actual_runtime, jobs[i].actual_runtime);
    EXPECT_DOUBLE_EQ(parsed[i].user_estimate, jobs[i].user_estimate);
    EXPECT_EQ(parsed[i].num_procs, jobs[i].num_procs);
    EXPECT_DOUBLE_EQ(parsed[i].deadline, jobs[i].deadline);
    EXPECT_EQ(parsed[i].urgency, jobs[i].urgency);
  }
}

TEST(SwfRoundTrip, DeadlinesOmittedWhenDisabled) {
  const std::vector<Job> jobs{librisk::testing::make_job(1, 0.0, 600.0, 1200.0)};
  std::ostringstream out;
  write(out, jobs, WriteOptions{.include_deadlines = false, .header = {}});
  std::istringstream in(out.str());
  const auto parsed = read(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed[0].deadline, 0.0);
}

// ---- streaming reader ----

TEST(SwfStreamTest, MatchesBatchReaderOnWellFormedTrace) {
  std::vector<Job> jobs;
  for (int i = 1; i <= 5; ++i) {
    Job j = librisk::testing::make_job(i, i * 50.0, 600.0 + i, 1800.0 + i, i);
    j.urgency = i % 2 == 0 ? Urgency::High : Urgency::Low;
    j.status = 1;
    jobs.push_back(j);
  }
  std::ostringstream out;
  write(out, jobs, WriteOptions{.include_deadlines = true, .header = {}});

  std::istringstream batch_in(out.str());
  const auto batch = read(batch_in);

  std::istringstream stream_in(out.str());
  SwfStream stream(stream_in);
  std::vector<Job> streamed;
  Job job;
  while (stream.next(job)) streamed.push_back(job);

  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].id, batch[i].id);
    EXPECT_DOUBLE_EQ(streamed[i].submit_time, batch[i].submit_time);
    EXPECT_DOUBLE_EQ(streamed[i].actual_runtime, batch[i].actual_runtime);
    EXPECT_DOUBLE_EQ(streamed[i].user_estimate, batch[i].user_estimate);
    EXPECT_DOUBLE_EQ(streamed[i].deadline, batch[i].deadline);
    EXPECT_EQ(streamed[i].urgency, batch[i].urgency);
    EXPECT_EQ(streamed[i].num_procs, batch[i].num_procs);
  }
  EXPECT_EQ(stream.jobs_returned(), batch.size());
  EXPECT_EQ(stream.jobs_skipped(), 0u);
  // Interleaved notes are consumed as their jobs arrive — nothing pends.
  EXPECT_EQ(stream.pending_notes(), 0u);
}

TEST(SwfStreamTest, TruncatedLineThrowsWithLineNumber) {
  std::istringstream in(std::string(kLine1) + "2 200 0\n");
  SwfStream stream(in);
  Job job;
  ASSERT_TRUE(stream.next(job));
  try {
    (void)stream.next(job);
    FAIL() << "expected ParseError for the truncated line";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST(SwfStreamTest, BadNumericFieldThrows) {
  std::istringstream in("1 abc 5 3600 16 -1 -1 16 7200 -1 1 3 4 -1 2 -1 -1 -1\n");
  SwfStream stream(in);
  Job job;
  EXPECT_THROW((void)stream.next(job), ParseError);
}

TEST(SwfStreamTest, NonMonotoneSubmitThrowsActionably) {
  std::istringstream in(std::string(kLine2) + kLine1);  // 200 then 100
  SwfStream stream(in);
  Job job;
  ASSERT_TRUE(stream.next(job));
  EXPECT_EQ(job.id, 2);
  try {
    (void)stream.next(job);
    FAIL() << "expected ParseError for the out-of-order job";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("submit-ordered"), std::string::npos) << what;
    EXPECT_NE(what.find("require_monotone"), std::string::npos) << what;
  }
}

TEST(SwfStreamTest, NonMonotoneAcceptedWhenRelaxed) {
  std::istringstream in(std::string(kLine2) + kLine1);
  SwfStream stream(in, StreamOptions{.require_monotone = false});
  Job job;
  ASSERT_TRUE(stream.next(job));
  ASSERT_TRUE(stream.next(job));
  EXPECT_EQ(job.id, 1);
  EXPECT_FALSE(stream.next(job));
}

TEST(SwfStreamTest, CommentsBlanksAndCrLfAreTolerated) {
  std::istringstream in("; header comment\n\n  \t\n" + std::string(kLine1) +
                        "; trailing comment\r\n");
  SwfStream stream(in);
  Job job;
  ASSERT_TRUE(stream.next(job));
  EXPECT_EQ(job.id, 1);
  EXPECT_FALSE(stream.next(job));
  EXPECT_EQ(stream.line_no(), 5);
}

TEST(SwfStreamTest, SkipsInvalidJobsAndCounts) {
  std::istringstream in(
      "1 100 5 -1 16 -1 -1 16 7200 -1 1 3 4 -1 2 -1 -1 -1\n"  // no runtime
      + std::string(kLine2));
  SwfStream stream(in);
  Job job;
  ASSERT_TRUE(stream.next(job));
  EXPECT_EQ(job.id, 2);
  EXPECT_FALSE(stream.next(job));
  EXPECT_EQ(stream.jobs_returned(), 1u);
  EXPECT_EQ(stream.jobs_skipped(), 1u);
}

TEST(SwfStreamTest, RebasesSubmitTimesLikeBatch) {
  std::istringstream in(std::string(kLine1) + kLine2);
  SwfStream stream(in);
  Job job;
  ASSERT_TRUE(stream.next(job));
  EXPECT_DOUBLE_EQ(job.submit_time, 0.0);
  ASSERT_TRUE(stream.next(job));
  EXPECT_DOUBLE_EQ(job.submit_time, 100.0);
}

TEST(SwfStreamTest, HeaderOnlyNotesStayPendingUntilMatched) {
  // Legacy layout: all notes up front. They pend until their jobs stream by.
  std::istringstream in(";librisk-deadline: 1 7200 high\n"
                        ";librisk-deadline: 2 3600 low\n" +
                        std::string(kLine1) + kLine2);
  SwfStream stream(in);
  Job job;
  ASSERT_TRUE(stream.next(job));
  EXPECT_DOUBLE_EQ(job.deadline, 7200.0);
  EXPECT_EQ(job.urgency, Urgency::High);
  EXPECT_EQ(stream.pending_notes(), 1u);
  ASSERT_TRUE(stream.next(job));
  EXPECT_DOUBLE_EQ(job.deadline, 3600.0);
  EXPECT_EQ(stream.pending_notes(), 0u);
}

TEST(SwfStreamTest, MissingFileThrows) {
  EXPECT_THROW(SwfStream("/nonexistent/trace.swf"), ParseError);
}

TEST(SwfStreamTest, EmptyInputReturnsNothing) {
  std::istringstream in("");
  SwfStream stream(in);
  Job job;
  EXPECT_FALSE(stream.next(job));
  EXPECT_EQ(stream.jobs_returned(), 0u);
}

TEST(SwfWriteFile, RoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/librisk_test.swf";
  const std::vector<Job> jobs{librisk::testing::make_job(1, 0.0, 600.0, 1200.0, 4)};
  write_file(path, jobs);
  const auto parsed = read_file(path);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].num_procs, 4);
}

}  // namespace
}  // namespace librisk::workload::swf
