// Decision provenance: the ExplainRecorder's recording protocol, its
// retention filters, and the tentpole guarantee — attaching provenance
// never changes a decision. The byte-identity test runs every policy over
// many seeds twice, with and without the recorder, and holds the .lrt
// decision traces (and the per-job outcomes) exactly equal.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/counterfactual.hpp"
#include "exp/scenario.hpp"
#include "obs/explain.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace librisk {
namespace {

exp::Scenario small_scenario(core::Policy policy, std::uint64_t seed) {
  exp::Scenario s;
  s.workload.trace.job_count = 200;
  s.nodes = 32;
  s.policy = policy;
  s.seed = seed;
  return s;
}

/// .lrt bytes of one run, optionally with an ExplainRecorder attached.
std::string record_lrt(core::Policy policy, std::uint64_t seed,
                       obs::ExplainRecorder* explain) {
  exp::Scenario s = small_scenario(policy, seed);
  std::ostringstream os;
  trace::BinarySink sink(os, {std::string(core::to_string(policy)), seed});
  trace::Recorder recorder(sink);
  s.options.hooks.trace = &recorder;
  s.options.hooks.explain = explain;
  (void)exp::run_scenario(s);
  sink.close();
  return os.str();
}

// ---- recording protocol ----

TEST(ExplainRecorder, RecordsAcceptAndRejectWithNodes) {
  obs::ExplainRecorder rec;
  rec.begin(10.0, 1, 2, 100.0, 50.0);
  rec.node({0, true, trace::RejectionReason::None, 0.0, 0.4, 0.6});
  rec.node({1, false, trace::RejectionReason::RiskSigma, 3.0, 0.9, -3.0});
  rec.node({2, true, trace::RejectionReason::None, 0.0, 0.5, 0.5});
  rec.finish_accept(0, 0.6, 2);

  rec.begin(20.0, 2, 1, 10.0, 50.0);
  rec.node({0, false, trace::RejectionReason::RiskSigma, 2.0, 0.8, -2.0});
  rec.finish_reject(trace::RejectionReason::RiskSigma, 0, -2.0);

  ASSERT_EQ(rec.decisions().size(), 2u);
  const obs::DecisionExplain& accept = rec.decisions()[0];
  EXPECT_TRUE(accept.accepted);
  EXPECT_EQ(accept.job_id, 1);
  EXPECT_EQ(accept.chosen_node, 0);
  EXPECT_EQ(accept.suitable, 2);
  EXPECT_EQ(accept.margin, 0.6);
  ASSERT_EQ(accept.nodes.size(), 3u);
  EXPECT_EQ(accept.nodes[1].test, trace::RejectionReason::RiskSigma);
  EXPECT_EQ(obs::required_improvement(accept), 0.0);

  const obs::DecisionExplain& reject = rec.decisions()[1];
  EXPECT_FALSE(reject.accepted);
  EXPECT_EQ(reject.reason, trace::RejectionReason::RiskSigma);
  EXPECT_EQ(reject.margin, -2.0);
  EXPECT_EQ(obs::required_improvement(reject), 2.0);

  EXPECT_EQ(rec.find(2), &reject);
  EXPECT_EQ(rec.find(99), nullptr);
  EXPECT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);

  // Sigma extremes fold every evaluation, suitable or not.
  EXPECT_EQ(rec.sigma_extremes().passes, 2u);
  EXPECT_EQ(rec.sigma_extremes().fails, 2u);
  EXPECT_EQ(rec.sigma_extremes().pass_max, 0.0);
  EXPECT_EQ(rec.sigma_extremes().fail_min, 2.0);

  const std::string accept_text = obs::describe(accept);
  EXPECT_NE(accept_text.find("ACCEPTED"), std::string::npos);
  const std::string reject_text = obs::describe(reject);
  EXPECT_NE(reject_text.find("REJECTED"), std::string::npos);
  EXPECT_NE(reject_text.find("risk_sigma"), std::string::npos);

  rec.clear();
  EXPECT_TRUE(rec.decisions().empty());
  EXPECT_EQ(rec.sigma_extremes().passes, 0u);
}

TEST(ExplainRecorder, CapacityRingDropsOldest) {
  obs::ExplainRecorder rec(obs::ExplainConfig{.capacity = 2});
  for (std::int64_t id = 1; id <= 5; ++id) {
    rec.begin(static_cast<double>(id), id, 1, 1.0, 1.0);
    rec.finish_reject(trace::RejectionReason::NoSuitableNode, 0, 0.0);
  }
  ASSERT_EQ(rec.decisions().size(), 2u);
  EXPECT_EQ(rec.decisions()[0].job_id, 4);
  EXPECT_EQ(rec.decisions()[1].job_id, 5);
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 3u);
}

TEST(ExplainRecorder, FiltersRetainButExtremesSeeEverything) {
  obs::ExplainConfig config;
  config.only_job = 2;
  config.only_rejections = true;
  obs::ExplainRecorder rec(config);

  rec.begin(1.0, 1, 1, 1.0, 1.0);  // wrong job
  rec.node({0, false, trace::RejectionReason::RiskSigma, 5.0, 0.5, -5.0});
  rec.finish_reject(trace::RejectionReason::RiskSigma, 0, -5.0);
  rec.begin(2.0, 2, 1, 1.0, 1.0);  // right job, accepted -> filtered
  rec.node({0, true, trace::RejectionReason::None, 0.25, 0.5, 0.75});
  rec.finish_accept(0, 0.75, 1);
  rec.begin(3.0, 2, 1, 1.0, 1.0);  // right job, rejected -> retained
  rec.finish_reject(trace::RejectionReason::RiskSigma, 0, -1.0);

  ASSERT_EQ(rec.decisions().size(), 1u);
  EXPECT_EQ(rec.decisions()[0].job_id, 2);
  EXPECT_FALSE(rec.decisions()[0].accepted);
  // The filters drop retention only — the extremes saw both sigmas.
  EXPECT_EQ(rec.sigma_extremes().fail_min, 5.0);
  EXPECT_EQ(rec.sigma_extremes().pass_max, 0.25);
}

TEST(ExplainRecorder, KeepNodesOffDropsNodeVectors) {
  obs::ExplainRecorder rec(obs::ExplainConfig{.keep_nodes = false});
  rec.begin(1.0, 1, 1, 1.0, 1.0);
  rec.node({0, true, trace::RejectionReason::None, 0.0, 0.5, 0.5});
  rec.finish_accept(0, 0.5, 1);
  ASSERT_EQ(rec.decisions().size(), 1u);
  EXPECT_TRUE(rec.decisions()[0].nodes.empty());
  EXPECT_EQ(rec.sigma_extremes().passes, 1u);  // still folded
}

// ---- the tentpole guarantee: provenance never changes a decision ----

TEST(ExplainProvenance, TracesByteIdenticalAcrossPoliciesAndSeeds) {
  for (const core::Policy policy : core::all_policies()) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const std::string plain = record_lrt(policy, seed, nullptr);
      obs::ExplainRecorder rec;
      const std::string explained = record_lrt(policy, seed, &rec);
      ASSERT_EQ(plain, explained)
          << core::to_string(policy) << " seed " << seed;
      ASSERT_FALSE(plain.empty()) << core::to_string(policy);
    }
  }
}

TEST(ExplainProvenance, OutcomesAndSummaryUnchanged) {
  for (const core::Policy policy :
       {core::Policy::LibraRisk, core::Policy::Libra, core::Policy::Edf}) {
    const exp::ScenarioResult plain =
        exp::run_scenario(small_scenario(policy, 3));
    obs::ExplainRecorder rec;
    const exp::ScenarioResult explained =
        exp::run_with_margins(small_scenario(policy, 3), rec);

    EXPECT_EQ(plain.summary.accepted, explained.summary.accepted);
    EXPECT_EQ(plain.summary.fulfilled_pct, explained.summary.fulfilled_pct);
    EXPECT_EQ(plain.summary.avg_slowdown_fulfilled,
              explained.summary.avg_slowdown_fulfilled);
    ASSERT_EQ(plain.outcomes.size(), explained.outcomes.size());
    for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
      ASSERT_EQ(plain.outcomes[i].fate, explained.outcomes[i].fate);
      ASSERT_EQ(plain.outcomes[i].delay, explained.outcomes[i].delay);
    }
    EXPECT_GT(rec.recorded(), 0u) << core::to_string(policy);
  }
}

TEST(ExplainProvenance, RecordedDecisionsMatchOutcomes) {
  exp::Scenario s = small_scenario(core::Policy::LibraRisk, 7);
  obs::ExplainRecorder rec(obs::ExplainConfig{.capacity = 100000});
  const exp::ScenarioResult r = exp::run_with_margins(s, rec);

  ASSERT_EQ(rec.decisions().size(), r.outcomes.size());
  for (const obs::DecisionExplain& d : rec.decisions()) {
    const exp::JobOutcome* outcome = nullptr;
    for (const exp::JobOutcome& o : r.outcomes)
      if (o.id == d.job_id) outcome = &o;
    ASSERT_NE(outcome, nullptr) << "job " << d.job_id;
    const bool outcome_rejected =
        outcome->fate == metrics::JobFate::RejectedAtSubmit ||
        outcome->fate == metrics::JobFate::RejectedAtDispatch;
    EXPECT_EQ(d.accepted, !outcome_rejected) << "job " << d.job_id;
    if (!d.accepted) {
      EXPECT_EQ(d.reason, outcome->reason) << "job " << d.job_id;
      EXPECT_LE(d.margin, 0.0) << "job " << d.job_id;
    } else {
      EXPECT_EQ(d.chosen_node, outcome->node) << "job " << d.job_id;
      EXPECT_EQ(d.margin, outcome->margin) << "job " << d.job_id;
    }
  }
}

// ---- near-miss counters ----

TEST(ExplainNearMiss, CountersAreConsistent) {
  for (const core::Policy policy :
       {core::Policy::LibraRisk, core::Policy::Libra, core::Policy::Edf}) {
    const exp::ScenarioResult r =
        exp::run_scenario(small_scenario(policy, 11));
    const core::AdmissionStats& adm = r.admission;
    // 10% includes 5% by construction.
    EXPECT_GE(adm.near_miss_share_10, adm.near_miss_share_5);
    EXPECT_GE(adm.near_miss_sigma_10, adm.near_miss_sigma_5);
    EXPECT_GE(adm.near_miss_deadline_10, adm.near_miss_deadline_5);
    // Near-misses are rejections, so they cannot exceed the rejection count.
    EXPECT_LE(adm.near_miss_10(), adm.rejections) << core::to_string(policy);
  }
}

TEST(ExplainNearMiss, ExactWhenMarginsObserved) {
  // With explain attached the batch spread bound is disabled, so the sigma
  // near-miss counters are exact; detached they may undercount, never over.
  exp::Scenario s = small_scenario(core::Policy::LibraRisk, 11);
  const exp::ScenarioResult detached = exp::run_scenario(s);
  obs::ExplainRecorder rec(obs::ExplainConfig{.capacity = 0});
  const exp::ScenarioResult attached = exp::run_with_margins(s, rec);

  EXPECT_LE(detached.admission.near_miss_sigma_5,
            attached.admission.near_miss_sigma_5);
  EXPECT_LE(detached.admission.near_miss_sigma_10,
            attached.admission.near_miss_sigma_10);
  // Decisions are identical either way, so the rejection totals agree.
  EXPECT_EQ(detached.admission.rejections, attached.admission.rejections);
}

}  // namespace
}  // namespace librisk
