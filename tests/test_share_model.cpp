#include "cluster/share_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.hpp"

namespace librisk::cluster {
namespace {

TEST(RequiredShare, PaperEquationOne) {
  // share = remaining_runtime / remaining_deadline (Eq. 1).
  EXPECT_DOUBLE_EQ(required_share(50.0, 100.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(required_share(100.0, 100.0, 1.0), 1.0);
}

TEST(RequiredShare, NotCappedAtOne) {
  // A value above 1 signals an infeasible job — the admission tests must
  // see it (DESIGN.md: executors cap at allocation time instead).
  EXPECT_DOUBLE_EQ(required_share(300.0, 100.0, 1.0), 3.0);
}

TEST(RequiredShare, ZeroWorkNeedsNothing) {
  EXPECT_DOUBLE_EQ(required_share(0.0, 100.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(required_share(-5.0, 100.0, 1.0), 0.0);
}

TEST(RequiredShare, DeadlineClampGuardsPastDeadlines) {
  // Remaining deadline at/past zero clamps to the configured floor.
  EXPECT_DOUBLE_EQ(required_share(10.0, 0.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(required_share(10.0, -50.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(required_share(10.0, -50.0, 2.0), 5.0);
}

TEST(RequiredShare, FasterNodesNeedSmallerShares) {
  EXPECT_DOUBLE_EQ(required_share(50.0, 100.0, 1.0, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(required_share(50.0, 100.0, 1.0, 0.5), 1.0);
}

TEST(TotalShare, PaperEquationTwo) {
  const std::vector<double> shares{0.25, 0.5, 0.1};
  EXPECT_NEAR(total_share(shares), 0.85, 1e-12);
  EXPECT_DOUBLE_EQ(total_share({}), 0.0);
}

TEST(AllocateCapacity, WorkConservingUsesWholeNode) {
  const std::vector<double> demands{0.2, 0.3};
  const auto alloc = allocate_capacity(demands, /*work_conserving=*/true);
  ASSERT_EQ(alloc.size(), 2u);
  EXPECT_NEAR(alloc[0] + alloc[1], 1.0, 1e-12);
  EXPECT_NEAR(alloc[0] / alloc[1], 2.0 / 3.0, 1e-12);
}

TEST(AllocateCapacity, GuaranteedSharesWhenNotConserving) {
  const std::vector<double> demands{0.2, 0.3};
  const auto alloc = allocate_capacity(demands, /*work_conserving=*/false);
  EXPECT_DOUBLE_EQ(alloc[0], 0.2);
  EXPECT_DOUBLE_EQ(alloc[1], 0.3);
}

TEST(AllocateCapacity, OverloadScalesProportionally) {
  const std::vector<double> demands{1.0, 0.5};
  for (const bool wc : {true, false}) {
    const auto alloc = allocate_capacity(demands, wc);
    EXPECT_NEAR(alloc[0], 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(alloc[1], 1.0 / 3.0, 1e-12);
  }
}

TEST(AllocateCapacity, ZeroDemandsGetNothing) {
  const std::vector<double> demands{0.0, 0.4};
  const auto alloc = allocate_capacity(demands, true);
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
  EXPECT_DOUBLE_EQ(alloc[1], 1.0);
  const auto none = allocate_capacity(std::vector<double>{0.0, 0.0}, true);
  EXPECT_DOUBLE_EQ(none[0], 0.0);
  EXPECT_DOUBLE_EQ(none[1], 0.0);
}

TEST(AllocateOne, MatchesVectorVersion) {
  const std::vector<double> demands{0.25, 0.5, 0.75};
  for (const bool wc : {true, false}) {
    const auto full = allocate_capacity(demands, wc);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const double other = total_share(demands) - demands[i];
      EXPECT_NEAR(allocate_one(demands[i], other, wc), full[i], 1e-12) << i;
    }
  }
}

TEST(AllocateOne, HandlesNegativeResidue) {
  // Floating-point subtraction can leave a tiny negative "other" total.
  EXPECT_NEAR(allocate_one(0.5, -1e-15, false), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(allocate_one(0.0, 0.3, true), 0.0);
}

TEST(ShareModelConfig, Validation) {
  ShareModelConfig c;
  EXPECT_NO_THROW(c.validate());
  c.deadline_clamp = 0.0;
  EXPECT_THROW(c.validate(), CheckError);
  c = ShareModelConfig{};
  c.overrun_bump_fraction = 0.0;
  EXPECT_THROW(c.validate(), CheckError);
  c.overrun_bump_fraction = 1.5;
  EXPECT_THROW(c.validate(), CheckError);
}

}  // namespace
}  // namespace librisk::cluster
