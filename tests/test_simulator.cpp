#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.hpp"

namespace librisk::sim {
namespace {

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.run(), 0u);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<double> observed;
  (void)s.at(10.0, EventPriority::Internal, [&] { observed.push_back(s.now()); });
  (void)s.at(5.0, EventPriority::Internal, [&] { observed.push_back(s.now()); });
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(observed, (std::vector<double>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  double fired_at = -1.0;
  (void)s.at(100.0, EventPriority::Internal, [&] {
    (void)s.after(50.0, EventPriority::Internal, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(Simulator, PastSchedulingRejectedBeyondEpsilon) {
  Simulator s;
  (void)s.at(10.0, EventPriority::Internal, [&] {
    EXPECT_THROW((void)s.at(9.0, EventPriority::Internal, [] {}), CheckError);
    EXPECT_THROW((void)s.after(-1.0, EventPriority::Internal, [] {}), CheckError);
  });
  s.run();
}

TEST(Simulator, TinyNegativeDelayClampsToNow) {
  Simulator s;
  double fired_at = -1.0;
  (void)s.at(10.0, EventPriority::Internal, [&] {
    (void)s.after(-1e-9, EventPriority::Internal, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator s;
  int fired = 0;
  (void)s.at(1.0, EventPriority::Internal, [&] {
    ++fired;
    s.stop();
  });
  (void)s.at(2.0, EventPriority::Internal, [&] { ++fired; });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.idle());
  EXPECT_EQ(s.run(), 1u);  // resumes with the remaining event
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilHonoursInclusiveHorizon) {
  Simulator s;
  std::vector<double> fired;
  for (const double t : {1.0, 2.0, 3.0, 4.0})
    (void)s.at(t, EventPriority::Internal, [&fired, &s] { fired.push_back(s.now()); });
  EXPECT_EQ(s.run_until(2.0), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.run(), 2u);
}

TEST(Simulator, RunBeforeLeavesHorizonEventsPending) {
  Simulator s;
  std::vector<double> fired;
  for (const double t : {1.0, 2.0, 3.0, 4.0})
    (void)s.at(t, EventPriority::Internal, [&fired, &s] { fired.push_back(s.now()); });
  EXPECT_EQ(s.run_before(2.0), 1u);  // strictly before: 2.0 stays pending
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
  EXPECT_EQ(s.run(), 3u);
}

// The streaming-driver contract (core::AdmissionEngine::advance_to): an
// arrival scheduled *after* run_before(t) still sorts behind an equal-time
// Completion and ahead of an equal-time Control event — the same order the
// batch driver gets when everything is scheduled up front.
TEST(Simulator, RunBeforeThenScheduleKeepsEqualTimePriorityOrder) {
  Simulator s;
  std::vector<int> order;
  (void)s.at(5.0, EventPriority::Control, [&] { order.push_back(3); });
  (void)s.at(5.0, EventPriority::Completion, [&] { order.push_back(1); });
  EXPECT_EQ(s.run_before(5.0), 0u);
  (void)s.at(5.0, EventPriority::Arrival, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelledEventsNeverFire) {
  Simulator s;
  bool fired = false;
  const EventId id = s.at(5.0, EventPriority::Internal, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SelfSchedulingChainTerminates) {
  Simulator s;
  int remaining = 1000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) (void)s.after(1.0, EventPriority::Internal, tick);
  };
  (void)s.after(1.0, EventPriority::Internal, tick);
  EXPECT_EQ(s.run(), 1000u);
  EXPECT_DOUBLE_EQ(s.now(), 1000.0);
  EXPECT_EQ(s.events_processed(), 1000u);
}

TEST(Simulator, SameTimePriorityOrderAcrossKinds) {
  Simulator s;
  std::vector<int> order;
  (void)s.at(1.0, EventPriority::Arrival, [&] { order.push_back(1); });
  (void)s.at(1.0, EventPriority::Completion, [&] { order.push_back(0); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace librisk::sim
