#include "metrics/collector.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/check.hpp"

namespace librisk::metrics {
namespace {

using librisk::testing::JobBuilder;
using librisk::testing::make_job;

TEST(Collector, LifecycleFulfilled) {
  const Job job = make_job(1, 100.0, 50.0, 200.0);
  Collector c;
  c.record_submitted(job, 100.0);
  EXPECT_FALSE(c.all_resolved());
  c.record_started(job, 110.0, 50.0);
  c.record_completed(job, 180.0);
  EXPECT_TRUE(c.all_resolved());

  const JobRecord& r = c.record(1);
  EXPECT_EQ(r.fate, JobFate::FulfilledInTime);
  EXPECT_DOUBLE_EQ(r.response_time(), 80.0);
  EXPECT_DOUBLE_EQ(r.slowdown(), 80.0 / 50.0);
  EXPECT_DOUBLE_EQ(r.delay, 0.0);
}

TEST(Collector, LifecycleLate) {
  const Job job = make_job(1, 0.0, 50.0, 100.0);
  Collector c;
  c.record_submitted(job, 0.0);
  c.record_started(job, 0.0, 50.0);
  c.record_completed(job, 160.0);
  const JobRecord& r = c.record(1);
  EXPECT_EQ(r.fate, JobFate::CompletedLate);
  EXPECT_DOUBLE_EQ(r.delay, 60.0);
}

TEST(Collector, SubSecondDelayCountsAsFulfilled) {
  // Pacing finishes jobs within floating-point residue of the deadline.
  const Job job = make_job(1, 0.0, 50.0, 100.0);
  Collector c;
  c.record_submitted(job, 0.0);
  c.record_started(job, 0.0, 50.0);
  c.record_completed(job, 100.0 + 0.4 * kDelayTolerance);
  EXPECT_EQ(c.record(1).fate, JobFate::FulfilledInTime);
  EXPECT_DOUBLE_EQ(c.record(1).delay, 0.0);
}

TEST(Collector, Rejections) {
  const Job a = make_job(1, 0.0, 50.0, 100.0);
  const Job b = make_job(2, 5.0, 50.0, 100.0);
  Collector c;
  c.record_submitted(a, 0.0);
  c.record_submitted(b, 5.0);
  c.record_rejected(a, 0.0, /*at_dispatch=*/false);
  c.record_rejected(b, 30.0, /*at_dispatch=*/true);
  EXPECT_EQ(c.record(1).fate, JobFate::RejectedAtSubmit);
  EXPECT_EQ(c.record(2).fate, JobFate::RejectedAtDispatch);
  EXPECT_TRUE(c.all_resolved());
}

TEST(Collector, ProtocolViolationsThrow) {
  const Job job = make_job(1, 0.0, 50.0, 100.0);
  Collector c;
  EXPECT_THROW(c.record_started(job, 0.0, 50.0), CheckError);  // not submitted
  c.record_submitted(job, 0.0);
  EXPECT_THROW(c.record_submitted(job, 0.0), CheckError);  // twice
  EXPECT_THROW(c.record_completed(job, 10.0), CheckError);  // not started
  c.record_started(job, 0.0, 50.0);
  EXPECT_THROW(c.record_started(job, 1.0, 50.0), CheckError);  // started twice
  EXPECT_THROW(c.record_rejected(job, 1.0, false), CheckError);  // after start
  c.record_completed(job, 60.0);
  EXPECT_THROW(c.record_completed(job, 61.0), CheckError);  // completed twice
  EXPECT_THROW((void)c.record(99), CheckError);
}

TEST(Collector, SummaryPaperMetrics) {
  // 4 submitted: 1 fulfilled, 1 late, 1 rejected at submit, 1 at dispatch.
  const Job j1 = make_job(1, 0.0, 100.0, 300.0);
  const Job j2 = make_job(2, 0.0, 100.0, 150.0);
  const Job j3 = make_job(3, 0.0, 100.0, 200.0);
  const Job j4 = make_job(4, 0.0, 100.0, 200.0);
  Collector c;
  for (const Job* j : {&j1, &j2, &j3, &j4}) c.record_submitted(*j, j->submit_time);
  c.record_started(j1, 0.0, 100.0);
  c.record_completed(j1, 250.0);  // fulfilled, slowdown 2.5
  c.record_started(j2, 0.0, 100.0);
  c.record_completed(j2, 200.0);  // late by 50, slowdown 2.0
  c.record_rejected(j3, 0.0, false);
  c.record_rejected(j4, 10.0, true);

  const RunSummary s = c.summarize();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.fulfilled, 1u);
  EXPECT_EQ(s.completed_late, 1u);
  EXPECT_EQ(s.rejected_at_submit, 1u);
  EXPECT_EQ(s.rejected_at_dispatch, 1u);
  // Metric (i): fulfilled out of *submitted*.
  EXPECT_DOUBLE_EQ(s.fulfilled_pct, 25.0);
  // Metric (ii): slowdown over fulfilled jobs only.
  EXPECT_DOUBLE_EQ(s.avg_slowdown_fulfilled, 2.5);
  EXPECT_DOUBLE_EQ(s.avg_slowdown_completed, 2.25);
  EXPECT_DOUBLE_EQ(s.avg_delay_late, 50.0);
  EXPECT_DOUBLE_EQ(s.makespan, 250.0);
}

TEST(Collector, PerUrgencyBreakdown) {
  const Job high = JobBuilder(1).set_runtime(10.0).deadline(100.0)
                       .urgency(workload::Urgency::High).build();
  const Job low = JobBuilder(2).set_runtime(10.0).deadline(100.0)
                      .urgency(workload::Urgency::Low).build();
  Collector c;
  c.record_submitted(high, 0.0);
  c.record_submitted(low, 0.0);
  c.record_started(high, 0.0, 10.0);
  c.record_completed(high, 50.0);
  c.record_rejected(low, 0.0, false);
  const RunSummary s = c.summarize();
  EXPECT_DOUBLE_EQ(s.fulfilled_pct_high_urgency, 100.0);
  EXPECT_DOUBLE_EQ(s.fulfilled_pct_low_urgency, 0.0);
}

TEST(Collector, EmptySummary) {
  const RunSummary s = Collector{}.summarize();
  EXPECT_EQ(s.submitted, 0u);
  EXPECT_DOUBLE_EQ(s.fulfilled_pct, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_slowdown_fulfilled, 0.0);
}

TEST(Collector, TailMetrics) {
  // Five fulfilled jobs with slowdowns 1..5 and one late job, delay 60.
  std::vector<Job> jobs;
  Collector c;
  for (int i = 1; i <= 5; ++i) {
    jobs.push_back(make_job(i, 0.0, 100.0, 1000.0));
  }
  jobs.push_back(make_job(6, 0.0, 100.0, 140.0));
  for (const Job& j : jobs) c.record_submitted(j, 0.0);
  for (int i = 1; i <= 5; ++i) {
    c.record_started(jobs[i - 1], 0.0, 100.0);
    c.record_completed(jobs[i - 1], 100.0 * i);  // slowdown i
  }
  c.record_started(jobs[5], 0.0, 100.0);
  c.record_completed(jobs[5], 200.0);  // deadline 140 -> delay 60

  const RunSummary s = c.summarize();
  EXPECT_DOUBLE_EQ(s.p95_slowdown_fulfilled, 4.8);  // interpolated over 1..5
  EXPECT_DOUBLE_EQ(s.max_delay, 60.0);
}

TEST(Collector, TailMetricsZeroWhenNoCompletions) {
  const Job j = make_job(1, 0.0, 100.0, 1000.0);
  Collector c;
  c.record_submitted(j, 0.0);
  c.record_rejected(j, 0.0, false);
  const RunSummary s = c.summarize();
  EXPECT_DOUBLE_EQ(s.p95_slowdown_fulfilled, 0.0);
  EXPECT_DOUBLE_EQ(s.max_delay, 0.0);
}

TEST(Collector, MeasurementWindowFiltersBySubmitTime) {
  // Jobs at t=0, 100, 200; window [50, 150] keeps only the middle one.
  std::vector<Job> jobs{make_job(1, 0.0, 10.0, 1000.0),
                        make_job(2, 100.0, 10.0, 1000.0),
                        make_job(3, 200.0, 10.0, 1000.0)};
  Collector c;
  for (const Job& j : jobs) {
    c.record_submitted(j, j.submit_time);
    c.record_started(j, j.submit_time, 10.0);
    c.record_completed(j, j.submit_time + 10.0);
  }
  const RunSummary full = c.summarize();
  EXPECT_EQ(full.submitted, 3u);
  const RunSummary windowed =
      c.summarize(Collector::MeasurementWindow{.begin = 50.0, .end = 150.0});
  EXPECT_EQ(windowed.submitted, 1u);
  EXPECT_EQ(windowed.fulfilled, 1u);
  EXPECT_DOUBLE_EQ(windowed.fulfilled_pct, 100.0);
}

TEST(JobFateNames, AllDistinct) {
  EXPECT_STREQ(to_string(JobFate::Pending), "pending");
  EXPECT_STREQ(to_string(JobFate::RejectedAtSubmit), "rejected-at-submit");
  EXPECT_STREQ(to_string(JobFate::RejectedAtDispatch), "rejected-at-dispatch");
  EXPECT_STREQ(to_string(JobFate::FulfilledInTime), "fulfilled");
  EXPECT_STREQ(to_string(JobFate::CompletedLate), "completed-late");
}

}  // namespace
}  // namespace librisk::metrics
