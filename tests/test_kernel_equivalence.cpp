// Differential test for the incremental execution kernel: the dirty-set
// settle with anchored lazy work and the indexed boundary heap
// (ShareModelConfig::legacy_kernel = false) must make byte-identical
// decisions to the retained whole-resident-set recompute
// (settle_and_reschedule_legacy). The oracle is the strongest one the repo
// has: the PR 2 decision-audit trace — every admission verdict, node
// choice, overrun bump, kill and completion timestamp lands in the .lrt
// byte stream, so EXPECT_EQ on the two strings is `librisk-sim trace diff`
// with exit 0.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/scenario.hpp"
#include "trace/diff.hpp"
#include "trace/reader.hpp"
#include "trace/recorder.hpp"
#include "trace/sink.hpp"

namespace librisk {
namespace {

exp::Scenario small_scenario(core::Policy policy, std::uint64_t seed) {
  exp::Scenario s;
  s.workload.trace.job_count = 300;
  s.nodes = 32;
  s.policy = policy;
  s.seed = seed;
  return s;
}

/// Runs `scenario` with the chosen kernel, streaming the decision trace
/// into an in-memory .lrt byte string.
struct TracedRun {
  std::string lrt;
  exp::ScenarioResult result;
};

TracedRun run_traced(exp::Scenario scenario, bool legacy_kernel) {
  scenario.options.share_model.legacy_kernel = legacy_kernel;
  std::ostringstream os;
  trace::BinarySink sink(
      os, {std::string(core::to_string(scenario.policy)), scenario.seed});
  trace::Recorder recorder(sink);
  scenario.options.hooks.trace = &recorder;
  TracedRun run;
  run.result = exp::run_scenario(scenario);
  sink.close();
  run.lrt = os.str();
  return run;
}

/// Bitwise equality of every scenario-level observable: any drift between
/// the kernels is a bug, so no tolerances anywhere.
void expect_identical(const exp::Scenario& scenario, const std::string& label) {
  SCOPED_TRACE(label);
  const TracedRun incremental = run_traced(scenario, false);
  const TracedRun legacy = run_traced(scenario, true);

  EXPECT_FALSE(incremental.lrt.empty());
  EXPECT_EQ(incremental.lrt, legacy.lrt) << "decision traces diverge";

  const metrics::RunSummary& a = incremental.result.summary;
  const metrics::RunSummary& b = legacy.result.summary;
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.fulfilled, b.fulfilled);
  EXPECT_EQ(a.completed_late, b.completed_late);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.avg_slowdown_fulfilled, b.avg_slowdown_fulfilled);
  EXPECT_EQ(a.avg_delay_late, b.avg_delay_late);
  EXPECT_EQ(a.max_delay, b.max_delay);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(incremental.result.events_processed, legacy.result.events_processed);

  ASSERT_EQ(incremental.result.outcomes.size(), legacy.result.outcomes.size());
  for (std::size_t i = 0; i < incremental.result.outcomes.size(); ++i) {
    const exp::JobOutcome& x = incremental.result.outcomes[i];
    const exp::JobOutcome& y = legacy.result.outcomes[i];
    ASSERT_EQ(x.id, y.id);
    EXPECT_EQ(x.fate, y.fate) << "job " << x.id;
    EXPECT_EQ(x.delay, y.delay) << "job " << x.id;
    EXPECT_EQ(x.slowdown, y.slowdown) << "job " << x.id;
  }
}

// Headline criterion: every factory policy, 10 seeds, byte-identical .lrt.
TEST(KernelEquivalence, EveryPolicyTenSeedsByteIdenticalTraces) {
  for (const core::Policy policy : core::all_policies()) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      expect_identical(small_scenario(policy, seed),
                       std::string(core::to_string(policy)) + " seed " +
                           std::to_string(seed));
    }
  }
}

// Estimate regimes: perfectly accurate estimates (inaccuracy 0, jobs
// complete before ever nearing their estimate) and full trace inaccuracy
// (100, the overrun-rich regime where expiry bumps dominate boundaries).
TEST(KernelEquivalence, BothEstimateRegimes) {
  for (const double inaccuracy : {0.0, 100.0}) {
    for (const core::Policy policy :
         {core::Policy::Libra, core::Policy::LibraRisk}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        exp::Scenario s = small_scenario(policy, seed);
        s.workload.inaccuracy_pct = inaccuracy;
        expect_identical(s, std::string(core::to_string(policy)) +
                                " inaccuracy " + std::to_string(inaccuracy) +
                                " seed " + std::to_string(seed));
      }
    }
  }
}

// Execution-model ablations: kill-at-estimate (removal instead of bump),
// larger overrun bumps, EqualShare (GridSim processor sharing) and strict
// non-work-conserving pacing (which forces the incremental kernel's global
// recompute fallback).
TEST(KernelEquivalence, KillOverrunAndModeAblations) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    {
      exp::Scenario s = small_scenario(core::Policy::LibraRisk, seed);
      s.options.share_model.kill_at_estimate = true;
      expect_identical(s, "kill_at_estimate seed " + std::to_string(seed));
    }
    {
      exp::Scenario s = small_scenario(core::Policy::LibraRisk, seed);
      s.options.share_model.overrun_bump_fraction = 0.5;
      expect_identical(s, "bump 0.5 seed " + std::to_string(seed));
    }
    {
      exp::Scenario s = small_scenario(core::Policy::LibraRisk, seed);
      s.options.share_model.mode = cluster::ExecutionMode::EqualShare;
      expect_identical(s, "EqualShare seed " + std::to_string(seed));
    }
    {
      exp::Scenario s = small_scenario(core::Policy::Libra, seed);
      s.options.share_model.work_conserving = false;
      expect_identical(s, "strict pacing seed " + std::to_string(seed));
    }
  }
}

// Heterogeneous ratings exercise per-node speed factors in demands, rates
// (gang minimum across unequal nodes) and boundary times.
TEST(KernelEquivalence, HeterogeneousCluster) {
  std::vector<double> ratings;
  for (int i = 0; i < 24; ++i)
    ratings.push_back(100.0 + 20.0 * static_cast<double>(i % 5));
  for (const core::Policy policy :
       {core::Policy::Libra, core::Policy::LibraRisk}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      exp::Scenario s = small_scenario(policy, seed);
      s.node_ratings = ratings;
      s.rating = 168.0;
      expect_identical(s, std::string(core::to_string(policy)) +
                              " hetero seed " + std::to_string(seed));
    }
  }
}

// The structured diff agrees with the byte comparison (and gives the
// first divergent event when it does not — kept here so a future failure
// points at the decision, not just at "strings differ").
TEST(KernelEquivalence, TraceDiffReportsIdentical) {
  const TracedRun incremental =
      run_traced(small_scenario(core::Policy::LibraRisk, 1), false);
  const TracedRun legacy =
      run_traced(small_scenario(core::Policy::LibraRisk, 1), true);
  std::istringstream a_in(incremental.lrt);
  std::istringstream b_in(legacy.lrt);
  const trace::TraceData a = trace::read_lrt(a_in);
  const trace::TraceData b = trace::read_lrt(b_in);
  const trace::Divergence d = trace::first_divergence(a, b);
  EXPECT_TRUE(d.identical()) << "first divergence at event index " << d.index;
  EXPECT_GT(a.events.size(), 100u);
}

// Kernel-effort counters: the incremental kernel must actually skip work
// (that is the point), while agreeing with the legacy kernel on how many
// settles happened. Exercised through the public ScenarioResult plumbing.
TEST(KernelEquivalence, IncrementalKernelSkipsWork) {
  const exp::Scenario s = small_scenario(core::Policy::LibraRisk, 3);
  const TracedRun incremental = run_traced(s, false);
  const TracedRun legacy = run_traced(s, true);
  const cluster::KernelStats& inc = incremental.result.kernel;
  const cluster::KernelStats& leg = legacy.result.kernel;
  EXPECT_EQ(inc.settles, leg.settles);
  EXPECT_GT(inc.settles, 0u);
  EXPECT_GT(inc.tasks_skipped, 0u);
  EXPECT_LT(inc.tasks_recomputed, leg.tasks_recomputed);
  EXPECT_EQ(leg.tasks_skipped, 0u);
  EXPECT_EQ(leg.global_recomputes, leg.settles);
  EXPECT_GT(inc.boundary_updates, 0u);
}

}  // namespace
}  // namespace librisk
