#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace librisk::metrics {
namespace {

RunSummary sample_summary() {
  RunSummary s;
  s.submitted = 100;
  s.accepted = 80;
  s.rejected_at_submit = 15;
  s.rejected_at_dispatch = 5;
  s.fulfilled = 70;
  s.completed_late = 10;
  s.fulfilled_pct = 70.0;
  s.avg_slowdown_fulfilled = 2.34;
  s.fulfilled_pct_high_urgency = 55.5;
  s.fulfilled_pct_low_urgency = 75.1;
  s.avg_delay_late = 1234.0;
  s.makespan = 86400.0 * 3;
  s.utilization = 0.62;
  return s;
}

TEST(PrintSummary, ContainsAllFields) {
  std::ostringstream out;
  print_summary(out, "LibraRisk", sample_summary());
  const std::string text = out.str();
  for (const char* needle :
       {"LibraRisk", "submitted", "100", "fulfilled %", "70.0", "2.34",
        "rejected at submit", "15", "utilization", "62.0", "3.00"})
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
}

TEST(PrintSummary, OmitsUtilizationWhenUnknown) {
  RunSummary s = sample_summary();
  s.utilization = 0.0;
  std::ostringstream out;
  print_summary(out, "x", s);
  EXPECT_EQ(out.str().find("utilization"), std::string::npos);
}

TEST(PrintComparison, OneRowPerPolicy) {
  std::ostringstream out;
  print_comparison(out, {{"EDF", sample_summary()}, {"Libra", sample_summary()}});
  const std::string text = out.str();
  EXPECT_NE(text.find("EDF"), std::string::npos);
  EXPECT_NE(text.find("Libra"), std::string::npos);
  EXPECT_NE(text.find("policy"), std::string::npos);
  // Rejected column merges both rejection kinds: 15 + 5 = 20.
  EXPECT_NE(text.find("20"), std::string::npos);
}

TEST(PrintComparison, EmptyInputJustHeader) {
  std::ostringstream out;
  print_comparison(out, {});
  EXPECT_NE(out.str().find("policy"), std::string::npos);
}

}  // namespace
}  // namespace librisk::metrics
