#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace librisk::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_THROW((void)q.next_time(), CheckError);
  EXPECT_THROW((void)q.pop(), CheckError);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  (void)q.schedule(3.0, EventPriority::Internal, [&] { fired.push_back(3); });
  (void)q.schedule(1.0, EventPriority::Internal, [&] { fired.push_back(1); });
  (void)q.schedule(2.0, EventPriority::Internal, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().handler();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimePriorityOrder) {
  EventQueue q;
  std::vector<int> fired;
  (void)q.schedule(5.0, EventPriority::Arrival, [&] { fired.push_back(2); });
  (void)q.schedule(5.0, EventPriority::Completion, [&] { fired.push_back(0); });
  (void)q.schedule(5.0, EventPriority::Internal, [&] { fired.push_back(1); });
  (void)q.schedule(5.0, EventPriority::Control, [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().handler();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EqualTimeAndPriorityFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    (void)q.schedule(1.0, EventPriority::Internal, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().handler();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, EventPriority::Internal, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelIsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, EventPriority::Internal, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(EventId{}));  // invalid id
}

TEST(EventQueue, CancelAfterFireIsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, EventPriority::Internal, [] {});
  q.pop().handler();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1.0, EventPriority::Internal, [] {});
  (void)q.schedule(2.0, EventPriority::Internal, [] {});
  (void)q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CountersTrackLifetime) {
  EventQueue q;
  const EventId a = q.schedule(1.0, EventPriority::Internal, [] {});
  (void)q.schedule(2.0, EventPriority::Internal, [] {});
  (void)q.cancel(a);
  EXPECT_EQ(q.scheduled_total(), 2u);
  EXPECT_EQ(q.cancelled_total(), 1u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsNullHandlerAndNanTime) {
  EventQueue q;
  EXPECT_THROW((void)q.schedule(1.0, EventPriority::Internal, nullptr), CheckError);
  EXPECT_THROW(
      (void)q.schedule(std::numeric_limits<double>::quiet_NaN(),
                       EventPriority::Internal, [] {}),
      CheckError);
}

TEST(EventQueue, RandomizedOrderingProperty) {
  rng::Stream stream(42);
  EventQueue q;
  for (int i = 0; i < 2000; ++i)
    (void)q.schedule(stream.uniform(0.0, 1e6), EventPriority::Internal, [] {});
  double last = -1.0;
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GE(popped.time, last);
    last = popped.time;
  }
}

TEST(EventQueue, RandomizedCancellationProperty) {
  rng::Stream stream(43);
  EventQueue q;
  std::vector<EventId> ids;
  int expected = 0;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(q.schedule(stream.uniform(0.0, 100.0), EventPriority::Internal, [] {}));
  for (const EventId id : ids) {
    if (stream.bernoulli(0.5)) (void)q.cancel(id);
    else ++expected;
  }
  int fired = 0;
  while (!q.empty()) {
    (void)q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, expected);
}

}  // namespace
}  // namespace librisk::sim
