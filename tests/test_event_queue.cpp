#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace librisk::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_THROW((void)q.next_time(), CheckError);
  EXPECT_THROW((void)q.pop(), CheckError);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  (void)q.schedule(3.0, EventPriority::Internal, [&] { fired.push_back(3); });
  (void)q.schedule(1.0, EventPriority::Internal, [&] { fired.push_back(1); });
  (void)q.schedule(2.0, EventPriority::Internal, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().handler();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimePriorityOrder) {
  EventQueue q;
  std::vector<int> fired;
  (void)q.schedule(5.0, EventPriority::Arrival, [&] { fired.push_back(2); });
  (void)q.schedule(5.0, EventPriority::Completion, [&] { fired.push_back(0); });
  (void)q.schedule(5.0, EventPriority::Internal, [&] { fired.push_back(1); });
  (void)q.schedule(5.0, EventPriority::Control, [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().handler();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EqualTimeAndPriorityFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    (void)q.schedule(1.0, EventPriority::Internal, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().handler();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, EventPriority::Internal, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DoubleCancelIsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, EventPriority::Internal, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(EventId{}));  // invalid id
}

TEST(EventQueue, CancelAfterFireIsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, EventPriority::Internal, [] {});
  q.pop().handler();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1.0, EventPriority::Internal, [] {});
  (void)q.schedule(2.0, EventPriority::Internal, [] {});
  (void)q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CountersTrackLifetime) {
  EventQueue q;
  const EventId a = q.schedule(1.0, EventPriority::Internal, [] {});
  (void)q.schedule(2.0, EventPriority::Internal, [] {});
  (void)q.cancel(a);
  EXPECT_EQ(q.scheduled_total(), 2u);
  EXPECT_EQ(q.cancelled_total(), 1u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsNullHandlerAndNanTime) {
  EventQueue q;
  EXPECT_THROW((void)q.schedule(1.0, EventPriority::Internal, nullptr), CheckError);
  EXPECT_THROW(
      (void)q.schedule(std::numeric_limits<double>::quiet_NaN(),
                       EventPriority::Internal, [] {}),
      CheckError);
}

TEST(EventQueue, RandomizedOrderingProperty) {
  rng::Stream stream(42);
  EventQueue q;
  for (int i = 0; i < 2000; ++i)
    (void)q.schedule(stream.uniform(0.0, 1e6), EventPriority::Internal, [] {});
  double last = -1.0;
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GE(popped.time, last);
    last = popped.time;
  }
}

TEST(EventQueue, RandomizedCancellationProperty) {
  rng::Stream stream(43);
  EventQueue q;
  std::vector<EventId> ids;
  int expected = 0;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(q.schedule(stream.uniform(0.0, 100.0), EventPriority::Internal, [] {}));
  for (const EventId id : ids) {
    if (stream.bernoulli(0.5)) (void)q.cancel(id);
    else ++expected;
  }
  int fired = 0;
  while (!q.empty()) {
    (void)q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, expected);
}

// Differential stress: random schedule/cancel/pop interleavings checked
// against a brute-force reference model ordered by the documented
// (time, priority, sequence) key. Times come from a coarse grid so exact
// time ties — and same-time same-priority FIFO ties — occur constantly,
// cancels target ids from the whole issue history so stale ids (already
// fired or already cancelled) are exercised mid-run, and the slab
// high-water mark is asserted at the end to prove slot reuse.
TEST(EventQueue, RandomizedStressMatchesReferenceModel) {
  struct Ref {
    double time;
    int priority;
    std::uint64_t seq;
  };
  const auto ref_before = [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  };

  rng::Stream stream(4242);
  EventQueue q;
  std::vector<Ref> live;       // reference model of the pending set
  std::vector<EventId> issued; // every id ever returned, live or not
  std::uint64_t fired_seq = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::size_t high_water = 0;

  const auto pop_and_check = [&] {
    const auto expect = std::min_element(live.begin(), live.end(), ref_before);
    ASSERT_NE(expect, live.end());
    ASSERT_EQ(q.next_time(), expect->time);
    auto popped = q.pop();
    EXPECT_EQ(popped.time, expect->time);
    EXPECT_EQ(static_cast<int>(popped.priority), expect->priority);
    popped.handler();
    EXPECT_EQ(fired_seq, expect->seq);  // priority + FIFO tie-break honoured
    live.erase(expect);
  };

  for (int op = 0; op < 20000; ++op) {
    const double r = stream.uniform();
    if (r < 0.50) {
      // Coarse time grid: exact collisions across all four priorities.
      const double time = 0.5 * static_cast<double>(stream.uniform_int(0, 39));
      const int priority = static_cast<int>(stream.uniform_int(0, 3));
      const std::uint64_t seq = ++scheduled;
      const EventId id =
          q.schedule(time, static_cast<EventPriority>(priority),
                     [&fired_seq, seq] { fired_seq = seq; });
      EXPECT_EQ(id.value, seq);  // sequence numbers are issue-ordered
      issued.push_back(id);
      live.push_back({time, priority, seq});
      high_water = std::max(high_water, live.size());
    } else if (r < 0.80 && !issued.empty()) {
      const EventId id = issued[static_cast<std::size_t>(stream.uniform_int(
          0, static_cast<std::int64_t>(issued.size()) - 1))];
      const auto it =
          std::find_if(live.begin(), live.end(),
                       [&](const Ref& e) { return e.seq == id.value; });
      const bool was_live = it != live.end();
      EXPECT_EQ(q.cancel(id), was_live);
      if (was_live) {
        ++cancelled;
        live.erase(it);
      }
    } else if (!live.empty()) {
      pop_and_check();
    }
    ASSERT_EQ(q.pending(), live.size());
  }
  while (!live.empty()) pop_and_check();

  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.scheduled_total(), scheduled);
  EXPECT_EQ(q.cancelled_total(), cancelled);
  // Slots recycle through the free list: the slab never grows beyond the
  // maximum number of simultaneously live events.
  EXPECT_LE(q.slot_capacity(), high_water);
}

}  // namespace
}  // namespace librisk::sim
