// Differential validation of the event-driven TimeSharedExecutor against an
// independent brute-force reference: a small-step integrator that re-derives
// demands and allocations every tick from the same share-model formulas.
//
// For the execution modes whose rates are exactly piecewise-constant between
// events (EqualShare; strict ProportionalPacing), the two must agree on
// completion times to integration accuracy. This catches event-scheduling
// bugs (missed boundaries, stale rates after arrivals, overrun mishandling)
// that unit tests on hand-built cases may not.
#include <gtest/gtest.h>

#include <map>

#include "cluster/timeshared.hpp"
#include "helpers.hpp"
#include "support/rng.hpp"

namespace librisk::cluster {
namespace {

using librisk::testing::JobBuilder;
using workload::Job;

struct ScenarioJob {
  Job job;
  sim::SimTime start_time;
  std::vector<NodeId> nodes;
};

// Brute-force integrator: dt-stepped, recomputing demand_of/allocate_one
// from scratch each tick.
std::map<std::int64_t, double> reference_completions(
    const std::vector<ScenarioJob>& scenario, int node_count,
    const ShareModelConfig& config, double dt, double horizon) {
  struct State {
    const ScenarioJob* src;
    double work = 0.0;
    double est_current;
    int bumps = 0;
    bool running = false;
    bool done = false;
  };
  std::vector<State> states;
  states.reserve(scenario.size());
  for (const auto& sj : scenario)
    states.push_back(State{&sj, 0.0, sj.job.scheduler_estimate, 0, false, false});

  std::map<std::int64_t, double> completions;
  const bool work_conserving =
      config.work_conserving || config.mode == ExecutionMode::EqualShare;

  for (double t = 0.0; t <= horizon; t += dt) {
    // Start arrivals.
    for (State& s : states)
      if (!s.running && !s.done && s.src->start_time <= t + 1e-12) s.running = true;

    // Overrun bumps (same rule as the executor).
    for (State& s : states) {
      if (s.running && s.work >= s.est_current - 1e-9 &&
          s.work < s.src->job.actual_runtime - 1e-9) {
        s.est_current += config.overrun_bump_fraction * s.src->job.scheduler_estimate;
        ++s.bumps;
      }
    }

    // Demands per node.
    std::vector<double> node_demand(node_count, 0.0);
    const auto demand_of = [&](const State& s) {
      if (config.mode == ExecutionMode::EqualShare) return 1.0;
      const double rem = std::max(s.est_current - s.work, 0.0);
      return std::min(1.0, required_share(rem,
                                          s.src->job.absolute_deadline() - t,
                                          config.deadline_clamp));
    };
    for (const State& s : states) {
      if (!s.running || s.done) continue;
      for (const NodeId n : s.src->nodes) node_demand[n] += demand_of(s);
    }

    // Integrate one tick at the min-across-nodes allocated rate.
    for (State& s : states) {
      if (!s.running || s.done) continue;
      const double d = demand_of(s);
      double rate = 1e300;
      for (const NodeId n : s.src->nodes)
        rate = std::min(rate, allocate_one(d, node_demand[n] - d, work_conserving));
      s.work += rate * dt;
      if (s.work >= s.src->job.actual_runtime - 1e-9) {
        s.done = true;
        s.running = false;
        completions[s.src->job.id] = t + dt;
      }
    }
  }
  return completions;
}

// Runs the same scenario through the real executor.
std::map<std::int64_t, double> executor_completions(
    const std::vector<ScenarioJob>& scenario, int node_count,
    const ShareModelConfig& config) {
  sim::Simulator simulator;
  const Cluster cluster = Cluster::homogeneous(node_count, 1.0);
  TimeSharedExecutor executor(simulator, cluster, config);
  std::map<std::int64_t, double> completions;
  executor.set_completion_handler(
      [&](const Job& job, sim::SimTime t) { completions[job.id] = t; });
  for (const auto& sj : scenario) {
    simulator.at(sj.start_time, sim::EventPriority::Arrival,
                 [&executor, &sj] { executor.start(sj.job, sj.nodes); });
  }
  simulator.run();
  return completions;
}

std::vector<ScenarioJob> random_scenario(std::uint64_t seed, int node_count,
                                         int job_count) {
  rng::Stream stream(seed);
  std::vector<ScenarioJob> scenario;
  scenario.reserve(job_count);
  for (int i = 0; i < job_count; ++i) {
    ScenarioJob sj;
    const double runtime = stream.uniform(20.0, 300.0);
    const double est_factor = stream.uniform(0.6, 3.0);  // includes under-estimates
    sj.job = JobBuilder(i + 1)
                 .estimate(std::max(10.0, runtime * est_factor))
                 .set_runtime(runtime)
                 .deadline(runtime * stream.uniform(1.5, 6.0))
                 .build();
    sj.start_time = stream.uniform(0.0, 400.0);
    sj.job.submit_time = sj.start_time;
    const int procs = static_cast<int>(stream.uniform_int(1, 2));
    sj.job.num_procs = procs;
    // Distinct random nodes.
    std::vector<NodeId> all(node_count);
    for (int n = 0; n < node_count; ++n) all[n] = n;
    rng::shuffle(all, stream);
    sj.nodes.assign(all.begin(), all.begin() + procs);
    scenario.push_back(std::move(sj));
  }
  return scenario;
}

class ReferenceExecutor : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceExecutor, EqualShareMatches) {
  ShareModelConfig config;
  config.mode = ExecutionMode::EqualShare;
  const auto scenario = random_scenario(GetParam(), 3, 8);
  const auto expected = reference_completions(scenario, 3, config, 0.02, 20000.0);
  const auto actual = executor_completions(scenario, 3, config);
  ASSERT_EQ(actual.size(), scenario.size());
  ASSERT_EQ(expected.size(), scenario.size()) << "reference horizon too short";
  for (const auto& [id, t_ref] : expected) {
    ASSERT_TRUE(actual.contains(id));
    EXPECT_NEAR(actual.at(id), t_ref, 1.0) << "job " << id;
  }
}

// Feasible, never-overloaded scenarios: shares are small, no job overruns,
// so strict pacing is *exact* between events and the two simulators must
// agree to integration accuracy.
std::vector<ScenarioJob> feasible_scenario(std::uint64_t seed, int node_count,
                                           int job_count) {
  rng::Stream stream(seed);
  std::vector<ScenarioJob> scenario;
  scenario.reserve(job_count);
  for (int i = 0; i < job_count; ++i) {
    ScenarioJob sj;
    const double runtime = stream.uniform(50.0, 200.0);
    sj.job = JobBuilder(i + 1)
                 .estimate(runtime * stream.uniform(1.0, 1.2))
                 .set_runtime(runtime)
                 .deadline(runtime * stream.uniform(8.0, 12.0))
                 .build();
    sj.start_time = stream.uniform(0.0, 300.0);
    sj.job.submit_time = sj.start_time;
    sj.nodes = {static_cast<NodeId>(stream.uniform_int(0, node_count - 1))};
    scenario.push_back(std::move(sj));
  }
  return scenario;
}

TEST_P(ReferenceExecutor, StrictPacingExactWhenFeasible) {
  ShareModelConfig config;
  config.mode = ExecutionMode::ProportionalPacing;
  config.work_conserving = false;
  const auto scenario = feasible_scenario(GetParam() + 500, 3, 6);
  const auto expected = reference_completions(scenario, 3, config, 0.02, 40000.0);
  const auto actual = executor_completions(scenario, 3, config);
  ASSERT_EQ(actual.size(), scenario.size());
  ASSERT_EQ(expected.size(), scenario.size()) << "reference horizon too short";
  for (const auto& [id, t_ref] : expected) {
    ASSERT_TRUE(actual.contains(id));
    EXPECT_NEAR(actual.at(id), t_ref, 1.0) << "job " << id;
  }
}

TEST_P(ReferenceExecutor, OverloadedScenariosRespectPhysicalInvariants) {
  // Under overload with overruns, frozen-between-events rates and the
  // continuously adapting reference bifurcate (an early completion frees
  // capacity and changes everything downstream), so point-wise agreement is
  // not a valid oracle. Physical invariants still are: every job completes,
  // never faster than a dedicated full-speed node would allow, in both
  // simulators.
  ShareModelConfig config;
  config.mode = ExecutionMode::ProportionalPacing;
  config.work_conserving = false;
  const auto scenario = random_scenario(GetParam() + 900, 3, 8);
  const auto expected = reference_completions(scenario, 3, config, 0.02, 120000.0);
  const auto actual = executor_completions(scenario, 3, config);
  ASSERT_EQ(actual.size(), scenario.size());
  ASSERT_EQ(expected.size(), scenario.size()) << "reference horizon too short";
  for (const auto& sj : scenario) {
    const double earliest = sj.start_time + sj.job.actual_runtime;
    EXPECT_GE(actual.at(sj.job.id), earliest - 1e-6) << "job " << sj.job.id;
    EXPECT_GE(expected.at(sj.job.id), earliest - 0.05) << "job " << sj.job.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceExecutor,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4));

}  // namespace
}  // namespace librisk::cluster
