// Property-based and parameterized sweeps over the whole system: invariants
// that must hold for every policy, seed and estimate regime.
#include <gtest/gtest.h>

#include <tuple>

#include "core/risk.hpp"
#include "exp/scenario.hpp"
#include "support/rng.hpp"

namespace librisk {
namespace {

// ---------------------------------------------------------------------------
// Whole-simulation invariants, swept over (policy, inaccuracy, seed).
// ---------------------------------------------------------------------------

using SimParam = std::tuple<core::Policy, double, std::uint64_t>;

class SimulationInvariants : public ::testing::TestWithParam<SimParam> {};

TEST_P(SimulationInvariants, AccountingAndMetricDomains) {
  const auto [policy, inaccuracy, seed] = GetParam();
  exp::Scenario s;
  s.workload.trace.job_count = 500;
  s.workload.inaccuracy_pct = inaccuracy;
  s.nodes = 32;
  s.policy = policy;
  s.seed = seed;
  const exp::ScenarioResult r = exp::run_scenario(s);
  const auto& sum = r.summary;

  // Conservation: every job ends in exactly one terminal state.
  EXPECT_EQ(sum.submitted, 500u);
  EXPECT_EQ(sum.submitted,
            sum.accepted + sum.rejected_at_submit + sum.rejected_at_dispatch);
  EXPECT_EQ(sum.accepted, sum.fulfilled + sum.completed_late + sum.killed);

  // Metric domains.
  EXPECT_GE(sum.fulfilled_pct, 0.0);
  EXPECT_LE(sum.fulfilled_pct, 100.0);
  if (sum.fulfilled > 0) {
    EXPECT_GE(sum.avg_slowdown_fulfilled, 1.0 - 1e-9);
  }
  EXPECT_GE(sum.utilization, 0.0);
  EXPECT_LE(sum.utilization, 1.0 + 1e-9);
  EXPECT_GE(sum.makespan, 0.0);

  // Per-job outcome domains.
  for (const exp::JobOutcome& o : r.outcomes) {
    EXPECT_NE(o.fate, metrics::JobFate::Pending);
    EXPECT_GE(o.delay, 0.0);
    if (o.fate == metrics::JobFate::FulfilledInTime) {
      EXPECT_DOUBLE_EQ(o.delay, 0.0);
    }
    if (o.fate == metrics::JobFate::CompletedLate) {
      EXPECT_GT(o.delay, 0.0);
    }
  }
}

std::string sim_param_name(const ::testing::TestParamInfo<SimParam>& info) {
  std::string name(core::to_string(std::get<0>(info.param)));
  for (auto& c : name)
    if (c == '-') c = '_';
  return name + "_inacc" +
         std::to_string(static_cast<int>(std::get<1>(info.param))) + "_seed" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndRegimes, SimulationInvariants,
    ::testing::Combine(
        ::testing::Values(core::Policy::Edf, core::Policy::EdfNoAC,
                          core::Policy::Libra, core::Policy::LibraRisk,
                          core::Policy::Fcfs, core::Policy::Easy),
        ::testing::Values(0.0, 50.0, 100.0),
        ::testing::Values<std::uint64_t>(1, 2)),
    sim_param_name);

// ---------------------------------------------------------------------------
// Admission-control promise: with accurate estimates, accepted jobs never
// miss their deadlines (the paper's premise for the admission controls).
// ---------------------------------------------------------------------------

using PromiseParam = std::tuple<core::Policy, std::uint64_t>;

class AccuratePromise : public ::testing::TestWithParam<PromiseParam> {};

TEST_P(AccuratePromise, NoAcceptedJobMissesItsDeadline) {
  const auto [policy, seed] = GetParam();
  exp::Scenario s;
  s.workload.trace.job_count = 600;
  s.workload.inaccuracy_pct = 0.0;
  s.nodes = 48;
  s.policy = policy;
  s.seed = seed;
  const exp::ScenarioResult r = exp::run_scenario(s);
  EXPECT_EQ(r.summary.completed_late, 0u);
}

std::string promise_param_name(const ::testing::TestParamInfo<PromiseParam>& info) {
  return std::string(core::to_string(std::get<0>(info.param))) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AdmissionControlled, AccuratePromise,
    ::testing::Combine(::testing::Values(core::Policy::Edf, core::Policy::Libra,
                                         core::Policy::LibraRisk),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    promise_param_name);

// ---------------------------------------------------------------------------
// Risk-metric properties over randomized inputs.
// ---------------------------------------------------------------------------

class RiskMetricProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RiskMetricProperties, AssessmentDomains) {
  rng::Stream stream(GetParam());
  core::RiskConfig config;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(stream.uniform_int(1, 12));
    std::vector<core::RiskJobInput> jobs;
    jobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      core::RiskJobInput in;
      in.remaining_work = stream.uniform(0.0, 5000.0);
      in.remaining_deadline = stream.uniform(-1000.0, 10000.0);
      in.current_rate =
          stream.bernoulli(0.8) ? stream.uniform(0.01, 1.0) : core::RiskJobInput::kNewJob;
      jobs.push_back(in);
    }
    const core::RiskAssessment a =
        core::assess_node(jobs, config, 1.0, stream.uniform(0.0, 1.0));

    ASSERT_EQ(a.deadline_delay.size(), n);
    ASSERT_EQ(a.predicted_delay.size(), n);
    EXPECT_GE(a.sigma, 0.0);
    EXPECT_GE(a.total_share, 0.0);
    double min_dd = 1e300, max_dd = 0.0, sum_dd = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(a.predicted_delay[i], 0.0);
      EXPECT_GE(a.deadline_delay[i], 1.0 - 1e-9);  // Eq. 4 minimum
      min_dd = std::min(min_dd, a.deadline_delay[i]);
      max_dd = std::max(max_dd, a.deadline_delay[i]);
      sum_dd += a.deadline_delay[i];
    }
    EXPECT_DOUBLE_EQ(a.max_deadline_delay, max_dd);
    // mu is the mean, bounded by min and max.
    EXPECT_NEAR(a.mu, sum_dd / static_cast<double>(n), 1e-9 * sum_dd + 1e-12);
    EXPECT_LE(a.sigma, (max_dd - min_dd) + 1e-9);  // stddev <= range
    // sigma == 0 exactly when all deadline_delays coincide.
    if (max_dd - min_dd < 1e-12) {
      EXPECT_NEAR(a.sigma, 0.0, 1e-6);
    }
  }
}

TEST_P(RiskMetricProperties, ProcessorSharingConservation) {
  rng::Stream stream(GetParam() + 100);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(stream.uniform_int(1, 20));
    std::vector<double> works(n);
    double total = 0.0;
    for (auto& w : works) {
      w = stream.uniform(0.0, 1000.0);
      total += w;
    }
    const double speed = stream.uniform(0.1, 4.0);
    const auto finish = core::processor_sharing_finish_times(works, speed);
    double max_finish = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_finish = std::max(max_finish, finish[i]);
      // More remaining work never finishes earlier.
      for (std::size_t j = 0; j < n; ++j) {
        if (works[i] < works[j]) {
          EXPECT_LE(finish[i], finish[j] + 1e-9);
        }
      }
      // No job can beat its dedicated-node time or the full-serial time.
      EXPECT_GE(finish[i], works[i] / speed - 1e-9);
      EXPECT_LE(finish[i], total / speed + 1e-9);
    }
    // Work conservation: the node is busy until all work is done.
    EXPECT_NEAR(max_finish, total / speed, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiskMetricProperties,
                         ::testing::Values<std::uint64_t>(11, 22, 33));

// ---------------------------------------------------------------------------
// Estimate-inaccuracy monotonicity at the system level.
// ---------------------------------------------------------------------------

class InaccuracyDegradesService : public ::testing::TestWithParam<core::Policy> {};

TEST_P(InaccuracyDegradesService, AccurateBeatsTraceEstimates) {
  exp::Scenario s;
  s.workload.trace.job_count = 700;
  s.nodes = 48;
  s.policy = GetParam();
  s.seed = 4;
  s.workload.inaccuracy_pct = 0.0;
  const auto accurate = exp::run_scenario(s);
  s.workload.inaccuracy_pct = 100.0;
  const auto trace = exp::run_scenario(s);
  // Inaccurate estimates must not *help* (small slack for noise).
  EXPECT_GE(accurate.summary.fulfilled_pct + 2.0, trace.summary.fulfilled_pct)
      << core::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, InaccuracyDegradesService,
                         ::testing::Values(core::Policy::Edf, core::Policy::Libra,
                                           core::Policy::LibraRisk),
                         [](const ::testing::TestParamInfo<core::Policy>& param_info) {
                           return std::string(core::to_string(param_info.param));
                         });

// ---------------------------------------------------------------------------
// Input shaking (Tsafrir & Feitelson): tiny perturbations of submit times
// must not change aggregate conclusions. Guards against knife-edge
// sensitivity in the schedulers' tie-breaking.
// ---------------------------------------------------------------------------

class TraceShaking : public ::testing::TestWithParam<core::Policy> {};

TEST_P(TraceShaking, AggregatesStableUnderSubmitJitter) {
  exp::Scenario s;
  s.workload.trace.job_count = 800;
  s.workload.inaccuracy_pct = 100.0;
  s.nodes = 64;
  s.policy = GetParam();
  s.seed = 6;

  auto jobs = workload::make_paper_workload(s.workload, s.seed);
  const exp::ScenarioResult base = exp::run_jobs(s, jobs);

  // Shake: jitter each inter-arrival by up to ±1% (preserving order).
  rng::Stream jitter("shake", 99);
  std::vector<workload::Job> shaken = jobs;
  double shift = 0.0;
  for (std::size_t i = 1; i < shaken.size(); ++i) {
    const double gap = jobs[i].submit_time - jobs[i - 1].submit_time;
    shift += gap * jitter.uniform(-0.01, 0.01);
    shaken[i].submit_time = std::max(shaken[i - 1].submit_time,
                                     jobs[i].submit_time + shift);
  }
  const exp::ScenarioResult moved = exp::run_jobs(s, shaken);

  EXPECT_NEAR(base.summary.fulfilled_pct, moved.summary.fulfilled_pct, 3.0)
      << core::to_string(GetParam());
  EXPECT_NEAR(base.summary.avg_slowdown_fulfilled,
              moved.summary.avg_slowdown_fulfilled,
              0.35 * base.summary.avg_slowdown_fulfilled + 0.2)
      << core::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, TraceShaking,
                         ::testing::Values(core::Policy::Edf, core::Policy::Libra,
                                           core::Policy::LibraRisk),
                         [](const ::testing::TestParamInfo<core::Policy>& param_info) {
                           return std::string(core::to_string(param_info.param));
                         });

}  // namespace
}  // namespace librisk
