#include "workload/deadlines.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/check.hpp"

namespace librisk::workload {
namespace {

std::vector<Job> runtime_jobs(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(librisk::testing::make_job(
        static_cast<std::int64_t>(i + 1), static_cast<double>(i),
        stream.uniform(60.0, 50000.0), 1e9));
  }
  return jobs;
}

TEST(DeadlineConfig, Validation) {
  DeadlineConfig c;
  EXPECT_NO_THROW(c.validate());
  c.high_urgency_fraction = 1.5;
  EXPECT_THROW(c.validate(), CheckError);
  c = DeadlineConfig{};
  c.high_low_ratio = 0.5;
  EXPECT_THROW(c.validate(), CheckError);
  c = DeadlineConfig{};
  c.min_factor = 0.9;
  EXPECT_THROW(c.validate(), CheckError);
  c = DeadlineConfig{};
  c.high_urgency_mean_factor = 0.5;
  EXPECT_THROW(c.validate(), CheckError);
}

TEST(DeadlineConfig, LowUrgencyMeanFollowsRatio) {
  DeadlineConfig c;
  c.high_urgency_mean_factor = 2.0;
  c.high_low_ratio = 4.0;
  EXPECT_DOUBLE_EQ(c.low_urgency_mean_factor(), 8.0);
}

TEST(AssignDeadlines, EveryJobGetsFeasibleDeadline) {
  auto jobs = runtime_jobs(5000, 1);
  DeadlineConfig config;
  rng::Stream stream("deadlines", 1);
  assign_deadlines(jobs, config, stream);
  for (const Job& j : jobs) {
    EXPECT_NE(j.urgency, Urgency::Unspecified);
    // "The deadline of a job is thus always assigned a higher factored
    // value based on the real runtime."
    EXPECT_GE(j.deadline_factor(), config.min_factor - 1e-9);
  }
}

TEST(AssignDeadlines, ClassFractionsMatch) {
  auto jobs = runtime_jobs(20000, 2);
  DeadlineConfig config;
  config.high_urgency_fraction = 0.20;
  rng::Stream stream("deadlines", 2);
  assign_deadlines(jobs, config, stream);
  EXPECT_NEAR(high_urgency_fraction(jobs), 0.20, 0.015);
}

TEST(AssignDeadlines, ClassMeansMatchConfiguration) {
  auto jobs = runtime_jobs(40000, 3);
  DeadlineConfig config;  // high mean 2, ratio 4 => low mean 8
  rng::Stream stream("deadlines", 3);
  assign_deadlines(jobs, config, stream);
  EXPECT_NEAR(mean_deadline_factor(jobs, Urgency::High), 2.0, 0.1);
  EXPECT_NEAR(mean_deadline_factor(jobs, Urgency::Low), 8.0, 0.3);
  // Overall mean interpolates the class means.
  const double overall = mean_deadline_factor(jobs, Urgency::Unspecified);
  EXPECT_GT(overall, 2.0);
  EXPECT_LT(overall, 8.0);
}

TEST(AssignDeadlines, RatioOneCollapsesClasses) {
  auto jobs = runtime_jobs(20000, 4);
  DeadlineConfig config;
  config.high_low_ratio = 1.0;
  rng::Stream stream("deadlines", 4);
  assign_deadlines(jobs, config, stream);
  EXPECT_NEAR(mean_deadline_factor(jobs, Urgency::High),
              mean_deadline_factor(jobs, Urgency::Low), 0.15);
}

TEST(AssignDeadlines, ZeroAndFullHighUrgency) {
  auto jobs = runtime_jobs(1000, 5);
  DeadlineConfig config;
  config.high_urgency_fraction = 0.0;
  rng::Stream s1("deadlines", 5);
  assign_deadlines(jobs, config, s1);
  EXPECT_DOUBLE_EQ(high_urgency_fraction(jobs), 0.0);
  config.high_urgency_fraction = 1.0;
  rng::Stream s2("deadlines", 5);
  assign_deadlines(jobs, config, s2);
  EXPECT_DOUBLE_EQ(high_urgency_fraction(jobs), 1.0);
}

TEST(AssignDeadlines, HighUrgencyDeadlinesAreShorter) {
  auto jobs = runtime_jobs(20000, 6);
  DeadlineConfig config;
  rng::Stream stream("deadlines", 6);
  assign_deadlines(jobs, config, stream);
  EXPECT_LT(mean_deadline_factor(jobs, Urgency::High),
            mean_deadline_factor(jobs, Urgency::Low));
}

TEST(AssignDeadlines, Deterministic) {
  auto a = runtime_jobs(500, 7);
  auto b = runtime_jobs(500, 7);
  DeadlineConfig config;
  rng::Stream s1("deadlines", 7), s2("deadlines", 7);
  assign_deadlines(a, config, s1);
  assign_deadlines(b, config, s2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].urgency, b[i].urgency);
  }
}

TEST(MeanDeadlineFactor, EmptyAndFiltered) {
  EXPECT_DOUBLE_EQ(mean_deadline_factor({}, Urgency::High), 0.0);
  std::vector<Job> jobs{librisk::testing::make_job(1, 0.0, 100.0, 300.0)};
  jobs[0].urgency = Urgency::Low;
  EXPECT_DOUBLE_EQ(mean_deadline_factor(jobs, Urgency::High), 0.0);
  EXPECT_DOUBLE_EQ(mean_deadline_factor(jobs, Urgency::Low), 3.0);
}

}  // namespace
}  // namespace librisk::workload
